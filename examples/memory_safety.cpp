/**
 * @file
 * The memory-safety execution policy from §4.2: the runtime reports
 * allocation lifecycle and access events over AppendWrite, and the
 * verifier's MemorySafetyPolicy detects spatial (out-of-bounds) and
 * temporal (use-after-free, double-free) violations — a different
 * policy on the same HerQules framework, no CFI involved.
 *
 * Build: cmake --build build && ./build/examples/memory_safety
 */

#include <cstdio>

#include "common/log.h"
#include "ir/builder.h"
#include "policy/memory_safety.h"
#include "runtime/vm.h"
#include "uarch/uarch_model_channel.h"
#include "verifier/verifier.h"

using namespace hq;
using namespace hq::ir;

namespace {

enum class Bug { None, OutOfBounds, UseAfterFree };

Module
buildProgram(Bug bug)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int size = builder.constInt(32);
    const int p = builder.mallocOp(size);
    builder.store(p, builder.constInt(7), TypeRef::intTy());

    if (bug == Bug::OutOfBounds) {
        const int off = builder.constInt(40); // past the 32-byte block
        const int oob = builder.arith(ArithKind::Add, p, off);
        builder.store(oob, builder.constInt(9), TypeRef::intTy());
    }
    if (bug == Bug::UseAfterFree) {
        builder.freeOp(p);
        builder.load(p, TypeRef::intTy()); // stale access
        builder.ret(builder.constInt(0));
        builder.endFunction();
        module.entry_function = 0;
        return module;
    }

    const int v = builder.load(p, TypeRef::intTy());
    builder.freeOp(p);
    builder.ret(v);
    builder.endFunction();
    module.entry_function = 0;
    return module;
}

const char *
runOnce(Bug bug)
{
    Module module = buildProgram(bug);

    KernelModule kernel;
    auto policy = std::make_shared<MemorySafetyPolicy>();
    Verifier::Config vconfig;
    vconfig.kill_on_violation = false;
    Verifier verifier(kernel, policy, vconfig);
    UarchModelChannel channel(1 << 10);
    verifier.attachChannel(&channel, 1);
    HqRuntime runtime(1, channel, kernel);
    runtime.enable();
    verifier.start();

    VmConfig config;
    config.memsafety_messages = true; // §4.2 policy instrumentation
    Vm vm(module, config, &runtime);
    const RunResult result = vm.run();
    verifier.stop();

    static char line[160];
    auto *ctx = static_cast<MemorySafetyContext *>(verifier.contextFor(1));
    const char *kind = "none";
    if (ctx) {
        switch (ctx->lastViolation()) {
          case MemoryViolation::OutOfBounds: kind = "out-of-bounds"; break;
          case MemoryViolation::CrossAllocation: kind = "cross-alloc"; break;
          case MemoryViolation::OverlapCreate: kind = "overlap"; break;
          case MemoryViolation::InvalidFree: kind = "invalid-free"; break;
          case MemoryViolation::None: break;
        }
    }
    std::snprintf(line, sizeof line,
                  "exit=%s messages=%llu violation=%s",
                  exitKindName(result.exit),
                  static_cast<unsigned long long>(runtime.messagesSent()),
                  kind);
    return line;
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Error);
    std::printf("Memory-safety policy (paper Sec. 4.2)\n\n");
    std::printf("clean program:      %s\n", runOnce(Bug::None));
    std::printf("buffer overflow:    %s\n", runOnce(Bug::OutOfBounds));
    std::printf("use-after-free:     %s\n", runOnce(Bug::UseAfterFree));
    return 0;
}
