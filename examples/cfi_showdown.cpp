/**
 * @file
 * CFI design showdown: runs a handful of representative RIPE attacks
 * under every design and prints who blocks what — a compact, runnable
 * version of the paper's Table 5 story.
 *
 * Build: cmake --build build && ./build/examples/cfi_showdown
 */

#include <cstdio>
#include <vector>

#include "common/log.h"
#include "telemetry/telemetry.h"
#include "workloads/ripe.h"

using namespace hq;

int
main(int argc, char **argv)
{
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Off);

    const std::vector<RipeAttack> attacks = {
        {AttackOrigin::Stack, AttackTarget::FuncPtr,
         AttackTechnique::DirectOverflow, AttackPayload::Shellcode, 0},
        {AttackOrigin::Heap, AttackTarget::FuncPtr,
         AttackTechnique::DirectOverflow, AttackPayload::Libc, 0},
        {AttackOrigin::Heap, AttackTarget::VtableReuse,
         AttackTechnique::DirectOverflow, AttackPayload::Shellcode, 0},
        {AttackOrigin::Bss, AttackTarget::RetPtr,
         AttackTechnique::DisclosureWrite, AttackPayload::Shellcode, 0},
        {AttackOrigin::Stack, AttackTarget::RetPtr,
         AttackTechnique::DisclosureSweep, AttackPayload::Shellcode, 0},
    };

    std::printf("CFI design showdown: does the exploit's confirmation "
                "syscall complete?\n\n%-34s", "attack");
    for (CfiDesign design : allDesigns())
        std::printf(" %-15s", designInfo(design).name.c_str());
    std::printf("\n");

    for (const RipeAttack &attack : attacks) {
        std::printf("%-34s", attack.name().c_str());
        for (CfiDesign design : allDesigns()) {
            const RipeResult result = runRipeAttack(attack, design);
            std::printf(" %-15s", result.succeeded
                                      ? "EXPLOITED"
                                      : (result.detected ? "detected"
                                                         : "blocked"));
        }
        std::printf("\n");
    }

    std::printf("\nReading the table:\n"
                "  - the Baseline column falls to everything;\n"
                "  - Clang/LLVM CFI blocks shellcode but not same-type "
                "code reuse;\n"
                "  - safe-stack designs (SfeStk, Clang, CPI) fall to "
                "disclosed return\n    pointers, except Clang's guard "
                "pages stop the linear sweep;\n"
                "  - HQ-CFI-RetPtr and CCFI protect return pointers "
                "directly and block all.\n");
    return 0;
}
