/**
 * @file
 * The paper's motivating toy example (§2): reliably counting function
 * calls. An in-process counter can be corrupted by the program's own
 * bugs; a counter maintained by the verifier from append-only messages
 * cannot — even if the program is compromised immediately after
 * sending, it cannot retract previously-sent increments.
 *
 * Build: cmake --build build && ./build/examples/event_counter
 */

#include <cstdio>

#include "common/log.h"
#include "ipc/shm_channel.h"
#include "kernel/kernel.h"
#include "policy/misc_policies.h"
#include "runtime/runtime.h"
#include "verifier/verifier.h"

using namespace hq;

int
main()
{
    setLogLevel(LogLevel::Error);

    KernelModule kernel;
    auto policy = std::make_shared<EventCountPolicy>();
    Verifier verifier(kernel, policy);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, /*pid=*/1);
    HqRuntime runtime(1, channel, kernel);
    runtime.enable();
    verifier.start();

    // The "program": an in-process counter plus the instrumented
    // message before every counted call.
    std::uint64_t in_process_counter = 0;
    constexpr std::uint64_t kCounterId = 7;
    for (int call = 0; call < 1000; ++call) {
        runtime.send(Message(Opcode::EventCount, kCounterId, 1));
        ++in_process_counter; // the "global counter" of §2
    }

    // The program is now compromised: the attacker zeroes the
    // in-process counter. The verifier's copy is unreachable.
    in_process_counter = 0;

    verifier.stop();
    auto *ctx = static_cast<EventCountContext *>(verifier.contextFor(1));
    std::printf("Reliable event counting (paper Sec. 2)\n\n");
    std::printf("in-process counter after compromise: %llu\n",
                static_cast<unsigned long long>(in_process_counter));
    std::printf("verifier-maintained counter:         %llu\n",
                static_cast<unsigned long long>(
                    ctx ? ctx->counter(kCounterId) : 0));
    std::printf("\nThe attacker erased the in-process count but cannot "
                "retract the\nappend-only message log.\n");
    return ctx && ctx->counter(kCounterId) == 1000 ? 0 : 1;
}
