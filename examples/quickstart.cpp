/**
 * @file
 * Quickstart: the full HerQules pipeline on a small program.
 *
 *  1. Build a program in the mini-IR (a function pointer stored to
 *     memory, loaded back, and called).
 *  2. Instrument it with the HQ-CFI compiler pipeline.
 *  3. Run it in the VM with a live kernel module + verifier, messages
 *     flowing over the AppendWrite-µarch software model.
 *  4. Corrupt the pointer with an out-of-bounds write and watch the
 *     verifier detect it.
 *
 * Build: cmake --build build && ./build/examples/quickstart
 */

#include <cstdio>

#include "cfi/design.h"
#include "common/log.h"
#include "ir/builder.h"
#include "policy/pointer_integrity.h"
#include "runtime/vm.h"
#include "uarch/uarch_model_channel.h"
#include "verifier/verifier.h"

using namespace hq;
using namespace hq::ir;

namespace {

/** A program with one protected function pointer; optionally attacked. */
Module
buildProgram(bool attacked)
{
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();

    builder.beginFunction("greet", 0, sig);
    builder.ret(builder.constInt(42));
    builder.endFunction();

    builder.beginFunction("evil", 0, sig);
    builder.ret(builder.constInt(666));
    builder.endFunction();

    builder.beginFunction("main");
    const int buffer = builder.allocaOp(32);
    const int fp_slot = builder.allocaOp(8, TypeRef::funcPtr(sig));
    const int fp = builder.funcAddr(0, sig);
    builder.store(fp_slot, fp, TypeRef::funcPtr(sig));
    builder.callDirect(0, {fp_slot}); // the slot escapes: check survives

    if (attacked) {
        // Out-of-bounds write: buffer[32..39] is the pointer slot.
        const int off = builder.constInt(32);
        const int oob = builder.arith(ArithKind::Add, buffer, off);
        const int evil = builder.funcAddr(1, sig);
        const int as_int = builder.cast(evil, TypeRef::intTy());
        builder.store(oob, as_int, TypeRef::intTy());
    }

    const int loaded = builder.load(fp_slot, TypeRef::funcPtr(sig));
    builder.ret(builder.callIndirect(loaded, {}, sig));
    builder.endFunction();
    module.entry_function = 2;
    return module;
}

int
runOnce(bool attacked)
{
    Module module = buildProgram(attacked);

    // Compile: devirtualize, lower HQ instrumentation, optimize,
    // place System-Call messages.
    Status status = instrumentModule(module, CfiDesign::HqSfeStk);
    if (!status.isOk()) {
        std::printf("instrumentation failed: %s\n",
                    status.toString().c_str());
        return 1;
    }

    // Runtime plumbing: kernel module, verifier, AppendWrite channel.
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config vconfig;
    vconfig.kill_on_violation = false; // report, don't kill (demo)
    Verifier verifier(kernel, policy, vconfig);
    UarchModelChannel channel(1 << 12);
    verifier.attachChannel(&channel, /*pid=*/1);
    HqRuntime runtime(1, channel, kernel);
    runtime.enable();
    verifier.start();

    VmConfig config = makeVmConfig(CfiDesign::HqSfeStk);
    Vm vm(module, config, &runtime);
    const RunResult result = vm.run();
    verifier.stop();

    std::printf("  exit=%s return=%llu messages=%llu violations=%llu\n",
                exitKindName(result.exit),
                static_cast<unsigned long long>(result.return_value),
                static_cast<unsigned long long>(runtime.messagesSent()),
                static_cast<unsigned long long>(
                    verifier.statsFor(1).violations));
    return verifier.hasViolation(1) ? 1 : 0;
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Error);
    std::printf("HerQules quickstart\n\nBenign run:\n");
    const int benign = runOnce(false);
    std::printf("  -> %s\n\nAttacked run (OOB write corrupts the "
                "function pointer):\n",
                benign ? "UNEXPECTED VIOLATION" : "clean, as expected");
    const int attacked = runOnce(true);
    std::printf("  -> %s\n",
                attacked ? "violation detected, as expected"
                         : "ATTACK WENT UNDETECTED");
    return (benign == 0 && attacked == 1) ? 0 : 1;
}
