/**
 * @file
 * Real two-process deployment: fork() a monitored child whose only link
 * to the parent (verifier) is an AppendWrite ring in shared memory.
 * The child corrupts a "function pointer" after defining it; the parent
 * detects the mismatch. Process isolation — the property HerQules
 * builds on — is real here: the child cannot reach the parent's shadow
 * store at all.
 *
 * Build: cmake --build build && ./build/examples/cross_process
 *
 * Two modes:
 *  - default: the original one-shot demo (3 messages, 1 violation).
 *  - --duration=SECS: streaming mode. The parent runs a real Verifier +
 *    KernelModule and the child emits pointer-integrity traffic for
 *    SECS seconds, ending with a deliberate corruption. Combine with
 *    the shared observability flags to watch it live:
 *
 *      ./cross_process --duration=30 --statsboard &
 *      ./hq_stat --watch
 *
 *    plus --telemetry-out=FILE / --event-log=FILE for the exit dump
 *    and the structured violation log.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/log.h"
#include "ipc/xproc_ring.h"
#include "kernel/kernel.h"
#include "policy/pointer_integrity.h"
#include "telemetry/telemetry.h"
#include "verifier/verifier.h"

using namespace hq;

namespace {

/** The original single-shot demo: manual context, 3 messages. */
int
runOneShot(XprocChannel &channel)
{
    const pid_t child = fork();
    if (child == 0) {
        // ----- monitored process ------------------------------------
        // Define a pointer, "use" it legitimately, then get exploited:
        // the attacker overwrites the in-memory value, and the next
        // check ships the corrupt value as evidence.
        channel.send(Message(Opcode::PointerDefine, 0x1000, 0xAAAA));
        channel.send(Message(Opcode::PointerCheck, 0x1000, 0xAAAA));
        channel.send(Message(Opcode::PointerCheck, 0x1000, 0xBADBAD));
        channel.send(Message(Opcode::Syscall, 59));
        _exit(0);
    }

    // ----- verifier process ------------------------------------------
    PointerIntegrityContext context(static_cast<Pid>(child));
    std::uint64_t processed = 0;
    std::uint64_t violations = 0;
    bool saw_syscall = false;
    while (!saw_syscall) {
        Message message;
        if (!channel.tryRecv(message))
            continue;
        ++processed;
        if (!context.handleMessage(message).isOk())
            ++violations;
        saw_syscall = message.op == Opcode::Syscall;
    }
    int wstatus = 0;
    waitpid(child, &wstatus, 0);

    std::printf("cross-process HerQules demo\n");
    std::printf("  child pid %d, messages processed %llu, violations "
                "%llu\n",
                child, static_cast<unsigned long long>(processed),
                static_cast<unsigned long long>(violations));
    std::printf("  -> %s\n",
                violations == 1
                    ? "corruption detected across a real process "
                      "boundary"
                    : "UNEXPECTED RESULT");
    return violations == 1 ? 0 : 1;
}

/**
 * Streaming mode: a full parent-side verifier pipeline processing a
 * sustained message stream from the forked child, so the statsboard,
 * lag histograms, and event log have live data to show.
 */
int
runStreaming(XprocChannel &channel, long duration_secs)
{
    const pid_t child = fork();
    if (child == 0) {
        // ----- monitored process ------------------------------------
        // Steady pointer-integrity traffic: define once, check in
        // bursts, yield between bursts so the run lasts the requested
        // wall time instead of saturating the ring.
        channel.send(Message(Opcode::PointerDefine, 0x1000, 0xAAAA));
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::seconds(duration_secs);
        while (std::chrono::steady_clock::now() < deadline) {
            for (int i = 0; i < 64; ++i)
                channel.send(Message(Opcode::PointerCheck, 0x1000,
                                     0xAAAA));
            usleep(1000);
        }
        // Finale: the "exploit" corrupts the pointer, then a syscall
        // forces synchronization so nothing is left in flight.
        channel.send(Message(Opcode::PointerCheck, 0x1000, 0xBADBAD));
        channel.send(Message(Opcode::Syscall, 59));
        _exit(0);
    }

    // ----- verifier process ------------------------------------------
    const Pid pid = static_cast<Pid>(child);
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.kill_on_violation = false; // count, don't kill (§5 style)
    Verifier verifier(kernel, policy, config);
    kernel.enableProcess(pid);
    verifier.attachChannel(&channel, pid);
    verifier.start();

    int wstatus = 0;
    waitpid(child, &wstatus, 0);
    // Drain whatever the child left in the ring before stopping.
    verifier.stop();
    kernel.exitProcess(pid);

    const VerifierProcessStats stats = verifier.statsFor(pid);
    std::printf("cross-process HerQules demo (streaming %lds)\n",
                duration_secs);
    std::printf("  child pid %d, messages %llu, violations %llu, "
                "syscall acks %llu\n",
                child,
                static_cast<unsigned long long>(stats.messages),
                static_cast<unsigned long long>(stats.violations),
                static_cast<unsigned long long>(stats.syscall_acks));
    std::printf("  -> %s\n",
                stats.violations == 1
                    ? "corruption detected across a real process "
                      "boundary"
                    : "UNEXPECTED RESULT");
    return stats.violations == 1 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::handleBenchArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    long duration_secs = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--duration=", 11) == 0)
            duration_secs = std::strtol(argv[i] + 11, nullptr, 10);
    }

    XprocChannel channel(1 << 10);
    if (!channel.valid()) {
        std::printf("shared mapping unavailable; skipping\n");
        return 0;
    }
    return duration_secs > 0 ? runStreaming(channel, duration_secs)
                             : runOneShot(channel);
}
