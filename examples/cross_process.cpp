/**
 * @file
 * Real two-process deployment: fork() a monitored child whose only link
 * to the parent (verifier) is an AppendWrite ring in shared memory.
 * The child corrupts a "function pointer" after defining it; the parent
 * detects the mismatch. Process isolation — the property HerQules
 * builds on — is real here: the child cannot reach the parent's shadow
 * store at all.
 *
 * Build: cmake --build build && ./build/examples/cross_process
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include "common/log.h"
#include "ipc/xproc_ring.h"
#include "policy/pointer_integrity.h"

using namespace hq;

int
main()
{
    setLogLevel(LogLevel::Error);
    XprocChannel channel(1 << 10);
    if (!channel.valid()) {
        std::printf("shared mapping unavailable; skipping\n");
        return 0;
    }

    const pid_t child = fork();
    if (child == 0) {
        // ----- monitored process ------------------------------------
        // Define a pointer, "use" it legitimately, then get exploited:
        // the attacker overwrites the in-memory value, and the next
        // check ships the corrupt value as evidence.
        channel.send(Message(Opcode::PointerDefine, 0x1000, 0xAAAA));
        channel.send(Message(Opcode::PointerCheck, 0x1000, 0xAAAA));
        channel.send(Message(Opcode::PointerCheck, 0x1000, 0xBADBAD));
        channel.send(Message(Opcode::Syscall, 59));
        _exit(0);
    }

    // ----- verifier process ------------------------------------------
    PointerIntegrityContext context(static_cast<Pid>(child));
    std::uint64_t processed = 0;
    std::uint64_t violations = 0;
    bool saw_syscall = false;
    while (!saw_syscall) {
        Message message;
        if (!channel.tryRecv(message))
            continue;
        ++processed;
        if (!context.handleMessage(message).isOk())
            ++violations;
        saw_syscall = message.op == Opcode::Syscall;
    }
    int wstatus = 0;
    waitpid(child, &wstatus, 0);

    std::printf("cross-process HerQules demo\n");
    std::printf("  child pid %d, messages processed %llu, violations "
                "%llu\n",
                child, static_cast<unsigned long long>(processed),
                static_cast<unsigned long long>(violations));
    std::printf("  -> %s\n",
                violations == 1
                    ? "corruption detected across a real process "
                      "boundary"
                    : "UNEXPECTED RESULT");
    return violations == 1 ? 0 : 1;
}
