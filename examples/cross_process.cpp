/**
 * @file
 * Real two-process deployment: fork() a monitored child whose only link
 * to the parent (verifier) is an AppendWrite ring in shared memory.
 * The child corrupts a "function pointer" after defining it; the parent
 * detects the mismatch. Process isolation — the property HerQules
 * builds on — is real here: the child cannot reach the parent's shadow
 * store at all.
 *
 * Build: cmake --build build && ./build/examples/cross_process
 *
 * Two modes:
 *  - default: the original one-shot demo (3 messages, 1 violation).
 *  - --shards=N: verifier shard count for streaming mode (default 1;
 *    the single child routes to one shard, so N>1 exercises pid→shard
 *    routing rather than parallel speedup).
 *  - --duration=SECS: streaming mode. The parent runs a real Verifier +
 *    KernelModule and the child emits pointer-integrity traffic for
 *    SECS seconds, ending with a deliberate corruption. Combine with
 *    the shared observability flags to watch it live:
 *
 *      ./cross_process --duration=30 --statsboard &
 *      ./hq_stat --watch
 *
 *    plus --telemetry-out=FILE / --event-log=FILE for the exit dump
 *    and the structured violation log.
 *  - --health: run the shard health watchdog (per-shard OK/DEGRADED/
 *    STALLED state published to the statsboard; pairs with
 *    `hq_stat --prom` for the fleet exporter).
 *  - --spec-window=K / --proactive: kernel speculation window and
 *    verifier proactive pre-arm for chaos legs that sweep the async
 *    ack path (DESIGN.md §13) under injected faults.
 *  - --ifc: compose the taint/IFC label policy with pointer integrity
 *    (docs/policies.md) and mix live label traffic into every burst,
 *    ending in a data-only leak. Chaos legs use this to prove dropped
 *    or corrupted label ops fail closed like pointer ops do.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/log.h"
#include "faultinject/fault.h"
#include "ipc/xproc_ring.h"
#include "kernel/kernel.h"
#include "policy/ifc.h"
#include "policy/pointer_integrity.h"
#include "policy/policy_module.h"
#include "telemetry/telemetry.h"
#include "verifier/verifier.h"

using namespace hq;

namespace {

/** The original single-shot demo: manual context, 3 messages. */
int
runOneShot(XprocChannel &channel)
{
    const pid_t child = fork();
    if (child == 0) {
        // ----- monitored process ------------------------------------
        // Define a pointer, "use" it legitimately, then get exploited:
        // the attacker overwrites the in-memory value, and the next
        // check ships the corrupt value as evidence.
        channel.send(Message(Opcode::PointerDefine, 0x1000, 0xAAAA));
        channel.send(Message(Opcode::PointerCheck, 0x1000, 0xAAAA));
        channel.send(Message(Opcode::PointerCheck, 0x1000, 0xBADBAD));
        channel.send(Message(Opcode::Syscall, 59));
        _exit(0);
    }

    // ----- verifier process ------------------------------------------
    PointerIntegrityContext context(static_cast<Pid>(child));
    std::uint64_t processed = 0;
    std::uint64_t violations = 0;
    bool saw_syscall = false;
    while (!saw_syscall) {
        Message message;
        if (!channel.tryRecv(message))
            continue;
        ++processed;
        if (!context.handleMessage(message).isOk())
            ++violations;
        saw_syscall = message.op == Opcode::Syscall;
    }
    int wstatus = 0;
    waitpid(child, &wstatus, 0);

    std::printf("cross-process HerQules demo\n");
    std::printf("  child pid %d, messages processed %llu, violations "
                "%llu\n",
                child, static_cast<unsigned long long>(processed),
                static_cast<unsigned long long>(violations));
    std::printf("  -> %s\n",
                violations == 1
                    ? "corruption detected across a real process "
                      "boundary"
                    : "UNEXPECTED RESULT");
    return violations == 1 ? 0 : 1;
}

/**
 * Streaming mode: a full parent-side verifier pipeline processing a
 * sustained message stream from the forked child, so the statsboard,
 * lag histograms, and event log have live data to show.
 */
int
runStreaming(XprocChannel &channel, long duration_secs,
             std::size_t num_shards, WireFormat format,
             bool health_enabled, std::size_t spec_window,
             bool proactive_acks, bool ifc_enabled)
{
    if (format != WireFormat::V1 && !channel.negotiateFormat(format)) {
        std::fprintf(stderr, "channel refused wire format %s\n",
                     wireFormatName(format));
        return 1;
    }
    const bool chaos = faultinject::armed();
    if (chaos) {
        // The audit needs the child's injected counts and child-side
        // detector deltas (the parent only sees its own registry).
        // A pipe carries the report back across the fork boundary.
        channel.setSendTimeout(std::chrono::seconds(2));
    }
    int report_pipe[2] = {-1, -1};
    if (chaos && pipe(report_pipe) != 0) {
        std::perror("pipe");
        return 1;
    }

    const pid_t child = fork();
    if (child == 0) {
        // ----- monitored process ------------------------------------
        // Steady pointer-integrity traffic: define once, check in
        // bursts, yield between bursts so the run lasts the requested
        // wall time instead of saturating the ring.
        if (chaos)
            close(report_pipe[0]);
        bool send_ok =
            channel.send(Message(Opcode::PointerDefine, 0x1000, 0xAAAA))
                .isOk();
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::seconds(duration_secs);
        Message burst[64];
        for (auto &message : burst)
            message = Message(Opcode::PointerCheck, 0x1000, 0xAAAA);
        if (ifc_enabled) {
            // Live label traffic rides every burst so faults land while
            // the IFC table is hot: rebind a secret source, propagate it
            // one hop, and sink-check a facet the flow does NOT carry
            // (violation-free in a fault-free run). Drops here are
            // caught by the sequence check, corruption by the CRCs.
            for (std::size_t i = 0; i < 64; i += 4) {
                burst[i + 1] = Message(Opcode::LabelDef, 0x2000,
                                       label::kSecret);
                burst[i + 2] = Message(Opcode::LabelJoin, 0x2000, 0x2008);
                burst[i + 3] = Message(Opcode::LabelCheck, 0x2008,
                                       label::kTainted);
            }
        }
        while (send_ok && std::chrono::steady_clock::now() < deadline) {
            // sendBatch exercises the real batched transmit: a loop of
            // stamped sends on v1, whole frames on a v2 channel.
            send_ok = channel.sendBatch(burst, 64).isOk();
            usleep(1000);
        }
        // Finale: the "exploit" corrupts the pointer, then a syscall
        // forces synchronization so nothing is left in flight. Under
        // chaos a send may fail closed instead; that is a legitimate
        // outcome the parent distinguishes via the exit code.
        if (send_ok) {
            if (ifc_enabled) {
                // The data-only leak: the secret flows to an address
                // whose sink forbids it. One guaranteed IFC violation.
                channel.send(
                    Message(Opcode::LabelJoin, 0x2000, 0x4000));
                channel.send(Message(Opcode::LabelCheck, 0x4000,
                                     label::kSecret));
            }
            channel.send(Message(Opcode::PointerCheck, 0x1000, 0xBADBAD));
            channel.send(Message(Opcode::Syscall, 59));
        }
        if (chaos) {
            const std::string report =
                faultinject::exportCrossProcessReport();
            ssize_t ignored =
                write(report_pipe[1], report.data(), report.size());
            (void)ignored;
            close(report_pipe[1]);
        }
        _exit(send_ok ? 0 : 3);
    }

    // ----- verifier process ------------------------------------------
    const Pid pid = static_cast<Pid>(child);
    KernelModule::Config kconfig;
    kconfig.speculation_window = spec_window;
    KernelModule kernel(kconfig);
    std::shared_ptr<Policy> policy;
    if (ifc_enabled) {
        auto multi = std::make_shared<MultiPolicy>();
        multi->addPolicy(std::make_unique<PointerIntegrityPolicy>());
        multi->addPolicy(std::make_unique<IfcPolicy>());
        policy = multi;
    } else {
        policy = std::make_shared<PointerIntegrityPolicy>();
    }
    Verifier::Config config;
    config.kill_on_violation = false; // count, don't kill (§5 style)
    config.num_shards = num_shards;
    config.proactive_acks = proactive_acks;
    if (health_enabled) {
        // Snappy watchdog so a short --duration run still publishes
        // per-shard health/heartbeat series into the statsboard.
        config.health_enabled = true;
        config.health.interval = std::chrono::milliseconds(50);
    }
    if (chaos) {
        // Chaos runs exercise the full detection surface: sequence
        // gaps flag drops/dups, the CRC flags in-flight corruption.
        config.check_sequence = true;
        config.check_crc = true;
    }
    Verifier verifier(kernel, policy, config);
    kernel.enableProcess(pid);
    verifier.attachChannel(&channel, pid);
    verifier.start();

    std::string child_report;
    if (chaos) {
        close(report_pipe[1]);
        char buf[4096];
        ssize_t n;
        while ((n = read(report_pipe[0], buf, sizeof(buf))) > 0)
            child_report.append(buf, static_cast<std::size_t>(n));
        close(report_pipe[0]);
    }
    int wstatus = 0;
    waitpid(child, &wstatus, 0);
    // Drain whatever the child left in the ring before stopping.
    verifier.stop();
    kernel.exitProcess(pid);

    const VerifierProcessStats stats = verifier.statsFor(pid);
    std::printf("cross-process HerQules demo (streaming %lds, %zu "
                "shard%s, wire %s)\n",
                duration_secs, verifier.numShards(),
                verifier.numShards() == 1 ? "" : "s",
                wireFormatName(channel.format()));
    std::printf("  child pid %d, messages %llu, violations %llu, "
                "syscall acks %llu\n",
                child,
                static_cast<unsigned long long>(stats.messages),
                static_cast<unsigned long long>(stats.violations),
                static_cast<unsigned long long>(stats.syscall_acks));

    if (!chaos) {
        // --ifc adds exactly one label-flow violation (the secret
        // reaching the forbidding sink) on top of the pointer one.
        const std::uint64_t expected = ifc_enabled ? 2 : 1;
        std::printf("  -> %s\n",
                    stats.violations == expected
                        ? "corruption detected across a real process "
                          "boundary"
                        : "UNEXPECTED RESULT");
        return stats.violations == expected ? 0 : 1;
    }

    // ----- chaos verdict ---------------------------------------------
    // Under injected faults the exact violation count is not meaningful
    // (every drop/dup/corruption adds one); what must hold is that no
    // injected fault class went undetected and the child either
    // finished or failed *closed*.
    const bool child_ok =
        WIFEXITED(wstatus) &&
        (WEXITSTATUS(wstatus) == 0 || WEXITSTATUS(wstatus) == 3);
    if (!faultinject::absorbCrossProcessReport(child_report)) {
        std::printf("  -> CHAOS FAILURE: child fault report missing or "
                    "malformed\n");
        return 1;
    }
    const int silent = faultinject::emitAuditRecords();
    std::printf("  chaos: [%s]\n",
                faultinject::FaultPlan::instance().describe().c_str());
    std::printf("  chaos: child exit %s, silent accepts %d\n",
                child_ok ? "clean/fail-closed" : "UNEXPECTED", silent);
    std::printf("  -> %s\n", (silent == 0 && child_ok)
                                 ? "every injected fault detected or "
                                   "safely denied"
                                 : "CHAOS FAILURE: silent acceptance");
    return (silent == 0 && child_ok) ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::handleBenchArgs(argc, argv);
    faultinject::handleArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    long duration_secs = 0;
    std::size_t num_shards = 1; // single child; >1 exercises routing
    WireFormat format = WireFormat::V1;
    bool health_enabled = false;
    std::size_t spec_window = 0;
    bool proactive_acks = false;
    bool ifc_enabled = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--duration=", 11) == 0)
            duration_secs = std::strtol(argv[i] + 11, nullptr, 10);
        else if (std::strncmp(argv[i], "--shards=", 9) == 0)
            num_shards = static_cast<std::size_t>(
                std::strtoul(argv[i] + 9, nullptr, 10));
        else if (std::strcmp(argv[i], "--format=v2") == 0)
            format = WireFormat::V2;
        else if (std::strcmp(argv[i], "--format=v1") == 0)
            format = WireFormat::V1;
        else if (std::strcmp(argv[i], "--health") == 0)
            health_enabled = true;
        else if (std::strncmp(argv[i], "--spec-window=", 14) == 0)
            spec_window = static_cast<std::size_t>(
                std::strtoul(argv[i] + 14, nullptr, 10));
        else if (std::strcmp(argv[i], "--proactive") == 0)
            proactive_acks = true;
        else if (std::strcmp(argv[i], "--ifc") == 0)
            ifc_enabled = true;
    }
    if (ifc_enabled && duration_secs <= 0) {
        // Label traffic only flows in the streaming pipeline; the
        // one-shot demo's manual context is CFI-only.
        std::fprintf(stderr, "--ifc: using streaming mode (2s)\n");
        duration_secs = 2;
    }
    if (faultinject::armed() && duration_secs <= 0) {
        // The one-shot demo spins until it sees the Syscall message,
        // which an injected drop could lose forever; chaos runs use the
        // streaming pipeline (send timeouts, audit, bounded duration).
        std::fprintf(stderr,
                     "faultinject armed: using streaming mode (2s)\n");
        duration_secs = 2;
    }
    if (format != WireFormat::V1 && duration_secs <= 0) {
        // The one-shot demo's manual tryRecv loop speaks v1 only; the
        // framed format needs the verifier pipeline to decode.
        std::fprintf(stderr, "wire format %s: using streaming mode "
                             "(2s)\n",
                     wireFormatName(format));
        duration_secs = 2;
    }

    XprocChannel channel(1 << 10);
    if (!channel.valid()) {
        std::printf("shared mapping unavailable; skipping\n");
        return 0;
    }
    return duration_secs > 0
               ? runStreaming(channel, duration_secs, num_shards, format,
                              health_enabled, spec_window,
                              proactive_acks, ifc_enabled)
               : runOneShot(channel);
}
