/**
 * @file
 * Inspect what the compiler pipelines actually do: dumps a small
 * program's IR before instrumentation and after each design's pipeline,
 * so the per-design mechanisms (messages vs. MACs vs. safe-store
 * redirection vs. type checks) are visible side by side.
 *
 * Build: cmake --build build && ./build/examples/inspect_ir [design]
 *   design ∈ {baseline, hq-sfestk, hq-retptr, clang, ccfi, cpi, all}
 */

#include <cstdio>
#include <cstring>

#include "cfi/design.h"
#include "common/log.h"
#include "ir/builder.h"
#include "ir/printer.h"

using namespace hq;
using namespace hq::ir;

namespace {

Module
sampleProgram()
{
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();

    builder.beginFunction("handler", 1, sig);
    builder.ret(builder.arith(ArithKind::Add, builder.param(0),
                              builder.constInt(1)));
    builder.endFunction();

    builder.beginFunction("main");
    const int slot = builder.allocaOp(8, TypeRef::funcPtr(sig));
    const int fp = builder.funcAddr(0, sig);
    builder.store(slot, fp, TypeRef::funcPtr(sig));
    builder.callDirect(0, {slot});
    const int loaded = builder.load(slot, TypeRef::funcPtr(sig));
    const int x = builder.constInt(41);
    const int out = builder.callIndirect(loaded, {x}, sig);
    builder.syscall(1);
    builder.ret(out);
    builder.endFunction();
    module.entry_function = 1;
    return module;
}

void
dumpFor(CfiDesign design)
{
    Module module = sampleProgram();
    const Status status = instrumentModule(module, design);
    if (!status.isOk()) {
        std::printf("instrumentation failed: %s\n",
                    status.toString().c_str());
        return;
    }
    std::printf("----- after %s pipeline -----\n%s\n",
                designInfo(design).name.c_str(),
                printModule(module).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Error);
    const char *which = argc > 1 ? argv[1] : "hq-sfestk";

    std::printf("----- source program -----\n%s\n",
                printModule(sampleProgram()).c_str());

    struct Option
    {
        const char *name;
        CfiDesign design;
    };
    const Option options[] = {
        {"baseline", CfiDesign::Baseline},
        {"hq-sfestk", CfiDesign::HqSfeStk},
        {"hq-retptr", CfiDesign::HqRetPtr},
        {"clang", CfiDesign::ClangCfi},
        {"ccfi", CfiDesign::Ccfi},
        {"cpi", CfiDesign::Cpi},
    };
    for (const Option &option : options) {
        if (std::strcmp(which, "all") == 0 ||
            std::strcmp(which, option.name) == 0)
            dumpFor(option.design);
    }
    return 0;
}
