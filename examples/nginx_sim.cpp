/**
 * @file
 * The NGINX-like server workload: an event loop dispatching requests
 * through function-pointer module handlers with a high system-call
 * rate. Prints request throughput under the baseline and each HQ-CFI
 * variant — the NGINX bars of Figures 3 and 5.
 *
 * Build: cmake --build build && ./build/examples/nginx_sim
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "faultinject/fault.h"
#include "telemetry/telemetry.h"
#include "workloads/runner.h"

using namespace hq;

int
main(int argc, char **argv)
{
    telemetry::handleBenchArgs(argc, argv);
    faultinject::handleArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    double scale = 1.0;
    std::size_t num_shards = 1;
    bool health_enabled = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--shards=", 9) == 0)
            num_shards = static_cast<std::size_t>(
                std::strtoul(argv[i] + 9, nullptr, 10));
        else if (std::strcmp(argv[i], "--health") == 0)
            health_enabled = true;
        else if (argv[i][0] != '-')
            scale = std::atof(argv[i]);
    }

    RunnerOptions options;
    options.scale = scale;
    options.num_shards = num_shards;
    options.health_enabled = health_enabled;
    WorkloadRunner runner(options);
    const SpecProfile &nginx = specProfile("nginx");

    std::printf("Simulated NGINX: request throughput under CFI designs "
                "(scale %.2f, %zu shard%s)\n\n",
                scale, num_shards, num_shards == 1 ? "" : "s");
    std::printf("%-18s %14s %12s %10s\n", "Design", "requests/s",
                "messages", "syscalls");

    for (CfiDesign design :
         {CfiDesign::Baseline, CfiDesign::HqSfeStk, CfiDesign::HqRetPtr,
          CfiDesign::ClangCfi, CfiDesign::Cpi}) {
        const BenchmarkOutcome outcome = runner.run(nginx, design);
        const double requests =
            static_cast<double>(nginx.work_items) * scale;
        std::printf("%-18s %14.0f %12llu %10llu\n",
                    designInfo(design).name.c_str(),
                    outcome.seconds > 0 ? requests / outcome.seconds : 0,
                    static_cast<unsigned long long>(outcome.messages_sent),
                    static_cast<unsigned long long>(outcome.syscalls));
    }

    std::printf("\nEach request dispatches through writable module "
                "handler pointers and\nends in a system call, so both "
                "the pointer checks and the System-Call\n"
                "synchronization are on the hot path.\n");

    if (faultinject::armed()) {
        // Single-process workload: faults and detectors share one
        // registry, so the silent-accept audit runs directly.
        const int silent = faultinject::emitAuditRecords();
        std::printf("\nchaos: [%s]\n",
                    faultinject::FaultPlan::instance().describe().c_str());
        std::printf("chaos: silent accepts %d -> %s\n", silent,
                    silent == 0 ? "every injected fault detected or "
                                  "safely denied"
                                : "CHAOS FAILURE");
        return silent == 0 ? 0 : 1;
    }
    return 0;
}
