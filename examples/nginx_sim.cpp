/**
 * @file
 * The NGINX-like server workload: an event loop dispatching requests
 * through function-pointer module handlers with a high system-call
 * rate. Prints request throughput under the baseline and each HQ-CFI
 * variant — the NGINX bars of Figures 3 and 5.
 *
 * Gating flags exercise the async-ack pipeline (DESIGN.md §13):
 *   --gating=strict|proactive|spec   kernel gate mode for the table run
 *   --spec-window=K                  speculation window for spec mode
 *   --elide-ro                       elide read-only syscalls (§5.3.3)
 *   --latency-sweep[=FILE]           p50/p99 syscall-pause sweep across
 *                                    strict/proactive/spec-K/elide-ro,
 *                                    written as hq-latency-bench/1 JSON
 *                                    (scripts/analyze_telemetry.py
 *                                    latency gates the p99 speedup)
 *
 * Build: cmake --build build && ./build/examples/nginx_sim
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "faultinject/fault.h"
#include "telemetry/telemetry.h"
#include "workloads/runner.h"

using namespace hq;

namespace {

struct GatingMode
{
    const char *name;
    std::size_t speculation_window;
    bool proactive_acks;
    bool elide_readonly;
};

struct ModeResult
{
    double p50_ns = 0.0;
    double p99_ns = 0.0;
    std::uint64_t pause_samples = 0;
    std::uint64_t acks_batched = 0;
    std::uint64_t prearms_granted = 0;
    double requests_per_sec = 0.0;
    BenchmarkOutcome outcome;
};

ModeResult
runGatingMode(const GatingMode &mode, double scale, std::size_t num_shards)
{
    // Fresh metric values per mode so the pause histogram holds exactly
    // this mode's samples (registrations survive the reset).
    telemetry::Registry::instance().reset();

    RunnerOptions options;
    options.scale = scale;
    options.num_shards = num_shards;
    options.speculation_window = mode.speculation_window;
    options.proactive_acks = mode.proactive_acks;
    options.elide_readonly = mode.elide_readonly;
    WorkloadRunner runner(options);
    const SpecProfile &nginx = specProfile("nginx");

    ModeResult result;
    result.outcome = runner.run(nginx, CfiDesign::HqRetPtr);
    const auto &hist = telemetry::Registry::instance().histogram(
        "kernel.syscall_pause_ns");
    result.p50_ns = hist.percentile(50);
    result.p99_ns = hist.percentile(99);
    result.pause_samples = hist.count();
    result.acks_batched = telemetry::Registry::instance()
                              .counter("verifier.acks_batched")
                              .value();
    result.prearms_granted = telemetry::Registry::instance()
                                 .counter("verifier.proactive_prearms")
                                 .value();
    const double requests = static_cast<double>(nginx.work_items) * scale;
    result.requests_per_sec = result.outcome.seconds > 0
                                  ? requests / result.outcome.seconds
                                  : 0.0;
    return result;
}

int
runLatencySweep(double scale, std::size_t num_shards,
                std::size_t spec_window, const char *json_path)
{
    // The sweep needs the pause histogram regardless of --telemetry-out.
    telemetry::setEnabled(true);

    const GatingMode modes[] = {
        {"strict", 0, false, false},
        {"proactive", 0, true, false},
        {"spec", spec_window, false, false},
        // nginx's request loop issues write-like syscalls only, so
        // elide-ro reports strict-equivalent numbers here; the mode is
        // swept so read-only-heavy profiles can reuse this harness.
        {"elide_ro", 0, false, true},
    };

    std::printf("=== Gating latency sweep (scale %.2f, %zu shard%s, "
                "spec window %zu) ===\n",
                scale, num_shards, num_shards == 1 ? "" : "s",
                spec_window);
    std::printf("%-10s %10s %10s %10s %12s %8s %8s %8s %8s\n", "mode",
                "p50(ns)", "p99(ns)", "samples", "requests/s", "waits",
                "spec", "prearm", "granted");

    ModeResult results[4];
    bool ok = true;
    for (int i = 0; i < 4; ++i) {
        results[i] = runGatingMode(modes[i], scale, num_shards);
        const ModeResult &r = results[i];
        // Any violation/kill on this benign workload is a failed run.
        if (!r.outcome.ok || r.pause_samples == 0)
            ok = false;
        std::printf("%-10s %10.0f %10.0f %10llu %12.0f %8llu %8llu "
                    "%8llu %8llu\n",
                    modes[i].name, r.p50_ns, r.p99_ns,
                    static_cast<unsigned long long>(r.pause_samples),
                    r.requests_per_sec,
                    static_cast<unsigned long long>(
                        r.outcome.syscall_waits),
                    static_cast<unsigned long long>(
                        r.outcome.spec_syscalls),
                    static_cast<unsigned long long>(
                        r.outcome.pre_arm_hits),
                    static_cast<unsigned long long>(r.prearms_granted));
    }

    if (json_path != nullptr && json_path[0] != '\0') {
        std::FILE *out = std::fopen(json_path, "w");
        if (out == nullptr) {
            std::fprintf(stderr, "nginx_sim: cannot write %s\n",
                         json_path);
            return 1;
        }
        std::fprintf(out,
                     "{\n  \"schema\": \"hq-latency-bench/1\",\n"
                     "  \"scale\": %.4f,\n  \"num_shards\": %zu,\n"
                     "  \"spec_window\": %zu,\n  \"modes\": {\n",
                     scale, num_shards, spec_window);
        for (int i = 0; i < 4; ++i) {
            const ModeResult &r = results[i];
            std::fprintf(
                out,
                "    \"%s\": {\"p50_ns\": %.1f, \"p99_ns\": %.1f, "
                "\"pause_samples\": %llu, \"requests_per_sec\": %.1f, "
                "\"syscalls\": %llu, \"waits\": %llu, "
                "\"spec_syscalls\": %llu, \"pre_arm_hits\": %llu, "
                "\"max_spec_depth\": %llu}%s\n",
                modes[i].name, r.p50_ns, r.p99_ns,
                static_cast<unsigned long long>(r.pause_samples),
                r.requests_per_sec,
                static_cast<unsigned long long>(r.outcome.syscalls),
                static_cast<unsigned long long>(r.outcome.syscall_waits),
                static_cast<unsigned long long>(r.outcome.spec_syscalls),
                static_cast<unsigned long long>(r.outcome.pre_arm_hits),
                static_cast<unsigned long long>(
                    r.outcome.max_spec_depth),
                i + 1 < 4 ? "," : "");
        }
        std::fprintf(out, "  },\n  \"ok\": %s\n}\n",
                     ok ? "true" : "false");
        std::fclose(out);
        std::printf("\nwrote %s\n", json_path);
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::handleBenchArgs(argc, argv);
    faultinject::handleArgs(argc, argv);
    setLogLevel(LogLevel::Error);

    double scale = 1.0;
    std::size_t num_shards = 1;
    bool health_enabled = false;
    bool elide_ro = false;
    std::size_t spec_window = 4;
    const char *gating = "strict";
    bool latency_sweep = false;
    const char *sweep_json = "";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--shards=", 9) == 0)
            num_shards = static_cast<std::size_t>(
                std::strtoul(argv[i] + 9, nullptr, 10));
        else if (std::strcmp(argv[i], "--health") == 0)
            health_enabled = true;
        else if (std::strcmp(argv[i], "--elide-ro") == 0)
            elide_ro = true;
        else if (std::strncmp(argv[i], "--gating=", 9) == 0)
            gating = argv[i] + 9;
        else if (std::strncmp(argv[i], "--spec-window=", 14) == 0)
            spec_window = static_cast<std::size_t>(
                std::strtoul(argv[i] + 14, nullptr, 10));
        else if (std::strcmp(argv[i], "--latency-sweep") == 0)
            latency_sweep = true;
        else if (std::strncmp(argv[i], "--latency-sweep=", 16) == 0) {
            latency_sweep = true;
            sweep_json = argv[i] + 16;
        } else if (argv[i][0] != '-')
            scale = std::atof(argv[i]);
    }

    if (latency_sweep)
        return runLatencySweep(scale, num_shards, spec_window,
                               sweep_json);

    RunnerOptions options;
    options.scale = scale;
    options.num_shards = num_shards;
    options.health_enabled = health_enabled;
    options.elide_readonly = elide_ro;
    if (std::strcmp(gating, "proactive") == 0)
        options.proactive_acks = true;
    else if (std::strcmp(gating, "spec") == 0)
        options.speculation_window = spec_window;
    else if (std::strcmp(gating, "strict") != 0) {
        std::fprintf(stderr,
                     "nginx_sim: unknown --gating=%s "
                     "(strict|proactive|spec)\n",
                     gating);
        return 2;
    }
    WorkloadRunner runner(options);
    const SpecProfile &nginx = specProfile("nginx");

    std::printf("Simulated NGINX: request throughput under CFI designs "
                "(scale %.2f, %zu shard%s, gating %s)\n\n",
                scale, num_shards, num_shards == 1 ? "" : "s", gating);
    std::printf("%-18s %14s %12s %10s\n", "Design", "requests/s",
                "messages", "syscalls");

    for (CfiDesign design :
         {CfiDesign::Baseline, CfiDesign::HqSfeStk, CfiDesign::HqRetPtr,
          CfiDesign::ClangCfi, CfiDesign::Cpi}) {
        const BenchmarkOutcome outcome = runner.run(nginx, design);
        const double requests =
            static_cast<double>(nginx.work_items) * scale;
        std::printf("%-18s %14.0f %12llu %10llu\n",
                    designInfo(design).name.c_str(),
                    outcome.seconds > 0 ? requests / outcome.seconds : 0,
                    static_cast<unsigned long long>(outcome.messages_sent),
                    static_cast<unsigned long long>(outcome.syscalls));
    }

    std::printf("\nEach request dispatches through writable module "
                "handler pointers and\nends in a system call, so both "
                "the pointer checks and the System-Call\n"
                "synchronization are on the hot path.\n");

    if (faultinject::armed()) {
        // Single-process workload: faults and detectors share one
        // registry, so the silent-accept audit runs directly.
        const int silent = faultinject::emitAuditRecords();
        std::printf("\nchaos: [%s]\n",
                    faultinject::FaultPlan::instance().describe().c_str());
        std::printf("chaos: silent accepts %d -> %s\n", silent,
                    silent == 0 ? "every injected fault detected or "
                                  "safely denied"
                                : "CHAOS FAILURE");
        return silent == 0 ? 0 : 1;
    }
    return 0;
}
