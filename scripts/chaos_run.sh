#!/usr/bin/env bash
# Chaos sweep: run the cross-process demo under a battery of fault
# specs and fail if any injected fault class is silently accepted.
#
# Every spec drives build/examples/cross_process in streaming mode with
# sequence + CRC checking on. The binary itself audits each run (child
# injections folded into the parent via the fault report, see
# docs/fault_injection.md) and exits non-zero on a silent accept; this
# script additionally greps the per-run event logs so a silent_accept
# record can never slip through a wrong exit code, and schema-checks
# the records it produced.
#
# Usage: scripts/chaos_run.sh [DURATION_SECS] [OUT_DIR]
#   DURATION_SECS  per-spec run length (default 2)
#   OUT_DIR        where event logs land (default bench/results/chaos)
#   HQ_CHAOS_BIN   cross_process binary (default build/examples/...),
#                  e.g. a sanitizer tree's examples/cross_process
set -u -o pipefail

DURATION="${1:-2}"
OUT_DIR="${2:-bench/results/chaos}"
BIN="${HQ_CHAOS_BIN:-build/examples/cross_process}"

if [[ ! -x "$BIN" ]]; then
    echo "chaos_run: $BIN not built (cmake --build build)" >&2
    exit 2
fi
mkdir -p "$OUT_DIR"

# One entry per fault class worth sweeping, plus a combined run. The
# latency-only sites (transport_delay, verifier_slow_poll) must perturb
# timing without ever costing a message; the lossy sites must each be
# caught by a detector (sequence gap, CRC, back-pressure counters).
SPECS=(
    "seed=7,ring_drop:0.01"
    "seed=7,ring_dup:0.01"
    "seed=7,ring_corrupt:0.005"
    "seed=7,ring_stall:1:20000:256"
    "seed=7,transport_delay:0.02"
    "seed=7,verifier_slow_poll:0.05"
    "seed=7,ring_drop:0.005,ring_corrupt:0.002,transport_delay:0.01"
)

# The v2 wire format moves integrity from per-message CRCs to frame
# CRCs, so its lossy sites differ: whole frames are dropped (ring_drop
# fires per frame in the framed send) or corrupted (frame_corrupt flips
# a bit in an encoded frame — header or body, both must be caught).
# ring_dup/ring_corrupt are per-message v1 sites that cannot fire on
# the framed path, so the v2 list swaps them for frame_corrupt.
SPECS_V2=(
    "seed=7,ring_drop:0.01"
    "seed=7,frame_corrupt:0.005"
    "seed=7,ring_stall:1:20000:256"
    "seed=7,transport_delay:0.02"
    "seed=7,verifier_slow_poll:0.05"
    "seed=7,ring_drop:0.005,frame_corrupt:0.002,transport_delay:0.01"
)

# Async-ack legs: the same lossy/latency classes with the speculation
# window open and proactive pre-arm on, so faults land while acks are
# batched and the gate is pre-armed. Detection must be unchanged —
# speculation bounds WHEN enforcement lands, never WHETHER.
SPECS_GATING=(
    "seed=7,ring_drop:0.01"
    "seed=7,ring_corrupt:0.005"
    "seed=7,transport_delay:0.02"
    "seed=7,ring_drop:0.005,ring_corrupt:0.002,transport_delay:0.01"
)
GATING_FLAGS=(--spec-window=4 --proactive)

# IFC legs: the same fault classes with the taint/IFC label policy
# composed in and live label traffic in every burst (--ifc). A dropped
# LabelDef/LabelJoin is a lost security fact, so these legs hold label
# ops to the identical fail-closed bar as pointer ops: ring_drop must
# surface as sequence gaps (v1, labels live) and frame_corrupt as a
# rejected frame (v2) — zero silent accepts either way.
SPECS_IFC_V1=(
    "seed=7,ring_drop:0.01"
)
SPECS_IFC_V2=(
    "seed=7,frame_corrupt:0.005"
)

failures=0
run=0
total_runs=$(( ${#SPECS[@]} + ${#SPECS_V2[@]} + ${#SPECS_GATING[@]} \
               + ${#SPECS_IFC_V1[@]} + ${#SPECS_IFC_V2[@]} ))
run_spec() {
    local format="$1" spec="$2"
    shift 2
    run=$((run + 1))
    local log="$OUT_DIR/chaos_${run}.events.jsonl"
    local flight="$OUT_DIR/chaos_${run}.flight.jsonl"
    echo "=== chaos run $run/$total_runs ($format$( (($#)) && echo " $*" )): --fault-spec=$spec"
    # Health watchdog + flight recorder ride every run: a chaos sweep is
    # exactly when a wedged shard or fault storm should leave evidence,
    # and the per-run flight dumps become CI artifacts.
    if ! "$BIN" --duration="$DURATION" --format="$format" \
            --fault-spec="$spec" --event-log="$log" \
            --health --flight-recorder="$flight" "$@"; then
        echo "chaos_run: FAILED (exit) format=$format spec=$spec" >&2
        failures=$((failures + 1))
        return
    fi
    if [[ -f "$log" ]] && grep -q '"type":"silent_accept"' "$log"; then
        echo "chaos_run: FAILED (silent_accept record) format=$format" \
             "spec=$spec" >&2
        grep '"type":"silent_accept"' "$log" >&2
        failures=$((failures + 1))
    fi
}

for spec in "${SPECS[@]}"; do
    run_spec v1 "$spec"
done
for spec in "${SPECS_V2[@]}"; do
    run_spec v2 "$spec"
done
for spec in "${SPECS_GATING[@]}"; do
    run_spec v1 "$spec" "${GATING_FLAGS[@]}"
done
for spec in "${SPECS_IFC_V1[@]}"; do
    run_spec v1 "$spec" --ifc
done
for spec in "${SPECS_IFC_V2[@]}"; do
    run_spec v2 "$spec" --ifc
done

# Schema-check whatever the sweep wrote — event logs (fixed key order,
# known record types, now including health_change/flight_dump) and the
# flight-recorder dumps (flight_header record counts must match).
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
shopt -s nullglob
jsonl_files=("$OUT_DIR"/chaos_*.events.jsonl "$OUT_DIR"/chaos_*.flight.jsonl)
shopt -u nullglob
if [[ ${#jsonl_files[@]} -gt 0 ]]; then
    python3 "$SCRIPT_DIR/analyze_telemetry.py" schema "${jsonl_files[@]}"
    schema_rc=$?
else
    echo "chaos_run: no JSONL streams written" >&2
    schema_rc=1
fi

if [[ $failures -gt 0 || $schema_rc -ne 0 ]]; then
    echo "chaos_run: $failures failing spec(s), schema rc=$schema_rc" >&2
    exit 1
fi
echo "chaos_run: all $total_runs specs (v1+v2+spec-K+ifc) detected or safely denied"
