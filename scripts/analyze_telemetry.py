#!/usr/bin/env python3
"""Analyze HerQules telemetry dumps and structured event logs.

Five modes:

  report FILE...
      Human-readable verification-lag / latency report for one or more
      `--telemetry-out` JSON dumps (and `--event-log` JSONL files, whose
      records are tallied by type).

  ring RAW.json [-o BENCH_ring.json] [--min-speedup X]
      Post-process a `ring_throughput --json=RAW.json` result: compute
      the v2/v1 verified-pipeline speedup and write BENCH_ring.json
      (schema hq-ring-bench-summary/1). Exits non-zero when the raw run
      failed or the speedup falls below --min-speedup (default 0 = no
      gate; CI passes 1.5).

  latency RAW.json [-o BENCH_latency.json] [--min-p99-speedup X]
      Post-process a `nginx_sim --latency-sweep=RAW.json` result:
      compute the strict/mode p99 syscall-pause speedups and write
      BENCH_latency.json (schema hq-latency-bench-summary/1). Exits
      non-zero when the raw sweep failed or either the proactive or
      spec speedup falls below --min-p99-speedup (default 0 = no gate;
      CI passes 1.2 on the default job).

  schema FILE...
      Strict JSONL validation for event logs and flight-recorder dumps.
      Event records must use the fixed 11-key order and a known type;
      flight dumps must interleave `flight_header` lines with exactly
      the number of `flight_record` lines each header declares. Exits
      non-zero on the first malformed line (CI chaos gate).

  summary DIR [-o OUT.json]
      Scan DIR for `*.telemetry.json` and `*.events.jsonl` and write one
      machine-readable summary (default BENCH_summary.json in DIR):

      {
        "schema": "hq-bench-summary/1",
        "benches": {
          "<name>": {
            "messages": N, "violations": N,
            "lag_ns": {"count": N, "p50": x, "p90": x, "p99": x,
                        "mean": x, "max": x},
            "msg_latency_ns": {...},
            "lag_slo_breaches": N, "lag_stamp_dropped": N,
            "events": {"violation": N, "seq_gap": N, ...}
          }
        }
      }

Only the standard library is used.
"""

import argparse
import json
import os
import sys


LAG_HIST = "verifier.lag_ns"
LATENCY_HIST = "verifier.msg_latency_ns"
HIST_FIELDS = ("count", "mean", "min", "max", "p50", "p90", "p99")


def load_dump(path):
    with open(path) as fh:
        return json.load(fh)


def load_events(path):
    """Parse a JSONL event log into a list of dicts (bad lines fatal)."""
    records = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                sys.exit(f"{path}:{lineno}: bad JSONL record: {exc}")
    return records


def hist_summary(dump, name):
    hist = dump.get("metrics", {}).get("histograms", {}).get(name)
    if not hist or not hist.get("count"):
        return None
    return {field: hist[field] for field in HIST_FIELDS if field in hist}


def counter(dump, name):
    return dump.get("metrics", {}).get("counters", {}).get(name, 0)


def event_tally(records):
    tally = {}
    for record in records:
        kind = record.get("type", "unknown")
        tally[kind] = tally.get(kind, 0) + 1
    return tally


def fmt_ns(value):
    if value < 1e3:
        return f"{value:.0f}ns"
    if value < 1e6:
        return f"{value / 1e3:.1f}us"
    if value < 1e9:
        return f"{value / 1e6:.2f}ms"
    return f"{value / 1e9:.2f}s"


def cmd_report(args):
    for path in args.files:
        if path.endswith(".jsonl"):
            records = load_events(path)
            print(f"{path}: {len(records)} events")
            for kind, count in sorted(event_tally(records).items()):
                print(f"  {kind:16s} {count}")
            lags = [r["lag_ns"] for r in records if r.get("lag_ns")]
            if lags:
                lags.sort()
                print(f"  event lag: median {fmt_ns(lags[len(lags) // 2])}"
                      f"  max {fmt_ns(lags[-1])}")
            continue

        dump = load_dump(path)
        print(f"{path}:")
        for name in (LAG_HIST, LATENCY_HIST, "kernel.syscall_pause_ns"):
            summary = hist_summary(dump, name)
            if summary is None:
                continue
            print(f"  {name:28s} n={summary['count']:<10}"
                  f" p50 {fmt_ns(summary['p50'])}"
                  f"  p90 {fmt_ns(summary['p90'])}"
                  f"  p99 {fmt_ns(summary['p99'])}"
                  f"  max {fmt_ns(summary['max'])}")
        # Per-pid lag rows, if any.
        hists = dump.get("metrics", {}).get("histograms", {})
        for name in sorted(hists):
            if name.startswith(LAG_HIST + ".pid_"):
                summary = hist_summary(dump, name)
                print(f"  {name:28s} n={summary['count']:<10}"
                      f" p50 {fmt_ns(summary['p50'])}"
                      f"  p99 {fmt_ns(summary['p99'])}")
        breaches = counter(dump, "verifier.lag_slo_breaches")
        drops = counter(dump, "ipc.lag_stamp_dropped")
        print(f"  slo breaches {breaches}, stamp drops {drops}")
    return 0


def cmd_ring(args):
    raw = load_dump(args.raw)
    if raw.get("schema") != "hq-ring-bench/1":
        sys.exit(f"{args.raw}: not an hq-ring-bench/1 result")
    pipeline = raw.get("verified_pipeline", {})
    v1 = pipeline.get("v1", {}).get("mmsg_per_sec")
    v2 = pipeline.get("v2", {}).get("mmsg_per_sec")
    speedup = (v2 / v1) if v1 and v2 else None

    out = args.output or os.path.join(
        os.path.dirname(os.path.abspath(args.raw)), "BENCH_ring.json")
    summary = {
        "schema": "hq-ring-bench-summary/1",
        "capacity": raw.get("capacity"),
        "pipeline_messages": raw.get("pipeline_messages"),
        "crc_backend": raw.get("crc_backend"),
        "v1_mmsg_per_sec": v1,
        "v2_mmsg_per_sec": v2,
        "v2_over_v1_speedup": speedup,
        "raw_ok": bool(raw.get("ok")),
    }
    with open(out, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}: v1 {v1} Mmsg/s, v2 {v2} Mmsg/s, "
          f"speedup {speedup and round(speedup, 3)}")

    if not raw.get("ok"):
        sys.exit("ring bench reported a verification failure")
    if args.min_speedup and (speedup is None
                             or speedup < args.min_speedup):
        sys.exit(f"v2 speedup {speedup} below gate {args.min_speedup}")
    return 0


def cmd_latency(args):
    raw = load_dump(args.raw)
    if raw.get("schema") != "hq-latency-bench/1":
        sys.exit(f"{args.raw}: not an hq-latency-bench/1 result")
    modes = raw.get("modes", {})
    strict = modes.get("strict", {})
    strict_p99 = strict.get("p99_ns")

    def speedup(mode):
        p99 = modes.get(mode, {}).get("p99_ns")
        if not strict_p99 or not p99:
            return None
        return strict_p99 / p99

    gated = {mode: speedup(mode) for mode in ("proactive", "spec")}
    out = args.output or os.path.join(
        os.path.dirname(os.path.abspath(args.raw)), "BENCH_latency.json")
    summary = {
        "schema": "hq-latency-bench-summary/1",
        "scale": raw.get("scale"),
        "num_shards": raw.get("num_shards"),
        "spec_window": raw.get("spec_window"),
        "strict_p50_ns": strict.get("p50_ns"),
        "strict_p99_ns": strict_p99,
        "modes": {
            mode: {
                "p50_ns": stats.get("p50_ns"),
                "p99_ns": stats.get("p99_ns"),
                "pause_samples": stats.get("pause_samples"),
                "spec_syscalls": stats.get("spec_syscalls"),
                "pre_arm_hits": stats.get("pre_arm_hits"),
                "p99_speedup_vs_strict": speedup(mode),
            }
            for mode, stats in sorted(modes.items())
        },
        "raw_ok": bool(raw.get("ok")),
    }
    with open(out, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    shown = ", ".join(
        f"{mode} {ratio and round(ratio, 3)}x"
        for mode, ratio in gated.items())
    print(f"wrote {out}: strict p99 {strict_p99 and fmt_ns(strict_p99)}, "
          f"p99 speedups: {shown}")

    if not raw.get("ok"):
        sys.exit("latency sweep reported a failed run")
    if args.min_p99_speedup:
        for mode, ratio in gated.items():
            if ratio is None or ratio < args.min_p99_speedup:
                sys.exit(f"{mode} p99 speedup {ratio} below gate "
                         f"{args.min_p99_speedup}")
    return 0


# JSONL schemas, keyed by record type. Event records share one fixed
# key order (telemetry/event_log.cc); flight lines have their own
# (telemetry/flight_recorder.cc, shared by the signal-safe path).
EVENT_KEYS = ["type", "ts_wall_ms", "ts_ns", "pid", "shard", "policy",
              "op", "arg0", "arg1", "seq", "lag_ns", "reason"]
EVENT_KINDS = {"violation", "seq_gap", "epoch_timeout", "ring_drop",
               "corrupt_msg", "verifier_restart", "silent_accept",
               "health_change", "flight_dump", "spec_kill"}
FLIGHT_HEADER_KEYS = ["type", "trigger", "ts_wall_ms", "pid", "records"]
FLIGHT_RECORD_KEYS = ["type", "ts_ns", "thread", "seq", "subsystem",
                      "code", "pid", "shard", "arg0", "arg1"]


def cmd_schema(args):
    events = 0
    flight_records = 0
    flight_headers = 0
    for path in args.files:
        declared = 0   # records the last flight_header promised
        seen = 0       # flight_record lines seen since that header
        for lineno, line in enumerate(open(path), 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                sys.exit(f"{where}: bad JSONL: {exc}")
            kind = record.get("type")
            if kind == "flight_header":
                if seen != declared:
                    sys.exit(f"{where}: previous flight_header declared "
                             f"{declared} records, found {seen}")
                if list(record) != FLIGHT_HEADER_KEYS:
                    sys.exit(f"{where}: flight_header keys {list(record)}")
                declared, seen = record["records"], 0
                flight_headers += 1
            elif kind == "flight_record":
                if list(record) != FLIGHT_RECORD_KEYS:
                    sys.exit(f"{where}: flight_record keys {list(record)}")
                seen += 1
                flight_records += 1
            elif kind in EVENT_KINDS:
                if list(record) != EVENT_KEYS:
                    sys.exit(f"{where}: event key order {list(record)}")
                events += 1
            else:
                sys.exit(f"{where}: unknown record type {kind!r}")
        if seen != declared:
            sys.exit(f"{path}: final flight_header declared {declared} "
                     f"records, found {seen}")
    print(f"schema ok: {events} event records, {flight_headers} flight "
          f"dumps ({flight_records} flight records) across "
          f"{len(args.files)} file(s)")
    return 0


def cmd_summary(args):
    benches = {}
    for entry in sorted(os.listdir(args.dir)):
        path = os.path.join(args.dir, entry)
        if entry.endswith(".telemetry.json"):
            name = entry[: -len(".telemetry.json")]
            dump = load_dump(path)
            bench = benches.setdefault(name, {})
            bench["messages"] = counter(dump, "verifier.messages")
            bench["violations"] = counter(dump, "verifier.violations")
            bench["lag_slo_breaches"] = counter(
                dump, "verifier.lag_slo_breaches")
            bench["lag_stamp_dropped"] = counter(
                dump, "ipc.lag_stamp_dropped")
            for key, hist in ((("lag_ns"), LAG_HIST),
                              (("msg_latency_ns"), LATENCY_HIST)):
                summary = hist_summary(dump, hist)
                if summary is not None:
                    bench[key] = summary
        elif entry.endswith(".events.jsonl"):
            name = entry[: -len(".events.jsonl")]
            benches.setdefault(name, {})["events"] = event_tally(
                load_events(path))

    summary = {"schema": "hq-bench-summary/1", "benches": benches}
    out = args.output or os.path.join(args.dir, "BENCH_summary.json")
    with open(out, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out} ({len(benches)} benches)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    report = sub.add_parser("report", help="human-readable lag report")
    report.add_argument("files", nargs="+",
                        help="telemetry .json dumps / .jsonl event logs")
    report.set_defaults(func=cmd_report)

    ring = sub.add_parser("ring",
                          help="summarize a ring_throughput --json run")
    ring.add_argument("raw", help="raw hq-ring-bench/1 JSON result")
    ring.add_argument("-o", "--output", default=None)
    ring.add_argument("--min-speedup", type=float, default=0.0,
                      help="fail when v2/v1 speedup is below this")
    ring.set_defaults(func=cmd_ring)

    latency = sub.add_parser(
        "latency", help="summarize an nginx_sim --latency-sweep run")
    latency.add_argument("raw", help="raw hq-latency-bench/1 JSON result")
    latency.add_argument("-o", "--output", default=None)
    latency.add_argument("--min-p99-speedup", type=float, default=0.0,
                         help="fail when the proactive or spec p99 "
                              "speedup vs strict is below this")
    latency.set_defaults(func=cmd_latency)

    schema = sub.add_parser("schema",
                            help="strict JSONL schema validation")
    schema.add_argument("files", nargs="+",
                        help=".events.jsonl / .flight.jsonl streams")
    schema.set_defaults(func=cmd_schema)

    summary = sub.add_parser("summary",
                             help="write machine-readable BENCH_summary")
    summary.add_argument("dir", help="directory of *.telemetry.json")
    summary.add_argument("-o", "--output", default=None)
    summary.set_defaults(func=cmd_summary)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
