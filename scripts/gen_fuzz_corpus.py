#!/usr/bin/env python3
"""Generate the seeded v2-frame fuzz corpus (tests/data/fuzz/*.bin).

Each corpus file is a whole number of 32-byte ring slots holding one v2
frame — valid or deliberately broken — that tests/test_fuzz_frame.cc
loads as mutation bases. The encoding mirrors src/ipc/frame.cc exactly:

  header (32B): <IIIHHIIQ  magic, pid, base_seq, count, flags,
                           body_crc, header_crc, reserved
  fixed record (24B): <IIQQ op, reserved, arg0, arg1
  short record (16B): <IIQ  op|0x80000000, reserved, arg0   (var only)

header_crc covers the first 20 bytes; var-record frames (flags bit 0)
chain the reserved word (which carries body_bytes) in as well. zlib's
crc32 is the same reflected-0xEDB88320 CRC the repo computes.

Run from the repo root:  python3 scripts/gen_fuzz_corpus.py
The output is deterministic; regenerate only when the wire format
changes, and commit the result.
"""

import struct
import zlib
from pathlib import Path

MAGIC = 0x32465148  # "HQF2"
FLAG_VAR = 0x1
SHORT_BIT = 0x80000000
SLOT = 32

# Opcode values (src/ipc/message.h).
OP_POINTER_DEFINE = 4
OP_POINTER_CHECK = 5
OP_POINTER_INVALIDATE = 6
OP_LABEL_DEF = 23
OP_LABEL_CHECK = 24
OP_LABEL_JOIN = 25

OUT_DIR = Path(__file__).resolve().parent.parent / "tests" / "data" / "fuzz"


def pad_to_slots(body: bytes) -> bytes:
    rem = len(body) % SLOT
    return body + b"\0" * (SLOT - rem) if rem else body


def header(pid, base_seq, count, flags, body_crc, reserved) -> bytes:
    first20 = struct.pack("<IIIHHI", MAGIC, pid, base_seq, count, flags,
                          body_crc)
    crc = zlib.crc32(first20)
    if flags & FLAG_VAR:
        crc = zlib.crc32(struct.pack("<Q", reserved), crc)
    return first20 + struct.pack("<IQ", crc, reserved)


def fixed_frame(pid, base_seq, records) -> bytes:
    body = b"".join(
        struct.pack("<IIQQ", op, 0, a0, a1) for op, a0, a1 in records)
    head = header(pid, base_seq, len(records), 0, zlib.crc32(body), 0)
    return head + pad_to_slots(body)


def var_frame(pid, base_seq, records) -> bytes:
    body = b""
    for op, a0, a1 in records:
        if a1 == 0:
            body += struct.pack("<IIQ", op | SHORT_BIT, 0, a0)
        else:
            body += struct.pack("<IIQQ", op, 0, a0, a1)
    head = header(pid, base_seq, len(records), FLAG_VAR,
                  zlib.crc32(body), len(body))
    return head + pad_to_slots(body)


def main():
    OUT_DIR.mkdir(parents=True, exist_ok=True)

    label_records = [
        (OP_LABEL_DEF, 0x1000, 0x2),        # bind SECRET
        (OP_LABEL_JOIN, 0x1000, 0x2000),    # propagate
        (OP_LABEL_CHECK, 0x2000, 0x2),      # sink check
        (OP_LABEL_DEF, 0x1000, 0),          # declassify (short in var)
    ]
    mixed_records = [
        (OP_POINTER_DEFINE, 0x7000, 0x400000),
        (OP_POINTER_CHECK, 0x7000, 0x400000),
        (OP_POINTER_INVALIDATE, 0x7000, 0),  # short in var form
    ] + label_records

    corpus = {}
    corpus["fixed_labels.bin"] = fixed_frame(7, 100, label_records)
    corpus["fixed_max.bin"] = fixed_frame(
        7, 0, [(OP_POINTER_CHECK, 8 * i, i) for i in range(64)])
    corpus["var_mixed.bin"] = var_frame(7, 200, mixed_records)
    corpus["var_all_short.bin"] = var_frame(
        7, 300, [(OP_LABEL_DEF, 8 * i, 0) for i in range(16)])

    # Deliberately broken seeds: the mutator starts near the edge cases.
    bad_body = bytearray(corpus["fixed_labels.bin"])
    bad_body[SLOT + 4] ^= 0xFF  # flip a body byte under the CRC
    corpus["bad_body.bin"] = bytes(bad_body)

    bad_magic = bytearray(corpus["var_mixed.bin"])
    bad_magic[0] ^= 0x01
    corpus["bad_magic.bin"] = bytes(bad_magic)

    # Header claims 10 records but only two body slots follow.
    truncated = fixed_frame(
        7, 400, [(OP_LABEL_JOIN, i, i + 1) for i in range(10)])
    corpus["truncated.bin"] = truncated[:3 * SLOT]

    for name, blob in sorted(corpus.items()):
        assert len(blob) % SLOT == 0, name
        (OUT_DIR / name).write_bytes(blob)
        print(f"{name}: {len(blob)} bytes ({len(blob) // SLOT} slots)")


if __name__ == "__main__":
    main()
