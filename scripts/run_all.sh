#!/usr/bin/env bash
# Reproduce the full evaluation, artifact-style: build, test, run every
# table/figure bench, and leave the outputs next to the repo root.
#
# Usage: ./scripts/run_all.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" 2>&1 | tee test_output.txt

echo "== benches =="
# Each bench records latency histograms and a Chrome trace alongside its
# stdout table; the JSON dumps land in bench/results/ (see
# docs/observability.md for how to open them in Perfetto).
RESULTS_DIR="$ROOT/bench/results"
mkdir -p "$RESULTS_DIR"
for b in "$BUILD_DIR"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name="$(basename "$b")"
    echo "===== $b ====="
    "$b" --telemetry-out="$RESULTS_DIR/$name.telemetry.json" \
         --event-log="$RESULTS_DIR/$name.events.jsonl"
done 2>&1 | tee bench_output.txt
echo "Telemetry dumps: $RESULTS_DIR"

# Machine-readable roll-up of every dump + event log (lag percentiles,
# violation tallies) for dashboards and CI artifact diffing.
python3 "$ROOT/scripts/analyze_telemetry.py" summary "$RESULTS_DIR" \
    -o "$ROOT/BENCH_summary.json"

# Artifact-style CSVs (per-benchmark rows).
"$BUILD_DIR"/bench/table4_correctness 0.02 table4_out.csv > /dev/null
"$BUILD_DIR"/bench/fig5_cfi_designs 0.4 fig5_out.csv > /dev/null
echo "CSV results: table4_out.csv fig5_out.csv"
