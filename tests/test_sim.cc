/**
 * @file
 * Cycle-model tests: µop accounting, the hardware-vs-software
 * AppendWrite cost difference (Figure 4's mechanism), and end-to-end
 * cycle comparisons through the VM sink.
 */

#include <gtest/gtest.h>

#include "cfi/design.h"
#include "ipc/shm_channel.h"
#include "ir/builder.h"
#include "policy/pointer_integrity.h"
#include "sim/core_model.h"
#include "verifier/verifier.h"
#include "workloads/spec_generator.h"
#include "workloads/spec_profiles.h"

namespace hq {
namespace {

using namespace ir;

Instr
instrOf(IrOp op)
{
    Instr instr;
    instr.op = op;
    return instr;
}

TEST(CoreModel, CountsInstructionsAndUops)
{
    CoreModel model;
    model.onInstr(instrOf(IrOp::Arith));
    model.onInstr(instrOf(IrOp::Store));
    EXPECT_EQ(model.instructions(), 2u);
    EXPECT_EQ(model.uops(), 3u); // 1 + 2
}

TEST(CoreModel, HardwareAppendWriteIsComposePlusOneUop)
{
    // 4 µops compose the 32-byte message; the AppendWrite instruction
    // itself is a single µop (one fewer than a normal store, §3.1.2).
    CoreConfig hw;
    hw.hw_appendwrite = true;
    CoreModel model(hw);
    model.onInstr(instrOf(IrOp::HqDefine));
    EXPECT_EQ(model.uops(), 5u);
    EXPECT_EQ(model.appendwrites(), 1u);
}

TEST(CoreModel, SoftwareModelAppendWriteCostsMore)
{
    CoreModel sw; // default: software MODEL costing
    sw.onInstr(instrOf(IrOp::HqDefine));
    EXPECT_EQ(sw.uops(), 13u);

    CoreConfig hw;
    hw.hw_appendwrite = true;
    CoreModel fast(hw);
    fast.onInstr(instrOf(IrOp::HqDefine));
    EXPECT_LT(fast.uops(), sw.uops());
}

TEST(CoreModel, CyclesGrowWithWork)
{
    CoreModel model;
    const std::uint64_t before = model.cycles();
    for (int i = 0; i < 1000; ++i)
        model.onInstr(instrOf(IrOp::Load));
    EXPECT_GT(model.cycles(), before + 200);
}

TEST(CoreModel, DeterministicCycles)
{
    std::uint64_t cycles[2];
    for (int round = 0; round < 2; ++round) {
        CoreModel model;
        for (int i = 0; i < 10000; ++i) {
            model.onInstr(instrOf(IrOp::Load));
            model.onInstr(instrOf(IrOp::CondBr));
        }
        cycles[round] = model.cycles();
    }
    EXPECT_EQ(cycles[0], cycles[1]);
}

/** Simulated cycles of a benchmark under a design / AppendWrite cost. */
std::uint64_t
simulatedCycles(const SpecProfile &profile, CfiDesign design,
                bool hw_appendwrite)
{
    ir::Module module = buildSpecModule(profile, 0.02);
    if (design != CfiDesign::Baseline) {
        EXPECT_TRUE(instrumentModule(module, design).isOk());
    }

    CoreConfig core;
    core.hw_appendwrite = hw_appendwrite;
    CoreModel model(core);

    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy);
    ShmChannel channel(1 << 14);
    std::unique_ptr<HqRuntime> runtime;
    HqRuntime *runtime_ptr = nullptr;
    if (designInfo(design).hq_messages) {
        verifier.attachChannel(&channel, 1);
        runtime = std::make_unique<HqRuntime>(1, channel, kernel);
        EXPECT_TRUE(runtime->enable().isOk());
        runtime_ptr = runtime.get();
        verifier.start();
    }

    VmConfig config = makeVmConfig(design);
    config.cycle_sink = &model;
    Vm vm(module, config, runtime_ptr);
    const RunResult result = vm.run();
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    if (runtime_ptr)
        verifier.stop();
    return model.cycles();
}

TEST(SimEndToEnd, InstrumentationCostsCycles)
{
    const auto &profile = specProfile("h264ref");
    const std::uint64_t baseline =
        simulatedCycles(profile, CfiDesign::Baseline, false);
    const std::uint64_t model_cycles =
        simulatedCycles(profile, CfiDesign::HqSfeStk, false);
    const std::uint64_t sim_cycles =
        simulatedCycles(profile, CfiDesign::HqSfeStk, true);

    // Figure 4's ordering: baseline < SIM (hardware AppendWrite) <
    // MODEL (software AppendWrite emulation).
    EXPECT_LT(baseline, sim_cycles);
    EXPECT_LT(sim_cycles, model_cycles);
}

TEST(SimEndToEnd, ComputeBoundBenchmarkBarelyAffected)
{
    const auto &profile = specProfile("lbm");
    const double baseline = static_cast<double>(
        simulatedCycles(profile, CfiDesign::Baseline, false));
    const double sim = static_cast<double>(
        simulatedCycles(profile, CfiDesign::HqSfeStk, true));
    EXPECT_GT(baseline / sim, 0.95); // < 5% simulated overhead
}

class CoreSweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(CoreSweep, CyclesMonotoneInWidthAndMissRate)
{
    const auto [width, miss] = GetParam();
    CoreConfig config;
    config.issue_width = width;
    config.l1_miss = miss;
    CoreModel model(config);

    CoreConfig wider = config;
    wider.issue_width = width * 2;
    CoreModel fast(wider);

    CoreConfig missier = config;
    missier.l1_miss = std::min(1.0, miss * 2 + 0.01);
    CoreModel slow(missier);

    for (int i = 0; i < 20000; ++i) {
        const Instr load = instrOf(IrOp::Load);
        const Instr op = instrOf(IrOp::Arith);
        model.onInstr(load);
        model.onInstr(op);
        fast.onInstr(load);
        fast.onInstr(op);
        slow.onInstr(load);
        slow.onInstr(op);
    }
    // Wider issue never costs more; higher miss rate never costs less.
    EXPECT_LE(fast.cycles(), model.cycles());
    EXPECT_GE(slow.cycles(), model.cycles());
}

INSTANTIATE_TEST_SUITE_P(
    Params, CoreSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(0.0, 0.02, 0.1)));

} // namespace
} // namespace hq
