/**
 * @file
 * RIPE attack-suite tests: matrix construction, attack mechanics under
 * the Baseline (everything must actually exploit), and each design's
 * characteristic blocking behavior (Table 5 shape).
 */

#include <gtest/gtest.h>

#include "ir/verify.h"
#include "workloads/ripe.h"

namespace hq {
namespace {

RipeAttack
attack(AttackOrigin origin, AttackTarget target, AttackTechnique technique,
       AttackPayload payload = AttackPayload::Shellcode)
{
    return RipeAttack{origin, target, technique, payload, 0};
}

TEST(RipeSuite, MatrixShape)
{
    const auto suite = ripeAttackSuite(/*variants_per_group=*/1);
    // 13 groups per origin (disclosure-write on non-stack origins is
    // replaced by two disclosure-sweep groups on the stack).
    EXPECT_EQ(suite.size(), 52u);

    const auto scaled = ripeAttackSuite(18);
    EXPECT_EQ(scaled.size(), 52u * 18u);
}

TEST(RipeSuite, AllModulesVerify)
{
    for (const auto &a : ripeAttackSuite(1)) {
        ir::Module module = buildRipeModule(a);
        const Status status = ir::verifyModule(module);
        EXPECT_TRUE(status.isOk()) << a.name() << ": " << status.toString();
    }
}

TEST(RipeSuite, NamesAreDescriptive)
{
    const RipeAttack a = attack(AttackOrigin::Heap, AttackTarget::FuncPtr,
                                AttackTechnique::DirectOverflow,
                                AttackPayload::Libc);
    EXPECT_EQ(a.name(), "heap/funcptr/direct/libc#0");
}

// ---------------------------------------------------------------------
// Baseline: the exploits genuinely work.
// ---------------------------------------------------------------------

TEST(RipeBaseline, EveryAttackSucceeds)
{
    for (const auto &a : ripeAttackSuite(1)) {
        const RipeResult result = runRipeAttack(a, CfiDesign::Baseline);
        EXPECT_TRUE(result.succeeded)
            << a.name() << " exit=" << exitKindName(result.exit) << " "
            << result.detail;
    }
}

// ---------------------------------------------------------------------
// Design-characteristic behavior.
// ---------------------------------------------------------------------

TEST(RipeDesigns, HqRetPtrBlocksEverything)
{
    for (const auto &a : ripeAttackSuite(1)) {
        const RipeResult result = runRipeAttack(a, CfiDesign::HqRetPtr);
        EXPECT_FALSE(result.succeeded) << a.name();
    }
}

TEST(RipeDesigns, CcfiBlocksEverything)
{
    for (const auto &a : ripeAttackSuite(1)) {
        const RipeResult result = runRipeAttack(a, CfiDesign::Ccfi);
        EXPECT_FALSE(result.succeeded) << a.name();
    }
}

TEST(RipeDesigns, HqSfeStkBlocksForwardEdgeAttacks)
{
    for (AttackOrigin origin :
         {AttackOrigin::Bss, AttackOrigin::Heap, AttackOrigin::Stack}) {
        const RipeResult result = runRipeAttack(
            attack(origin, AttackTarget::FuncPtr,
                   AttackTechnique::DirectOverflow),
            CfiDesign::HqSfeStk);
        EXPECT_FALSE(result.succeeded) << attackOriginName(origin);
        EXPECT_TRUE(result.detected) << attackOriginName(origin);
    }
}

TEST(RipeDesigns, HqSfeStkVulnerableToDisclosureFromNonStack)
{
    // The safe stack is protected only by information hiding: with a
    // disclosed address, the write lands and no message ever flags it.
    const RipeResult result = runRipeAttack(
        attack(AttackOrigin::Bss, AttackTarget::RetPtr,
               AttackTechnique::DisclosureWrite),
        CfiDesign::HqSfeStk);
    EXPECT_TRUE(result.succeeded);
}

TEST(RipeDesigns, HqSfeStkBlocksStackSweep)
{
    // Stack-origin sweeps corrupt an intervening protected pointer; the
    // victim's next use of it raises a violation and the payload's
    // confirmation syscall is refused.
    const RipeResult result = runRipeAttack(
        attack(AttackOrigin::Stack, AttackTarget::RetPtr,
               AttackTechnique::DisclosureSweep),
        CfiDesign::HqSfeStk);
    EXPECT_FALSE(result.succeeded);
}

TEST(RipeDesigns, ClangCfiBlocksShellcodeButNotCodeReuse)
{
    const RipeResult shell = runRipeAttack(
        attack(AttackOrigin::Data, AttackTarget::FuncPtr,
               AttackTechnique::DirectOverflow, AttackPayload::Shellcode),
        CfiDesign::ClangCfi);
    EXPECT_FALSE(shell.succeeded);

    const RipeResult reuse = runRipeAttack(
        attack(AttackOrigin::Data, AttackTarget::FuncPtr,
               AttackTechnique::DirectOverflow, AttackPayload::Libc),
        CfiDesign::ClangCfi);
    EXPECT_TRUE(reuse.succeeded); // return-to-libc evades type matching
}

TEST(RipeDesigns, ClangCfiVulnerableToVtableReuse)
{
    const RipeResult result = runRipeAttack(
        attack(AttackOrigin::Heap, AttackTarget::VtableReuse,
               AttackTechnique::DirectOverflow),
        CfiDesign::ClangCfi);
    EXPECT_TRUE(result.succeeded);
}

TEST(RipeDesigns, HqBlocksVtableReuse)
{
    const RipeResult result = runRipeAttack(
        attack(AttackOrigin::Heap, AttackTarget::VtableReuse,
               AttackTechnique::DirectOverflow),
        CfiDesign::HqSfeStk);
    EXPECT_FALSE(result.succeeded);
    EXPECT_TRUE(result.detected);
}

TEST(RipeDesigns, ClangCfiGuardPagesStopStackSweeps)
{
    const RipeResult result = runRipeAttack(
        attack(AttackOrigin::Stack, AttackTarget::RetPtr,
               AttackTechnique::DisclosureSweep, AttackPayload::Libc),
        CfiDesign::ClangCfi);
    EXPECT_FALSE(result.succeeded);
    EXPECT_EQ(result.exit, ExitKind::Crash); // faulted on the guard gap
}

TEST(RipeDesigns, CpiBlocksFuncPtrAttacks)
{
    // CPI relocated the pointer to the safe store: the raw-memory
    // corruption has no effect on the loaded value.
    const RipeResult result = runRipeAttack(
        attack(AttackOrigin::Heap, AttackTarget::FuncPtr,
               AttackTechnique::IndirectRedirect),
        CfiDesign::Cpi);
    EXPECT_FALSE(result.succeeded);
}

TEST(RipeDesigns, CpiVulnerableToRetPtrDisclosure)
{
    const RipeResult write = runRipeAttack(
        attack(AttackOrigin::Data, AttackTarget::RetPtr,
               AttackTechnique::DisclosureWrite),
        CfiDesign::Cpi);
    EXPECT_TRUE(write.succeeded);

    // No guard pages: the stack-origin sweep reaches the safe stack.
    const RipeResult sweep = runRipeAttack(
        attack(AttackOrigin::Stack, AttackTarget::RetPtr,
               AttackTechnique::DisclosureSweep),
        CfiDesign::Cpi);
    EXPECT_TRUE(sweep.succeeded);
}

TEST(RipeDesigns, LongjmpBufferAttackMechanicsMatchFuncPtr)
{
    const RipeResult baseline = runRipeAttack(
        attack(AttackOrigin::Bss, AttackTarget::LongjmpBuf,
               AttackTechnique::IndirectRedirect),
        CfiDesign::Baseline);
    EXPECT_TRUE(baseline.succeeded);

    const RipeResult hq = runRipeAttack(
        attack(AttackOrigin::Bss, AttackTarget::LongjmpBuf,
               AttackTechnique::IndirectRedirect),
        CfiDesign::HqSfeStk);
    EXPECT_FALSE(hq.succeeded);
}

// Sharding must not change any policy verdict: run the full attack
// corpus under a 1-shard and a 4-shard verifier and require identical
// detect/deny outcomes per attack. The HQ designs route every policy
// message through the verifier, so they are the ones a sharding bug
// could perturb.
TEST(RipeSharding, FourShardVerdictsMatchSerialPerAttack)
{
    const std::vector<RipeAttack> suite = ripeAttackSuite(1);
    const CfiDesign designs[] = {CfiDesign::HqRetPtr, CfiDesign::HqSfeStk};
    for (CfiDesign design : designs) {
        for (const RipeAttack &a : suite) {
            const RipeResult serial = runRipeAttack(a, design, 1);
            const RipeResult sharded = runRipeAttack(a, design, 4);
            EXPECT_EQ(serial.succeeded, sharded.succeeded)
                << designInfo(design).name << " / " << a.name();
            EXPECT_EQ(serial.detected, sharded.detected)
                << designInfo(design).name << " / " << a.name();
            EXPECT_EQ(serial.exit, sharded.exit)
                << designInfo(design).name << " / " << a.name();
        }
    }
}

// The wire format must not change any policy verdict either: the same
// attack corpus under a v1 and a v2 message channel must produce
// identical succeed/detect/exit outcomes per attack. v2 batches records
// into CRC'd frames, so the risk a parity bug would expose is records
// reordered, dropped, or re-sequenced during framing.
TEST(RipeWireFormat, V2VerdictsMatchV1PerAttack)
{
    const std::vector<RipeAttack> suite = ripeAttackSuite(1);
    const CfiDesign designs[] = {CfiDesign::HqRetPtr, CfiDesign::HqSfeStk};
    for (CfiDesign design : designs) {
        for (const RipeAttack &a : suite) {
            const RipeResult v1 =
                runRipeAttack(a, design, 1, WireFormat::V1);
            const RipeResult v2 =
                runRipeAttack(a, design, 1, WireFormat::V2);
            EXPECT_EQ(v1.succeeded, v2.succeeded)
                << designInfo(design).name << " / " << a.name();
            EXPECT_EQ(v1.detected, v2.detected)
                << designInfo(design).name << " / " << a.name();
            EXPECT_EQ(v1.exit, v2.exit)
                << designInfo(design).name << " / " << a.name();
        }
    }
}

// Bounded speculation must not change any policy verdict: the
// confirmation syscall is execve-like, and execve is a speculation
// barrier, so a detected violation always blocks confirmation even when
// earlier syscalls retired ahead of their acks. Run the attack corpus
// strict (window 0) and at window 4 and require identical per-attack
// succeed/detect/exit outcomes.
TEST(RipeGating, SpecWindowVerdictsMatchStrictPerAttack)
{
    const std::vector<RipeAttack> suite = ripeAttackSuite(1);
    const CfiDesign designs[] = {CfiDesign::HqRetPtr, CfiDesign::HqSfeStk};
    for (CfiDesign design : designs) {
        for (const RipeAttack &a : suite) {
            const RipeResult strict =
                runRipeAttack(a, design, 1, WireFormat::V1, 0);
            const RipeResult spec =
                runRipeAttack(a, design, 1, WireFormat::V1, 4);
            EXPECT_EQ(strict.succeeded, spec.succeeded)
                << designInfo(design).name << " / " << a.name();
            EXPECT_EQ(strict.detected, spec.detected)
                << designInfo(design).name << " / " << a.name();
            EXPECT_EQ(strict.exit, spec.exit)
                << designInfo(design).name << " / " << a.name();
        }
    }
}

} // namespace
} // namespace hq
