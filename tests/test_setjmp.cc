/**
 * @file
 * Non-local goto tests: setjmp/longjmp VM semantics, jmp_buf protection
 * under HQ-CFI (the paper protects the internal pointer in jmp_buf as a
 * forward-edge control-flow pointer, §4.1.3), and attack mechanics.
 */

#include <gtest/gtest.h>

#include "cfi/design.h"
#include "ipc/shm_channel.h"
#include "ir/builder.h"
#include "ir/verify.h"
#include "policy/pointer_integrity.h"
#include "runtime/vm.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

using namespace ir;

/**
 * main: jb = alloca; if (setjmp(jb) == 0) { helper(jb); return 111; }
 * else return setjmp-return-value. helper longjmps with 7.
 */
Module
longjmpModule(bool corrupt_buf)
{
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();

    builder.beginFunction("attack_payload", 0, sig);
    builder.ret(builder.constInt(0x666));
    builder.endFunction();

    // Attacker-controlled raw input carrying the payload address (so
    // the corrupting write is type-opaque data, as in a real exploit).
    Global input;
    input.name = "attacker_input";
    input.size = 8;
    input.word_init.emplace_back(0, Vm::encodeFuncPtr(0));
    const int input_id = builder.addGlobal(std::move(input));

    builder.beginFunction("helper", 1); // param: jmp_buf address
    if (corrupt_buf) {
        const int src = builder.globalAddr(input_id);
        const int evil = builder.load(src, TypeRef::intTy());
        builder.store(builder.param(0), evil, TypeRef::intTy());
    }
    const int seven = builder.constInt(7);
    builder.longjmp(builder.param(0), seven);
    builder.ret(); // unreachable
    builder.endFunction();

    builder.beginFunction("main");
    const int jb = builder.allocaOp(8);
    const int rc = builder.setjmp(jb);
    const int bb_first = builder.newBlock();
    const int bb_again = builder.newBlock();
    const int is_zero = builder.arith(ArithKind::Eq, rc,
                                      builder.constInt(0));
    builder.condBr(is_zero, bb_first, bb_again);
    builder.setBlock(bb_first);
    builder.callDirect(1, {jb});
    builder.ret(builder.constInt(111)); // skipped by the longjmp
    builder.setBlock(bb_again);
    builder.ret(rc);
    builder.endFunction();
    module.entry_function = 2;
    return module;
}

TEST(Setjmp, LongjmpUnwindsAndReturnsValue)
{
    Module module = longjmpModule(false);
    ASSERT_TRUE(verifyModule(module).isOk());
    VmConfig config;
    Vm vm(module, config, nullptr);
    const RunResult result = vm.run();
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_EQ(result.return_value, 7u);
}

TEST(Setjmp, ZeroLongjmpValueBecomesOne)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int jb = builder.allocaOp(8);
    const int rc = builder.setjmp(jb);
    const int bb_first = builder.newBlock();
    const int bb_again = builder.newBlock();
    const int is_zero = builder.arith(ArithKind::Eq, rc,
                                      builder.constInt(0));
    builder.condBr(is_zero, bb_first, bb_again);
    builder.setBlock(bb_first);
    const int zero = builder.constInt(0);
    builder.longjmp(jb, zero); // longjmp(buf, 0) must deliver 1
    builder.ret();
    builder.setBlock(bb_again);
    builder.ret(rc);
    builder.endFunction();
    module.entry_function = 0;

    VmConfig config;
    Vm vm(module, config, nullptr);
    const RunResult result = vm.run();
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_EQ(result.return_value, 1u);
}

TEST(Setjmp, MarksFunctionReturnsTwice)
{
    Module module = longjmpModule(false);
    EXPECT_TRUE(module.functions[2].attrs.returns_twice);
    EXPECT_FALSE(module.functions[1].attrs.returns_twice);
}

TEST(Setjmp, LongjmpAfterFrameExitCrashes)
{
    // helper does setjmp into a caller-provided buffer and returns;
    // main then longjmps into the dead frame.
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("helper", 1);
    builder.setjmp(builder.param(0));
    builder.ret();
    builder.endFunction();
    builder.beginFunction("main");
    const int jb = builder.allocaOp(8);
    builder.callDirect(0, {jb});
    const int one = builder.constInt(1);
    builder.longjmp(jb, one);
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    VmConfig config;
    Vm vm(module, config, nullptr);
    const RunResult result = vm.run();
    EXPECT_EQ(result.exit, ExitKind::Crash);
    EXPECT_NE(result.detail.find("longjmp"), std::string::npos);
}

TEST(Setjmp, GarbageJmpBufCrashes)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int jb = builder.allocaOp(8);
    builder.store(jb, builder.constInt(0x1234), TypeRef::intTy());
    const int one = builder.constInt(1);
    builder.longjmp(jb, one);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    VmConfig config;
    Vm vm(module, config, nullptr);
    EXPECT_EQ(vm.run().exit, ExitKind::Crash);
}

TEST(Setjmp, CorruptedBufDivertsControlOnBaseline)
{
    Module module = longjmpModule(/*corrupt_buf=*/true);
    VmConfig config;
    config.attack_payload_function = 0;
    Vm vm(module, config, nullptr);
    const RunResult result = vm.run();
    EXPECT_TRUE(result.attack_payload_reached);
}

TEST(Setjmp, HqDetectsCorruptedJmpBuf)
{
    Module module = longjmpModule(/*corrupt_buf=*/true);
    ASSERT_TRUE(instrumentModule(module, CfiDesign::HqSfeStk).isOk());

    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config vconfig;
    vconfig.kill_on_violation = false;
    Verifier verifier(kernel, policy, vconfig);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, 1);
    HqRuntime runtime(1, channel, kernel);
    ASSERT_TRUE(runtime.enable().isOk());
    verifier.start();

    VmConfig config = makeVmConfig(CfiDesign::HqSfeStk);
    config.attack_payload_function = 0;
    Vm vm(module, config, &runtime);
    vm.run();
    verifier.stop();
    EXPECT_TRUE(verifier.hasViolation(1));
}

TEST(Setjmp, HqCleanOnBenignLongjmp)
{
    Module module = longjmpModule(false);
    ASSERT_TRUE(instrumentModule(module, CfiDesign::HqSfeStk).isOk());

    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, 1);
    HqRuntime runtime(1, channel, kernel);
    ASSERT_TRUE(runtime.enable().isOk());
    verifier.start();

    VmConfig config = makeVmConfig(CfiDesign::HqSfeStk);
    Vm vm(module, config, &runtime);
    const RunResult result = vm.run();
    verifier.stop();
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_EQ(result.return_value, 7u);
    EXPECT_FALSE(verifier.hasViolation(1));
}

TEST(Setjmp, StackCursorRestoredAfterLongjmp)
{
    // Loop with setjmp/longjmp across a helper must not leak stack.
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("jumper", 1);
    builder.allocaOp(256); // frame footprint discarded by the longjmp
    const int one = builder.constInt(1);
    builder.longjmp(builder.param(0), one);
    builder.ret();
    builder.endFunction();

    builder.beginFunction("main");
    const int jb = builder.allocaOp(8);
    const int i_slot = builder.allocaOp(8);
    builder.store(i_slot, builder.constInt(0), TypeRef::intTy());
    const int bb_loop = builder.newBlock();
    const int bb_done = builder.newBlock();
    builder.br(bb_loop);
    builder.setBlock(bb_loop);
    builder.setjmp(jb);
    const int i = builder.load(i_slot, TypeRef::intTy());
    const int n = builder.constInt(50000);
    const int more = builder.arith(ArithKind::Lt, i, n);
    const int bb_body = builder.newBlock();
    builder.condBr(more, bb_body, bb_done);
    builder.setBlock(bb_body);
    const int one2 = builder.constInt(1);
    const int next = builder.arith(ArithKind::Add, i, one2);
    builder.store(i_slot, next, TypeRef::intTy());
    builder.callDirect(0, {jb}); // longjmps back to bb_loop's setjmp
    builder.ret(); // unreachable
    builder.setBlock(bb_done);
    builder.ret(builder.load(i_slot, TypeRef::intTy()));
    builder.endFunction();
    module.entry_function = 1;

    VmConfig config;
    Vm vm(module, config, nullptr);
    const RunResult result = vm.run();
    // 50000 iterations of a 256-byte frame would overflow a 4 MB stack
    // without cursor restoration.
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_EQ(result.return_value, 50000u);
}

} // namespace
} // namespace hq
