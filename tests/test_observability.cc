/**
 * @file
 * Tests for the message-lifecycle observability layer: the lag sidecar,
 * verifier lag histograms and SLO accounting, Perfetto flow-event
 * pairing across trace-ring wrap, the seqlock statsboard, and the JSONL
 * structured event log.
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ipc/shm_channel.h"
#include "ipc/xproc_ring.h"
#include "kernel/kernel.h"
#include "policy/pointer_integrity.h"
#include "telemetry/event_log.h"
#include "telemetry/lag.h"
#include "telemetry/statsboard.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

using telemetry::kStatsBoardMaxCounters;
using telemetry::kStatsBoardMaxGauges;
using telemetry::kStatsBoardMaxHistograms;
using telemetry::LagSidecar;
using telemetry::Registry;
using telemetry::StatsBoardReader;
using telemetry::StatsBoardSnapshot;
using telemetry::StatsBoardWriter;
using telemetry::TraceRecorder;

/** Scoped enable: telemetry on for the test, restored after. */
struct TelemetryOn
{
    TelemetryOn()
    {
        Registry::instance().reset();
        TraceRecorder::instance().reset();
        telemetry::setEnabled(true);
    }
    ~TelemetryOn() { telemetry::setEnabled(false); }
};

// ---------------------------------------------------------------------
// LagSidecar unit semantics
// ---------------------------------------------------------------------

TEST(LagSidecar, StampThenConsumeMatchesExactSequence)
{
    LagSidecar sidecar(16);
    EXPECT_TRUE(sidecar.stamp(0, 100));
    EXPECT_TRUE(sidecar.stamp(1, 200));

    std::uint64_t enqueue_ns = 0;
    EXPECT_TRUE(sidecar.consumeUpTo(0, enqueue_ns));
    EXPECT_EQ(enqueue_ns, 100u);
    EXPECT_TRUE(sidecar.consumeUpTo(1, enqueue_ns));
    EXPECT_EQ(enqueue_ns, 200u);
    EXPECT_EQ(sidecar.pending(), 0u);
}

TEST(LagSidecar, StaleEnvelopesAreDiscardedNotMismatched)
{
    LagSidecar sidecar(16);
    sidecar.stamp(0, 100);
    sidecar.stamp(1, 200);
    sidecar.stamp(5, 500);

    // Consumer skipped ahead to seq 5 (e.g. telemetry was toggled):
    // envelopes 0 and 1 must be dropped, 5 must still match.
    std::uint64_t enqueue_ns = 0;
    EXPECT_TRUE(sidecar.consumeUpTo(5, enqueue_ns));
    EXPECT_EQ(enqueue_ns, 500u);
    EXPECT_EQ(sidecar.pending(), 0u);
}

TEST(LagSidecar, FutureEnvelopeStopsConsumptionWithoutLoss)
{
    LagSidecar sidecar(16);
    sidecar.stamp(7, 700);

    // Asking for an earlier sequence must not consume the future stamp.
    std::uint64_t enqueue_ns = 0;
    EXPECT_FALSE(sidecar.consumeUpTo(3, enqueue_ns));
    EXPECT_EQ(sidecar.pending(), 1u);
    EXPECT_TRUE(sidecar.consumeUpTo(7, enqueue_ns));
    EXPECT_EQ(enqueue_ns, 700u);
}

TEST(LagSidecar, FullSidecarDropsNewStampsAndCounts)
{
    LagSidecar sidecar(4);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_TRUE(sidecar.stamp(i, i));
    EXPECT_FALSE(sidecar.stamp(4, 4));
    EXPECT_EQ(sidecar.dropped(), 1u);
    EXPECT_EQ(sidecar.pending(), 4u);
}

TEST(LagSidecar, WrappedRegionSharedBetweenTwoAttachments)
{
    // Same pattern as the cross-process channel: one region, a
    // producer-side wrapper that initializes and a consumer-side
    // wrapper that attaches.
    std::vector<unsigned char> region(LagSidecar::regionBytes(8));
    LagSidecar producer(region.data(), 8, /*initialize=*/true);
    LagSidecar consumer(region.data(), 8, /*initialize=*/false);

    EXPECT_TRUE(producer.stamp(0, 42));
    std::uint64_t enqueue_ns = 0;
    EXPECT_TRUE(consumer.consumeUpTo(0, enqueue_ns));
    EXPECT_EQ(enqueue_ns, 42u);
}

// ---------------------------------------------------------------------
// Channel::send stamping + verifier lag accounting
// ---------------------------------------------------------------------

TEST(LagTracing, XprocChannelSidecarLivesInSharedMapping)
{
    TelemetryOn on;
    XprocChannel channel(1 << 6);
    if (!channel.valid())
        GTEST_SKIP() << "shared mapping unavailable";

    // Installed at construction (not lazily): it must exist before
    // fork() so both processes share it.
    ASSERT_NE(channel.lagSidecar(), nullptr);
    ASSERT_TRUE(channel.send(Message(Opcode::PointerDefine, 1, 2)).isOk());
    EXPECT_EQ(channel.lagSidecar()->pending(), 1u);

    std::uint64_t enqueue_ns = 0;
    EXPECT_TRUE(channel.lagSidecar()->consumeUpTo(0, enqueue_ns));
    EXPECT_LE(enqueue_ns, telemetry::monotonicRawNs());
}

TEST(LagTracing, VerifierRecordsLagForEveryMessageUnderBatchedDrain)
{
    TelemetryOn on;
    constexpr Pid kPid = 7;
    constexpr std::size_t kMessages = 100;

    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.kill_on_violation = false;
    config.poll_batch = 16; // force multiple tryRecvBatch rounds
    Verifier verifier(kernel, policy, config);
    kernel.enableProcess(kPid);

    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, kPid);

    ASSERT_TRUE(channel.send(Message(Opcode::PointerDefine, 0x10, 0xAA))
                    .isOk());
    for (std::size_t i = 1; i < kMessages; ++i)
        ASSERT_TRUE(channel.send(Message(Opcode::PointerCheck, 0x10, 0xAA))
                        .isOk());

    EXPECT_EQ(verifier.poll(), kMessages);

    // Every drained message matched its envelope: one lag sample each,
    // in both the global and the per-pid histogram.
    auto &lag = Registry::instance().histogram("verifier.lag_ns");
    EXPECT_EQ(lag.count(), kMessages);
    EXPECT_GT(lag.mean(), 0.0);
    auto &pid_lag =
        Registry::instance().histogram("verifier.lag_ns.pid_7");
    EXPECT_EQ(pid_lag.count(), kMessages);
    EXPECT_EQ(
        Registry::instance().counter("ipc.lag_stamp_dropped").value(),
        0u);
}

TEST(LagTracing, MidRunEnableRealignsBySequence)
{
    constexpr Pid kPid = 9;
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.kill_on_violation = false;
    Verifier verifier(kernel, policy, config);
    kernel.enableProcess(kPid);

    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, kPid);

    // Phase 1: telemetry off — no envelopes, but send/recv indices
    // still advance in lockstep.
    telemetry::setEnabled(false);
    channel.send(Message(Opcode::PointerDefine, 0x20, 0xBB));
    for (int i = 0; i < 4; ++i)
        channel.send(Message(Opcode::PointerCheck, 0x20, 0xBB));
    EXPECT_EQ(verifier.poll(), 5u);

    // Phase 2: telemetry on — the next 5 messages must all match.
    Registry::instance().reset();
    telemetry::setEnabled(true);
    for (int i = 0; i < 5; ++i)
        channel.send(Message(Opcode::PointerCheck, 0x20, 0xBB));
    EXPECT_EQ(verifier.poll(), 5u);
    telemetry::setEnabled(false);

    EXPECT_EQ(Registry::instance().histogram("verifier.lag_ns").count(),
              5u);
}

TEST(LagTracing, SloBreachesAndHighWaterTrackSlowVerification)
{
    TelemetryOn on;
    constexpr Pid kPid = 11;
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.kill_on_violation = false;
    config.lag_slo_ns = 1; // everything breaches a 1ns SLO
    Verifier verifier(kernel, policy, config);
    kernel.enableProcess(kPid);

    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, kPid);

    channel.send(Message(Opcode::PointerDefine, 0x30, 0xCC));
    channel.send(Message(Opcode::PointerCheck, 0x30, 0xCC));
    EXPECT_EQ(verifier.poll(), 2u);

    EXPECT_EQ(
        Registry::instance().counter("verifier.lag_slo_breaches").value(),
        2u);
    EXPECT_GT(
        Registry::instance().gauge("verifier.lag_high_water_ns").max(),
        0u);
}

// ---------------------------------------------------------------------
// Perfetto flow events across trace-ring wrap
// ---------------------------------------------------------------------

/** Collect (phase, flow-id) pairs from a Chrome trace JSON array. */
std::vector<std::pair<char, std::uint64_t>>
flowEvents(const std::string &json)
{
    std::vector<std::pair<char, std::uint64_t>> events;
    std::size_t pos = 0;
    while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
        const char phase = json[pos + 6];
        pos += 6;
        if (phase != 's' && phase != 'f')
            continue;
        const std::size_t id_pos = json.find("\"id\":\"0x", pos);
        if (id_pos == std::string::npos)
            break;
        events.emplace_back(
            phase,
            std::stoull(json.substr(id_pos + 8, 16), nullptr, 16));
        pos = id_pos;
    }
    return events;
}

TEST(TraceFlows, BeginEndIdsPairUpAfterRingWrap)
{
    TelemetryOn on;
    constexpr std::size_t kCapacity = 256;
    constexpr std::uint64_t kFlows = 2000; // >> capacity: forces wrap
    TraceRecorder::instance().setCapacity(kCapacity);

    // Producer/consumer handoff mirroring send -> verifier: the
    // consumer only closes flows the producer has opened. Fresh
    // threads get fresh rings at the reduced capacity.
    std::atomic<std::uint64_t> produced{0};
    std::thread producer([&] {
        for (std::uint64_t id = 0; id < kFlows; ++id) {
            telemetry::traceFlowBegin("lag", id);
            produced.store(id + 1, std::memory_order_release);
        }
    });
    std::thread consumer([&] {
        std::uint64_t next = 0;
        while (next < kFlows) {
            if (next < produced.load(std::memory_order_acquire)) {
                telemetry::traceFlowEnd("lag", next);
                ++next;
            } else {
                std::this_thread::yield();
            }
        }
    });
    producer.join();
    consumer.join();

    const std::string json = TraceRecorder::instance().toJson();
    TraceRecorder::instance().setCapacity(1 << 14); // restore default

    std::set<std::uint64_t> begins;
    std::set<std::uint64_t> ends;
    for (const auto &[phase, id] : flowEvents(json))
        (phase == 's' ? begins : ends).insert(id);

    // Both rings wrapped identically (same event count, same capacity),
    // so the retained windows hold the same newest flow ids: every
    // surviving begin has its end and vice versa.
    ASSERT_EQ(begins.size(), kCapacity);
    EXPECT_EQ(begins, ends);
    EXPECT_TRUE(begins.count(kFlows - 1));
    EXPECT_FALSE(begins.count(0)); // the oldest flows were overwritten
}

// ---------------------------------------------------------------------
// Statsboard: seqlock consistency + shm roundtrip
// ---------------------------------------------------------------------

TEST(StatsBoard, SnapshotRoundTripsThroughSharedMemory)
{
    TelemetryOn on;
    Registry::instance().counter("verifier.messages").add(1234);

    const std::string name =
        "/hq_test_board." + std::to_string(::getpid());
    StatsBoardWriter writer(name);
    ASSERT_TRUE(writer.valid());
    writer.publishRegistry();

    StatsBoardReader reader(name);
    ASSERT_TRUE(reader.valid());
    EXPECT_EQ(reader.pid(), ::getpid());

    StatsBoardSnapshot snapshot;
    ASSERT_TRUE(reader.read(snapshot));
    bool found = false;
    for (std::uint32_t i = 0; i < snapshot.n_counters; ++i) {
        if (std::string(snapshot.counters[i].name) ==
            "verifier.messages") {
            EXPECT_EQ(snapshot.counters[i].value, 1234u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(StatsBoard, SeqlockNeverYieldsTornSnapshots)
{
    const std::string name =
        "/hq_test_seqlock." + std::to_string(::getpid());
    StatsBoardWriter writer(name);
    ASSERT_TRUE(writer.valid());

    // Writer publishes snapshots holding the invariant
    // counters[1] == 2 * counters[0]; any torn read breaks it.
    std::atomic<bool> stop{false};
    std::thread publisher([&] {
        StatsBoardSnapshot snapshot;
        snapshot.n_counters = 2;
        std::snprintf(snapshot.counters[0].name,
                      sizeof snapshot.counters[0].name, "a");
        std::snprintf(snapshot.counters[1].name,
                      sizeof snapshot.counters[1].name, "b");
        std::uint64_t k = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            ++k;
            snapshot.counters[0].value = k;
            snapshot.counters[1].value = 2 * k;
            writer.publish(snapshot);
            // Brief pause between publishes (as the real 250ms-interval
            // publisher has) so readers can win the seqlock race even
            // on a loaded machine.
            std::this_thread::yield();
        }
    });

    StatsBoardReader reader(name);
    ASSERT_TRUE(reader.valid());
    StatsBoardSnapshot snapshot;
    std::size_t consistent_reads = 0;
    for (int i = 0; i < 2000; ++i) {
        if (!reader.read(snapshot))
            continue; // contended beyond the retry budget: allowed
        ++consistent_reads;
        ASSERT_EQ(snapshot.counters[1].value,
                  2 * snapshot.counters[0].value)
            << "torn snapshot after " << consistent_reads << " reads";
    }
    stop.store(true);
    publisher.join();

    // With the writer idle a read cannot starve: it must succeed and
    // hold the invariant (the concurrent loop above may legitimately
    // have been contended throughout on a loaded machine).
    ASSERT_TRUE(reader.read(snapshot));
    EXPECT_EQ(snapshot.counters[1].value,
              2 * snapshot.counters[0].value);
}

TEST(StatsBoard, SeqlockTortureFullBoardManyReaders)
{
    // Torture leg (runs under tsan via the tier1 label): a writer
    // churning FULL-capacity snapshots as fast as it can against four
    // concurrent readers. Every field of every section is derived from
    // one generation number, so a torn read anywhere in the ~20KB
    // payload — not just the first two counters — breaks an invariant.
    const std::string name =
        "/hq_test_torture." + std::to_string(::getpid());
    StatsBoardWriter writer(name);
    ASSERT_TRUE(writer.valid());

    auto fill = [](StatsBoardSnapshot &snapshot, std::uint64_t k) {
        snapshot.publish_ns = k;
        snapshot.wall_ms = k;
        snapshot.n_counters = kStatsBoardMaxCounters;
        snapshot.n_gauges = kStatsBoardMaxGauges;
        snapshot.n_histograms = kStatsBoardMaxHistograms;
        for (std::size_t i = 0; i < kStatsBoardMaxCounters; ++i)
            snapshot.counters[i].value = k + i;
        for (std::size_t i = 0; i < kStatsBoardMaxGauges; ++i) {
            snapshot.gauges[i].value = k + i;
            snapshot.gauges[i].max = 2 * (k + i);
        }
        for (std::size_t i = 0; i < kStatsBoardMaxHistograms; ++i) {
            snapshot.histograms[i].count = k + i;
            snapshot.histograms[i].mean =
                static_cast<double>(k + i);
        }
    };
    // Seed an initial consistent generation so early readers never see
    // the zero-initialized segment as generation 0 with empty sections.
    {
        StatsBoardSnapshot seed;
        fill(seed, 1);
        writer.publish(seed);
    }

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> torn{0};
    std::thread publisher([&] {
        StatsBoardSnapshot snapshot;
        std::uint64_t k = 1;
        while (!stop.load(std::memory_order_relaxed)) {
            fill(snapshot, ++k);
            writer.publish(snapshot);
        }
    });

    constexpr int kReaders = 4;
    constexpr int kAttempts = 4000;
    std::vector<std::thread> readers;
    std::vector<std::uint64_t> reads(kReaders, 0);
    for (int r = 0; r < kReaders; ++r) {
        readers.emplace_back([&, r] {
            StatsBoardReader reader(name);
            if (!reader.valid())
                return;
            StatsBoardSnapshot snapshot;
            std::uint64_t last_k = 0;
            for (int i = 0; i < kAttempts; ++i) {
                if (!reader.read(snapshot))
                    continue; // retry budget exhausted: allowed
                ++reads[static_cast<std::size_t>(r)];
                const std::uint64_t k = snapshot.publish_ns;
                bool ok = snapshot.wall_ms == k && k >= last_k;
                last_k = k;
                // Spot-check the far corners of each section — a torn
                // copy shears between sections, not within a word.
                ok = ok && snapshot.counters[0].value == k &&
                     snapshot.counters[kStatsBoardMaxCounters - 1]
                             .value == k + kStatsBoardMaxCounters - 1;
                ok = ok && snapshot.gauges[0].max == 2 * k &&
                     snapshot.gauges[kStatsBoardMaxGauges - 1].value ==
                         k + kStatsBoardMaxGauges - 1;
                ok = ok &&
                     snapshot.histograms[kStatsBoardMaxHistograms - 1]
                             .count ==
                         k + kStatsBoardMaxHistograms - 1;
                if (!ok)
                    torn.fetch_add(1);
            }
        });
    }
    for (auto &reader : readers)
        reader.join();
    stop.store(true);
    publisher.join();

    EXPECT_EQ(torn.load(), 0u) << "seqlock leaked a torn snapshot";
    // With the writer stopped, a final read must succeed and carry the
    // last published generation's invariants intact.
    StatsBoardReader reader(name);
    ASSERT_TRUE(reader.valid());
    StatsBoardSnapshot snapshot;
    ASSERT_TRUE(reader.read(snapshot));
    const std::uint64_t k = snapshot.publish_ns;
    EXPECT_EQ(snapshot.counters[kStatsBoardMaxCounters - 1].value,
              k + kStatsBoardMaxCounters - 1);
}

// ---------------------------------------------------------------------
// Structured JSONL event log
// ---------------------------------------------------------------------

/** Keys must appear in this exact order in every record. */
void
expectSchema(const std::string &line)
{
    static const char *kKeys[] = {"type", "ts_wall_ms", "ts_ns",
                                  "pid",  "shard",      "policy",
                                  "op",   "arg0",       "arg1",
                                  "seq",  "lag_ns",     "reason"};
    std::size_t pos = 0;
    for (const char *key : kKeys) {
        const std::string needle = std::string("\"") + key + "\":";
        const std::size_t at = line.find(needle, pos);
        ASSERT_NE(at, std::string::npos)
            << "missing key " << key << " in: " << line;
        pos = at + needle.size();
    }
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
}

/**
 * Split one JSONL record into its (key, raw value) fields in emission
 * order. Values keep their raw spelling ("7", "\"Syscall\""), string
 * escapes are honored so an escaped quote never ends a value early.
 */
std::vector<std::pair<std::string, std::string>>
parseFields(const std::string &line)
{
    std::vector<std::pair<std::string, std::string>> fields;
    std::size_t i = 0;
    const std::size_t n = line.size();
    while (i < n) {
        const std::size_t key_open = line.find('"', i);
        if (key_open == std::string::npos)
            break;
        const std::size_t key_close = line.find('"', key_open + 1);
        if (key_close == std::string::npos ||
            key_close + 1 >= n || line[key_close + 1] != ':')
            break;
        const std::string key =
            line.substr(key_open + 1, key_close - key_open - 1);
        std::size_t v = key_close + 2;
        std::string value;
        if (v < n && line[v] == '"') {
            value.push_back('"');
            ++v;
            while (v < n) {
                if (line[v] == '\\' && v + 1 < n) {
                    value.append(line, v, 2);
                    v += 2;
                    continue;
                }
                value.push_back(line[v]);
                if (line[v] == '"') {
                    ++v;
                    break;
                }
                ++v;
            }
        } else {
            while (v < n && line[v] != ',' && line[v] != '}')
                value.push_back(line[v++]);
        }
        fields.emplace_back(key, value);
        i = v + 1;
    }
    return fields;
}

TEST(EventLog, JsonlRecordsMatchGoldenSchema)
{
    auto &log = telemetry::EventLog::instance();
    const std::string path =
        "/tmp/hq_event_log_test_" + std::to_string(::getpid()) + ".jsonl";
    ASSERT_TRUE(log.open(path));

    telemetry::EventRecord violation;
    violation.type = telemetry::EventType::Violation;
    violation.pid = 7;
    violation.policy = "cfi";
    violation.op = "POINTER-CHECK";
    violation.arg0 = 4096;
    violation.arg1 = 0xBEEF;
    violation.seq = 3;
    violation.lag_ns = 123;
    violation.reason = "bad pointer";
    log.append(violation);

    telemetry::EventRecord timeout;
    timeout.type = telemetry::EventType::EpochTimeout;
    timeout.pid = 8;
    timeout.op = "Syscall";
    timeout.arg0 = 59;
    timeout.reason = "epoch \"expired\"\n"; // escaping exercise
    log.append(timeout);

    log.close();
    EXPECT_EQ(log.recorded(), 2u);

    std::ifstream in(path);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);

    expectSchema(lines[0]);
    expectSchema(lines[1]);
    EXPECT_NE(lines[0].find("\"type\":\"violation\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"pid\":7,\"shard\":-1,\"policy\":\"cfi\","
                            "\"op\":\"POINTER-CHECK\",\"arg0\""
                            ":4096,\"arg1\":48879,\"seq\":3,\"lag_ns\""
                            ":123,\"reason\":\"bad pointer\"}"),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"type\":\"epoch_timeout\""),
              std::string::npos);
    // The reason's quote and newline must be escaped, keeping one
    // record per line.
    EXPECT_NE(lines[1].find("epoch \\\"expired\\\"\\n"),
              std::string::npos);
    std::remove(path.c_str());
}

/**
 * Golden-file schema test: the checked-in fixture in tests/data/ is the
 * schema contract. Each produced record is diffed against its fixture
 * line field-by-field (names, order, and values; `<any>` in the fixture
 * wildcards the timestamps), so any drift — a renamed key, a reordered
 * field, a changed value encoding — fails with the exact field named,
 * instead of silently passing a substring/regex check.
 */
TEST(EventLog, JsonlRecordsMatchCheckedInGoldenFile)
{
    auto &log = telemetry::EventLog::instance();
    const std::string path =
        "/tmp/hq_event_log_golden_" + std::to_string(::getpid()) +
        ".jsonl";
    ASSERT_TRUE(log.open(path));

    // The same inputs the fixture was generated from.
    telemetry::EventRecord violation;
    violation.type = telemetry::EventType::Violation;
    violation.pid = 7;
    violation.shard = 2;
    violation.policy = "cfi";
    violation.op = "POINTER-CHECK";
    violation.arg0 = 4096;
    violation.arg1 = 0xBEEF;
    violation.seq = 3;
    violation.lag_ns = 123;
    violation.reason = "bad pointer";
    log.append(violation);

    telemetry::EventRecord timeout;
    timeout.type = telemetry::EventType::EpochTimeout;
    timeout.pid = 8;
    timeout.op = "Syscall";
    timeout.arg0 = 59;
    timeout.reason = "epoch \"expired\"\n";
    log.append(timeout);

    telemetry::EventRecord silent;
    silent.type = telemetry::EventType::SilentAccept;
    silent.pid = 41;
    silent.shard = 0;
    silent.arg0 = 5;
    silent.reason = "injected fault saw no detector fire";
    log.append(silent);

    log.close();

    std::ifstream produced_in(path);
    std::vector<std::string> produced;
    for (std::string line; std::getline(produced_in, line);)
        produced.push_back(line);
    std::remove(path.c_str());

    std::ifstream golden_in(std::string(HQ_TEST_DATA_DIR) +
                            "/event_log_golden.jsonl");
    ASSERT_TRUE(golden_in.is_open())
        << "fixture tests/data/event_log_golden.jsonl missing";
    std::vector<std::string> golden;
    for (std::string line; std::getline(golden_in, line);)
        golden.push_back(line);

    ASSERT_EQ(produced.size(), golden.size());
    for (std::size_t i = 0; i < produced.size(); ++i) {
        const auto got = parseFields(produced[i]);
        const auto want = parseFields(golden[i]);
        ASSERT_EQ(got.size(), want.size())
            << "record " << i << " field count drifted: " << produced[i];
        for (std::size_t f = 0; f < got.size(); ++f) {
            EXPECT_EQ(got[f].first, want[f].first)
                << "record " << i << " field " << f
                << ": key drifted (order or name)";
            if (want[f].second == "<any>")
                continue; // timestamp: value is volatile by design
            EXPECT_EQ(got[f].second, want[f].second)
                << "record " << i << " field \"" << got[f].first
                << "\": value drifted";
        }
    }
}

TEST(EventLog, VerifierViolationProducesOneRecord)
{
    TelemetryOn on;
    auto &log = telemetry::EventLog::instance();
    const std::string path =
        "/tmp/hq_event_log_verifier_" + std::to_string(::getpid()) +
        ".jsonl";
    ASSERT_TRUE(log.open(path));

    constexpr Pid kPid = 13;
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.kill_on_violation = false;
    Verifier verifier(kernel, policy, config);
    kernel.enableProcess(kPid);

    ShmChannel channel(1 << 8);
    verifier.attachChannel(&channel, kPid);

    channel.send(Message(Opcode::PointerDefine, 0x40, 0xAA));
    channel.send(Message(Opcode::PointerCheck, 0x40, 0xAA));
    channel.send(Message(Opcode::PointerCheck, 0x40, 0xBAD));
    EXPECT_EQ(verifier.poll(), 3u);
    log.close();

    std::ifstream in(path);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 1u);
    expectSchema(lines[0]);
    EXPECT_NE(lines[0].find("\"type\":\"violation\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"pid\":13"), std::string::npos);
    EXPECT_NE(lines[0].find("\"op\":\"POINTER-CHECK\""),
              std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace hq
