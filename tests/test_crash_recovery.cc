/**
 * @file
 * Verifier crash and restart: the fail-closed story end to end.
 *
 * HerQules' security argument requires that a dead verifier never
 * silently degrades enforcement (§3.4): with nobody to ack System-Call
 * messages, the kernel epoch timeout must deny the monitored program's
 * next syscall. Recovery is a *new* verifier that re-attaches the
 * channels, rebuilds per-process policy state via
 * KernelModule::replayProcessesTo, and resyncs to the live sequence
 * stream without reporting a spurious gap.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>

#include "faultinject/fault.h"
#include "ipc/shm_channel.h"
#include "kernel/kernel.h"
#include "policy/ifc.h"
#include "policy/pointer_integrity.h"
#include "policy/policy_module.h"
#include "telemetry/event_log.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

namespace fi = faultinject;

constexpr Pid kPid = 91;

KernelModule::Config
fastEpochConfig()
{
    KernelModule::Config config;
    config.epoch = std::chrono::milliseconds(100);
    config.spin = std::chrono::microseconds(10);
    return config;
}

Verifier::Config
checkingConfig()
{
    Verifier::Config config;
    config.kill_on_violation = false;
    config.check_sequence = true;
    return config;
}

class CrashRecoveryTest : public ::testing::Test
{
  protected:
    void SetUp() override { fi::disarmAll(); }
    void TearDown() override { fi::disarmAll(); }
};

TEST_F(CrashRecoveryTest, CrashAtMessageNStopsAllProcessing)
{
    KernelModule kernel(fastEpochConfig());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy, checkingConfig());
    kernel.enableProcess(kPid);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, kPid);

    // Crash exactly while handling the 6th message.
    fi::FaultPlan::instance().arm(fi::Site::VerifierCrash, 1.0,
                                  /*after_n=*/5, /*max_fires=*/1);
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(
            channel.send(Message(Opcode::PointerDefine, 0x100 + i, i))
                .isOk());
    verifier.poll();

    EXPECT_TRUE(verifier.crashed());
    EXPECT_EQ(verifier.statsFor(kPid).messages, 5u)
        << "messages past the crash point must not be processed";
    // A dead verifier verifies nothing, ever.
    ASSERT_TRUE(
        channel.send(Message(Opcode::PointerCheck, 0x100, 0)).isOk());
    EXPECT_EQ(verifier.poll(), 0u);
}

TEST_F(CrashRecoveryTest, SyscallAfterCrashIsDeniedWithinEpochTimeout)
{
    KernelModule kernel(fastEpochConfig());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy, checkingConfig());
    kernel.enableProcess(kPid);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, kPid);

    fi::FaultPlan::instance().arm(fi::Site::VerifierCrash, 1.0,
                                  /*after_n=*/0, /*max_fires=*/1);
    ASSERT_TRUE(channel.send(Message(Opcode::Syscall, 1, 0)).isOk());
    verifier.poll();
    ASSERT_TRUE(verifier.crashed());

    // The System-Call message died with the verifier: no ack will ever
    // arrive, so the pause must end in denial at the epoch — fail
    // closed, bounded in time.
    const auto start = std::chrono::steady_clock::now();
    const Status status =
        kernel.syscallEnter(kPid, 1, /*spin_fast_path=*/false);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::PolicyViolation);
    EXPECT_EQ(kernel.statsFor(kPid).epoch_timeouts, 1u);
    EXPECT_LE(elapsed, 10 * fastEpochConfig().epoch)
        << "denial must arrive within a bounded number of epochs";
}

TEST_F(CrashRecoveryTest, RestartReplaysReattachesAndResyncsSequence)
{
    KernelModule kernel(fastEpochConfig());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    ShmChannel channel(1 << 10);

    auto crashed = std::make_unique<Verifier>(kernel, policy,
                                              checkingConfig());
    kernel.enableProcess(kPid); // delivered to `crashed` (the listener)
    crashed->attachChannel(&channel, kPid);
    fi::FaultPlan::instance().arm(fi::Site::VerifierCrash, 1.0,
                                  /*after_n=*/5, /*max_fires=*/1);
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(
            channel.send(Message(Opcode::PointerDefine, 0x100 + i, i))
                .isOk());
    crashed->poll();
    ASSERT_TRUE(crashed->crashed());
    fi::disarmAll();

    // Restart: a new verifier takes over the kernel listener slot,
    // rebuilds per-process policy contexts from the kernel's live set,
    // and re-attaches the same channel.
    Verifier restarted(kernel, policy, checkingConfig());
    EXPECT_EQ(kernel.replayProcessesTo(&restarted), 1u);
    restarted.attachChannel(&channel, kPid);

    // New traffic continues the sender's sequence counter (the crashed
    // verifier consumed seqs 0..9). The restarted verifier must adopt
    // the live stream as its baseline, not report a spurious gap.
    ASSERT_TRUE(
        channel.send(Message(Opcode::PointerDefine, 0x500, 0xAA)).isOk());
    ASSERT_TRUE(
        channel.send(Message(Opcode::PointerCheck, 0x500, 0xAA)).isOk());
    restarted.poll();
    const auto stats = restarted.statsFor(kPid);
    EXPECT_EQ(stats.messages, 2u);
    EXPECT_EQ(stats.violations, 0u)
        << "restart resync must not flag a false sequence gap";

    // And enforcement is live again: a Syscall message gets acked and
    // the kernel pause resolves to Ok.
    ASSERT_TRUE(channel.send(Message(Opcode::Syscall, 1, 0)).isOk());
    restarted.poll();
    const Status status =
        kernel.syscallEnter(kPid, 1, /*spin_fast_path=*/false);
    EXPECT_TRUE(status.isOk()) << status.toString();
    EXPECT_EQ(restarted.statsFor(kPid).syscall_acks, 1u);

    // The old verifier's destructor must not clobber the replacement's
    // listener registration (clearListener is conditional).
    crashed.reset();
    kernel.exitProcess(kPid); // delivered to `restarted`, no crash
}

TEST_F(CrashRecoveryTest, ReplayEmitsVerifierRestartRecord)
{
    const std::string path =
        ::testing::TempDir() + "crash_recovery_restart.jsonl";
    ASSERT_TRUE(telemetry::EventLog::instance().open(path));

    KernelModule kernel(fastEpochConfig());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    kernel.enableProcess(kPid);
    Verifier restarted(kernel, policy, checkingConfig());
    EXPECT_EQ(kernel.replayProcessesTo(&restarted), 1u);
    telemetry::EventLog::instance().close();

    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("\"type\":\"verifier_restart\""),
              std::string::npos)
        << contents;
    std::remove(path.c_str());
}

TEST_F(CrashRecoveryTest, StopAndDestroyAfterCrashInEventLoopIsSafe)
{
    KernelModule kernel(fastEpochConfig());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    kernel.enableProcess(kPid);
    ShmChannel channel(1 << 10);
    {
        Verifier verifier(kernel, policy, checkingConfig());
        verifier.attachChannel(&channel, kPid);
        verifier.start();

        fi::FaultPlan::instance().arm(fi::Site::VerifierCrash, 1.0,
                                      /*after_n=*/0, /*max_fires=*/1);
        ASSERT_TRUE(
            channel.send(Message(Opcode::PointerDefine, 0x1, 0x2))
                .isOk());
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (!verifier.crashed() &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ASSERT_TRUE(verifier.crashed());

        // The injected crash cleared _running from inside the event
        // loop; stop() and the destructor must still join the thread
        // instead of leaking it joinable (std::terminate).
        verifier.stop();
    } // destructor runs here — must not terminate
    SUCCEED();
}

TEST_F(CrashRecoveryTest, KillOnVerifierExitKillsProcessesAfterCrash)
{
    KernelModule kernel(fastEpochConfig());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config = checkingConfig();
    config.kill_on_verifier_exit = true;
    Verifier verifier(kernel, policy, config);
    kernel.enableProcess(kPid);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, kPid);

    fi::FaultPlan::instance().arm(fi::Site::VerifierCrash, 1.0,
                                  /*after_n=*/0, /*max_fires=*/1);
    ASSERT_TRUE(
        channel.send(Message(Opcode::PointerDefine, 0x1, 0x2)).isOk());
    verifier.poll();
    ASSERT_TRUE(verifier.crashed());

    // Without a verifier no violations can be detected: shutting down
    // must take the monitored processes with it (paper §3.4 default).
    verifier.stop();
    EXPECT_TRUE(kernel.isKilled(kPid));
    const Status status =
        kernel.syscallEnter(kPid, 1, /*spin_fast_path=*/false);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::PolicyViolation);
}

// ---------------------------------------------------------------------
// Crash recovery under bounded speculation (DESIGN.md §13)
// ---------------------------------------------------------------------

TEST_F(CrashRecoveryTest, CrashDropsPendingBatchedAcksFailClosed)
{
    // Acks are queued per drained message and flushed once per poll
    // round. A crash inside the round must drop the whole pending batch
    // unsent: an ack credited by a half-processed round would resume a
    // syscall nobody fully validated.
    KernelModule kernel(fastEpochConfig());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy, checkingConfig());
    kernel.enableProcess(kPid);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, kPid);

    // The Syscall message is handled (ack queued), then the crash fires
    // on the next message — before the round's flush.
    fi::FaultPlan::instance().arm(fi::Site::VerifierCrash, 1.0,
                                  /*after_n=*/1, /*max_fires=*/1);
    ASSERT_TRUE(channel.send(Message(Opcode::Syscall, 1, 0)).isOk());
    ASSERT_TRUE(
        channel.send(Message(Opcode::PointerDefine, 0x100, 0)).isOk());
    verifier.poll();
    ASSERT_TRUE(verifier.crashed());

    const Status status =
        kernel.syscallEnter(kPid, 1, /*spin_fast_path=*/false);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::PolicyViolation);
    EXPECT_EQ(kernel.statsFor(kPid).epoch_timeouts, 1u);
}

TEST_F(CrashRecoveryTest, SpeculationDepthSurvivesCrashAndReplay)
{
    // In-flight speculation lives in the kernel's per-process context,
    // so a verifier death must neither erase it (the retired-but-unacked
    // syscalls happened) nor let it grow past the window while nobody is
    // acking. A restarted verifier's acks drain the carried-over depth.
    KernelModule::Config kconfig = fastEpochConfig();
    kconfig.speculation_window = 4;
    KernelModule kernel(kconfig);
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    ShmChannel channel(1 << 10);

    auto crashed = std::make_unique<Verifier>(kernel, policy,
                                              checkingConfig());
    kernel.enableProcess(kPid);
    crashed->attachChannel(&channel, kPid);

    // Two syscalls retire ahead of their acks, then the verifier dies
    // before validating anything.
    ASSERT_TRUE(kernel.syscallEnter(kPid, 1).isOk());
    ASSERT_TRUE(kernel.syscallEnter(kPid, 1).isOk());
    ASSERT_EQ(kernel.speculationDepth(kPid), 2u);
    fi::FaultPlan::instance().arm(fi::Site::VerifierCrash, 1.0,
                                  /*after_n=*/0, /*max_fires=*/1);
    ASSERT_TRUE(channel.send(Message(Opcode::Syscall, 1, 0)).isOk());
    crashed->poll();
    ASSERT_TRUE(crashed->crashed());
    fi::disarmAll();

    // The crash changed nothing about what already retired.
    EXPECT_EQ(kernel.speculationDepth(kPid), 2u);

    // Restart and replay: the carried-over depth is visible to the new
    // verifier via the kernel, and fresh sync messages drain it.
    Verifier restarted(kernel, policy, checkingConfig());
    EXPECT_EQ(kernel.replayProcessesTo(&restarted), 1u);
    restarted.attachChannel(&channel, kPid);
    EXPECT_EQ(kernel.speculationDepth(kPid), 2u)
        << "replay must not invent or drop acks";

    ASSERT_TRUE(channel.send(Message(Opcode::Syscall, 1, 0)).isOk());
    ASSERT_TRUE(channel.send(Message(Opcode::Syscall, 1, 0)).isOk());
    restarted.poll();
    EXPECT_EQ(kernel.speculationDepth(kPid), 0u);

    // Fully caught up: even a barrier syscall (strict catch-up) passes
    // once its own sync message is acked.
    ASSERT_TRUE(channel.send(Message(Opcode::Syscall, 59, 0)).isOk());
    restarted.poll();
    EXPECT_TRUE(kernel.syscallEnter(kPid, 59).isOk());

    crashed.reset();
    kernel.exitProcess(kPid);
}

// ---------------------------------------------------------------------
// IFC label-state recovery (policy diversity: the second table family)
// ---------------------------------------------------------------------

std::shared_ptr<MultiPolicy>
cfiPlusIfcPolicy()
{
    auto multi = std::make_shared<MultiPolicy>();
    multi->addPolicy(std::make_unique<PointerIntegrityPolicy>());
    multi->addPolicy(std::make_unique<IfcPolicy>());
    return multi;
}

IfcContext *
ifcContextOf(Verifier &verifier, Pid pid)
{
    auto *multi = static_cast<MultiPolicyContext *>(verifier.contextFor(pid));
    return multi == nullptr
               ? nullptr
               : static_cast<IfcContext *>(multi->contextFor("ifc"));
}

/**
 * A deterministic label workload: definitions across two facets, join
 * chains, a declassification, and passing sink checks — enough shape
 * that a half-applied table cannot collide with the full one.
 */
std::vector<Message>
labelStream()
{
    std::vector<Message> stream;
    for (int i = 0; i < 10; ++i)
        stream.push_back(
            Message(Opcode::LabelDef, 0x1000 + 8 * i, label::kSecret));
    for (int i = 0; i < 5; ++i)
        stream.push_back(
            Message(Opcode::LabelDef, 0x2000 + 8 * i, label::kTainted));
    // Propagation chains off both facets, converging at 0x5000.
    stream.push_back(Message(Opcode::LabelJoin, 0x1000, 0x3000));
    stream.push_back(Message(Opcode::LabelJoin, 0x3000, 0x3008));
    stream.push_back(Message(Opcode::LabelJoin, 0x2000, 0x5000));
    stream.push_back(Message(Opcode::LabelJoin, 0x3008, 0x5000));
    // Declassify one source; its entry must vanish from the table.
    stream.push_back(Message(Opcode::LabelDef, 0x1048, label::kPublic));
    // Sink checks that pass (unlabeled address / non-forbidden facet).
    stream.push_back(Message(Opcode::LabelCheck, 0x9000, label::kSecret));
    stream.push_back(Message(Opcode::LabelCheck, 0x2000, label::kSecret));
    return stream;
}

TEST_F(CrashRecoveryTest, IfcLabelTableReconstructsBitIdenticallyOnReplay)
{
    // Reference: an uncrashed verifier processes the whole label stream.
    const std::vector<Message> stream = labelStream();
    std::uint64_t reference_fingerprint = 0;
    std::vector<std::pair<Addr, std::uint64_t>> reference_table;
    {
        KernelModule kernel(fastEpochConfig());
        Verifier verifier(kernel, cfiPlusIfcPolicy(), checkingConfig());
        kernel.enableProcess(kPid);
        ShmChannel channel(1 << 10);
        verifier.attachChannel(&channel, kPid);
        for (const Message &message : stream)
            ASSERT_TRUE(channel.send(message).isOk());
        verifier.poll();
        IfcContext *ifc = ifcContextOf(verifier, kPid);
        ASSERT_NE(ifc, nullptr);
        ASSERT_GT(ifc->entryCount(), 0u);
        reference_fingerprint = ifc->tableFingerprint();
        reference_table = ifc->tableSnapshot();
    }

    // Crash mid-epoch with live labels: the fault fires while the label
    // table is half-built.
    KernelModule kernel(fastEpochConfig());
    ShmChannel channel(1 << 10);
    auto crashed = std::make_unique<Verifier>(kernel, cfiPlusIfcPolicy(),
                                              checkingConfig());
    kernel.enableProcess(kPid);
    crashed->attachChannel(&channel, kPid);
    fi::FaultPlan::instance().arm(fi::Site::VerifierCrash, 1.0,
                                  /*after_n=*/7, /*max_fires=*/1);
    for (const Message &message : stream)
        ASSERT_TRUE(channel.send(message).isOk());
    crashed->poll();
    ASSERT_TRUE(crashed->crashed());
    fi::disarmAll();

    IfcContext *partial = ifcContextOf(*crashed, kPid);
    ASSERT_NE(partial, nullptr);
    EXPECT_NE(partial->tableFingerprint(), reference_fingerprint)
        << "crash should have left a partially built label table";

    // Restart: fresh contexts via the kernel's replay, then the sender
    // republishes its label state (the runtime knows every definition it
    // made; reconstruction = replaying them onto the empty slice).
    Verifier restarted(kernel, cfiPlusIfcPolicy(), checkingConfig());
    EXPECT_EQ(kernel.replayProcessesTo(&restarted), 1u);
    restarted.attachChannel(&channel, kPid);
    IfcContext *rebuilt = ifcContextOf(restarted, kPid);
    ASSERT_NE(rebuilt, nullptr);
    EXPECT_EQ(rebuilt->entryCount(), 0u)
        << "replayProcessesTo must mint a fresh, empty label slice";

    for (const Message &message : stream)
        ASSERT_TRUE(channel.send(message).isOk());
    restarted.poll();

    EXPECT_EQ(restarted.statsFor(kPid).violations, 0u)
        << "replaying a clean label stream must not flag violations";
    EXPECT_EQ(rebuilt->tableFingerprint(), reference_fingerprint)
        << "replayed label table diverged from the uncrashed reference";
    EXPECT_EQ(rebuilt->tableSnapshot(), reference_table)
        << "fingerprints collided but bindings differ";

    crashed.reset();
    kernel.exitProcess(kPid);
}

TEST_F(CrashRecoveryTest, IfcReplayConvergesFromAnyCrashPoint)
{
    // Sweep the crash point across the stream: wherever the verifier
    // dies, fresh-context replay converges to the same fingerprint.
    const std::vector<Message> stream = labelStream();
    std::uint64_t reference_fingerprint = 0;
    {
        KernelModule kernel(fastEpochConfig());
        Verifier verifier(kernel, cfiPlusIfcPolicy(), checkingConfig());
        kernel.enableProcess(kPid);
        ShmChannel channel(1 << 10);
        verifier.attachChannel(&channel, kPid);
        for (const Message &message : stream)
            ASSERT_TRUE(channel.send(message).isOk());
        verifier.poll();
        reference_fingerprint =
            ifcContextOf(verifier, kPid)->tableFingerprint();
    }

    for (std::size_t crash_at = 1; crash_at < stream.size();
         crash_at += 5) {
        KernelModule kernel(fastEpochConfig());
        ShmChannel channel(1 << 10);
        auto crashed = std::make_unique<Verifier>(
            kernel, cfiPlusIfcPolicy(), checkingConfig());
        kernel.enableProcess(kPid);
        crashed->attachChannel(&channel, kPid);
        fi::FaultPlan::instance().arm(fi::Site::VerifierCrash, 1.0,
                                      crash_at, /*max_fires=*/1);
        for (const Message &message : stream)
            ASSERT_TRUE(channel.send(message).isOk());
        crashed->poll();
        ASSERT_TRUE(crashed->crashed()) << "crash_at=" << crash_at;
        fi::disarmAll();

        Verifier restarted(kernel, cfiPlusIfcPolicy(), checkingConfig());
        ASSERT_EQ(kernel.replayProcessesTo(&restarted), 1u);
        restarted.attachChannel(&channel, kPid);
        for (const Message &message : stream)
            ASSERT_TRUE(channel.send(message).isOk());
        restarted.poll();
        EXPECT_EQ(ifcContextOf(restarted, kPid)->tableFingerprint(),
                  reference_fingerprint)
            << "replay diverged when crashing at message " << crash_at;

        crashed.reset();
        kernel.exitProcess(kPid);
    }
}

} // namespace
} // namespace hq
