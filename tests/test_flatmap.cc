/**
 * @file
 * Unit and property tests for the open-addressed FlatMap that backs the
 * policy hot tables, plus the shared roundUpPow2 helper it sizes itself
 * with. Registered with TEST_PREFIX flatmap. so `ctest -R flatmap`
 * selects the whole suite.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <unordered_map>
#include <vector>

#include "common/bits.h"
#include "common/flat_map.h"

namespace hq {
namespace {

TEST(FlatMap, EmptyOnConstruction)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_FALSE(map.contains(42));
    EXPECT_FALSE(map.erase(42));
}

TEST(FlatMap, InsertFindEraseRoundTrip)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    EXPECT_TRUE(map.insertOrAssign(0x1000, 7));
    EXPECT_FALSE(map.insertOrAssign(0x1000, 8)); // overwrite, not insert
    ASSERT_NE(map.find(0x1000), nullptr);
    EXPECT_EQ(*map.find(0x1000), 8u);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_TRUE(map.erase(0x1000));
    EXPECT_EQ(map.find(0x1000), nullptr);
    EXPECT_TRUE(map.empty());
}

TEST(FlatMap, SubscriptDefaultConstructsAndAccumulates)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    EXPECT_EQ(map[5], 0u);
    map[5] += 3;
    map[5] += 4;
    EXPECT_EQ(map[5], 7u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, GrowsPastInitialCapacityAndKeepsEntries)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    const std::size_t initial = map.capacity();
    for (std::uint64_t i = 0; i < 10000; ++i)
        map.insertOrAssign(i * 16, i); // aligned-address-like keys
    EXPECT_GT(map.capacity(), initial);
    EXPECT_EQ(map.size(), 10000u);
    for (std::uint64_t i = 0; i < 10000; ++i) {
        const std::uint64_t *value = map.find(i * 16);
        ASSERT_NE(value, nullptr) << "key " << i * 16;
        EXPECT_EQ(*value, i);
    }
}

TEST(FlatMap, ClearResetsButStaysUsable)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t i = 0; i < 100; ++i)
        map.insertOrAssign(i, i);
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(50), nullptr);
    map.insertOrAssign(1, 2);
    EXPECT_EQ(*map.find(1), 2u);
}

TEST(FlatMap, ReserveAvoidsRehashDuringFill)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    map.reserve(5000);
    const std::size_t reserved = map.capacity();
    for (std::uint64_t i = 0; i < 5000; ++i)
        map.insertOrAssign(i, i);
    EXPECT_EQ(map.capacity(), reserved);
}

TEST(FlatMap, ForEachVisitsEveryEntryOnce)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t i = 0; i < 500; ++i)
        map.insertOrAssign(i, i * 2);
    std::unordered_map<std::uint64_t, std::uint64_t> seen;
    map.forEach([&](std::uint64_t key, std::uint64_t value) {
        EXPECT_EQ(seen.count(key), 0u) << "visited twice";
        seen[key] = value;
    });
    EXPECT_EQ(seen.size(), 500u);
    for (const auto &[key, value] : seen)
        EXPECT_EQ(value, key * 2);
}

/** Hash forcing every key into the same home bucket. */
struct CollidingHash
{
    std::size_t operator()(std::uint64_t) const { return 0; }
};

TEST(FlatMap, BackwardShiftEraseKeepsChainReachable)
{
    // All keys share one probe chain; erasing from the middle must
    // re-pack it (no tombstones) without losing any survivor.
    FlatMap<std::uint64_t, std::uint64_t, CollidingHash> map;
    for (std::uint64_t i = 0; i < 8; ++i)
        map.insertOrAssign(i, i + 100);

    EXPECT_TRUE(map.erase(3));
    EXPECT_TRUE(map.erase(0));
    EXPECT_TRUE(map.erase(7));
    EXPECT_EQ(map.size(), 5u);
    for (std::uint64_t i : {1u, 2u, 4u, 5u, 6u}) {
        const std::uint64_t *value = map.find(i);
        ASSERT_NE(value, nullptr) << "key " << i << " lost by erase";
        EXPECT_EQ(*value, i + 100);
    }
    for (std::uint64_t i : {0u, 3u, 7u})
        EXPECT_EQ(map.find(i), nullptr);

    // Chain survives further churn on the packed layout.
    map.insertOrAssign(3, 203);
    EXPECT_EQ(*map.find(3), 203u);
    EXPECT_EQ(*map.find(6), 106u);
}

TEST(FlatMap, WrappingChainEraseAcrossArrayBoundary)
{
    // With a colliding hash the chain starts at slot 0; deleting and
    // reinserting enough keys exercises the (probe - home) & mask
    // distance arithmetic when the chain wraps the array end.
    FlatMap<std::uint64_t, std::uint64_t, CollidingHash> map;
    for (std::uint64_t round = 0; round < 50; ++round) {
        for (std::uint64_t i = 0; i < 10; ++i)
            map.insertOrAssign(i, round * 100 + i);
        for (std::uint64_t i = 0; i < 10; i += 2)
            EXPECT_TRUE(map.erase(i));
        for (std::uint64_t i = 1; i < 10; i += 2) {
            ASSERT_NE(map.find(i), nullptr);
            EXPECT_EQ(*map.find(i), round * 100 + i);
        }
        for (std::uint64_t i = 1; i < 10; i += 2)
            EXPECT_TRUE(map.erase(i));
        EXPECT_TRUE(map.empty());
    }
}

TEST(FlatMap, PropertyMatchesUnorderedMapUnderRandomChurn)
{
    // Model-based property test: a long random sequence of insert /
    // overwrite / erase / lookup must leave FlatMap and
    // std::unordered_map in agreement at every step.
    std::mt19937_64 rng(0xC0FFEE);
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> model;

    // Small key space so collisions-in-time (reuse after erase) happen.
    std::uniform_int_distribution<std::uint64_t> key_dist(0, 511);
    std::uniform_int_distribution<int> op_dist(0, 99);

    for (int step = 0; step < 100000; ++step) {
        const std::uint64_t key = key_dist(rng) * 8; // aligned-ish keys
        const int op = op_dist(rng);
        if (op < 45) {
            const std::uint64_t value = rng();
            EXPECT_EQ(map.insertOrAssign(key, value),
                      model.insert_or_assign(key, value).second);
        } else if (op < 70) {
            EXPECT_EQ(map.erase(key), model.erase(key) > 0);
        } else {
            const std::uint64_t *value = map.find(key);
            auto it = model.find(key);
            if (it == model.end()) {
                EXPECT_EQ(value, nullptr);
            } else {
                ASSERT_NE(value, nullptr);
                EXPECT_EQ(*value, it->second);
            }
        }
        ASSERT_EQ(map.size(), model.size());
    }

    // Final full sweep both directions.
    for (const auto &[key, value] : model) {
        ASSERT_NE(map.find(key), nullptr);
        EXPECT_EQ(*map.find(key), value);
    }
    std::size_t visited = 0;
    map.forEach([&](std::uint64_t key, std::uint64_t value) {
        auto it = model.find(key);
        ASSERT_NE(it, model.end());
        EXPECT_EQ(it->second, value);
        ++visited;
    });
    EXPECT_EQ(visited, model.size());
}

TEST(FlatMap, CopyIsIndependent)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t i = 0; i < 64; ++i)
        map.insertOrAssign(i, i);
    FlatMap<std::uint64_t, std::uint64_t> copy = map;
    copy.erase(5);
    copy.insertOrAssign(100, 100);
    EXPECT_NE(map.find(5), nullptr);   // original untouched
    EXPECT_EQ(map.find(100), nullptr);
    EXPECT_EQ(copy.find(5), nullptr);
    EXPECT_EQ(map.size(), 64u);
    EXPECT_EQ(copy.size(), 64u);
}

TEST(FlatMap, FindBatchMatchesScalarFind)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::mt19937_64 rng(0xBA7C4);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t key = rng();
        map.insertOrAssign(key, key ^ 0x5555);
        keys.push_back(key);
    }
    // Mix in misses and duplicates — the batched probe must behave
    // exactly like find() on every element, in order.
    for (int i = 0; i < 100; ++i)
        keys.push_back(rng());
    keys.push_back(keys[0]);
    std::shuffle(keys.begin(), keys.end(), rng);

    std::vector<std::uint64_t *> out(keys.size());
    map.findBatch(keys.data(), keys.size(), out.data());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        std::uint64_t *scalar = map.find(keys[i]);
        EXPECT_EQ(out[i], scalar) << "i=" << i;
        if (scalar != nullptr)
            EXPECT_EQ(*out[i], keys[i] ^ 0x5555);
    }
}

TEST(FlatMap, FindBatchHandlesEmptyAndOddSizes)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    map.findBatch(nullptr, 0, nullptr); // no-op, must not touch out

    map.insertOrAssign(1, 10);
    // Sizes around the internal prefetch stride (16).
    for (std::size_t n : {std::size_t{1}, std::size_t{15}, std::size_t{16},
                          std::size_t{17}, std::size_t{33}}) {
        std::vector<std::uint64_t> keys(n, 1);
        keys.back() = 999; // miss in the final lane
        std::vector<std::uint64_t *> out(n);
        map.findBatch(keys.data(), n, out.data());
        for (std::size_t i = 0; i + 1 < n; ++i) {
            ASSERT_NE(out[i], nullptr);
            EXPECT_EQ(*out[i], 10u);
        }
        EXPECT_EQ(out[n - 1], n > 1 ? nullptr : out[0]);
    }
}

TEST(FlatMap, PrefetchIsPureHint)
{
    // prefetch() must not change observable state — not on hits, not on
    // misses, not on an empty map.
    FlatMap<std::uint64_t, std::uint64_t> map;
    map.prefetch(7);
    EXPECT_TRUE(map.empty());
    map.insertOrAssign(7, 70);
    map.prefetch(7);   // hit
    map.prefetch(8);   // miss
    EXPECT_EQ(map.size(), 1u);
    ASSERT_NE(map.find(7), nullptr);
    EXPECT_EQ(*map.find(7), 70u);
    EXPECT_EQ(map.find(8), nullptr);
}

TEST(MixHash64, SpreadsAlignedKeysAcrossLowBits)
{
    // Shadow-store keys are 8/16-byte aligned; an identity hash would
    // leave the low bits (the bucket index) striding. The mixed hash
    // must populate many distinct low-bit patterns.
    std::unordered_map<std::uint64_t, int> buckets;
    for (std::uint64_t i = 0; i < 1024; ++i)
        ++buckets[mixHash64(0x7f0000000000ULL + i * 16) & 1023];
    EXPECT_GT(buckets.size(), 600u); // ~1 - 1/e of 1024 for a good mix
}

TEST(RoundUpPow2, SmallValues)
{
    EXPECT_EQ(roundUpPow2(0), 1u);
    EXPECT_EQ(roundUpPow2(1), 1u);
    EXPECT_EQ(roundUpPow2(2), 2u);
    EXPECT_EQ(roundUpPow2(3), 4u);
    EXPECT_EQ(roundUpPow2(1000), 1024u);
    EXPECT_EQ(roundUpPow2(1024), 1024u);
    EXPECT_EQ(roundUpPow2(1025), 2048u);
}

TEST(RoundUpPow2, HugeValuesClampInsteadOfOverflowing)
{
    // The seed version looped forever past the top power of two; the
    // shared helper clamps to the largest representable power instead.
    constexpr std::size_t top =
        std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
    EXPECT_EQ(roundUpPow2(top), top);
    EXPECT_EQ(roundUpPow2(top + 1), top);
    EXPECT_EQ(roundUpPow2(~std::size_t{0}), top);
}

} // namespace
} // namespace hq
