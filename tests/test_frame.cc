/**
 * @file
 * Wire format v2: CRC kernel parity, frame codec round-trip and
 * fail-closed properties, atomic frame publication, zero-copy drain,
 * and the end-to-end verifier path — v1-vs-v2 behavioral parity plus
 * chaos assertions that corrupt frames are never silently accepted.
 *
 * The CRC parity suite is the contract that lets the dispatcher pick
 * any backend: scalar is the oracle, and slice8/pclmul must agree with
 * it bit-for-bit on random, adversarial, unaligned, and chunk-split
 * inputs before they are allowed near the wire.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "faultinject/fault.h"
#include "ipc/frame.h"
#include "ipc/message.h"
#include "ipc/shm_channel.h"
#include "ipc/spsc_ring.h"
#include "kernel/kernel.h"
#include "policy/pointer_integrity.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

namespace fi = faultinject;

constexpr Pid kPid = 42;

// --------------------------------------------------------------------
// CRC32 kernel: known answers and implementation parity.
// --------------------------------------------------------------------

TEST(FrameCrc, KnownAnswerVectors)
{
    // The standard CRC-32 check value ("123456789" -> 0xCBF43926) pins
    // the polynomial, reflection, and inversion conventions; zlib's
    // crc32() produces exactly these.
    EXPECT_EQ(crc32::scalar(0, "123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32::scalar(0, "", 0), 0u);
    EXPECT_EQ(crc32::scalar(0, "a", 1), 0xE8B7BE43u);
    const unsigned char ff[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    EXPECT_EQ(crc32::scalar(0, ff, 4), 0xFFFFFFFFu);
}

/** Buffers that historically break CRC implementations. */
std::vector<std::vector<unsigned char>>
adversarialBuffers()
{
    std::vector<std::vector<unsigned char>> buffers;
    buffers.push_back({});                                  // empty
    buffers.emplace_back(1, 0x00);                          // single zero
    buffers.emplace_back(7, 0xFF);                          // < one word
    buffers.emplace_back(8, 0xAA);                          // exactly 8
    buffers.emplace_back(63, 0x55);                         // pclmul-1
    buffers.emplace_back(64, 0x00);                         // pclmul min
    buffers.emplace_back(65, 0xFF);                         // pclmul+1
    buffers.emplace_back(127, 0x01);
    buffers.emplace_back(128, 0x80);
    buffers.emplace_back(4096, 0x00);                       // all zeros
    buffers.emplace_back(4096, 0xFF);                       // all ones
    std::vector<unsigned char> ramp(1021);                  // prime len
    for (std::size_t i = 0; i < ramp.size(); ++i)
        ramp[i] = static_cast<unsigned char>(i);
    buffers.push_back(std::move(ramp));
    return buffers;
}

void
checkParity(crc32::Fn candidate, const char *name)
{
    for (const auto &buffer : adversarialBuffers()) {
        EXPECT_EQ(candidate(0, buffer.data(), buffer.size()),
                  crc32::scalar(0, buffer.data(), buffer.size()))
            << name << " len=" << buffer.size();
    }

    std::mt19937_64 rng(0xC0FFEE);
    std::vector<unsigned char> buffer(2048);
    for (auto &byte : buffer)
        byte = static_cast<unsigned char>(rng());
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t off = rng() % 32;        // misalign the start
        const std::size_t len = rng() % (buffer.size() - off);
        const std::uint32_t init =
            static_cast<std::uint32_t>(rng());     // streaming resume
        EXPECT_EQ(candidate(init, buffer.data() + off, len),
                  crc32::scalar(init, buffer.data() + off, len))
            << name << " off=" << off << " len=" << len;
    }

    // Chunked streaming must equal one-shot for arbitrary splits.
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t len = 1 + rng() % 1024;
        const std::size_t cut = rng() % (len + 1);
        const std::uint32_t whole = candidate(0, buffer.data(), len);
        std::uint32_t chained = candidate(0, buffer.data(), cut);
        chained = candidate(chained, buffer.data() + cut, len - cut);
        EXPECT_EQ(chained, whole) << name << " cut=" << cut;
    }
}

TEST(FrameCrc, Slice8MatchesScalarOracle)
{
    checkParity(crc32::slice8, "slice8");
}

TEST(FrameCrc, PclmulMatchesScalarOracle)
{
#if defined(__x86_64__) || defined(__i386__)
    if (!crc32::pclmulAvailable())
        GTEST_SKIP() << "CPU lacks PCLMULQDQ";
    checkParity(crc32::pclmul, "pclmul");
#else
    GTEST_SKIP() << "non-x86 build has no pclmul path";
#endif
}

TEST(FrameCrc, ForceScalarEnvPinsDispatch)
{
    ASSERT_EQ(setenv("HQ_FORCE_SCALAR_CRC", "1", 1), 0);
    crc32::redetect();
    EXPECT_STREQ(crc32::implName(), "scalar");
    EXPECT_EQ(crc32::compute("123456789", 9), 0xCBF43926u);

    ASSERT_EQ(unsetenv("HQ_FORCE_SCALAR_CRC"), 0);
    crc32::redetect();
    // Whatever got picked must still compute the same function.
    EXPECT_EQ(crc32::compute("123456789", 9), 0xCBF43926u);
}

TEST(FrameCrc, MessageCrcUnchangedByDispatch)
{
    // messageCrc feeds the golden fixtures and the AFU model; it must
    // stay bit-identical to the reference scalar CRC over the first 28
    // message bytes no matter which backend the dispatcher picked.
    Message message(Opcode::PointerCheck, 0xDEADBEEF, 0x1234);
    message.pid = 7;
    message.seq = 99;
    EXPECT_EQ(messageCrc(message),
              crc32::scalar(0, &message,
                            sizeof(Message) - sizeof(std::uint32_t)));
}

// --------------------------------------------------------------------
// Frame codec: round-trip properties (including the ring wrap point).
// --------------------------------------------------------------------

std::vector<Message>
makeMessages(std::size_t count, std::uint64_t salt = 0)
{
    std::mt19937_64 rng(0xF00D + salt);
    std::vector<Message> messages(count);
    for (std::size_t i = 0; i < count; ++i) {
        messages[i].op = static_cast<Opcode>(
            static_cast<std::uint32_t>(rng() % 8));
        messages[i].pid = kPid;
        messages[i].arg0 = rng();
        messages[i].arg1 = rng();
    }
    return messages;
}

/** Span over one contiguous slot run. */
RecvSpan
spanOf(const Message *slots, std::size_t count)
{
    RecvSpan span;
    span.seg[0] = {slots, count};
    return span;
}

/** Span split into two runs after `first` slots (simulated wrap). */
RecvSpan
splitSpan(const Message *slots, std::size_t count, std::size_t first)
{
    RecvSpan span;
    span.seg[0] = {slots, first};
    span.seg[1] = {slots + first, count - first};
    return span;
}

constexpr frame::DecodeLimits kWideLimits{1024, 256};

TEST(FrameCodec, RoundTripEveryCount)
{
    for (std::size_t count = 1; count <= frame::kMaxRecords; ++count) {
        const std::vector<Message> messages = makeMessages(count, count);
        Message slots[frame::kMaxFrameSlots];
        frame::encode(messages.data(), count, kPid, /*base_seq=*/1000,
                      slots);

        frame::FrameView view;
        const RecvSpan span = spanOf(slots, frame::frameSlots(count));
        ASSERT_EQ(frame::decode(span, kWideLimits, view),
                  frame::DecodeStatus::Ok)
            << "count=" << count;
        EXPECT_EQ(view.pid, static_cast<std::uint32_t>(kPid));
        EXPECT_EQ(view.base_seq, 1000u);
        EXPECT_EQ(view.count, count);
        EXPECT_EQ(view.slots, frame::frameSlots(count));

        Message out[frame::kMaxRecords];
        frame::unpackAll(span, view, out);
        for (std::size_t i = 0; i < count; ++i) {
            EXPECT_EQ(out[i].op, messages[i].op);
            EXPECT_EQ(out[i].pid, messages[i].pid);
            EXPECT_EQ(out[i].arg0, messages[i].arg0);
            EXPECT_EQ(out[i].arg1, messages[i].arg1);
            EXPECT_EQ(out[i].seq, 1000u + i);
            EXPECT_EQ(out[i].pad, 0u);
        }
    }
}

TEST(FrameCodec, RoundTripAcrossEveryWrapSplit)
{
    // Records straddle slot boundaries (24B records in 32B slots), so
    // every possible wrap position must decode identically.
    for (std::size_t count : {std::size_t{1}, std::size_t{3},
                              std::size_t{17}, frame::kMaxRecords}) {
        const std::vector<Message> messages = makeMessages(count);
        const std::size_t slot_count = frame::frameSlots(count);
        Message slots[frame::kMaxFrameSlots];
        frame::encode(messages.data(), count, kPid, 0, slots);
        for (std::size_t split = 1; split < slot_count; ++split) {
            const RecvSpan span = splitSpan(slots, slot_count, split);
            frame::FrameView view;
            ASSERT_EQ(frame::decode(span, kWideLimits, view),
                      frame::DecodeStatus::Ok)
                << "count=" << count << " split=" << split;
            Message out[frame::kMaxRecords];
            frame::unpackAll(span, view, out);
            for (std::size_t i = 0; i < count; ++i) {
                EXPECT_EQ(out[i].arg0, messages[i].arg0);
                EXPECT_EQ(out[i].arg1, messages[i].arg1);
            }
        }
    }
}

TEST(FrameCodec, TruncatedFrameIsNeedMoreNeverPartial)
{
    constexpr std::size_t kCount = 8;
    const std::vector<Message> messages = makeMessages(kCount);
    Message slots[frame::kMaxFrameSlots];
    frame::encode(messages.data(), kCount, kPid, 0, slots);
    const std::size_t slot_count = frame::frameSlots(kCount);
    for (std::size_t present = 1; present < slot_count; ++present) {
        frame::FrameView view;
        EXPECT_EQ(frame::decode(spanOf(slots, present), kWideLimits,
                                view),
                  frame::DecodeStatus::NeedMore)
            << "present=" << present;
    }
    RecvSpan empty;
    frame::FrameView view;
    EXPECT_EQ(frame::decode(empty, kWideLimits, view),
              frame::DecodeStatus::NeedMore);
}

TEST(FrameCodec, GoldenFixtureBytesAreStable)
{
    // The fixture was produced by an independent encoder (Python +
    // zlib); byte-identical output here means the wire format is pinned:
    // any layout, endianness, padding, or CRC-convention change breaks
    // this test rather than silently breaking old peers.
    const Message messages[3] = {
        Message(Opcode::PointerDefine, 0x1000, 0xAAAA),
        Message(Opcode::PointerCheck, 0x1000, 0xAAAA),
        Message(Opcode::Syscall, 59),
    };
    Message slots[frame::kMaxFrameSlots];
    frame::encode(messages, 3, /*pid=*/77, /*base_seq=*/256, slots);
    const std::size_t byte_count = frame::frameSlots(3) * sizeof(Message);

    std::string expected_hex;
    std::ifstream fixture(std::string(HQ_TEST_DATA_DIR) +
                          "/frame_v2_golden.hex");
    ASSERT_TRUE(fixture.is_open()) << "missing frame_v2_golden.hex";
    std::string line;
    while (std::getline(fixture, line)) {
        if (!line.empty() && line[0] != '#')
            expected_hex += line;
    }

    std::string actual_hex;
    const auto *bytes = reinterpret_cast<const unsigned char *>(slots);
    for (std::size_t i = 0; i < byte_count; ++i) {
        char buf[3];
        std::snprintf(buf, sizeof(buf), "%02x", bytes[i]);
        actual_hex += buf;
    }
    EXPECT_EQ(actual_hex, expected_hex);

    // And the golden bytes decode back to the original records.
    frame::FrameView view;
    ASSERT_EQ(frame::decode(spanOf(slots, frame::frameSlots(3)),
                            kWideLimits, view),
              frame::DecodeStatus::Ok);
    EXPECT_EQ(view.pid, 77u);
    EXPECT_EQ(view.base_seq, 256u);
    EXPECT_EQ(view.count, 3u);
}

// --------------------------------------------------------------------
// Fail closed: every invalid header or body is rejected, never clamped,
// never silently accepted.
// --------------------------------------------------------------------

/** A header with a *valid* CRC but attacker-chosen fields. */
Message
forgeHeaderSlot(std::uint16_t count, std::uint16_t flags = 0,
                std::uint64_t reserved = 0)
{
    frame::FrameHeader header;
    header.magic = frame::kMagic;
    header.pid = kPid;
    header.base_seq = 0;
    header.count = count;
    header.flags = flags;
    header.body_crc = 0;
    header.header_crc = crc32::compute(&header, frame::kHeaderCrcBytes);
    header.reserved = reserved;
    Message slot;
    std::memcpy(static_cast<void *>(&slot), &header, sizeof(header));
    return slot;
}

TEST(FrameCodec, OutOfRangeCountsRejectedNotClamped)
{
    Message slots[frame::kMaxFrameSlots] = {};
    frame::FrameView view;

    // count == 0: a frame with no records can never complete.
    slots[0] = forgeHeaderSlot(0);
    EXPECT_EQ(frame::decode(spanOf(slots, 4), kWideLimits, view),
              frame::DecodeStatus::BadHeader);

    // count above the format maximum.
    slots[0] = forgeHeaderSlot(frame::kMaxRecords + 1);
    EXPECT_EQ(frame::decode(spanOf(slots, 4), kWideLimits, view),
              frame::DecodeStatus::BadHeader);

    // count above the verifier's poll-batch ceiling.
    slots[0] = forgeHeaderSlot(32);
    const frame::DecodeLimits tight_batch{1024, 16};
    EXPECT_EQ(frame::decode(spanOf(slots, 4), tight_batch, view),
              frame::DecodeStatus::BadHeader);

    // Footprint that cannot fit the transporting ring: waiting for the
    // remaining slots would hang the drain forever, so reject.
    slots[0] = forgeHeaderSlot(frame::kMaxRecords);
    const frame::DecodeLimits tiny_ring{8, 256};
    EXPECT_EQ(frame::decode(spanOf(slots, 4), tiny_ring, view),
              frame::DecodeStatus::BadHeader);

    // The same header decodes fine when the limits allow it — the
    // rejections above were the limits, not the header.
    slots[0] = forgeHeaderSlot(frame::kMaxRecords);
    EXPECT_EQ(frame::decode(spanOf(slots, 1), kWideLimits, view),
              frame::DecodeStatus::NeedMore);
}

TEST(FrameCodec, NonzeroFlagsOrReservedRejected)
{
    Message slots[4] = {};
    frame::FrameView view;
    slots[0] = forgeHeaderSlot(2, /*flags=*/1);
    EXPECT_EQ(frame::decode(spanOf(slots, 4), kWideLimits, view),
              frame::DecodeStatus::BadHeader);
    slots[0] = forgeHeaderSlot(2, 0, /*reserved=*/1);
    EXPECT_EQ(frame::decode(spanOf(slots, 4), kWideLimits, view),
              frame::DecodeStatus::BadHeader);
}

TEST(FrameCodec, EveryBitFlipIsDetected)
{
    // The zero-silent-accept property at codec granularity: flip every
    // single bit of an encoded frame and the decoder must come back
    // with BadHeader or BadBody — never Ok.
    constexpr std::size_t kCount = 4;
    const std::vector<Message> messages = makeMessages(kCount);
    Message pristine[frame::kMaxFrameSlots];
    frame::encode(messages.data(), kCount, kPid, 7, pristine);
    const std::size_t slot_count = frame::frameSlots(kCount);
    const std::size_t byte_count = slot_count * sizeof(Message);

    Message mutated[frame::kMaxFrameSlots];
    for (std::size_t bit = 0; bit < byte_count * 8; ++bit) {
        std::memcpy(mutated, pristine, sizeof(pristine));
        reinterpret_cast<unsigned char *>(mutated)[bit / 8] ^=
            static_cast<unsigned char>(1u << (bit % 8));
        frame::FrameView view;
        const frame::DecodeStatus status =
            frame::decode(spanOf(mutated, slot_count), kWideLimits, view);
        EXPECT_NE(status, frame::DecodeStatus::Ok) << "bit=" << bit;
        // A header flip may legitimately turn `count` into a larger
        // value whose frame looks incomplete (NeedMore) — that still
        // fails closed (the drain would wait, then the forged length
        // fails the ring/batch bound or the body CRC). What can never
        // happen is acceptance.
    }
}

// --------------------------------------------------------------------
// Atomic publication + zero-copy drain at the ring level.
// --------------------------------------------------------------------

TEST(FrameRing, TryPushAllIsAllOrNothing)
{
    SpscRing ring(8);
    Message filler[8] = {};
    ASSERT_EQ(ring.tryPushBatch(filler, 6), 6u);

    Message slots[4] = {};
    EXPECT_FALSE(ring.tryPushAll(slots, 4)); // only 2 slots free
    EXPECT_EQ(ring.size(), 6u);              // nothing partially written

    Message drain;
    ring.tryPop(drain);
    ring.tryPop(drain);
    EXPECT_TRUE(ring.tryPushAll(slots, 4)); // now exactly fits
    EXPECT_EQ(ring.size(), 8u);
}

TEST(FrameRing, PeekSpanSeesWrapAndConsumeAdvances)
{
    SpscRing ring(8);
    Message message;
    // Offset the cursors so the next push run wraps.
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(ring.tryPush(message));
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(ring.tryPop(message));

    Message slots[5];
    for (int i = 0; i < 5; ++i)
        slots[i].arg0 = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(ring.tryPushAll(slots, 5));

    RecvSpan span;
    ASSERT_EQ(ring.peekSpan(span), 5u);
    EXPECT_EQ(span.seg[0].count, 2u); // slots 6,7 then wrap
    EXPECT_EQ(span.seg[1].count, 3u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(span.slot(i).arg0, i);

    ring.consume(2);
    ASSERT_EQ(ring.peekSpan(span), 3u);
    EXPECT_EQ(span.slot(0).arg0, 2u);
    ring.consume(3);
    EXPECT_TRUE(ring.empty());
}

TEST(FrameRing, EncodedFrameSurvivesWrapThroughDecode)
{
    SpscRing ring(16);
    Message message;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(ring.tryPush(message));
        ASSERT_TRUE(ring.tryPop(message));
    }
    const std::vector<Message> messages = makeMessages(12);
    Message slots[frame::kMaxFrameSlots];
    frame::encode(messages.data(), 12, kPid, 5, slots);
    ASSERT_TRUE(ring.tryPushAll(slots, frame::frameSlots(12)));

    RecvSpan span;
    ASSERT_EQ(ring.peekSpan(span), frame::frameSlots(12));
    ASSERT_NE(span.seg[1].count, 0u) << "expected a wrapped span";
    frame::FrameView view;
    const frame::DecodeLimits limits{ring.capacity(), 256};
    ASSERT_EQ(frame::decode(span, limits, view),
              frame::DecodeStatus::Ok);
    Message out[frame::kMaxRecords];
    frame::unpackAll(span, view, out);
    for (std::size_t i = 0; i < 12; ++i)
        EXPECT_EQ(out[i].arg0, messages[i].arg0);
}

// --------------------------------------------------------------------
// Channel negotiation and the end-to-end verifier drain.
// --------------------------------------------------------------------

/** kernel + verifier + shm channel wired for one monitored pid. */
struct Harness
{
    KernelModule kernel;
    std::shared_ptr<PointerIntegrityPolicy> policy;
    std::unique_ptr<Verifier> verifier;
    ShmChannel channel{1 << 10};

    explicit Harness(WireFormat format)
        : policy(std::make_shared<PointerIntegrityPolicy>())
    {
        Verifier::Config config;
        config.kill_on_violation = false;
        config.check_sequence = true;
        config.check_crc = true;
        verifier = std::make_unique<Verifier>(kernel, policy, config);
        if (format != WireFormat::V1) {
            EXPECT_TRUE(channel.negotiateFormat(format));
        }
        kernel.enableProcess(kPid);
        verifier->attachChannel(&channel, kPid);
    }
};

class FrameE2eTest : public ::testing::Test
{
  protected:
    void SetUp() override { fi::disarmAll(); }
    void TearDown() override { fi::disarmAll(); }
};

TEST_F(FrameE2eTest, NegotiationRefusedByV1OnlyTransports)
{
    /** Minimal transport with no framed path. */
    struct V1OnlyChannel : Channel
    {
        Status sendImpl(const Message &) override { return Status::ok(); }
        bool tryRecv(Message &) override { return false; }
        std::size_t pending() const override { return 0; }
        const ChannelTraits &traits() const override { return _traits; }
        ChannelTraits _traits{"test", false, false, "none"};
    } v1only;

    EXPECT_FALSE(v1only.negotiateFormat(WireFormat::V2));
    EXPECT_EQ(v1only.format(), WireFormat::V1);

    ShmChannel shm(64);
    EXPECT_TRUE(shm.negotiateFormat(WireFormat::V2));
    EXPECT_EQ(shm.format(), WireFormat::V2);
}

/** Drive `total` checks (plus define + syscall) and return stats. */
VerifierProcessStats
pumpTraffic(Harness &harness, std::size_t total)
{
    EXPECT_TRUE(harness.channel
                    .send(Message(Opcode::PointerDefine, 0x1000, 0xAAAA))
                    .isOk());
    std::vector<Message> burst(total,
                               Message(Opcode::PointerCheck, 0x1000,
                                       0xAAAA));
    std::size_t sent = 0;
    while (sent < total) {
        // Odd chunk size: exercises frames both full and partial.
        const std::size_t want = std::min<std::size_t>(100, total - sent);
        EXPECT_TRUE(
            harness.channel.sendBatch(burst.data(), want).isOk());
        sent += want;
        harness.verifier->poll(); // interleave drain with production
    }
    EXPECT_TRUE(
        harness.channel.send(Message(Opcode::Syscall, 59)).isOk());
    harness.verifier->poll();
    return harness.verifier->statsFor(kPid);
}

TEST_F(FrameE2eTest, V1AndV2ProduceIdenticalVerdicts)
{
    constexpr std::size_t kTotal = 1000;
    Harness v1(WireFormat::V1);
    const VerifierProcessStats s1 = pumpTraffic(v1, kTotal);
    Harness v2(WireFormat::V2);
    const VerifierProcessStats s2 = pumpTraffic(v2, kTotal);

    EXPECT_EQ(s1.messages, kTotal + 2);
    EXPECT_EQ(s2.messages, s1.messages);
    EXPECT_EQ(s2.violations, s1.violations);
    EXPECT_EQ(s1.violations, 0u);
    EXPECT_EQ(s2.syscall_acks, s1.syscall_acks);
    EXPECT_EQ(s2.max_entries, s1.max_entries);
}

TEST_F(FrameE2eTest, V2DetectsCorruptionExactlyLikeV1)
{
    for (const WireFormat format : {WireFormat::V1, WireFormat::V2}) {
        Harness harness(format);
        harness.channel.send(
            Message(Opcode::PointerDefine, 0x1000, 0xAAAA));
        harness.channel.send(
            Message(Opcode::PointerCheck, 0x1000, 0xBADBADull));
        harness.verifier->poll();
        const auto stats = harness.verifier->statsFor(kPid);
        EXPECT_EQ(stats.violations, 1u)
            << wireFormatName(format);
        EXPECT_TRUE(harness.verifier->hasViolation(kPid));
    }
}

TEST_F(FrameE2eTest, CorruptFrameIsSkippedWholeNeverPartiallyApplied)
{
    Harness harness(WireFormat::V2);
    harness.channel.send(Message(Opcode::PointerDefine, 0x1000, 0xAAAA));
    harness.verifier->poll();

    // Corrupt exactly the next frame (a batch of 10 defines that would
    // enlarge the shadow store if any record leaked through).
    ASSERT_TRUE(
        fi::configureFromSpec("seed=3,frame_corrupt:1:0:1").isOk());
    std::vector<Message> defines;
    for (int i = 0; i < 10; ++i)
        defines.push_back(
            Message(Opcode::PointerDefine, 0x2000 + 16 * i, 1));
    ASSERT_TRUE(
        harness.channel.sendBatch(defines.data(), defines.size()).isOk());
    fi::disarmAll();
    harness.verifier->poll();

    const auto stats = harness.verifier->statsFor(kPid);
    EXPECT_GE(stats.violations, 1u) << "corruption must be detected";
    // No record of the corrupt frame may have been applied: the shadow
    // store still holds only the pre-corruption define.
    EXPECT_EQ(harness.policy != nullptr, true);
    auto *context = static_cast<PointerIntegrityContext *>(
        harness.verifier->contextFor(kPid));
    ASSERT_NE(context, nullptr);
    EXPECT_EQ(context->entryCount(), 1u);
    EXPECT_EQ(stats.messages, 1u) << "corrupt records must not count";
}

TEST_F(FrameE2eTest, DroppedFrameRaisesSequenceGap)
{
    Harness harness(WireFormat::V2);
    harness.channel.send(Message(Opcode::PointerDefine, 0x1000, 0xAAAA));
    harness.verifier->poll();

    ASSERT_TRUE(fi::configureFromSpec("seed=3,ring_drop:1:0:1").isOk());
    std::vector<Message> checks(
        8, Message(Opcode::PointerCheck, 0x1000, 0xAAAA));
    ASSERT_TRUE(
        harness.channel.sendBatch(checks.data(), checks.size()).isOk());
    fi::disarmAll();
    // The next (undropped) frame exposes the gap.
    ASSERT_TRUE(
        harness.channel.sendBatch(checks.data(), checks.size()).isOk());
    harness.verifier->poll();

    EXPECT_GE(harness.verifier->statsFor(kPid).violations, 1u)
        << "a dropped frame must surface as a sequence gap";
}

TEST_F(FrameE2eTest, ChaosSweepHasZeroSilentAccepts)
{
    // Randomized corruption sweep over many frames: every injected
    // frame corruption must be matched by at least one violation.
    Harness harness(WireFormat::V2);
    harness.channel.send(Message(Opcode::PointerDefine, 0x1000, 0xAAAA));
    harness.verifier->poll();

    ASSERT_TRUE(
        fi::configureFromSpec("seed=11,frame_corrupt:0.2").isOk());
    std::vector<Message> burst(
        32, Message(Opcode::PointerCheck, 0x1000, 0xAAAA));
    for (int round = 0; round < 64; ++round) {
        ASSERT_TRUE(
            harness.channel.sendBatch(burst.data(), burst.size()).isOk());
        harness.verifier->poll();
    }
    const std::uint64_t injected =
        fi::FaultPlan::instance().injected(fi::Site::FrameCorrupt);
    fi::disarmAll();
    harness.verifier->poll();

    ASSERT_GT(injected, 0u) << "sweep must have injected corruption";
    const auto stats = harness.verifier->statsFor(kPid);
    EXPECT_GE(stats.violations, injected)
        << "every corrupt frame must be detected (zero silent accepts)";
}

TEST_F(FrameE2eTest, OverLimitPollBatchConfigNeverReachesDecoder)
{
    // Satellite guard: Config::poll_batch is clamped at construction,
    // and the decoder rejects counts above its max_batch anyway — the
    // combination means an over-limit config cannot make a frame
    // overrun the verifier's scratch buffer.
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.poll_batch = 100000; // absurd; must clamp to kMaxPollBatch
    Verifier verifier(kernel, policy, config);
    EXPECT_EQ(verifier.config().poll_batch, Verifier::kMaxPollBatch);
}

} // namespace
} // namespace hq
