/**
 * @file
 * Tests of the telemetry subsystem: histogram bucket/percentile edge
 * cases, Welford statistics, concurrent counter increments, trace-JSON
 * well-formedness, and an end-to-end verifier/kernel integration run
 * asserting the syscall-pause histogram is populated.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "ipc/shm_channel.h"
#include "kernel/kernel.h"
#include "policy/pointer_integrity.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

using telemetry::Counter;
using telemetry::Histogram;
using telemetry::Registry;
using telemetry::TraceRecorder;

/** Count non-overlapping occurrences of needle in haystack. */
std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

/** Scoped enable: telemetry on for the test, restored after. */
struct TelemetryOn
{
    TelemetryOn()
    {
        Registry::instance().reset();
        TraceRecorder::instance().reset();
        telemetry::setEnabled(true);
    }
    ~TelemetryOn() { telemetry::setEnabled(false); }
};

// ---------------------------------------------------------------------
// Minimal JSON well-formedness checker (objects, arrays, strings,
// numbers, literals) — enough to validate exporter output without a
// JSON library.
// ---------------------------------------------------------------------

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : _text(text) {}

    bool
    valid()
    {
        _pos = 0;
        skipSpace();
        if (!value())
            return false;
        skipSpace();
        return _pos == _text.size();
    }

  private:
    bool
    value()
    {
        if (_pos >= _text.size())
            return false;
        switch (_text[_pos]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          default: return numberOrLiteral();
        }
    }

    bool
    object()
    {
        ++_pos; // '{'
        skipSpace();
        if (peek() == '}') { ++_pos; return true; }
        for (;;) {
            skipSpace();
            if (!string())
                return false;
            skipSpace();
            if (peek() != ':')
                return false;
            ++_pos;
            skipSpace();
            if (!value())
                return false;
            skipSpace();
            if (peek() == ',') { ++_pos; continue; }
            if (peek() == '}') { ++_pos; return true; }
            return false;
        }
    }

    bool
    array()
    {
        ++_pos; // '['
        skipSpace();
        if (peek() == ']') { ++_pos; return true; }
        for (;;) {
            skipSpace();
            if (!value())
                return false;
            skipSpace();
            if (peek() == ',') { ++_pos; continue; }
            if (peek() == ']') { ++_pos; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++_pos;
        while (_pos < _text.size() && _text[_pos] != '"') {
            if (_text[_pos] == '\\')
                ++_pos;
            ++_pos;
        }
        if (_pos >= _text.size())
            return false;
        ++_pos; // closing quote
        return true;
    }

    bool
    numberOrLiteral()
    {
        const std::size_t start = _pos;
        while (_pos < _text.size() &&
               (std::isalnum(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '-' || _text[_pos] == '+' ||
                _text[_pos] == '.')) {
            ++_pos;
        }
        return _pos > start;
    }

    char peek() const { return _pos < _text.size() ? _text[_pos] : '\0'; }

    void
    skipSpace()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

// ---------------------------------------------------------------------
// RunningStat (Welford extension)
// ---------------------------------------------------------------------

TEST(RunningStatWelford, MatchesDirectStddev)
{
    const std::vector<double> samples = {4.0, 7.0, 13.0, 16.0};
    RunningStat stat;
    for (double s : samples)
        stat.add(s);
    EXPECT_NEAR(stat.mean(), mean(samples), 1e-12);
    EXPECT_NEAR(stat.stddev(), stddev(samples), 1e-12);
    EXPECT_NEAR(stat.variance(), stddev(samples) * stddev(samples),
                1e-9);
}

TEST(RunningStatWelford, DegenerateCases)
{
    RunningStat stat;
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stat.stddev(), 0.0);
    stat.add(42.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0); // n < 2
    stat.add(42.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0); // identical samples
}

TEST(RunningStatWelford, AddRepeatedMatchesLoopedAdds)
{
    // The batched fast path merges n identical samples in O(1); the
    // moments must match feeding them one at a time exactly.
    RunningStat looped, merged;
    looped.add(3.0);
    looped.add(9.0);
    merged.add(3.0);
    merged.add(9.0);
    for (int i = 0; i < 41; ++i)
        looped.add(100.0);
    merged.addRepeated(100.0, 41);
    EXPECT_EQ(merged.count(), looped.count());
    EXPECT_NEAR(merged.mean(), looped.mean(), 1e-9);
    EXPECT_NEAR(merged.stddev(), looped.stddev(), 1e-9);

    RunningStat noop;
    noop.addRepeated(5.0, 0); // zero repeats: no effect
    EXPECT_EQ(noop.count(), 0u);
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

TEST(Histogram, EmptyHistogramReportsZeros)
{
    Histogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(hist.percentile(99), 0.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
    EXPECT_DOUBLE_EQ(hist.max(), 0.0);
}

TEST(Histogram, SingleSampleIsEveryPercentile)
{
    Histogram hist;
    hist.record(777);
    EXPECT_EQ(hist.count(), 1u);
    // Interpolation clamps to the observed extrema, so a lone sample is
    // returned exactly at any percentile.
    EXPECT_DOUBLE_EQ(hist.percentile(0), 777.0);
    EXPECT_DOUBLE_EQ(hist.percentile(50), 777.0);
    EXPECT_DOUBLE_EQ(hist.percentile(100), 777.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 777.0);
    EXPECT_DOUBLE_EQ(hist.min(), 777.0);
    EXPECT_DOUBLE_EQ(hist.max(), 777.0);
}

TEST(Histogram, ZeroSampleLandsInBucketZero)
{
    Histogram hist;
    hist.record(0);
    EXPECT_EQ(hist.buckets()[0], 1u);
    EXPECT_DOUBLE_EQ(hist.percentile(50), 0.0);
}

TEST(Histogram, OverflowBucketHoldsHugeSamples)
{
    Histogram hist;
    const std::uint64_t huge = 1ULL << 63; // bit_width 64 -> capped
    hist.record(huge);
    hist.record(~0ULL);
    EXPECT_EQ(hist.buckets()[Histogram::kBuckets - 1], 2u);
    // Percentiles stay clamped to real observed values.
    EXPECT_LE(hist.percentile(99), hist.max());
    EXPECT_GE(hist.percentile(1), hist.min());
}

TEST(Histogram, PercentilesAreMonotoneAndBracketed)
{
    Histogram hist;
    for (std::uint64_t i = 1; i <= 1000; ++i)
        hist.record(i);
    double previous = 0.0;
    for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
        const double value = hist.percentile(p);
        EXPECT_GE(value, previous) << "p" << p;
        EXPECT_GE(value, hist.min());
        EXPECT_LE(value, hist.max());
        previous = value;
    }
    // log2 buckets: p50 of uniform 1..1000 should land within its
    // bucket's factor-of-two resolution.
    EXPECT_GE(hist.percentile(50), 256.0);
    EXPECT_LE(hist.percentile(50), 1000.0);
    EXPECT_NEAR(hist.mean(), 500.5, 1e-9);
}

TEST(Histogram, GeometricInterpolationKnownAnswers)
{
    // Two samples in the [512, 1024) bucket: the p50 rank is the first
    // sample, frac = 1/2, so the geometric midpoint 512 * sqrt(2) —
    // NOT the arithmetic midpoint 768 the old linear rule returned.
    Histogram hist;
    hist.record(512);
    hist.record(1023);
    EXPECT_NEAR(hist.percentile(50), 512.0 * std::sqrt(2.0), 1e-6);
    // p100 interpolates to the bucket ceiling (1024) and clamps to the
    // observed max.
    EXPECT_DOUBLE_EQ(hist.percentile(100), 1023.0);

    // Tail under-reporting regression: 90 fast samples, 10 slow ones in
    // [4096, 8192). p95 ranks 5th-of-10 into the slow bucket: geometric
    // 4096 * sqrt(2) ~ 5793; linear interpolation said 6144 here but
    // under-reports whenever the rank lands low in a wide bucket (p91:
    // geometric ~4391 vs linear 4506 — the bias the KAT pins is that
    // the geometric form tracks the exponential bucket shape).
    Histogram tail;
    tail.record(100, 90);
    tail.record(6000, 10);
    EXPECT_NEAR(tail.percentile(95), 4096.0 * std::sqrt(2.0), 1e-6);
    // p99 -> rank 99, frac 9/10: raw 4096 * 2^0.9 ~ 7643 overshoots the
    // bucket's real contents, so the observed-max clamp binds.
    EXPECT_DOUBLE_EQ(tail.percentile(99), 6000.0);
    // Every fast-bucket percentile stays clamped to the real extrema.
    EXPECT_GE(tail.percentile(1), 100.0);
}

TEST(Histogram, BucketZeroKeepsLinearRamp)
{
    // Bucket 0 (zeros) has lo == 0, where the geometric form
    // degenerates; the linear ramp keeps returning 0 for it.
    Histogram hist;
    hist.record(0, 4);
    EXPECT_DOUBLE_EQ(hist.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(hist.percentile(99), 0.0);
}

TEST(Histogram, BatchedRecordMatchesRepeatedSingles)
{
    // One lock, n-message semantics: count, buckets, and moments must be
    // indistinguishable from n single records.
    Histogram batched, looped;
    batched.record(100, 7);
    for (int i = 0; i < 7; ++i)
        looped.record(100);
    batched.record(5000, 3);
    for (int i = 0; i < 3; ++i)
        looped.record(5000);

    EXPECT_EQ(batched.count(), looped.count());
    EXPECT_EQ(batched.count(), 10u);
    EXPECT_EQ(batched.buckets(), looped.buckets());
    EXPECT_DOUBLE_EQ(batched.mean(), looped.mean());
    EXPECT_DOUBLE_EQ(batched.min(), looped.min());
    EXPECT_DOUBLE_EQ(batched.max(), looped.max());
    for (double p : {50.0, 90.0, 99.0})
        EXPECT_DOUBLE_EQ(batched.percentile(p), looped.percentile(p));

    batched.record(1, 0); // zero repeat: no effect
    EXPECT_EQ(batched.count(), 10u);
}

// ---------------------------------------------------------------------
// Counter / Gauge / Registry
// ---------------------------------------------------------------------

TEST(CounterConcurrency, FourThreadsIncrementsAreLossless)
{
    Counter counter;
    constexpr int kThreads = 4;
    constexpr int kIncrements = 100000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (int i = 0; i < kIncrements; ++i)
                counter.inc();
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(RegistryJson, PreRegisteredKeysAlwaysPresentAndWellFormed)
{
    const std::string json = Registry::instance().toJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json.substr(0, 200);
    EXPECT_NE(json.find("verifier.msg_latency_ns"), std::string::npos);
    EXPECT_NE(json.find("kernel.syscall_pause_ns"), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(RegistryJson, GaugeTracksHighWaterMark)
{
    telemetry::Gauge gauge;
    gauge.set(3);
    gauge.set(17);
    gauge.set(5);
    EXPECT_EQ(gauge.value(), 5u);
    EXPECT_EQ(gauge.max(), 17u);
}

// ---------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------

TEST(Prometheus, SeriesMappingExtractsShardAndPidLabels)
{
    auto series = telemetry::prometheusSeries("verifier.shard3.messages");
    EXPECT_EQ(series.name, "hq_verifier_messages");
    EXPECT_EQ(series.labels, "shard=\"3\"");

    series = telemetry::prometheusSeries("verifier.lag_ns.pid_42");
    EXPECT_EQ(series.name, "hq_verifier_lag_ns");
    EXPECT_EQ(series.labels, "pid=\"42\"");

    series = telemetry::prometheusSeries("ipc.ring_occupancy");
    EXPECT_EQ(series.name, "hq_ipc_ring_occupancy");
    EXPECT_EQ(series.labels, "");

    // Characters outside the Prometheus name alphabet sanitize to '_'.
    series = telemetry::prometheusSeries("weird-metric name");
    EXPECT_EQ(series.name, "hq_weird_metric_name");
}

TEST(Prometheus, ExpositionGroupsFamiliesAndLabelsShards)
{
    Registry::instance().reset();
    auto &registry = Registry::instance();
    registry.counter("verifier.shard0.messages").add(10);
    registry.counter("verifier.shard1.messages").add(32);
    registry.gauge("verifier.shard0.health").set(2);
    registry.histogram("verifier.msg_latency_ns").record(512, 4);
    const std::string text = registry.toPrometheus();

    // Exactly one TYPE header per family, even with two labeled
    // members; counters gain the _total suffix.
    EXPECT_EQ(countOccurrences(
                  text, "# TYPE hq_verifier_messages_total counter"),
              1u);
    EXPECT_NE(
        text.find("hq_verifier_messages_total{shard=\"0\"} 10"),
        std::string::npos)
        << text;
    EXPECT_NE(
        text.find("hq_verifier_messages_total{shard=\"1\"} 32"),
        std::string::npos);

    // Gauges export value and the _max high-water companion.
    EXPECT_NE(text.find("hq_verifier_health{shard=\"0\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("hq_verifier_health_max{shard=\"0\"} 2"),
              std::string::npos);

    // Histograms export as summaries: quantiles ride under the base
    // family with _sum/_count companions.
    EXPECT_EQ(
        countOccurrences(text, "# TYPE hq_verifier_msg_latency_ns summary"),
        1u);
    EXPECT_NE(text.find("hq_verifier_msg_latency_ns{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("hq_verifier_msg_latency_ns_count 4"),
              std::string::npos);
    EXPECT_NE(text.find("hq_verifier_msg_latency_ns_sum"),
              std::string::npos);

    // The exposition ends with a newline (textfile-collector rule).
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
    Registry::instance().reset();
}

// ---------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------

TEST(TraceJson, EventsAreWellFormedChromeTraceJson)
{
    TelemetryOn on;
    {
        telemetry::TraceScope outer("outer");
        telemetry::TraceScope inner("inner");
        telemetry::traceInstant("tick");
        telemetry::traceCounter("queue", 12);
    }
    const std::string json = TraceRecorder::instance().toJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json.substr(0, 200);
    EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"value\":12}"), std::string::npos);
}

TEST(TraceJson, DisabledScopesRecordNothing)
{
    Registry::instance().reset();
    TraceRecorder::instance().reset();
    telemetry::setEnabled(false);
    const std::uint64_t before = TraceRecorder::instance().totalRecorded();
    {
        telemetry::TraceScope scope("invisible");
        telemetry::traceInstant("invisible");
    }
    EXPECT_EQ(TraceRecorder::instance().totalRecorded(), before);
}

TEST(TraceJson, RingWrapsKeepingNewestEvents)
{
    TelemetryOn on;
    telemetry::TraceBuffer buffer(/*tid=*/99, /*capacity=*/8);
    for (int i = 0; i < 100; ++i) {
        telemetry::TraceEvent event;
        event.name = "e";
        event.ts_ns = static_cast<std::uint64_t>(i);
        buffer.emit(event);
    }
    const auto window = buffer.snapshot();
    ASSERT_EQ(window.size(), 8u);
    EXPECT_EQ(window.front().ts_ns, 92u); // oldest retained
    EXPECT_EQ(window.back().ts_ns, 99u);  // newest
    EXPECT_EQ(buffer.recorded(), 100u);
}

// ---------------------------------------------------------------------
// Combined exporter
// ---------------------------------------------------------------------

TEST(Exporter, WritesParseableCombinedDump)
{
    TelemetryOn on;
    Registry::instance().histogram("verifier.msg_latency_ns").record(80);
    {
        telemetry::TraceScope scope("export.work");
    }
    const std::string path = ::testing::TempDir() + "hq_telemetry.json";
    ASSERT_TRUE(telemetry::writeJsonFile(path));

    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string json = buffer.str();
    std::remove(path.c_str());

    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json.substr(0, 200);
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("verifier.msg_latency_ns"), std::string::npos);
    EXPECT_NE(json.find("kernel.syscall_pause_ns"), std::string::npos);
}

// ---------------------------------------------------------------------
// Verifier/kernel integration: a monitored run populates the pause
// histogram and the message-latency histogram.
// ---------------------------------------------------------------------

TEST(VerifierIntegration, SyscallPauseHistogramPopulatedByMonitoredRun)
{
    TelemetryOn on;

    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy);
    ShmChannel channel(1 << 10);
    const Pid pid = 7;
    verifier.attachChannel(&channel, pid);
    ASSERT_TRUE(kernel.enableProcess(pid).isOk());
    verifier.start();

    // Monitored program: define/check a pointer, then make system
    // calls gated on the pipelined System-Call message.
    ASSERT_TRUE(channel.send(Message(Opcode::PointerDefine, 0x1000,
                                     0xabc)).isOk());
    ASSERT_TRUE(channel.send(Message(Opcode::PointerCheck, 0x1000,
                                     0xabc)).isOk());
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(channel.send(Message(Opcode::Syscall, 1)).isOk());
        ASSERT_TRUE(kernel.syscallEnter(pid, 1).isOk());
    }

    verifier.stop();
    kernel.exitProcess(pid);

    auto &registry = Registry::instance();
    EXPECT_EQ(registry.histogram("kernel.syscall_pause_ns").count(), 5u);
    EXPECT_GE(registry.histogram("verifier.msg_latency_ns").count(), 7u);
    EXPECT_GE(registry.counter("verifier.messages").value(), 7u);
    EXPECT_EQ(registry.counter("kernel.syscalls").value(), 5u);
    EXPECT_EQ(registry.counter("verifier.violations").value(), 0u);
    // Pause latency percentiles must be within observed extrema.
    auto &pause = registry.histogram("kernel.syscall_pause_ns");
    EXPECT_GE(pause.percentile(99), pause.percentile(50));
    EXPECT_LE(pause.percentile(99), pause.max());
}

TEST(VerifierIntegration, IdleEventLoopBacksOffToSleep)
{
    TelemetryOn on;

    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy);
    ShmChannel channel(64);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(kernel.enableProcess(1).isOk());

    auto &counter = Registry::instance().counter("verifier.idle_sleeps");
    const std::uint64_t before = counter.value();
    verifier.start();
    // No traffic: after the bounded spin window the loop must start
    // sleeping rather than burning the core.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    verifier.stop();
    EXPECT_GT(counter.value(), before);
}

} // namespace
} // namespace hq
