/**
 * @file
 * VM robustness sweep: randomly generated (well-formed but hostile)
 * programs — wild addresses, random arithmetic on pointers, random
 * calls — must always terminate with a classified ExitKind, never
 * corrupt the host. Parameterized over seeds.
 */

#include <gtest/gtest.h>

#include "cfi/design.h"
#include "common/rng.h"
#include "ipc/shm_channel.h"
#include "ir/builder.h"
#include "ir/verify.h"
#include "policy/pointer_integrity.h"
#include "runtime/vm.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

using namespace ir;

/** A random but verifier-clean module exercising hostile patterns. */
Module
randomHostileModule(int seed)
{
    Rng rng(seed);
    Module module;
    IrBuilder builder(module);

    // A few leaf functions to call (some address-taken).
    const int num_leaves = 3;
    for (int f = 0; f < num_leaves; ++f) {
        builder.beginFunction("leaf" + std::to_string(f), 1, 0);
        builder.ret(builder.arith(ArithKind::Xor, builder.param(0),
                                  builder.constInt(f * 17)));
        builder.endFunction();
    }

    Global g;
    g.name = "blob";
    g.size = 128;
    g.funcptr_init = {{0, 0}};
    const int blob = builder.addGlobal(std::move(g));

    builder.beginFunction("main");
    std::vector<int> values; // registers usable as operands
    values.push_back(builder.constInt(rng.next()));
    values.push_back(builder.allocaOp(64));
    values.push_back(builder.globalAddr(blob));

    const int ops = 60;
    for (int i = 0; i < ops; ++i) {
        const int a =
            values[rng.nextBelow(values.size())];
        const int b =
            values[rng.nextBelow(values.size())];
        switch (rng.nextBelow(10)) {
          case 0:
          case 1:
          case 2:
            values.push_back(builder.arith(
                static_cast<ArithKind>(rng.nextBelow(9)), a, b));
            break;
          case 3:
            values.push_back(builder.load(a, TypeRef::intTy()));
            break;
          case 4:
            builder.store(a, b, TypeRef::intTy());
            break;
          case 5:
            values.push_back(builder.mallocOp(
                builder.constInt(8 + 8 * rng.nextBelow(16))));
            break;
          case 6:
            values.push_back(builder.callDirect(
                static_cast<int>(rng.nextBelow(num_leaves)), {a}));
            break;
          case 7: {
            const int casted = builder.cast(a, TypeRef::funcPtr(0));
            values.push_back(builder.callIndirect(casted, {b}, 0));
            break;
          }
          case 8:
            values.push_back(builder.load(a, TypeRef::funcPtr(0)));
            break;
          case 9: {
            const int size = builder.constInt(8 * rng.nextInRange(1, 4));
            builder.memcpyOp(a, b, size, TypeRef::intTy());
            break;
          }
        }
    }
    builder.ret(values.back() >= 0 ? values.back()
                                   : builder.constInt(0));
    builder.endFunction();
    module.entry_function = num_leaves;
    return module;
}

class VmFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(VmFuzz, AlwaysTerminatesClassified)
{
    Module module = randomHostileModule(GetParam());
    ASSERT_TRUE(verifyModule(module).isOk());

    // Run bare and under full HQ instrumentation with a live verifier.
    for (const bool instrumented : {false, true}) {
        Module copy = module;
        if (instrumented) {
            ASSERT_TRUE(
                instrumentModule(copy, CfiDesign::HqSfeStk).isOk());
        }
        KernelModule kernel;
        auto policy = std::make_shared<PointerIntegrityPolicy>();
        Verifier::Config vconfig;
        vconfig.kill_on_violation = false;
        Verifier verifier(kernel, policy, vconfig);
        ShmChannel channel(1 << 12);
        std::unique_ptr<HqRuntime> runtime;
        if (instrumented) {
            verifier.attachChannel(&channel, 1);
            runtime = std::make_unique<HqRuntime>(1, channel, kernel);
            ASSERT_TRUE(runtime->enable().isOk());
            verifier.start();
        }

        VmConfig config = instrumented
                              ? makeVmConfig(CfiDesign::HqSfeStk)
                              : VmConfig{};
        config.stop_on_inline_violation = false;
        config.max_instructions = 1 << 20;
        Vm vm(copy, config, runtime ? runtime.get() : nullptr);
        const RunResult result = vm.run();
        if (instrumented)
            verifier.stop();

        // Any classified exit is acceptable; what must never happen is
        // an unclassified state or a host-level fault.
        switch (result.exit) {
          case ExitKind::Ok:
          case ExitKind::Crash:
          case ExitKind::Hang:
          case ExitKind::Killed:
          case ExitKind::InlineViolation:
          case ExitKind::GuardFailure:
            break;
        }
        EXPECT_LE(result.instructions, (1u << 20) + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzz, ::testing::Range(1000, 1060));

} // namespace
} // namespace hq
