/**
 * @file
 * System-level integration tests: several monitored programs verified
 * concurrently by one verifier, the FPGA transport end-to-end with
 * sequence-integrity checking, the store-to-load-forwarding runtime
 * guard tripping on unexpected recursion, and fork semantics through
 * the whole stack.
 */

#include <gtest/gtest.h>

#include <thread>

#include "cfi/design.h"
#include "fpga/fpga_channel.h"
#include "ipc/shm_channel.h"
#include "ir/builder.h"
#include "policy/pointer_integrity.h"
#include "runtime/vm.h"
#include "verifier/verifier.h"
#include "workloads/spec_generator.h"
#include "workloads/spec_profiles.h"

namespace hq {
namespace {

using namespace ir;

TEST(Integration, ThreeMonitoredProgramsOneVerifier)
{
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config vconfig;
    vconfig.kill_on_violation = false;
    Verifier verifier(kernel, policy, vconfig);

    // One channel and runtime per process, a VM per thread.
    const char *names[3] = {"bzip2", "xalancbmk", "h264ref"};
    std::vector<std::unique_ptr<ShmChannel>> channels;
    std::vector<std::unique_ptr<HqRuntime>> runtimes;
    std::vector<ir::Module> modules;
    for (int p = 0; p < 3; ++p) {
        channels.push_back(std::make_unique<ShmChannel>(1 << 14));
        verifier.attachChannel(channels.back().get(), p + 1);
        runtimes.push_back(std::make_unique<HqRuntime>(
            p + 1, *channels.back(), kernel));
        modules.push_back(buildSpecModule(specProfile(names[p]), 0.02));
        ASSERT_TRUE(
            instrumentModule(modules.back(), CfiDesign::HqSfeStk).isOk());
        ASSERT_TRUE(runtimes.back()->enable().isOk());
    }
    verifier.start();

    std::vector<std::thread> threads;
    std::vector<RunResult> results(3);
    for (int p = 0; p < 3; ++p) {
        threads.emplace_back([&, p] {
            VmConfig config = makeVmConfig(CfiDesign::HqSfeStk);
            Vm vm(modules[p], config, runtimes[p].get());
            results[p] = vm.run();
        });
    }
    for (auto &thread : threads)
        thread.join();
    verifier.stop();

    for (int p = 0; p < 3; ++p) {
        EXPECT_EQ(results[p].exit, ExitKind::Ok)
            << names[p] << ": " << results[p].detail;
        EXPECT_FALSE(verifier.hasViolation(p + 1)) << names[p];
        EXPECT_GT(verifier.statsFor(p + 1).messages, 0u) << names[p];
    }
    // Streams were not cross-contaminated: per-process message counts
    // match what each runtime sent.
    for (int p = 0; p < 3; ++p) {
        EXPECT_EQ(verifier.statsFor(p + 1).messages,
                  runtimes[p]->messagesSent());
    }
}

TEST(Integration, FpgaTransportEndToEndWithSequenceCheck)
{
    ir::Module module = buildSpecModule(specProfile("astar"), 0.02);
    ASSERT_TRUE(instrumentModule(module, CfiDesign::HqSfeStk).isOk());

    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config vconfig;
    vconfig.check_sequence = true;
    Verifier verifier(kernel, policy, vconfig);

    FpgaConfig fpga_config;
    fpga_config.host_buffer_messages = 1 << 14;
    fpga_config.model_latency = false;
    FpgaChannel channel(fpga_config);
    channel.afu().setPidRegister(1);
    verifier.attachChannel(&channel, 1, /*device_stamped=*/true);
    HqRuntime runtime(1, channel, kernel);
    ASSERT_TRUE(runtime.enable().isOk());
    verifier.start();

    VmConfig config = makeVmConfig(CfiDesign::HqSfeStk);
    Vm vm(module, config, &runtime);
    const RunResult result = vm.run();
    verifier.stop();

    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_FALSE(verifier.hasViolation(1));
    EXPECT_EQ(channel.afu().droppedMessages(), 0u);
    EXPECT_EQ(verifier.statsFor(1).messages, runtime.messagesSent());
}

TEST(Integration, ForwardingGuardTripsOnUnexpectedRecursion)
{
    // A function whose protected local is forwarded across a direct
    // call, where the callee unexpectedly re-enters it (via a function
    // pointer the static analysis could not see through). The runtime
    // guard must terminate the program (§4.1.4).
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();

    Global hook;
    hook.name = "hook";
    hook.size = 8;
    const int hook_id = builder.addGlobal(std::move(hook));

    builder.beginFunction("trampoline");
    // Calls back through the hook global (opaque to the analysis).
    const int hook_addr = builder.globalAddr(hook_id);
    const int fp = builder.load(hook_addr, TypeRef::dataPtr());
    const int as_fp = builder.cast(fp, TypeRef::funcPtr(sig));
    const int is_set = builder.arith(ArithKind::Lt,
                                     builder.constInt(0), fp);
    const int bb_call = builder.newBlock();
    const int bb_skip = builder.newBlock();
    builder.condBr(is_set, bb_call, bb_skip);
    builder.setBlock(bb_call);
    builder.callIndirect(as_fp, {}, sig);
    builder.ret();
    builder.setBlock(bb_skip);
    builder.ret();
    builder.endFunction();

    builder.beginFunction("optimized", 0, sig);
    const int slot = builder.allocaOp(8, TypeRef::funcPtr(sig));
    const int callee = builder.funcAddr(0, sig);
    builder.store(slot, callee, TypeRef::funcPtr(sig));
    builder.callDirect(0, {}); // may re-enter us via the hook
    const int loaded = builder.load(slot, TypeRef::funcPtr(sig));
    (void)loaded;
    builder.ret();
    builder.endFunction();

    builder.beginFunction("main");
    // Point the hook at "optimized" before calling it: trampoline will
    // re-enter it while its guard is set.
    const int addr = builder.globalAddr(hook_id);
    const int target = builder.funcAddr(1, sig);
    builder.store(addr, target, TypeRef::funcPtr(sig));
    builder.callDirect(1, {});
    builder.ret(builder.constInt(0));
    builder.endFunction();
    module.entry_function = 2;

    StatSet stats;
    ASSERT_TRUE(
        instrumentModule(module, CfiDesign::HqSfeStk, &stats).isOk());
    ASSERT_EQ(stats.get("optimize.guarded_functions"), 1)
        << "test premise: forwarding must have crossed the call";

    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config vconfig;
    vconfig.kill_on_violation = false;
    Verifier verifier(kernel, policy, vconfig);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, 1);
    HqRuntime runtime(1, channel, kernel);
    ASSERT_TRUE(runtime.enable().isOk());
    verifier.start();

    VmConfig config = makeVmConfig(CfiDesign::HqSfeStk);
    Vm vm(module, config, &runtime);
    const RunResult result = vm.run();
    verifier.stop();
    EXPECT_EQ(result.exit, ExitKind::GuardFailure);
    EXPECT_NE(result.detail.find("recompile"), std::string::npos);
}

TEST(Integration, ForkedChildInheritsProtectionState)
{
    // Parent defines pointers, forks; the child's checks validate
    // against the inherited shadow store, and child mutations do not
    // leak back to the parent.
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config vconfig;
    vconfig.kill_on_violation = false;
    Verifier verifier(kernel, policy, vconfig);
    ShmChannel parent_channel(256);
    ShmChannel child_channel(256);
    verifier.attachChannel(&parent_channel, 1);
    verifier.attachChannel(&child_channel, 2);

    HqRuntime parent(1, parent_channel, kernel);
    ASSERT_TRUE(parent.enable().isOk());
    parent.sendDefine(0x1000, 0xAA);
    verifier.poll();

    ASSERT_TRUE(kernel.forkProcess(1, 2).isOk());
    HqRuntime child(2, child_channel, kernel);

    child.sendCheck(0x1000, 0xAA); // inherited definition
    child.sendInvalidate(0x1000);
    verifier.poll();
    EXPECT_FALSE(verifier.hasViolation(2));

    parent.sendCheck(0x1000, 0xAA); // parent copy unaffected
    verifier.poll();
    EXPECT_FALSE(verifier.hasViolation(1));

    // Syscall gating is per process.
    child.sendSyscallMsg(1);
    verifier.poll();
    EXPECT_TRUE(kernel.syscallEnter(2, 1).isOk());
}

TEST(Integration, EpochTimeoutKillsSilentProgram)
{
    // A monitored program performing a syscall without any sync message
    // in flight (e.g. injected shellcode) is terminated at the epoch.
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    builder.syscall(59);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;
    // NOT instrumented: no System-Call message will ever arrive.

    KernelModule::Config kconfig;
    kconfig.epoch = std::chrono::milliseconds(30);
    KernelModule kernel(kconfig);
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy);
    ShmChannel channel(256);
    verifier.attachChannel(&channel, 1);
    HqRuntime runtime(1, channel, kernel);
    ASSERT_TRUE(runtime.enable().isOk());
    verifier.start();

    VmConfig config;
    config.hq_messages = false;
    Vm vm(module, config, &runtime);
    const RunResult result = vm.run();
    verifier.stop();
    EXPECT_EQ(result.exit, ExitKind::Killed);
    EXPECT_EQ(kernel.statsFor(1).epoch_timeouts, 1u);
}

} // namespace
} // namespace hq
