/**
 * @file
 * Reproduction lock-in tests: tiny-scale versions of the paper's
 * headline results, asserted exactly. If a refactor changes any of
 * these, the bench tables have drifted from the paper's shape.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/log.h"
#include "workloads/ripe.h"
#include "workloads/runner.h"

namespace hq {
namespace {

struct Table4Row
{
    int errors = 0;
    int fps = 0;
    int invalid = 0;
    int ok = 0;
};

Table4Row
sweep(WorkloadRunner &runner, CfiDesign design)
{
    Table4Row row;
    for (const SpecProfile &profile : specProfiles()) {
        const BenchmarkOutcome outcome = runner.run(profile, design);
        row.errors += outcome.error;
        row.fps += outcome.false_positive;
        row.invalid += outcome.invalid;
        row.ok += outcome.ok;
    }
    return row;
}

TEST(Reproduction, Table4HeadlineCounts)
{
    setLogLevel(LogLevel::Off);
    RunnerOptions options;
    options.scale = 0.01;
    WorkloadRunner runner(options);

    const Table4Row baseline = sweep(runner, CfiDesign::Baseline);
    EXPECT_EQ(baseline.errors, 0);
    EXPECT_EQ(baseline.ok, 48);

    const Table4Row clang = sweep(runner, CfiDesign::ClangCfi);
    EXPECT_EQ(clang.errors, 0);
    EXPECT_EQ(clang.fps, 15);  // paper: 15
    EXPECT_EQ(clang.ok, 33);   // paper: 33

    const Table4Row cpi = sweep(runner, CfiDesign::Cpi);
    EXPECT_EQ(cpi.errors, 14); // paper: 14
    EXPECT_EQ(cpi.fps, 0);     // paper: 0
    EXPECT_EQ(cpi.invalid, 14);

    const Table4Row ccfi = sweep(runner, CfiDesign::Ccfi);
    EXPECT_EQ(ccfi.errors, 12); // paper: 12
    EXPECT_EQ(ccfi.invalid, 9); // paper: 9
    EXPECT_GE(ccfi.fps, 20);    // paper: 29 (mechanical subset here)

    const Table4Row hq = sweep(runner, CfiDesign::HqSfeStk);
    EXPECT_EQ(hq.errors, 0);
    EXPECT_EQ(hq.fps, 0);
    EXPECT_EQ(hq.ok, 48); // paper: all 48 run correctly
}

TEST(Reproduction, Table5HeadlineCounts)
{
    setLogLevel(LogLevel::Off);
    const auto suite = ripeAttackSuite(/*variants_per_group=*/1);
    std::map<CfiDesign, int> successes;
    std::map<CfiDesign, int> stack_successes;
    for (CfiDesign design :
         {CfiDesign::Baseline, CfiDesign::ClangCfi, CfiDesign::Ccfi,
          CfiDesign::Cpi, CfiDesign::HqSfeStk, CfiDesign::HqRetPtr}) {
        for (const RipeAttack &attack : suite) {
            const RipeResult result = runRipeAttack(attack, design);
            if (result.succeeded) {
                ++successes[design];
                if (attack.origin == AttackOrigin::Stack)
                    ++stack_successes[design];
            }
        }
    }

    // Everything works on the baseline.
    EXPECT_EQ(successes[CfiDesign::Baseline],
              static_cast<int>(suite.size()));
    // Complete protection: CCFI and HQ-CFI-RetPtr.
    EXPECT_EQ(successes[CfiDesign::Ccfi], 0);
    EXPECT_EQ(successes[CfiDesign::HqRetPtr], 0);
    // Type-matching CFI loses to code reuse (worst protected design).
    EXPECT_GT(successes[CfiDesign::ClangCfi],
              successes[CfiDesign::Cpi]);
    // Safe-stack designs lose only to return-pointer disclosure.
    EXPECT_GT(successes[CfiDesign::Cpi], 0);
    EXPECT_GT(successes[CfiDesign::HqSfeStk], 0);
    EXPECT_LE(successes[CfiDesign::HqSfeStk],
              successes[CfiDesign::Cpi]);
    // The paper's distinctive cell: HQ-CFI-SfeStk's Stack column is 0.
    EXPECT_EQ(stack_successes[CfiDesign::HqSfeStk], 0);
    EXPECT_GT(stack_successes[CfiDesign::Cpi], 0);
}

TEST(Reproduction, OnlyHqDetectsTheOmnetppBug)
{
    setLogLevel(LogLevel::Off);
    RunnerOptions options;
    options.scale = 0.01;
    WorkloadRunner runner(options);
    const SpecProfile &omnetpp = specProfile("omnetpp");

    EXPECT_TRUE(
        runner.run(omnetpp, CfiDesign::HqSfeStk).genuine_violation);
    EXPECT_FALSE(
        runner.run(omnetpp, CfiDesign::ClangCfi).false_positive);
    // CPI completes (its safe store still holds the stale pointer) and
    // reports nothing: no UAF detection (Table 3).
    const BenchmarkOutcome cpi = runner.run(omnetpp, CfiDesign::Cpi);
    EXPECT_FALSE(cpi.genuine_violation);
    EXPECT_FALSE(cpi.false_positive);
}

} // namespace
} // namespace hq
