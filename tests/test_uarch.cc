/**
 * @file
 * Unit tests for the AppendWrite-µarch model: AMR register semantics,
 * fault-on-full, kernel reset, and the MODEL channel.
 */

#include <gtest/gtest.h>

#include <thread>

#include "uarch/amr.h"
#include "uarch/uarch_model_channel.h"

namespace hq {
namespace {

TEST(Amr, AppendAddrStartsAtBase)
{
    Amr amr(16, /*virtual_base=*/0x1000);
    EXPECT_EQ(amr.appendAddr(), 0x1000u);
    EXPECT_EQ(amr.maxAppendAddr(), 0x1000u + 16 * sizeof(Message));
}

TEST(Amr, AppendWriteAutoIncrementsRegister)
{
    Amr amr(16, 0x1000);
    EXPECT_EQ(amr.appendWrite(Message(Opcode::EventCount, 1)),
              AppendResult::Ok);
    EXPECT_EQ(amr.appendAddr(), 0x1000u + sizeof(Message));
    EXPECT_EQ(amr.appendWrite(Message(Opcode::EventCount, 2)),
              AppendResult::Ok);
    EXPECT_EQ(amr.appendAddr(), 0x1000u + 2 * sizeof(Message));
}

TEST(Amr, FaultsWhenRegionExhausted)
{
    Amr amr(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(amr.appendWrite(Message(Opcode::EventCount, i)),
                  AppendResult::Ok);
    EXPECT_EQ(amr.appendWrite(Message(Opcode::EventCount, 4)),
              AppendResult::Full);
}

TEST(Amr, ResetRequiresDrainedRegion)
{
    Amr amr(4);
    amr.appendWrite(Message(Opcode::EventCount, 0));
    EXPECT_FALSE(amr.resetRegisters()); // message still pending
    Message out;
    ASSERT_TRUE(amr.tryRead(out));
    EXPECT_TRUE(amr.resetRegisters());
}

TEST(Amr, ReadReturnsMessagesInOrder)
{
    Amr amr(8);
    for (std::uint64_t i = 0; i < 6; ++i)
        amr.appendWrite(Message(Opcode::PointerDefine, i, i + 100));
    Message out;
    for (std::uint64_t i = 0; i < 6; ++i) {
        ASSERT_TRUE(amr.tryRead(out));
        EXPECT_EQ(out.arg0, i);
        EXPECT_EQ(out.arg1, i + 100);
    }
    EXPECT_FALSE(amr.tryRead(out));
}

TEST(Amr, PendingCountsUnreadMessages)
{
    Amr amr(8);
    EXPECT_EQ(amr.pending(), 0u);
    amr.appendWrite(Message(Opcode::EventCount, 1));
    amr.appendWrite(Message(Opcode::EventCount, 2));
    EXPECT_EQ(amr.pending(), 2u);
    Message out;
    amr.tryRead(out);
    EXPECT_EQ(amr.pending(), 1u);
}

TEST(UarchModelChannel, SendBlocksUntilDrainedWhenFull)
{
    UarchModelChannel channel(4);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(channel.send(Message(Opcode::EventCount, i)).isOk());

    // The 5th send must wait for the verifier; drain from another thread.
    std::thread reader([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        Message out;
        while (!channel.tryRecv(out))
            std::this_thread::yield();
    });
    EXPECT_TRUE(channel.send(Message(Opcode::EventCount, 4)).isOk());
    reader.join();
    EXPECT_EQ(channel.pending(), 4u);
}

TEST(UarchModelChannel, HighVolumeStream)
{
    UarchModelChannel channel(64);
    constexpr std::uint64_t kCount = 100000;
    std::thread sender([&] {
        for (std::uint64_t i = 0; i < kCount; ++i)
            ASSERT_TRUE(
                channel.send(Message(Opcode::EventCount, i)).isOk());
    });
    std::uint64_t received = 0;
    Message out;
    while (received < kCount) {
        if (channel.tryRecv(out)) {
            ASSERT_EQ(out.arg0, received);
            ++received;
        }
    }
    sender.join();
}

} // namespace
} // namespace hq
