/**
 * @file
 * End-to-end data-flow integrity tests (§4.3): the DfiLoweringPass
 * writer-id/mask analysis, and a full run where an attacker's
 * out-of-bounds store — a writer never allowed to reach the victim
 * load — is flagged by the verifier's DataFlowPolicy.
 */

#include <gtest/gtest.h>

#include "cfi/design.h"
#include "compiler/dfi_passes.h"
#include "ipc/shm_channel.h"
#include "ir/builder.h"
#include "ir/verify.h"
#include "policy/data_flow.h"
#include "runtime/vm.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

using namespace ir;

int
countOps(const Module &module, IrOp op)
{
    int count = 0;
    for (const auto &function : module.functions)
        for (const auto &block : function.blocks)
            for (const auto &instr : block.instrs)
                count += instr.op == op;
    return count;
}

TEST(DfiLowering, InstrumentsResolvedAccesses)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int slot = builder.allocaOp(8);
    builder.store(slot, builder.constInt(1), TypeRef::intTy());
    builder.load(slot, TypeRef::intTy());
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    PassManager pm;
    pm.add(std::make_unique<DfiLoweringPass>());
    ASSERT_TRUE(pm.run(module).isOk());
    EXPECT_EQ(countOps(module, IrOp::DfiWriteMsg), 1);
    EXPECT_EQ(countOps(module, IrOp::DfiReadMsg), 1);
    EXPECT_EQ(pm.stats().get("dfi.writes"), 1);
    EXPECT_EQ(pm.stats().get("dfi.reads"), 1);
}

TEST(DfiLowering, SkipsUnresolvedAccesses)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main", 1);
    // Accesses through an opaque parameter: not instrumented.
    builder.store(builder.param(0), builder.constInt(1),
                  TypeRef::intTy());
    builder.load(builder.param(0), TypeRef::intTy());
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    PassManager pm;
    pm.add(std::make_unique<DfiLoweringPass>());
    ASSERT_TRUE(pm.run(module).isOk());
    EXPECT_EQ(countOps(module, IrOp::DfiWriteMsg), 0);
    EXPECT_EQ(countOps(module, IrOp::DfiReadMsg), 0);
}

TEST(DfiLowering, MaskCoversAllWritersOfSlot)
{
    // Two stores to the same global: the load's mask must allow both.
    Module module;
    IrBuilder builder(module);
    Global g;
    g.name = "shared";
    g.size = 8;
    const int gid = builder.addGlobal(std::move(g));
    builder.beginFunction("main", 1);
    const int addr = builder.globalAddr(gid);
    const int bb_a = builder.newBlock();
    const int bb_b = builder.newBlock();
    const int bb_join = builder.newBlock();
    builder.condBr(builder.param(0), bb_a, bb_b);
    builder.setBlock(bb_a);
    builder.store(addr, builder.constInt(1), TypeRef::intTy());
    builder.br(bb_join);
    builder.setBlock(bb_b);
    builder.store(addr, builder.constInt(2), TypeRef::intTy());
    builder.br(bb_join);
    builder.setBlock(bb_join);
    builder.ret(builder.load(addr, TypeRef::intTy()));
    builder.endFunction();
    module.entry_function = 0;

    PassManager pm;
    pm.add(std::make_unique<DfiLoweringPass>());
    ASSERT_TRUE(pm.run(module).isOk());

    // Find the read's mask: both writer ids (1, 2) plus initial bit 0.
    std::uint64_t mask = 0;
    for (const auto &block : module.functions[0].blocks)
        for (const auto &instr : block.instrs)
            if (instr.op == IrOp::DfiReadMsg)
                mask = instr.imm;
    EXPECT_EQ(mask & 0x7, 0x7u);
}

/** Victim program; the attacker's OOB store targets `secret`. */
Module
dfiVictim(bool attacked)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int buf = builder.allocaOp(32);
    const int secret = builder.allocaOp(8); // adjacent, at buf+32
    builder.store(secret, builder.constInt(42), TypeRef::intTy());
    if (attacked) {
        // The attacker reuses the buffer-writing store with an evil
        // index: a writer that is NOT in the secret load's allowed set.
        const int off = builder.constInt(32);
        const int oob = builder.arith(ArithKind::Add, buf, off);
        builder.store(oob, builder.constInt(9999), TypeRef::intTy());
    }
    builder.ret(builder.load(secret, TypeRef::intTy()));
    builder.endFunction();
    module.entry_function = 0;
    return module;
}

std::uint64_t
runDfi(bool attacked, std::uint64_t &violations)
{
    Module module = dfiVictim(attacked);
    PassManager pm;
    pm.add(std::make_unique<DfiLoweringPass>());
    EXPECT_TRUE(pm.run(module).isOk());

    KernelModule kernel;
    auto policy = std::make_shared<DataFlowPolicy>();
    Verifier::Config vconfig;
    vconfig.kill_on_violation = false;
    Verifier verifier(kernel, policy, vconfig);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, 1);
    HqRuntime runtime(1, channel, kernel);
    EXPECT_TRUE(runtime.enable().isOk());
    verifier.start();

    VmConfig config;
    config.hq_messages = true; // DFI messages ride the same transport
    Vm vm(module, config, &runtime);
    const RunResult result = vm.run();
    verifier.stop();
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;

    auto *ctx = static_cast<DataFlowContext *>(verifier.contextFor(1));
    violations = ctx ? ctx->violationCount() : 0;
    return result.return_value;
}

TEST(DfiEndToEnd, BenignRunIsClean)
{
    std::uint64_t violations = 99;
    EXPECT_EQ(runDfi(false, violations), 42u);
    EXPECT_EQ(violations, 0u);
}

TEST(DfiEndToEnd, OobWriteToNonControlDataDetected)
{
    // The attack corrupts *data*, not a code pointer: CFI is blind to
    // it, DFI flags it (the "other policies" pitch of §4.3).
    std::uint64_t violations = 0;
    EXPECT_EQ(runDfi(true, violations), 9999u);
    EXPECT_EQ(violations, 1u);
}

} // namespace
} // namespace hq
