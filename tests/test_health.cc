/**
 * @file
 * Tests of the observability control plane added for shard health:
 *  - HealthMonitor state machine against a scripted sampler (OK →
 *    DEGRADED → STALLED → OK, idle-shard exemption, threshold clamps).
 *  - Flight recorder: ring wrap, multi-thread capture, dump format,
 *    request rate-limiting, disabled-mode inertness.
 *  - End-to-end: a fault-injected drain-loop wedge drives one shard to
 *    STALLED, emitting a `health_change` event record and a flight dump
 *    holding pre-stall records, with zero silent accepts.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "faultinject/fault.h"
#include "ipc/shm_channel.h"
#include "kernel/kernel.h"
#include "policy/pointer_integrity.h"
#include "telemetry/event_log.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/health.h"
#include "telemetry/telemetry.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

using telemetry::HealthConfig;
using telemetry::HealthMonitor;
using telemetry::HealthState;
using telemetry::ShardHealthSample;
namespace flight = telemetry::flight;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::size_t
countLines(const std::string &text, const std::string &needle)
{
    std::size_t count = 0;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.find(needle) != std::string::npos)
            ++count;
    }
    return count;
}

/** Restores global recorder/telemetry state around each test. */
struct FlightSandbox
{
    FlightSandbox() { flight::resetForTest(); }
    ~FlightSandbox()
    {
        flight::setEnabled(false);
        flight::configure("");
        flight::resetForTest();
    }
};

// ---------------------------------------------------------------------
// HealthMonitor state machine (scripted sampler, deterministic).
// ---------------------------------------------------------------------

struct ScriptedShard
{
    std::atomic<std::uint64_t> heartbeat{0};
    std::atomic<std::uint64_t> queue_depth{0};
    std::atomic<std::uint64_t> ack_age_ns{0};
};

TEST(HealthMonitor, WalksOkDegradedStalledAndBack)
{
    ScriptedShard script;
    HealthConfig config;
    config.degraded_after = 2;
    config.stalled_after = 4;
    HealthMonitor monitor(1, config, [&script](std::size_t) {
        ShardHealthSample sample;
        sample.heartbeat = script.heartbeat.load();
        sample.queue_depth = script.queue_depth.load();
        sample.ack_age_ns = script.ack_age_ns.load();
        return sample;
    });

    // Advancing heartbeat: healthy regardless of backlog.
    script.queue_depth = 100;
    for (int i = 0; i < 6; ++i) {
        ++script.heartbeat;
        monitor.sampleOnce();
        EXPECT_EQ(monitor.state(0), HealthState::Ok);
    }
    EXPECT_EQ(monitor.transitions(), 0u);

    // Heartbeat freezes with backlog pending: 2 bad samples degrade,
    // 4 stall. (Sample 1 after the freeze is bad_samples=1: still Ok.)
    monitor.sampleOnce();
    EXPECT_EQ(monitor.state(0), HealthState::Ok);
    monitor.sampleOnce();
    EXPECT_EQ(monitor.state(0), HealthState::Degraded);
    monitor.sampleOnce();
    EXPECT_EQ(monitor.state(0), HealthState::Degraded);
    monitor.sampleOnce();
    EXPECT_EQ(monitor.state(0), HealthState::Stalled);
    EXPECT_EQ(monitor.transitions(), 2u); // Ok->Degraded, Degraded->Stalled

    // Drain progress resumes: immediately back to Ok.
    ++script.heartbeat;
    monitor.sampleOnce();
    EXPECT_EQ(monitor.state(0), HealthState::Ok);
    EXPECT_EQ(monitor.transitions(), 3u);
}

TEST(HealthMonitor, IdleShardNeverDegrades)
{
    ScriptedShard script;
    HealthConfig config;
    config.degraded_after = 1;
    config.stalled_after = 2;
    HealthMonitor monitor(1, config, [&script](std::size_t) {
        ShardHealthSample sample;
        sample.heartbeat = script.heartbeat.load();
        sample.queue_depth = script.queue_depth.load();
        return sample;
    });

    // Heartbeat frozen but no undrained work: stalling requires backlog.
    for (int i = 0; i < 10; ++i) {
        monitor.sampleOnce();
        EXPECT_EQ(monitor.state(0), HealthState::Ok);
    }
    EXPECT_EQ(monitor.transitions(), 0u);
}

TEST(HealthMonitor, FirstSampleOnlyEstablishesBaseline)
{
    ScriptedShard script;
    script.heartbeat = 42; // nonzero before the monitor ever looks
    script.queue_depth = 9;
    HealthConfig config;
    config.degraded_after = 1;
    config.stalled_after = 2;
    HealthMonitor monitor(1, config, [&script](std::size_t) {
        ShardHealthSample sample;
        sample.heartbeat = script.heartbeat.load();
        sample.queue_depth = script.queue_depth.load();
        return sample;
    });
    monitor.sampleOnce();
    EXPECT_EQ(monitor.state(0), HealthState::Ok);
    // The second frozen sample is the first that may count against it.
    monitor.sampleOnce();
    EXPECT_EQ(monitor.state(0), HealthState::Degraded);
}

TEST(HealthMonitor, ClampsNonsenseThresholds)
{
    HealthConfig config;
    config.degraded_after = 0;  // clamped to 1
    config.stalled_after = -5;  // clamped to degraded_after
    HealthMonitor monitor(1, config, [](std::size_t) {
        return ShardHealthSample{};
    });
    EXPECT_EQ(monitor.config().degraded_after, 1);
    EXPECT_EQ(monitor.config().stalled_after, 1);
}

TEST(HealthMonitor, PublishesPerShardGauges)
{
    // Zero the process-global gauges: earlier tests in this binary
    // sample their own monitors into the same registry names.
    telemetry::Registry::instance().reset();
    ScriptedShard script;
    script.heartbeat = 7;
    script.queue_depth = 33;
    script.ack_age_ns = 1234;
    HealthMonitor monitor(2, HealthConfig{}, [&script](std::size_t i) {
        ShardHealthSample sample;
        if (i == 0) {
            sample.heartbeat = script.heartbeat.load();
            sample.queue_depth = script.queue_depth.load();
            sample.ack_age_ns = script.ack_age_ns.load();
        }
        return sample;
    });
    monitor.sampleOnce();
    script.queue_depth = 5; // drops; the gauge keeps the high water
    monitor.sampleOnce();

    auto &registry = telemetry::Registry::instance();
    EXPECT_EQ(registry.gauge("verifier.shard0.heartbeat").value(), 7u);
    EXPECT_EQ(registry.gauge("verifier.shard0.queue_depth").value(), 5u);
    EXPECT_EQ(registry.gauge("verifier.shard0.queue_depth").max(), 33u);
    EXPECT_EQ(registry.gauge("verifier.shard0.ack_age_ns").value(),
              1234u);
    EXPECT_EQ(registry.gauge("verifier.shard0.health").value(),
              static_cast<std::uint64_t>(HealthState::Ok));
    EXPECT_EQ(registry.gauge("verifier.shard1.heartbeat").value(), 0u);
}

TEST(HealthMonitor, WatchdogThreadSamplesOnItsOwn)
{
    std::atomic<std::uint64_t> samples{0};
    HealthConfig config;
    config.interval = std::chrono::milliseconds(1);
    HealthMonitor monitor(1, config, [&samples](std::size_t) {
        samples.fetch_add(1);
        return ShardHealthSample{};
    });
    monitor.start();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (samples.load() < 3 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    monitor.stop();
    EXPECT_GE(samples.load(), 3u);
    const std::uint64_t after = samples.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(samples.load(), after); // stop() really stopped it
}

// ---------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------

TEST(FlightRecorder, DisabledRecordsNothing)
{
    FlightSandbox sandbox;
    flight::setEnabled(false);
    flight::record(flight::Subsystem::App, flight::Code::Custom, 1, -1);
    EXPECT_TRUE(flight::snapshot().empty());
}

TEST(FlightRecorder, RecordsCarryFieldsInOrder)
{
    FlightSandbox sandbox;
    flight::setEnabled(true);
    flight::record(flight::Subsystem::Verifier, flight::Code::DrainBatch,
                   42, 3, 64, 7);
    flight::record(flight::Subsystem::Kernel,
                   flight::Code::SyscallResume, 42, -1);
    const std::vector<flight::Record> records = flight::snapshot();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].pid, 42u);
    EXPECT_EQ(records[0].shard, 3);
    EXPECT_EQ(records[0].arg0, 64u);
    EXPECT_EQ(records[0].arg1, 7u);
    EXPECT_EQ(static_cast<flight::Subsystem>(records[0].subsystem),
              flight::Subsystem::Verifier);
    EXPECT_EQ(static_cast<flight::Code>(records[1].code),
              flight::Code::SyscallResume);
    EXPECT_LE(records[0].ts_ns, records[1].ts_ns);
    EXPECT_LT(records[0].seq, records[1].seq);
}

TEST(FlightRecorder, RingKeepsOnlyTheLastN)
{
    FlightSandbox sandbox;
    flight::setEnabled(true);
    const std::size_t total = flight::kRecordsPerThread + 100;
    for (std::size_t i = 0; i < total; ++i)
        flight::record(flight::Subsystem::App, flight::Code::Custom, 0,
                       -1, i);
    std::vector<flight::Record> mine;
    for (const flight::Record &r : flight::snapshot()) {
        if (static_cast<flight::Code>(r.code) == flight::Code::Custom)
            mine.push_back(r);
    }
    ASSERT_EQ(mine.size(), flight::kRecordsPerThread);
    // Oldest surviving record is the (total - N)th; newest is the last.
    EXPECT_EQ(mine.front().arg0, 100u);
    EXPECT_EQ(mine.back().arg0, total - 1);
}

TEST(FlightRecorder, ThreadsGetDistinctSlots)
{
    FlightSandbox sandbox;
    flight::setEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i)
                flight::record(flight::Subsystem::App,
                               flight::Code::Custom,
                               static_cast<std::uint64_t>(t), -1,
                               static_cast<std::uint64_t>(i));
        });
    }
    for (auto &thread : threads)
        thread.join();
    std::size_t custom = 0;
    for (const flight::Record &r : flight::snapshot()) {
        if (static_cast<flight::Code>(r.code) == flight::Code::Custom)
            ++custom;
    }
    // No record may be lost to a slot collision (4 threads << 64 slots;
    // slots recycle only after a thread exits).
    EXPECT_EQ(custom,
              static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(FlightRecorder, DumpWritesHeaderAndRecords)
{
    FlightSandbox sandbox;
    const std::string path = "flight_dump_test.jsonl";
    ASSERT_TRUE(flight::configure(path));
    flight::setEnabled(true);
    flight::record(flight::Subsystem::Health,
                   flight::Code::HealthTransition, 0, 2, 0, 2);
    const std::size_t written = flight::dump("unit test");
    EXPECT_GE(written, 1u);

    const std::string text = readFile(path);
    EXPECT_EQ(countLines(text, "\"type\":\"flight_header\""), 1u);
    EXPECT_GE(countLines(text, "\"type\":\"flight_record\""), written);
    EXPECT_NE(text.find("\"trigger\":\"unit test\""), std::string::npos);
    EXPECT_NE(text.find("\"subsystem\":\"health\""), std::string::npos);
    EXPECT_NE(text.find("\"code\":\"health_transition\""),
              std::string::npos);
    flight::configure("");
    std::remove(path.c_str());
}

TEST(FlightRecorder, RequestDumpIsRateLimited)
{
    FlightSandbox sandbox;
    const std::string path = "flight_ratelimit_test.jsonl";
    ASSERT_TRUE(flight::configure(path));
    flight::setEnabled(true);
    flight::record(flight::Subsystem::App, flight::Code::Custom, 0, -1);
    for (int i = 0; i < 10; ++i)
        flight::requestDump("storm");
    const std::string text = readFile(path);
    // Ten triggers inside one second collapse into one dump.
    EXPECT_EQ(countLines(text, "\"type\":\"flight_header\""), 1u);
    flight::configure("");
    std::remove(path.c_str());
}

TEST(FlightRecorder, SignalSafeDumpMatchesSchema)
{
    FlightSandbox sandbox;
    flight::setEnabled(true);
    flight::record(flight::Subsystem::App, flight::Code::Custom, 9, -1,
                   1, 2);
    const std::string path = "flight_sigsafe_test.jsonl";
    const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC,
                          0644);
    ASSERT_GE(fd, 0);
    flight::dumpSignalSafe(fd, "fatal signal");
    ::close(fd);
    const std::string text = readFile(path);
    EXPECT_EQ(countLines(text, "\"type\":\"flight_header\""), 1u);
    EXPECT_GE(countLines(text, "\"type\":\"flight_record\""), 1u);
    EXPECT_NE(text.find("\"trigger\":\"fatal signal\""),
              std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// End-to-end: injected drain-loop wedge -> STALLED -> flight dump.
// ---------------------------------------------------------------------

TEST(HealthEndToEnd, WedgedShardStallsAndDumpsFlightRecords)
{
    FlightSandbox sandbox;
    const std::string flight_path = "health_wedge_flight.jsonl";
    const std::string event_path = "health_wedge_events.jsonl";
    ASSERT_TRUE(flight::configure(flight_path));
    flight::setEnabled(true);
    telemetry::setEnabled(true);
    ASSERT_TRUE(telemetry::EventLog::instance().open(event_path));

    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.kill_on_violation = false;
    config.num_shards = 1;
    config.health_enabled = true;
    // Huge interval: the test drives sampling deterministically via
    // sampleHealthOnce(); the watchdog thread contributes nothing.
    config.health.interval = std::chrono::seconds(3600);
    config.health.degraded_after = 1;
    config.health.stalled_after = 2;
    Verifier verifier(kernel, policy, config);
    ASSERT_NE(verifier.healthMonitor(), nullptr);

    const Pid pid = 1234;
    ShmChannel channel(1 << 12);
    kernel.enableProcess(pid);
    verifier.attachChannel(&channel, pid);

    // First burst, drained on the test thread before the wedge is armed:
    // this is the pre-stall activity the eventual dump must contain
    // (DrainBatch flight records, heartbeat advanced).
    channel.send(Message(Opcode::PointerDefine, 0x1000, 0xAAAA));
    for (int i = 0; i < 32; ++i)
        channel.send(Message(Opcode::PointerCheck, 0x1000, 0xAAAA));
    ASSERT_EQ(verifier.poll(), 33u);

    // Arm the wedge (fires on the worker's first loop iteration) and
    // start the worker; it must park itself before draining anything.
    faultinject::FaultPlan::instance().reset();
    faultinject::FaultPlan::instance().arm(
        faultinject::Site::VerifierShardStall, 1.0, /*after_n=*/0,
        /*max_fires=*/1);
    faultinject::captureDetectorBaselines();
    verifier.start();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (faultinject::FaultPlan::instance().injected(
               faultinject::Site::VerifierShardStall) == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();
    ASSERT_EQ(faultinject::FaultPlan::instance().injected(
                  faultinject::Site::VerifierShardStall),
              1u);

    // Park undrained work behind the wedged worker.
    for (int i = 0; i < 16; ++i)
        channel.send(Message(Opcode::PointerCheck, 0x1000, 0xAAAA));

    // Deterministic watchdog sampling: baseline (wedged heartbeat may
    // have advanced since the last sample), then two frozen samples
    // with backlog -> DEGRADED -> STALLED.
    verifier.sampleHealthOnce();
    int guard = 0;
    while (verifier.healthState(0) != telemetry::HealthState::Stalled &&
           ++guard < 10)
        verifier.sampleHealthOnce();
    EXPECT_EQ(verifier.healthState(0), telemetry::HealthState::Stalled);
    EXPECT_GE(verifier.healthMonitor()->transitions(), 1u);

    // stop() must still join the wedged worker.
    verifier.stop();
    telemetry::EventLog::instance().close();

    // The stall dumped the flight recorder; pre-stall drain records
    // must be inside, plus the health transition itself.
    const std::string dump_text = readFile(flight_path);
    EXPECT_GE(countLines(dump_text, "\"type\":\"flight_header\""), 1u);
    EXPECT_GE(countLines(dump_text, "\"code\":\"drain_batch\""), 1u);
    EXPECT_GE(countLines(dump_text, "\"code\":\"fault_injected\""), 1u);
    EXPECT_GE(countLines(dump_text, "\"code\":\"health_transition\""),
              1u);

    // The event log carries the health_change audit trail and the
    // flight_dump cross-reference.
    const std::string events = readFile(event_path);
    EXPECT_GE(countLines(events, "\"type\":\"health_change\""), 2u);
    EXPECT_NE(events.find("\"op\":\"stalled\""), std::string::npos);
    EXPECT_GE(countLines(events, "\"type\":\"flight_dump\""), 1u);

    // A wedge is latency-only: delayed validation, nothing lost — the
    // silent-accept audit must hold at zero.
    EXPECT_EQ(faultinject::emitAuditRecords(), 0);

    faultinject::disarmAll();
    telemetry::setEnabled(false);
    std::remove(flight_path.c_str());
    std::remove(event_path.c_str());
}

} // namespace
} // namespace hq
