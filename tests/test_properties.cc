/**
 * @file
 * Property-based tests: randomized operation sequences checked against
 * independent reference models, and structural invariants verified on
 * randomly generated inputs. Parameterized over seeds/capacities with
 * INSTANTIATE_TEST_SUITE_P.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cfi/design.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "faultinject/fault.h"
#include "ipc/spsc_ring.h"
#include "ipc/xproc_ring.h"
#include "telemetry/lag.h"
#include "ir/builder.h"
#include "ir/cfg.h"
#include "ir/dominators.h"
#include "ir/verify.h"
#include "policy/memory_safety.h"
#include "policy/pointer_integrity.h"
#include "runtime/vm.h"
#include "workloads/spec_generator.h"
#include "workloads/spec_profiles.h"

namespace hq {
namespace {

using namespace ir;

// ---------------------------------------------------------------------
// SPSC ring vs. deque reference model
// ---------------------------------------------------------------------

class RingModelProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{
};

TEST_P(RingModelProperty, MatchesDequeReference)
{
    const auto [capacity, seed] = GetParam();
    SpscRing ring(capacity);
    std::deque<std::uint64_t> model;
    Rng rng(seed);

    for (int step = 0; step < 20000; ++step) {
        if (rng.chance(0.55)) {
            const std::uint64_t value = rng.next();
            const bool pushed =
                ring.tryPush(Message(Opcode::EventCount, value));
            const bool model_fits = model.size() < ring.capacity();
            ASSERT_EQ(pushed, model_fits) << "step " << step;
            if (pushed)
                model.push_back(value);
        } else {
            Message out;
            const bool popped = ring.tryPop(out);
            ASSERT_EQ(popped, !model.empty()) << "step " << step;
            if (popped) {
                ASSERT_EQ(out.arg0, model.front());
                model.pop_front();
            }
        }
        ASSERT_EQ(ring.size(), model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    CapacitySeedSweep, RingModelProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 8, 64, 1024),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------
// SPSC ring randomized *batch* transfers vs. deque reference
// ---------------------------------------------------------------------

class RingBatchProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{
};

TEST_P(RingBatchProperty, BatchTransfersMatchDequeReference)
{
    const auto [capacity, seed] = GetParam();
    SpscRing ring(capacity);
    std::deque<std::uint64_t> model;
    Rng rng(seed);

    Message scratch[64];
    for (int step = 0; step < 8000; ++step) {
        if (rng.chance(0.55)) {
            const std::size_t count =
                static_cast<std::size_t>(rng.nextInRange(1, 64));
            for (std::size_t i = 0; i < count; ++i)
                scratch[i] = Message(Opcode::EventCount, rng.next());
            const std::size_t pushed = ring.tryPushBatch(scratch, count);
            const std::size_t room = ring.capacity() - model.size();
            ASSERT_EQ(pushed, std::min(count, room)) << "step " << step;
            for (std::size_t i = 0; i < pushed; ++i)
                model.push_back(scratch[i].arg0);
        } else {
            const std::size_t count =
                static_cast<std::size_t>(rng.nextInRange(1, 64));
            const std::size_t popped = ring.tryPopBatch(scratch, count);
            ASSERT_EQ(popped, std::min(count, model.size()))
                << "step " << step;
            for (std::size_t i = 0; i < popped; ++i) {
                ASSERT_EQ(scratch[i].arg0, model.front());
                model.pop_front();
            }
        }
        ASSERT_EQ(ring.size(), model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    CapacitySeedSweep, RingBatchProperty,
    ::testing::Combine(::testing::Values<std::size_t>(8, 64, 256),
                       ::testing::Values(5, 6)));

// ---------------------------------------------------------------------
// Ring capacity edges, with the fault-injection path engaged
// ---------------------------------------------------------------------

TEST(RingCapacityEdges, ExactCapacityThenOverflowWithInjectionArmed)
{
    faultinject::disarmAll();
    // Armed but never firing (after_n beyond reach): every push runs the
    // pushWithFaults cold path, so the capacity math is exercised under
    // injection exactly as a chaos run would.
    faultinject::FaultPlan::instance().arm(
        faultinject::Site::RingStall, 1.0, /*after_n=*/1u << 30);
    ASSERT_TRUE(faultinject::armed());

    SpscRing ring(6); // rounds up to 8
    ASSERT_EQ(ring.capacity(), 8u);
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(ring.tryPush(Message(Opcode::EventCount, i)))
            << "push " << i << " of exactly capacity";
    EXPECT_FALSE(ring.tryPush(Message(Opcode::EventCount, 8)))
        << "capacity+1 must fail";
    EXPECT_EQ(ring.size(), 8u);

    // Drain one, push one: the ring must keep working at the wrap edge.
    Message out;
    for (int round = 0; round < 32; ++round) {
        ASSERT_TRUE(ring.tryPop(out));
        ASSERT_EQ(out.arg0, static_cast<std::uint64_t>(round));
        ASSERT_TRUE(ring.tryPush(Message(Opcode::EventCount, 8 + round)));
        EXPECT_FALSE(ring.tryPush(Message(Opcode::EventCount, 999)));
    }
    faultinject::disarmAll();
}

TEST(RingCapacityEdges, SingleInjectedStallAtFullBoundaryRecovers)
{
    faultinject::disarmAll();
    SpscRing ring(4);
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(ring.tryPush(Message(Opcode::EventCount, i)));

    // One stall fires on the push into the last free slot: the caller
    // sees transient back-pressure, retries, and the slot is filled —
    // the stall must not corrupt the cursor math at the boundary.
    faultinject::FaultPlan::instance().arm(faultinject::Site::RingStall,
                                           1.0, /*after_n=*/0,
                                           /*max_fires=*/1);
    EXPECT_FALSE(ring.tryPush(Message(Opcode::EventCount, 3)));
    ASSERT_TRUE(ring.tryPush(Message(Opcode::EventCount, 3)));
    EXPECT_FALSE(ring.tryPush(Message(Opcode::EventCount, 4)))
        << "ring is genuinely full now";
    EXPECT_EQ(ring.size(), 4u);

    Message out;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out.arg0, static_cast<std::uint64_t>(i));
    }
    EXPECT_TRUE(ring.empty());
    faultinject::disarmAll();
}

TEST(RingCapacityEdges, XprocSendTimesOutFailClosedWhenFullPastCapacity)
{
    faultinject::disarmAll();
    XprocChannel channel(8);
    ASSERT_TRUE(channel.valid());
    channel.setSendTimeout(std::chrono::milliseconds(50));
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(
            channel.send(Message(Opcode::EventCount, i)).isOk());
    // capacity+1 with no consumer: bounded wait, then explicit failure.
    const Status status = channel.send(Message(Opcode::EventCount, 8));
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::Unavailable);
    // The overflow send must not have scribbled over queued messages.
    Message out;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(channel.tryRecv(out));
        EXPECT_EQ(out.arg0, static_cast<std::uint64_t>(i));
    }
    EXPECT_FALSE(channel.tryRecv(out));
}

// ---------------------------------------------------------------------
// Cross-process ring producer/consumer soak (the TSan target)
// ---------------------------------------------------------------------

class XprocSoakProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(XprocSoakProperty, ConcurrentProducerConsumerPreservesOrder)
{
    // Threads stand in for the two processes (the mapping is
    // MAP_SHARED either way); TSan sees every cross-cursor access.
    constexpr std::uint64_t kMessages = 20000;
    XprocChannel channel(64); // small: constant wrap + full/empty races
    ASSERT_TRUE(channel.valid());
    channel.setSendTimeout(std::chrono::seconds(10));

    Rng rng(GetParam());
    const std::uint64_t burst_mod = 1 + rng.nextBelow(7);
    std::atomic<bool> failed{false};

    std::thread producer([&channel, &failed] {
        for (std::uint64_t i = 0; i < kMessages; ++i) {
            if (!channel.send(Message(Opcode::EventCount, i)).isOk()) {
                failed.store(true);
                return;
            }
        }
    });

    std::uint64_t expected = 0;
    Message batch[32];
    while (expected < kMessages && !failed.load()) {
        const std::size_t max_count =
            1 + static_cast<std::size_t>(expected % burst_mod) % 32;
        const std::size_t n = channel.tryRecvBatch(batch, max_count);
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(batch[i].arg0, expected)
                << "out-of-order or corrupted message";
            ++expected;
        }
        if (n == 0)
            std::this_thread::yield();
    }
    producer.join();
    ASSERT_FALSE(failed.load()) << "producer send failed";
    EXPECT_EQ(expected, kMessages);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, XprocSoakProperty,
                         ::testing::Values(71, 72, 73));

// ---------------------------------------------------------------------
// FlatMap vs. unordered_map reference, multi-threaded
// ---------------------------------------------------------------------

class FlatMapProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(FlatMapProperty, RandomizedChurnMatchesUnorderedMapAcrossThreads)
{
    // N independent maps churned from N threads: catches any hidden
    // shared state in the implementation (TSan) while each thread
    // verifies against its own reference model.
    constexpr int kThreads = 4;
    const int base_seed = GetParam();
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};

    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([t, base_seed, &failures] {
            Rng rng(base_seed * 100 + t);
            FlatMap<std::uint64_t, std::uint64_t> map;
            std::unordered_map<std::uint64_t, std::uint64_t> model;
            for (int step = 0; step < 30000; ++step) {
                // 8-byte-aligned keys: the degenerate low-entropy
                // pattern the murmur3 mix exists to handle.
                const std::uint64_t key = 0x1000 + 8 * rng.nextBelow(512);
                const std::uint64_t dice = rng.nextBelow(100);
                if (dice < 40) {
                    const std::uint64_t value = rng.next();
                    const bool added = map.insertOrAssign(key, value);
                    if (added != (model.count(key) == 0)) {
                        ++failures;
                        return;
                    }
                    model[key] = value;
                } else if (dice < 70) {
                    const std::uint64_t *found = map.find(key);
                    const auto it = model.find(key);
                    const bool match =
                        (found == nullptr) == (it == model.end()) &&
                        (found == nullptr || *found == it->second);
                    if (!match) {
                        ++failures;
                        return;
                    }
                } else {
                    if (map.erase(key) != (model.erase(key) > 0)) {
                        ++failures;
                        return;
                    }
                }
                if (map.size() != model.size()) {
                    ++failures;
                    return;
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, FlatMapProperty,
                         ::testing::Values(3, 9));

TEST(FlatMapConcurrency, ConcurrentReadersShareOneMapSafely)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    constexpr std::uint64_t kEntries = 4096;
    for (std::uint64_t i = 0; i < kEntries; ++i)
        map.insertOrAssign(0x1000 + 8 * i, i * i);

    // Read-only sharing is part of the container's contract; TSan
    // verifies no writes hide in the lookup path.
    constexpr int kThreads = 4;
    std::atomic<int> failures{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < kThreads; ++t) {
        readers.emplace_back([t, &map, &failures] {
            Rng rng(1000 + t);
            for (int step = 0; step < 50000; ++step) {
                const std::uint64_t i = rng.nextBelow(kEntries + 64);
                const std::uint64_t *found = map.find(0x1000 + 8 * i);
                const bool expect_hit = i < kEntries;
                if ((found != nullptr) != expect_hit ||
                    (found != nullptr && *found != i * i)) {
                    ++failures;
                    return;
                }
            }
        });
    }
    for (auto &reader : readers)
        reader.join();
    EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------
// Lag sidecar: wrap-around and envelope matching under disturbance
// ---------------------------------------------------------------------

TEST(LagSidecarProperty, WrapAroundKeepsEnvelopeMatchingExact)
{
    // Capacity far below the message count: the envelope ring wraps
    // dozens of times and must keep matching by sequence, not position.
    telemetry::LagSidecar sidecar(8);
    std::uint64_t enqueue_ns = 0;
    for (std::uint64_t seq = 0; seq < 200; ++seq) {
        ASSERT_TRUE(sidecar.stamp(seq, seq * 1000 + 1));
        ASSERT_TRUE(sidecar.consumeUpTo(seq, enqueue_ns)) << "seq " << seq;
        EXPECT_EQ(enqueue_ns, seq * 1000 + 1);
    }
    EXPECT_EQ(sidecar.pending(), 0u);
    EXPECT_EQ(sidecar.dropped(), 0u);
}

TEST(LagSidecarProperty, StaleAndMissingEnvelopesDegradeSafely)
{
    telemetry::LagSidecar sidecar(8);
    // Stamp seqs 0..4, then ask for seq 6 (whose envelope was never
    // stamped, as if telemetry had been off for that send): the stale
    // envelopes are discarded and the lookup reports "no sample" —
    // never a wrong sample.
    for (std::uint64_t seq = 0; seq < 5; ++seq)
        ASSERT_TRUE(sidecar.stamp(seq, seq * 1000 + 1));
    std::uint64_t enqueue_ns = 0;
    EXPECT_FALSE(sidecar.consumeUpTo(6, enqueue_ns));
    EXPECT_EQ(sidecar.pending(), 0u) << "stale envelopes must be drained";

    // The stream then recovers: a fresh stamp for seq 7 matches.
    ASSERT_TRUE(sidecar.stamp(7, 7777));
    ASSERT_TRUE(sidecar.consumeUpTo(7, enqueue_ns));
    EXPECT_EQ(enqueue_ns, 7777u);

    // A full sidecar drops the newest stamp (counted) instead of
    // blocking or overwriting history.
    for (std::uint64_t seq = 100; seq < 100 + 8; ++seq)
        ASSERT_TRUE(sidecar.stamp(seq, seq));
    EXPECT_FALSE(sidecar.stamp(200, 200));
    EXPECT_EQ(sidecar.dropped(), 1u);
}

TEST(LagSidecarProperty, CorruptedStreamRoundTripStaysConsistent)
{
    // A fault-injected channel can drop or duplicate *messages* while
    // the sidecar keeps stamping every send. Whatever the verifier asks
    // for, the sidecar must answer exactly-or-not-at-all.
    faultinject::disarmAll();
    telemetry::LagSidecar sidecar(16);
    Rng rng(42);
    std::uint64_t consumer_index = 0;
    std::uint64_t enqueue_ns = 0;
    for (std::uint64_t seq = 0; seq < 500; ++seq) {
        sidecar.stamp(seq, seq * 10 + 3);
        if (rng.chance(0.1))
            continue; // message dropped in flight: envelope goes stale
        consumer_index = seq;
        if (sidecar.consumeUpTo(consumer_index, enqueue_ns)) {
            EXPECT_EQ(enqueue_ns, consumer_index * 10 + 3)
                << "a matched envelope must never carry another's stamp";
        }
    }
    // Re-querying an already-consumed index must not resurrect data.
    EXPECT_FALSE(sidecar.consumeUpTo(consumer_index, enqueue_ns));
}

// ---------------------------------------------------------------------
// Pointer-integrity policy vs. reference map model
// ---------------------------------------------------------------------

class PointerPolicyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PointerPolicyProperty, MatchesReferenceShadowMap)
{
    Rng rng(GetParam());
    PointerIntegrityContext ctx(1);
    std::map<Addr, std::uint64_t> model;

    auto randAddr = [&] { return 0x1000 + 8 * rng.nextBelow(64); };

    for (int step = 0; step < 30000; ++step) {
        const std::uint64_t dice = rng.nextBelow(100);
        if (dice < 35) { // define
            const Addr p = randAddr();
            const std::uint64_t v = rng.nextBelow(16);
            ASSERT_TRUE(ctx.handleMessage(
                Message(Opcode::PointerDefine, p, v)));
            model[p] = v;
        } else if (dice < 70) { // check
            const Addr p = randAddr();
            const std::uint64_t v = rng.nextBelow(16);
            const bool expect_ok =
                model.count(p) > 0 && model[p] == v;
            const Status status =
                ctx.handleMessage(Message(Opcode::PointerCheck, p, v));
            ASSERT_EQ(status.isOk(), expect_ok) << "step " << step;
        } else if (dice < 80) { // invalidate
            const Addr p = randAddr();
            ctx.handleMessage(Message(Opcode::PointerInvalidate, p));
            model.erase(p);
        } else if (dice < 90) { // block invalidate
            const Addr base = randAddr();
            const std::uint64_t size = 8 * rng.nextInRange(1, 8);
            ctx.handleMessage(
                Message(Opcode::PointerBlockInvalidate, base, size));
            for (auto it = model.lower_bound(base);
                 it != model.end() && it->first < base + size;)
                it = model.erase(it);
        } else { // block copy
            const Addr src = randAddr();
            const Addr dst = randAddr();
            const std::uint64_t size = 8 * rng.nextInRange(1, 8);
            ctx.handleMessage(Message(Opcode::BlockSize, size));
            ctx.handleMessage(
                Message(Opcode::PointerBlockCopy, src, dst));
            std::map<Addr, std::uint64_t> moved;
            for (auto it = model.lower_bound(src);
                 it != model.end() && it->first < src + size; ++it)
                moved[dst + (it->first - src)] = it->second;
            for (auto it = model.lower_bound(dst);
                 it != model.end() && it->first < dst + size;)
                it = model.erase(it);
            for (const auto &[a, v] : moved)
                model[a] = v;
        }
        ASSERT_EQ(ctx.entryCount(), model.size()) << "step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, PointerPolicyProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------
// Memory-safety policy vs. reference interval model
// ---------------------------------------------------------------------

class MemoryPolicyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MemoryPolicyProperty, MatchesReferenceIntervalMap)
{
    Rng rng(GetParam());
    MemorySafetyContext ctx(1);
    std::map<Addr, std::uint64_t> model; // base -> size

    auto overlaps = [&](Addr base, std::uint64_t size) {
        for (const auto &[b, s] : model)
            if (base < b + s && b < base + size)
                return true;
        return false;
    };
    auto containing = [&](Addr a) -> std::optional<Addr> {
        for (const auto &[b, s] : model)
            if (a >= b && a < b + s)
                return b;
        return std::nullopt;
    };

    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t dice = rng.nextBelow(100);
        if (dice < 35) { // create
            const Addr base = 0x1000 + 16 * rng.nextBelow(128);
            const std::uint64_t size = 16 * rng.nextInRange(1, 4);
            const bool expect_ok = !overlaps(base, size);
            const Status status = ctx.handleMessage(
                Message(Opcode::AllocCreate, base, size));
            ASSERT_EQ(status.isOk(), expect_ok) << "step " << step;
            if (expect_ok)
                model[base] = size;
        } else if (dice < 70) { // check
            const Addr a = 0x1000 + rng.nextBelow(16 * 140);
            const Status status =
                ctx.handleMessage(Message(Opcode::AllocCheck, a));
            ASSERT_EQ(status.isOk(), containing(a).has_value())
                << "step " << step;
        } else if (dice < 85) { // destroy
            const Addr base = 0x1000 + 16 * rng.nextBelow(128);
            const bool expect_ok = model.count(base) > 0;
            const Status status =
                ctx.handleMessage(Message(Opcode::AllocDestroy, base));
            ASSERT_EQ(status.isOk(), expect_ok) << "step " << step;
            model.erase(base);
        } else { // check-base
            const Addr a1 = 0x1000 + rng.nextBelow(16 * 140);
            const Addr a2 = 0x1000 + rng.nextBelow(16 * 140);
            const auto c1 = containing(a1);
            const auto c2 = containing(a2);
            const bool expect_ok = c1 && c2 && *c1 == *c2;
            const Status status = ctx.handleMessage(
                Message(Opcode::AllocCheckBase, a1, a2));
            ASSERT_EQ(status.isOk(), expect_ok) << "step " << step;
        }
        ASSERT_EQ(ctx.entryCount(), model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, MemoryPolicyProperty,
                         ::testing::Values(7, 17, 27));

// ---------------------------------------------------------------------
// Dominator-tree invariants on random CFGs
// ---------------------------------------------------------------------

/** Build a random function CFG with `blocks` blocks. */
Module
randomCfg(int seed, int num_blocks)
{
    Rng rng(seed);
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("f", 1);
    for (int b = 1; b < num_blocks; ++b)
        builder.newBlock();
    for (int b = 0; b < num_blocks; ++b) {
        builder.setBlock(b);
        const std::uint64_t kind = rng.nextBelow(10);
        if (kind < 2 || b == num_blocks - 1) {
            builder.ret();
        } else if (kind < 6) {
            builder.br(
                static_cast<int>(rng.nextInRange(0, num_blocks - 1)));
        } else {
            builder.condBr(
                builder.param(0),
                static_cast<int>(rng.nextInRange(0, num_blocks - 1)),
                static_cast<int>(rng.nextInRange(0, num_blocks - 1)));
        }
    }
    builder.endFunction();
    module.entry_function = 0;
    return module;
}

/** Reference dominance: a dominates b iff removing a unreaches b. */
bool
refDominates(const Cfg &cfg, int a, int b)
{
    if (a == b)
        return true;
    std::set<int> visited{a}; // treat a as a wall
    std::vector<int> work{0};
    if (a == 0)
        return cfg.reachable(b); // entry dominates everything reachable
    visited.insert(0);
    while (!work.empty()) {
        const int node = work.back();
        work.pop_back();
        if (node == b)
            return false;
        for (int succ : cfg.successors(node)) {
            if (!visited.count(succ)) {
                visited.insert(succ);
                work.push_back(succ);
            }
        }
    }
    return cfg.reachable(b);
}

class DominatorProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(DominatorProperty, MatchesReachabilityDefinition)
{
    const int num_blocks = 8;
    Module module = randomCfg(GetParam(), num_blocks);
    ASSERT_TRUE(verifyModule(module).isOk());
    const Cfg cfg(module.functions[0]);
    const DominatorTree dom(cfg);

    for (int a = 0; a < num_blocks; ++a) {
        for (int b = 0; b < num_blocks; ++b) {
            if (!cfg.reachable(a) || !cfg.reachable(b))
                continue;
            EXPECT_EQ(dom.dominates(a, b), refDominates(cfg, a, b))
                << "seed " << GetParam() << " a=" << a << " b=" << b;
        }
    }

    // idom is a dominator of its node and distinct from it.
    for (int b = 1; b < num_blocks; ++b) {
        if (!cfg.reachable(b))
            continue;
        const int idom = dom.idom(b);
        ASSERT_GE(idom, 0);
        EXPECT_NE(idom, b);
        EXPECT_TRUE(dom.dominates(idom, b));
    }
}

INSTANTIATE_TEST_SUITE_P(RandomCfgs, DominatorProperty,
                         ::testing::Range(100, 140));

// ---------------------------------------------------------------------
// VM determinism and design-independence of output
// ---------------------------------------------------------------------

class ChecksumProperty
    : public ::testing::TestWithParam<std::tuple<const char *, CfiDesign>>
{
};

TEST_P(ChecksumProperty, InstrumentationPreservesOutput)
{
    const auto [name, design] = GetParam();
    const SpecProfile &profile = specProfile(name);

    ir::Module baseline = buildSpecModule(profile, 0.02);
    VmConfig base_config;
    Vm base_vm(baseline, base_config, nullptr);
    const RunResult base = base_vm.run();
    ASSERT_EQ(base.exit, ExitKind::Ok);

    ir::Module instrumented = buildSpecModule(profile, 0.02);
    ASSERT_TRUE(instrumentModule(instrumented, design).isOk());
    VmConfig config = makeVmConfig(design);
    config.hq_messages = false; // run without a channel: pure semantics
    config.stop_on_inline_violation = false;
    Vm vm(instrumented, config, nullptr);
    const RunResult result = vm.run();
    ASSERT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_EQ(result.return_value, base.return_value);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndDesigns, ChecksumProperty,
    ::testing::Combine(
        ::testing::Values("bzip2", "mcf", "astar", "leela_r", "hmmer"),
        ::testing::Values(CfiDesign::Baseline, CfiDesign::HqSfeStk,
                          CfiDesign::HqRetPtr, CfiDesign::ClangCfi,
                          CfiDesign::Ccfi, CfiDesign::Cpi)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param)) + "_" +
               designInfo(std::get<1>(info.param)).name.substr(0, 2) +
               std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

} // namespace
} // namespace hq
