/**
 * @file
 * Property-based tests: randomized operation sequences checked against
 * independent reference models, and structural invariants verified on
 * randomly generated inputs. Parameterized over seeds/capacities with
 * INSTANTIATE_TEST_SUITE_P.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <optional>
#include <set>

#include "cfi/design.h"
#include "common/rng.h"
#include "ipc/spsc_ring.h"
#include "ir/builder.h"
#include "ir/cfg.h"
#include "ir/dominators.h"
#include "ir/verify.h"
#include "policy/memory_safety.h"
#include "policy/pointer_integrity.h"
#include "runtime/vm.h"
#include "workloads/spec_generator.h"
#include "workloads/spec_profiles.h"

namespace hq {
namespace {

using namespace ir;

// ---------------------------------------------------------------------
// SPSC ring vs. deque reference model
// ---------------------------------------------------------------------

class RingModelProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{
};

TEST_P(RingModelProperty, MatchesDequeReference)
{
    const auto [capacity, seed] = GetParam();
    SpscRing ring(capacity);
    std::deque<std::uint64_t> model;
    Rng rng(seed);

    for (int step = 0; step < 20000; ++step) {
        if (rng.chance(0.55)) {
            const std::uint64_t value = rng.next();
            const bool pushed =
                ring.tryPush(Message(Opcode::EventCount, value));
            const bool model_fits = model.size() < ring.capacity();
            ASSERT_EQ(pushed, model_fits) << "step " << step;
            if (pushed)
                model.push_back(value);
        } else {
            Message out;
            const bool popped = ring.tryPop(out);
            ASSERT_EQ(popped, !model.empty()) << "step " << step;
            if (popped) {
                ASSERT_EQ(out.arg0, model.front());
                model.pop_front();
            }
        }
        ASSERT_EQ(ring.size(), model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    CapacitySeedSweep, RingModelProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 8, 64, 1024),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------
// Pointer-integrity policy vs. reference map model
// ---------------------------------------------------------------------

class PointerPolicyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PointerPolicyProperty, MatchesReferenceShadowMap)
{
    Rng rng(GetParam());
    PointerIntegrityContext ctx(1);
    std::map<Addr, std::uint64_t> model;

    auto randAddr = [&] { return 0x1000 + 8 * rng.nextBelow(64); };

    for (int step = 0; step < 30000; ++step) {
        const std::uint64_t dice = rng.nextBelow(100);
        if (dice < 35) { // define
            const Addr p = randAddr();
            const std::uint64_t v = rng.nextBelow(16);
            ASSERT_TRUE(ctx.handleMessage(
                Message(Opcode::PointerDefine, p, v)));
            model[p] = v;
        } else if (dice < 70) { // check
            const Addr p = randAddr();
            const std::uint64_t v = rng.nextBelow(16);
            const bool expect_ok =
                model.count(p) > 0 && model[p] == v;
            const Status status =
                ctx.handleMessage(Message(Opcode::PointerCheck, p, v));
            ASSERT_EQ(status.isOk(), expect_ok) << "step " << step;
        } else if (dice < 80) { // invalidate
            const Addr p = randAddr();
            ctx.handleMessage(Message(Opcode::PointerInvalidate, p));
            model.erase(p);
        } else if (dice < 90) { // block invalidate
            const Addr base = randAddr();
            const std::uint64_t size = 8 * rng.nextInRange(1, 8);
            ctx.handleMessage(
                Message(Opcode::PointerBlockInvalidate, base, size));
            for (auto it = model.lower_bound(base);
                 it != model.end() && it->first < base + size;)
                it = model.erase(it);
        } else { // block copy
            const Addr src = randAddr();
            const Addr dst = randAddr();
            const std::uint64_t size = 8 * rng.nextInRange(1, 8);
            ctx.handleMessage(Message(Opcode::BlockSize, size));
            ctx.handleMessage(
                Message(Opcode::PointerBlockCopy, src, dst));
            std::map<Addr, std::uint64_t> moved;
            for (auto it = model.lower_bound(src);
                 it != model.end() && it->first < src + size; ++it)
                moved[dst + (it->first - src)] = it->second;
            for (auto it = model.lower_bound(dst);
                 it != model.end() && it->first < dst + size;)
                it = model.erase(it);
            for (const auto &[a, v] : moved)
                model[a] = v;
        }
        ASSERT_EQ(ctx.entryCount(), model.size()) << "step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, PointerPolicyProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------
// Memory-safety policy vs. reference interval model
// ---------------------------------------------------------------------

class MemoryPolicyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MemoryPolicyProperty, MatchesReferenceIntervalMap)
{
    Rng rng(GetParam());
    MemorySafetyContext ctx(1);
    std::map<Addr, std::uint64_t> model; // base -> size

    auto overlaps = [&](Addr base, std::uint64_t size) {
        for (const auto &[b, s] : model)
            if (base < b + s && b < base + size)
                return true;
        return false;
    };
    auto containing = [&](Addr a) -> std::optional<Addr> {
        for (const auto &[b, s] : model)
            if (a >= b && a < b + s)
                return b;
        return std::nullopt;
    };

    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t dice = rng.nextBelow(100);
        if (dice < 35) { // create
            const Addr base = 0x1000 + 16 * rng.nextBelow(128);
            const std::uint64_t size = 16 * rng.nextInRange(1, 4);
            const bool expect_ok = !overlaps(base, size);
            const Status status = ctx.handleMessage(
                Message(Opcode::AllocCreate, base, size));
            ASSERT_EQ(status.isOk(), expect_ok) << "step " << step;
            if (expect_ok)
                model[base] = size;
        } else if (dice < 70) { // check
            const Addr a = 0x1000 + rng.nextBelow(16 * 140);
            const Status status =
                ctx.handleMessage(Message(Opcode::AllocCheck, a));
            ASSERT_EQ(status.isOk(), containing(a).has_value())
                << "step " << step;
        } else if (dice < 85) { // destroy
            const Addr base = 0x1000 + 16 * rng.nextBelow(128);
            const bool expect_ok = model.count(base) > 0;
            const Status status =
                ctx.handleMessage(Message(Opcode::AllocDestroy, base));
            ASSERT_EQ(status.isOk(), expect_ok) << "step " << step;
            model.erase(base);
        } else { // check-base
            const Addr a1 = 0x1000 + rng.nextBelow(16 * 140);
            const Addr a2 = 0x1000 + rng.nextBelow(16 * 140);
            const auto c1 = containing(a1);
            const auto c2 = containing(a2);
            const bool expect_ok = c1 && c2 && *c1 == *c2;
            const Status status = ctx.handleMessage(
                Message(Opcode::AllocCheckBase, a1, a2));
            ASSERT_EQ(status.isOk(), expect_ok) << "step " << step;
        }
        ASSERT_EQ(ctx.entryCount(), model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, MemoryPolicyProperty,
                         ::testing::Values(7, 17, 27));

// ---------------------------------------------------------------------
// Dominator-tree invariants on random CFGs
// ---------------------------------------------------------------------

/** Build a random function CFG with `blocks` blocks. */
Module
randomCfg(int seed, int num_blocks)
{
    Rng rng(seed);
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("f", 1);
    for (int b = 1; b < num_blocks; ++b)
        builder.newBlock();
    for (int b = 0; b < num_blocks; ++b) {
        builder.setBlock(b);
        const std::uint64_t kind = rng.nextBelow(10);
        if (kind < 2 || b == num_blocks - 1) {
            builder.ret();
        } else if (kind < 6) {
            builder.br(
                static_cast<int>(rng.nextInRange(0, num_blocks - 1)));
        } else {
            builder.condBr(
                builder.param(0),
                static_cast<int>(rng.nextInRange(0, num_blocks - 1)),
                static_cast<int>(rng.nextInRange(0, num_blocks - 1)));
        }
    }
    builder.endFunction();
    module.entry_function = 0;
    return module;
}

/** Reference dominance: a dominates b iff removing a unreaches b. */
bool
refDominates(const Cfg &cfg, int a, int b)
{
    if (a == b)
        return true;
    std::set<int> visited{a}; // treat a as a wall
    std::vector<int> work{0};
    if (a == 0)
        return cfg.reachable(b); // entry dominates everything reachable
    visited.insert(0);
    while (!work.empty()) {
        const int node = work.back();
        work.pop_back();
        if (node == b)
            return false;
        for (int succ : cfg.successors(node)) {
            if (!visited.count(succ)) {
                visited.insert(succ);
                work.push_back(succ);
            }
        }
    }
    return cfg.reachable(b);
}

class DominatorProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(DominatorProperty, MatchesReachabilityDefinition)
{
    const int num_blocks = 8;
    Module module = randomCfg(GetParam(), num_blocks);
    ASSERT_TRUE(verifyModule(module).isOk());
    const Cfg cfg(module.functions[0]);
    const DominatorTree dom(cfg);

    for (int a = 0; a < num_blocks; ++a) {
        for (int b = 0; b < num_blocks; ++b) {
            if (!cfg.reachable(a) || !cfg.reachable(b))
                continue;
            EXPECT_EQ(dom.dominates(a, b), refDominates(cfg, a, b))
                << "seed " << GetParam() << " a=" << a << " b=" << b;
        }
    }

    // idom is a dominator of its node and distinct from it.
    for (int b = 1; b < num_blocks; ++b) {
        if (!cfg.reachable(b))
            continue;
        const int idom = dom.idom(b);
        ASSERT_GE(idom, 0);
        EXPECT_NE(idom, b);
        EXPECT_TRUE(dom.dominates(idom, b));
    }
}

INSTANTIATE_TEST_SUITE_P(RandomCfgs, DominatorProperty,
                         ::testing::Range(100, 140));

// ---------------------------------------------------------------------
// VM determinism and design-independence of output
// ---------------------------------------------------------------------

class ChecksumProperty
    : public ::testing::TestWithParam<std::tuple<const char *, CfiDesign>>
{
};

TEST_P(ChecksumProperty, InstrumentationPreservesOutput)
{
    const auto [name, design] = GetParam();
    const SpecProfile &profile = specProfile(name);

    ir::Module baseline = buildSpecModule(profile, 0.02);
    VmConfig base_config;
    Vm base_vm(baseline, base_config, nullptr);
    const RunResult base = base_vm.run();
    ASSERT_EQ(base.exit, ExitKind::Ok);

    ir::Module instrumented = buildSpecModule(profile, 0.02);
    ASSERT_TRUE(instrumentModule(instrumented, design).isOk());
    VmConfig config = makeVmConfig(design);
    config.hq_messages = false; // run without a channel: pure semantics
    config.stop_on_inline_violation = false;
    Vm vm(instrumented, config, nullptr);
    const RunResult result = vm.run();
    ASSERT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_EQ(result.return_value, base.return_value);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndDesigns, ChecksumProperty,
    ::testing::Combine(
        ::testing::Values("bzip2", "mcf", "astar", "leela_r", "hmmer"),
        ::testing::Values(CfiDesign::Baseline, CfiDesign::HqSfeStk,
                          CfiDesign::HqRetPtr, CfiDesign::ClangCfi,
                          CfiDesign::Ccfi, CfiDesign::Cpi)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param)) + "_" +
               designInfo(std::get<1>(info.param)).name.substr(0, 2) +
               std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

} // namespace
} // namespace hq
