/**
 * @file
 * Sharded-verifier suite: pid->shard assignment properties, shard
 * isolation (no cross-shard message leakage, violation containment),
 * and a seeded 4-shard x 8-process fault-injection soak asserting
 * per-shard recovery with zero silent accepts.
 *
 * Tests whose name contains "Soak" are registered under the `soak`
 * ctest label (tests/CMakeLists.txt) and excluded from tier1.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "faultinject/fault.h"
#include "ipc/shm_channel.h"
#include "kernel/kernel.h"
#include "policy/ifc.h"
#include "policy/pointer_integrity.h"
#include "policy/policy_module.h"
#include "telemetry/event_log.h"
#include "telemetry/telemetry.h"
#include "verifier/shard.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

namespace fi = faultinject;

KernelModule::Config
fastEpochConfig()
{
    KernelModule::Config config;
    config.epoch = std::chrono::milliseconds(100);
    config.spin = std::chrono::microseconds(10);
    return config;
}

// ---------------------------------------------------------------------
// Assignment properties (pure hash + registry)
// ---------------------------------------------------------------------

TEST(ShardAssignment, IsStableUnderStartExitChurn)
{
    // The mapping is a pure hash of the pid: no amount of start/exit
    // churn — or a registry rebuild (verifier restart) — may move a
    // pid to a different shard.
    constexpr std::size_t kShards = 4;
    Rng rng(0xC0FFEE);
    ShardRegistry registry(kShards);

    std::map<Pid, std::size_t> first_seen;
    std::vector<Pid> live;
    for (int round = 0; round < 2000; ++round) {
        if (live.empty() || rng.chance(0.6)) {
            const Pid pid = static_cast<Pid>(rng.nextInRange(1, 500));
            const std::size_t shard = registry.assign(pid);
            ASSERT_LT(shard, kShards);
            auto [it, inserted] = first_seen.emplace(pid, shard);
            ASSERT_EQ(it->second, shard)
                << "pid " << pid << " moved shards under churn";
            if (inserted ||
                std::find(live.begin(), live.end(), pid) == live.end())
                live.push_back(pid);
        } else {
            const std::size_t victim = rng.nextBelow(live.size());
            const Pid pid = live[victim];
            registry.release(pid);
            live.erase(live.begin() + victim);
            // Re-assignment after an exit lands on the same shard.
            EXPECT_EQ(registry.shardOf(pid), first_seen[pid]);
        }
        EXPECT_EQ(registry.liveCount(), live.size());
    }

    // A fresh registry (restart) reproduces every assignment.
    ShardRegistry rebuilt(kShards);
    for (const auto &[pid, shard] : first_seen)
        EXPECT_EQ(rebuilt.assign(pid), shard);

    // Per-shard live counts always sum to the total.
    std::size_t sum = 0;
    for (std::size_t s = 0; s < kShards; ++s)
        sum += registry.liveOn(s);
    EXPECT_EQ(sum, registry.liveCount());
}

TEST(ShardAssignment, AssignIsIdempotentAndReleaseExact)
{
    ShardRegistry registry(4);
    const std::size_t shard = registry.assign(42);
    EXPECT_EQ(registry.assign(42), shard); // idempotent
    EXPECT_EQ(registry.liveCount(), 1u);
    EXPECT_TRUE(registry.isLive(42));
    EXPECT_TRUE(registry.release(42));
    EXPECT_FALSE(registry.release(42)); // second release is a no-op
    EXPECT_EQ(registry.liveCount(), 0u);
    EXPECT_FALSE(registry.isLive(42));
}

TEST(ShardAssignment, SpreadsDensePidsAcrossShards)
{
    // Fork storms allocate pids densely; the splitmix64 finalizer must
    // spread consecutive pids instead of striding or clumping.
    constexpr std::size_t kShards = 8;
    constexpr std::size_t kPids = 1000;
    std::size_t per_shard[kShards] = {};
    for (Pid pid = 1; pid <= kPids; ++pid)
        ++per_shard[shardIndexFor(pid, kShards)];
    for (std::size_t s = 0; s < kShards; ++s) {
        EXPECT_GT(per_shard[s], kPids / kShards / 2)
            << "shard " << s << " starved";
        EXPECT_LT(per_shard[s], kPids / kShards * 2)
            << "shard " << s << " overloaded";
    }
}

TEST(ShardAssignment, SingleShardMapsEveryPidToZero)
{
    for (Pid pid = 0; pid < 100; ++pid) {
        EXPECT_EQ(shardIndexFor(pid, 1), 0u);
        EXPECT_EQ(shardIndexFor(pid, 0), 0u); // guard, not a divide
    }
}

// ---------------------------------------------------------------------
// Verifier shard isolation
// ---------------------------------------------------------------------

/** Pick `count` pids that all live on distinct shards of `verifier`. */
std::vector<Pid>
pidsOnDistinctShards(const Verifier &verifier, std::size_t count)
{
    std::vector<Pid> pids;
    std::set<std::size_t> used;
    for (Pid candidate = 1; pids.size() < count && candidate < 10000;
         ++candidate) {
        const std::size_t shard = verifier.shardOf(candidate);
        if (used.insert(shard).second)
            pids.push_back(candidate);
    }
    return pids;
}

TEST(ShardVerifier, ConfigResolvesShardCount)
{
    KernelModule kernel(fastEpochConfig());
    auto policy = std::make_shared<PointerIntegrityPolicy>();

    Verifier::Config four;
    four.num_shards = 4;
    Verifier sharded(kernel, policy, four);
    EXPECT_EQ(sharded.numShards(), 4u);
    EXPECT_EQ(sharded.config().num_shards, 4u);

    Verifier::Config over;
    over.num_shards = 1000; // clamped to the supported maximum
    Verifier clamped(kernel, policy, over);
    EXPECT_EQ(clamped.numShards(), Verifier::kMaxShards);

    Verifier::Config automatic; // num_shards = 0 -> hardware-bounded
    Verifier auto_sharded(kernel, policy, automatic);
    EXPECT_GE(auto_sharded.numShards(), 1u);
    EXPECT_LE(auto_sharded.numShards(), Verifier::kMaxShards);
}

TEST(ShardVerifier, MessagesStayOnTheOwningShard)
{
    KernelModule kernel(fastEpochConfig());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.num_shards = 4;
    Verifier verifier(kernel, policy, config);

    // One pid per shard, each with its own channel and message count.
    const std::vector<Pid> pids = pidsOnDistinctShards(verifier, 4);
    ASSERT_EQ(pids.size(), 4u);
    std::vector<std::unique_ptr<ShmChannel>> channels;
    for (std::size_t i = 0; i < pids.size(); ++i) {
        ASSERT_TRUE(kernel.enableProcess(pids[i]).isOk());
        channels.push_back(std::make_unique<ShmChannel>(1 << 10));
        verifier.attachChannel(channels.back().get(), pids[i]);
    }

    // Distinct per-pid volumes so a cross-shard mixup cannot cancel out.
    for (std::size_t i = 0; i < pids.size(); ++i) {
        for (std::size_t k = 0; k < 10 * (i + 1); ++k)
            ASSERT_TRUE(channels[i]
                            ->send(Message(Opcode::PointerDefine,
                                           0x1000 * (i + 1) + 8 * k, k))
                            .isOk());
    }
    EXPECT_EQ(verifier.poll(), 10u + 20u + 30u + 40u);

    for (std::size_t i = 0; i < pids.size(); ++i) {
        const std::size_t home = verifier.shardOf(pids[i]);
        EXPECT_EQ(verifier.shardMessages(home), 10 * (i + 1))
            << "shard " << home << " processed foreign messages";
        EXPECT_EQ(verifier.statsFor(pids[i]).messages, 10 * (i + 1));
    }
}

TEST(ShardVerifier, ViolationOnOneShardKillsOnlyThatShardsPid)
{
    KernelModule kernel(fastEpochConfig());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.num_shards = 4;
    config.kill_on_violation = true;
    Verifier verifier(kernel, policy, config);

    const std::vector<Pid> pids = pidsOnDistinctShards(verifier, 4);
    ASSERT_EQ(pids.size(), 4u);
    std::vector<std::unique_ptr<ShmChannel>> channels;
    for (Pid pid : pids) {
        ASSERT_TRUE(kernel.enableProcess(pid).isOk());
        channels.push_back(std::make_unique<ShmChannel>(1 << 10));
        verifier.attachChannel(channels.back().get(), pid);
    }

    // Everyone defines a pointer; only pids[1] corrupts its check.
    for (std::size_t i = 0; i < pids.size(); ++i) {
        ASSERT_TRUE(channels[i]
                        ->send(Message(Opcode::PointerDefine, 0x40, 0xAA))
                        .isOk());
        ASSERT_TRUE(channels[i]
                        ->send(Message(Opcode::PointerCheck, 0x40,
                                       i == 1 ? 0xBAD : 0xAA))
                        .isOk());
    }
    verifier.poll();

    for (std::size_t i = 0; i < pids.size(); ++i) {
        if (i == 1) {
            EXPECT_TRUE(verifier.hasViolation(pids[i]));
            EXPECT_TRUE(kernel.isKilled(pids[i]))
                << "violating pid must be killed";
            continue;
        }
        EXPECT_FALSE(verifier.hasViolation(pids[i]))
            << "violation leaked to shard " << verifier.shardOf(pids[i]);
        EXPECT_FALSE(kernel.isKilled(pids[i]))
            << "kill leaked to an innocent shard's pid";
    }

    // The innocent pids still get syscall acks end to end.
    for (std::size_t i = 0; i < pids.size(); ++i) {
        if (i == 1)
            continue;
        ASSERT_TRUE(
            channels[i]->send(Message(Opcode::Syscall, 1, 0)).isOk());
        verifier.poll();
        EXPECT_TRUE(kernel
                        .syscallEnter(pids[i], 1,
                                      /*spin_fast_path=*/false)
                        .isOk());
    }
}

TEST(ShardVerifier, WorkerThreadsDrainAllShards)
{
    // start()/stop() path: one worker per shard, all of them draining.
    KernelModule kernel(fastEpochConfig());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.num_shards = 4;
    Verifier verifier(kernel, policy, config);

    const std::vector<Pid> pids = pidsOnDistinctShards(verifier, 4);
    ASSERT_EQ(pids.size(), 4u);
    std::vector<std::unique_ptr<ShmChannel>> channels;
    for (Pid pid : pids) {
        ASSERT_TRUE(kernel.enableProcess(pid).isOk());
        channels.push_back(std::make_unique<ShmChannel>(1 << 10));
        verifier.attachChannel(channels.back().get(), pid);
    }

    verifier.start();
    for (int k = 0; k < 50; ++k)
        for (auto &channel : channels)
            ASSERT_TRUE(
                channel
                    ->send(Message(Opcode::PointerDefine, 0x100 + 8 * k,
                                   k))
                    .isOk());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (verifier.totalMessages() < 200 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    verifier.stop();

    EXPECT_EQ(verifier.totalMessages(), 200u);
    for (Pid pid : pids)
        EXPECT_EQ(verifier.statsFor(pid).messages, 50u);
}

// ---------------------------------------------------------------------
// Attach/detach churn: policy-table slice reclamation
// ---------------------------------------------------------------------

TEST(ShardChurn, DetachOfLastChannelReclaimsPolicySlice)
{
    // Regression: a pid whose last channel detached after exit used to
    // leave a stale policy-table slice in its home shard's process map
    // — one leaked entry (CFI shadow slice + IFC label slice) per
    // churned pid. 100 attach/exit/detach rounds, both orderings, must
    // return the slice count to the pre-churn baseline.
    KernelModule kernel(fastEpochConfig());
    auto multi = std::make_shared<MultiPolicy>();
    multi->addPolicy(std::make_unique<PointerIntegrityPolicy>());
    multi->addPolicy(std::make_unique<IfcPolicy>());
    Verifier::Config config;
    config.num_shards = 4;
    Verifier verifier(kernel, multi, config);

    const std::size_t baseline = verifier.policySliceCount();
    ASSERT_EQ(baseline, 0u);

    for (Pid pid = 1; pid <= 100; ++pid) {
        ASSERT_TRUE(kernel.enableProcess(pid).isOk());
        ShmChannel channel(1 << 10);
        verifier.attachChannel(&channel, pid);
        // Populate both families' table slices so reclamation is
        // observable as more than an empty map entry.
        ASSERT_TRUE(
            channel.send(Message(Opcode::PointerDefine, 0x100, 0xAA))
                .isOk());
        ASSERT_TRUE(channel
                        .send(Message(Opcode::LabelDef, 0x200,
                                      label::kSecret))
                        .isOk());
        verifier.poll();
        EXPECT_EQ(verifier.statsFor(pid).messages, 2u);
        EXPECT_GE(verifier.policySliceCount(), 1u);

        // Alternate the orderings of the churn edge: exit-then-detach
        // (slice held post-mortem until the last channel goes) and
        // detach-then-exit (slice held until the exit notification).
        if (pid % 2 == 0) {
            kernel.exitProcess(pid);
            verifier.detachChannel(&channel);
        } else {
            verifier.detachChannel(&channel);
            kernel.exitProcess(pid);
        }
    }

    EXPECT_EQ(verifier.policySliceCount(), baseline)
        << "churned pids leaked policy-table slices";
    EXPECT_EQ(verifier.channelCount(), 0u);
}

TEST(ShardChurn, DetachMidDrainDoesNotLeakSlicesOrCrash)
{
    // Same churn with live worker threads so detachChannel races an
    // in-flight drain (the drain_list snapshot invalidation path).
    KernelModule kernel(fastEpochConfig());
    auto multi = std::make_shared<MultiPolicy>();
    multi->addPolicy(std::make_unique<PointerIntegrityPolicy>());
    multi->addPolicy(std::make_unique<IfcPolicy>());
    Verifier::Config config;
    config.num_shards = 4;
    Verifier verifier(kernel, multi, config);
    verifier.start();

    for (Pid pid = 1; pid <= 100; ++pid) {
        ASSERT_TRUE(kernel.enableProcess(pid).isOk());
        ShmChannel channel(1 << 10);
        verifier.attachChannel(&channel, pid);
        for (int k = 0; k < 8; ++k) {
            ASSERT_TRUE(channel
                            .send(Message(Opcode::LabelDef, 0x100 + 8 * k,
                                          label::kTainted))
                            .isOk());
        }
        // Detach while the workers may still be mid-drain on this
        // channel; the entry must be unhooked safely either way.
        verifier.detachChannel(&channel);
        kernel.exitProcess(pid);
    }

    verifier.stop();
    EXPECT_EQ(verifier.policySliceCount(), 0u)
        << "mid-drain detach leaked policy-table slices";
    EXPECT_EQ(verifier.channelCount(), 0u);
}

// ---------------------------------------------------------------------
// Seeded fault-injection soak: 4 shards x 8 processes
// ---------------------------------------------------------------------

TEST(ShardChurn, SoakWithRingDropsAndVerifierCrashRecoversPerShard)
{
    // 4-shard x 8-process soak reusing the PR-4 fault sites: seeded
    // ring drops plus one injected verifier crash mid-stream. Every
    // injected fault class must be detected (sequence gaps) or safely
    // denied — the audit must find zero silent accepts — and the
    // restarted verifier must rebuild every shard's pids via replay.
    fi::disarmAll();
    telemetry::Registry::instance().reset();
    telemetry::setEnabled(true);
    const std::string log_path =
        ::testing::TempDir() + "shard_soak_events.jsonl";
    ASSERT_TRUE(telemetry::EventLog::instance().open(log_path));

    KernelModule kernel(fastEpochConfig());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.num_shards = 4;
    config.check_sequence = true; // ring drops must surface as gaps
    config.kill_on_violation = false; // keep processes under test alive
    auto verifier =
        std::make_unique<Verifier>(kernel, policy, config);

    constexpr std::size_t kProcs = 8;
    std::vector<Pid> pids;
    std::vector<std::unique_ptr<ShmChannel>> channels;
    for (std::size_t i = 0; i < kProcs; ++i) {
        const Pid pid = static_cast<Pid>(101 + 17 * i);
        pids.push_back(pid);
        ASSERT_TRUE(kernel.enableProcess(pid).isOk());
        channels.push_back(std::make_unique<ShmChannel>(1 << 12));
        verifier->attachChannel(channels.back().get(), pid);
    }
    // All four shards must actually be populated by this pid set.
    std::set<std::size_t> populated;
    for (Pid pid : pids)
        populated.insert(verifier->shardOf(pid));
    ASSERT_EQ(populated.size(), 4u)
        << "soak pid set no longer covers every shard";

    fi::FaultPlan::instance().setSeed(0x5EED);
    fi::FaultPlan::instance().arm(fi::Site::RingDrop, 0.01);
    fi::FaultPlan::instance().arm(fi::Site::VerifierCrash, 1.0,
                                  /*after_n=*/900, /*max_fires=*/1);
    fi::captureDetectorBaselines();

    Rng rng(0xDECAF);
    bool restarted = false;
    for (int round = 0; round < 400; ++round) {
        for (std::size_t i = 0; i < kProcs; ++i) {
            const std::uint64_t addr =
                0x1000 * (i + 1) + 8 * rng.nextBelow(64);
            ASSERT_TRUE(channels[i]
                            ->send(Message(Opcode::PointerDefine, addr,
                                           rng.next()))
                            .isOk());
        }
        verifier->poll();
        if (verifier->crashed() && !restarted) {
            // Crash recovery: a new verifier re-attaches every
            // channel and rebuilds all shards' processes via replay.
            auto fresh =
                std::make_unique<Verifier>(kernel, policy, config);
            EXPECT_EQ(kernel.replayProcessesTo(fresh.get()), kProcs);
            for (std::size_t i = 0; i < kProcs; ++i)
                fresh->attachChannel(channels[i].get(), pids[i]);
            verifier = std::move(fresh);
            restarted = true;
            // Per-shard recovery: every shard regained its pids.
            for (std::size_t s = 0; s < 4; ++s) {
                std::size_t expected = 0;
                for (Pid pid : pids)
                    if (verifier->shardOf(pid) == s)
                        ++expected;
                EXPECT_EQ(verifier->registry().liveOn(s), expected)
                    << "shard " << s << " not rebuilt by replay";
            }
        }
    }
    ASSERT_TRUE(restarted) << "the armed crash never fired";
    // Flush a final burst so a drop on the last message of a channel
    // still has a successor to expose the gap.
    for (std::size_t i = 0; i < kProcs; ++i)
        for (int k = 0; k < 4; ++k)
            ASSERT_TRUE(channels[i]
                            ->send(Message(Opcode::PointerDefine,
                                           0x9000 + 8 * k, k))
                            .isOk());
    verifier->poll();

    // Drops happened (the soak is vacuous otherwise) and were detected.
    EXPECT_GT(fi::FaultPlan::instance().injected(fi::Site::RingDrop), 0u);
    EXPECT_EQ(fi::emitAuditRecords(), 0)
        << "silent accept: an injected fault class went undetected";

    // Every process kept flowing on both sides of the restart, on its
    // own shard.
    for (Pid pid : pids)
        EXPECT_GT(verifier->statsFor(pid).messages, 0u);
    std::uint64_t shard_sum = 0;
    for (std::size_t s = 0; s < verifier->numShards(); ++s)
        shard_sum += verifier->shardMessages(s);
    EXPECT_EQ(shard_sum, verifier->totalMessages());

    telemetry::EventLog::instance().close();
    std::ifstream in(log_path);
    std::size_t silent_accepts = 0;
    for (std::string line; std::getline(in, line);)
        if (line.find("\"type\":\"silent_accept\"") != std::string::npos)
            ++silent_accepts;
    EXPECT_EQ(silent_accepts, 0u);
    std::remove(log_path.c_str());
    telemetry::setEnabled(false);
    fi::disarmAll();
}

TEST(ShardChurn, SoakChurnStormKeepsRegistryAndStateConsistent)
{
    // Start/exit storm against a live 4-shard verifier: enable and
    // retire processes continuously, with traffic in between, and check
    // the registry's live accounting and per-pid stats stay exact.
    fi::disarmAll();
    KernelModule kernel(fastEpochConfig());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.num_shards = 4;
    Verifier verifier(kernel, policy, config);

    Rng rng(0xB10B);
    std::map<Pid, std::unique_ptr<ShmChannel>> live;
    // Channels stay attached to the verifier after their process exits
    // (stale messages are drained and ignored), so retired channels
    // must outlive the polling loop.
    std::vector<std::unique_ptr<ShmChannel>> retired;
    std::uint64_t sent = 0;
    Pid next_pid = 1000;
    for (int round = 0; round < 600; ++round) {
        if (live.size() < 3 || (live.size() < 12 && rng.chance(0.5))) {
            const Pid pid = next_pid++;
            ASSERT_TRUE(kernel.enableProcess(pid).isOk());
            auto channel = std::make_unique<ShmChannel>(1 << 8);
            verifier.attachChannel(channel.get(), pid);
            live.emplace(pid, std::move(channel));
        } else if (rng.chance(0.25)) {
            auto victim = live.begin();
            std::advance(victim, rng.nextBelow(live.size()));
            kernel.exitProcess(victim->first); // drains via listener
            retired.push_back(std::move(victim->second));
            live.erase(victim);
        }
        for (auto &[pid, channel] : live) {
            if (!rng.chance(0.7))
                continue;
            ASSERT_TRUE(channel
                            ->send(Message(Opcode::PointerDefine,
                                           0x100 + 8 * rng.nextBelow(32),
                                           pid))
                            .isOk());
            ++sent;
        }
        verifier.poll();
        ASSERT_EQ(verifier.registry().liveCount(), live.size());
    }
    verifier.poll();
    EXPECT_EQ(verifier.totalMessages(), sent);
    std::size_t per_shard_sum = 0;
    for (std::size_t s = 0; s < verifier.numShards(); ++s)
        per_shard_sum += verifier.registry().liveOn(s);
    EXPECT_EQ(per_shard_sum, live.size());
}

} // namespace
} // namespace hq
