/**
 * @file
 * Tests of bounded asynchronous validation end-to-end: kernel module
 * syscall gating, the verifier event loop, fork/exit lifecycle, epoch
 * timeouts, and the FPGA sequence-integrity path.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "faultinject/fault.h"
#include "fpga/fpga_channel.h"
#include "ipc/shm_channel.h"
#include "kernel/kernel.h"
#include "policy/pointer_integrity.h"
#include "uarch/uarch_model_channel.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

KernelModule::Config
shortEpoch()
{
    KernelModule::Config config;
    config.epoch = std::chrono::milliseconds(50);
    return config;
}

TEST(Kernel, SyscallPassThroughWhenNotEnabled)
{
    KernelModule kernel;
    EXPECT_TRUE(kernel.syscallEnter(1, 0).isOk());
}

TEST(Kernel, EnableForkExitLifecycle)
{
    KernelModule kernel;
    EXPECT_TRUE(kernel.enableProcess(1).isOk());
    EXPECT_FALSE(kernel.enableProcess(1).isOk()); // duplicate
    EXPECT_TRUE(kernel.forkProcess(1, 2).isOk());
    EXPECT_FALSE(kernel.forkProcess(99, 100).isOk()); // unknown parent
    EXPECT_FALSE(kernel.forkProcess(1, 2).isOk());    // child in use
    EXPECT_TRUE(kernel.isEnabled(2));
    kernel.exitProcess(2);
    EXPECT_FALSE(kernel.isEnabled(2));
}

TEST(Kernel, SyscallResumesAfterVerifierAck)
{
    KernelModule kernel(shortEpoch());
    ASSERT_TRUE(kernel.enableProcess(1).isOk());

    // Pre-acked path (the pipelined fast path): resume before enter.
    kernel.syscallResume(1);
    EXPECT_TRUE(kernel.syscallEnter(1, 42).isOk());

    // The sync variable is consumed: the next syscall must wait again.
    std::thread acker([&kernel] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        kernel.syscallResume(1);
    });
    EXPECT_TRUE(kernel.syscallEnter(1, 43).isOk());
    acker.join();
    EXPECT_EQ(kernel.statsFor(1).syscalls, 2u);
    EXPECT_EQ(kernel.statsFor(1).waits, 1u);
}

TEST(Kernel, EpochTimeoutKillsProcess)
{
    KernelModule kernel(shortEpoch());
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    Status s = kernel.syscallEnter(1, 42);
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::PolicyViolation);
    EXPECT_TRUE(kernel.isKilled(1));
    EXPECT_EQ(kernel.statsFor(1).epoch_timeouts, 1u);
}

TEST(Kernel, KilledProcessCannotSyscall)
{
    KernelModule kernel(shortEpoch());
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    kernel.killProcess(1, "policy violation");
    Status s = kernel.syscallEnter(1, 1);
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.message(), "policy violation");
}

TEST(Kernel, KillUnblocksWaitingSyscall)
{
    KernelModule kernel; // default long epoch
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    std::thread killer([&kernel] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        kernel.killProcess(1, "violation detected");
    });
    Status s = kernel.syscallEnter(1, 7);
    killer.join();
    EXPECT_FALSE(s.isOk());
}

// ---------------------------------------------------------------------
// Verifier
// ---------------------------------------------------------------------

struct VerifierFixture
{
    KernelModule kernel{shortEpoch()};
    std::shared_ptr<PointerIntegrityPolicy> policy =
        std::make_shared<PointerIntegrityPolicy>();
};

TEST(Verifier, CreatesContextOnEnable)
{
    VerifierFixture fx;
    Verifier verifier(fx.kernel, fx.policy);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());
    EXPECT_NE(verifier.contextFor(1), nullptr);
}

TEST(Verifier, ProcessesMessagesAndDetectsViolation)
{
    VerifierFixture fx;
    Verifier::Config config;
    config.kill_on_violation = false;
    Verifier verifier(fx.kernel, fx.policy, config);

    ShmChannel channel(64);
    verifier.attachChannel(&channel, /*owner=*/1);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());

    channel.send(Message(Opcode::PointerDefine, 0x100, 0xAA));
    channel.send(Message(Opcode::PointerCheck, 0x100, 0xBB)); // corrupt
    EXPECT_EQ(verifier.poll(), 2u);
    EXPECT_TRUE(verifier.hasViolation(1));
    EXPECT_EQ(verifier.statsFor(1).messages, 2u);
    EXPECT_EQ(verifier.statsFor(1).violations, 1u);
    EXPECT_FALSE(fx.kernel.isKilled(1)); // continue-after-violation mode
}

TEST(Verifier, KillsOnViolationByDefault)
{
    VerifierFixture fx;
    Verifier verifier(fx.kernel, fx.policy);
    ShmChannel channel(64);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());

    channel.send(Message(Opcode::PointerCheck, 0x100, 0xAA));
    verifier.poll();
    EXPECT_TRUE(fx.kernel.isKilled(1));
}

TEST(Verifier, SyscallMessageTriggersKernelResume)
{
    VerifierFixture fx;
    Verifier verifier(fx.kernel, fx.policy);
    ShmChannel channel(64);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());

    channel.send(Message(Opcode::PointerDefine, 0x100, 0xAA));
    channel.send(Message(Opcode::Syscall, /*sysno=*/1));
    verifier.poll();
    EXPECT_EQ(verifier.statsFor(1).syscall_acks, 1u);
    // The kernel sync variable was set: syscallEnter returns immediately.
    EXPECT_TRUE(fx.kernel.syscallEnter(1, 1).isOk());
}

TEST(Verifier, NoResumeAfterViolationWhenKilling)
{
    VerifierFixture fx;
    Verifier verifier(fx.kernel, fx.policy);
    ShmChannel channel(64);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());

    channel.send(Message(Opcode::PointerCheck, 0x666, 0x1)); // violation
    channel.send(Message(Opcode::Syscall, 1)); // attacker-forged sync
    verifier.poll();
    EXPECT_EQ(verifier.statsFor(1).syscall_acks, 0u);
    EXPECT_FALSE(fx.kernel.syscallEnter(1, 1).isOk());
}

TEST(Verifier, ForkClonesPolicyContext)
{
    VerifierFixture fx;
    Verifier verifier(fx.kernel, fx.policy);
    ShmChannel parent_channel(64);
    ShmChannel child_channel(64);
    verifier.attachChannel(&parent_channel, 1);
    verifier.attachChannel(&child_channel, 2);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());

    parent_channel.send(Message(Opcode::PointerDefine, 0x100, 0xAA));
    verifier.poll();
    ASSERT_TRUE(fx.kernel.forkProcess(1, 2).isOk());

    // Child inherits the parent's shadow store.
    Verifier::Config config;
    child_channel.send(Message(Opcode::PointerCheck, 0x100, 0xAA));
    verifier.poll();
    EXPECT_FALSE(verifier.hasViolation(2));
}

TEST(Verifier, ExitKeepsContextButStopsProcessing)
{
    VerifierFixture fx;
    Verifier verifier(fx.kernel, fx.policy);
    ShmChannel channel(64);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());
    channel.send(Message(Opcode::PointerDefine, 0x100, 0xAA));
    verifier.poll();
    fx.kernel.exitProcess(1);
    // The context is kept for post-mortem inspection, but stale
    // messages after exit are ignored.
    EXPECT_NE(verifier.contextFor(1), nullptr);
    EXPECT_EQ(verifier.statsFor(1).messages, 1u);
    channel.send(Message(Opcode::PointerCheck, 0x100, 0xAA));
    verifier.poll();
    EXPECT_EQ(verifier.statsFor(1).messages, 1u);
    EXPECT_FALSE(verifier.hasViolation(1));
}

TEST(Verifier, SequenceGapIsIntegrityViolation)
{
    VerifierFixture fx;
    Verifier::Config config;
    config.check_sequence = true;
    config.kill_on_violation = false;
    Verifier verifier(fx.kernel, fx.policy, config);

    FpgaConfig fpga_config;
    fpga_config.host_buffer_messages = 4; // tiny: force drops
    fpga_config.model_latency = false;
    FpgaChannel channel(fpga_config);
    channel.afu().setPidRegister(1);
    verifier.attachChannel(&channel, 1, /*device_stamped=*/true);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());

    // Overrun the 4-slot host buffer without draining: drops occur.
    for (int i = 0; i < 8; ++i)
        channel.send(Message(Opcode::Heartbeat, i));
    verifier.poll();
    // Send one more; its seq exposes the gap left by the drops.
    channel.send(Message(Opcode::Heartbeat, 99));
    verifier.poll();
    EXPECT_TRUE(verifier.hasViolation(1));
}

TEST(Verifier, DeviceStampedPidRouting)
{
    VerifierFixture fx;
    Verifier verifier(fx.kernel, fx.policy);
    FpgaConfig fpga_config;
    fpga_config.model_latency = false;
    FpgaChannel channel(fpga_config);
    verifier.attachChannel(&channel, /*owner=*/0, /*device_stamped=*/true);
    ASSERT_TRUE(fx.kernel.enableProcess(7).isOk());

    channel.afu().setPidRegister(7);
    channel.send(Message(Opcode::PointerDefine, 0x100, 0xAA));
    verifier.poll();
    EXPECT_EQ(verifier.statsFor(7).messages, 1u);
}

TEST(Verifier, BackgroundEventLoopHandshake)
{
    VerifierFixture fx;
    Verifier verifier(fx.kernel, fx.policy);
    UarchModelChannel channel(1 << 10);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());
    verifier.start();

    // Monitored-program side: send work + sync, then enter a syscall.
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(
            channel.send(Message(Opcode::PointerDefine, 0x1000 + 8 * i, i))
                .isOk());
    ASSERT_TRUE(channel.send(Message(Opcode::Syscall, 1)).isOk());
    EXPECT_TRUE(fx.kernel.syscallEnter(1, 1).isOk());

    verifier.stop();
    EXPECT_EQ(verifier.statsFor(1).messages, 101u);
    EXPECT_FALSE(verifier.hasViolation(1));
}

TEST(Verifier, KillOnVerifierExit)
{
    VerifierFixture fx;
    Verifier::Config config;
    config.kill_on_verifier_exit = true;
    Verifier verifier(fx.kernel, fx.policy, config);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());
    ASSERT_TRUE(fx.kernel.enableProcess(2).isOk());
    fx.kernel.exitProcess(2); // already gone: must not be re-killed
    verifier.start();
    verifier.stop();
    // Without a verifier nothing can validate messages: pid 1 dies.
    EXPECT_TRUE(fx.kernel.isKilled(1));
    EXPECT_FALSE(fx.kernel.syscallEnter(1, 1).isOk());
}

TEST(Verifier, NoKillOnExitByDefault)
{
    VerifierFixture fx;
    {
        Verifier verifier(fx.kernel, fx.policy);
        ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());
        verifier.start();
        verifier.stop();
    }
    EXPECT_FALSE(fx.kernel.isKilled(1));
}

// ---------------------------------------------------------------------
// Batched draining: the fast path must be invisible to the semantics.
// ---------------------------------------------------------------------

TEST(Verifier, SyscallAckOnlyAfterEarlierMessagesUnderBatching)
{
    // A DEFINE, a matching CHECK, and a Syscall sync all land in one
    // drained batch: the ack must reflect the fully-processed prefix
    // (the CHECK passes only if the DEFINE ran first), proving in-order
    // processing inside a batch.
    VerifierFixture fx;
    Verifier verifier(fx.kernel, fx.policy); // default poll_batch = 64
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());

    for (int i = 0; i < 20; ++i)
        channel.send(Message(Opcode::PointerDefine, 0x1000 + 8 * i, i));
    for (int i = 0; i < 20; ++i)
        channel.send(Message(Opcode::PointerCheck, 0x1000 + 8 * i, i));
    channel.send(Message(Opcode::Syscall, 1));
    EXPECT_EQ(verifier.poll(), 41u);
    EXPECT_FALSE(verifier.hasViolation(1));
    EXPECT_EQ(verifier.statsFor(1).syscall_acks, 1u);
    EXPECT_TRUE(fx.kernel.syscallEnter(1, 1).isOk());
}

TEST(Verifier, ViolationBeforeSyscallInSameBatchSuppressesAck)
{
    // The violating CHECK and the attacker-forged Syscall sync arrive in
    // the same batch; the ack must still be suppressed.
    VerifierFixture fx;
    Verifier verifier(fx.kernel, fx.policy);
    ShmChannel channel(64);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());

    channel.send(Message(Opcode::PointerCheck, 0x666, 0x1)); // violation
    channel.send(Message(Opcode::Syscall, 1));
    verifier.poll();
    EXPECT_EQ(verifier.statsFor(1).syscall_acks, 0u);
    EXPECT_FALSE(fx.kernel.syscallEnter(1, 1).isOk());
}

TEST(Verifier, PollBatchOneMatchesDefaultSemantics)
{
    // Degenerate single-message batches must behave identically.
    VerifierFixture fx;
    Verifier::Config config;
    config.kill_on_violation = false;
    config.poll_batch = 1;
    Verifier verifier(fx.kernel, fx.policy, config);
    ShmChannel channel(64);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());

    channel.send(Message(Opcode::PointerDefine, 0x100, 0xAA));
    channel.send(Message(Opcode::PointerCheck, 0x100, 0xBB)); // corrupt
    channel.send(Message(Opcode::Syscall, 1));
    EXPECT_EQ(verifier.poll(), 3u);
    EXPECT_TRUE(verifier.hasViolation(1));
    EXPECT_EQ(verifier.statsFor(1).messages, 3u);
    EXPECT_EQ(verifier.statsFor(1).syscall_acks, 1u); // not killing
}

TEST(Verifier, PollBatchConfigIsClamped)
{
    VerifierFixture fx;
    Verifier::Config config;
    config.poll_batch = 0; // clamped up to 1
    Verifier verifier(fx.kernel, fx.policy, config);
    // The clamp happens at config time (constructor), not per poll:
    // the effective configuration already holds the bounded value.
    EXPECT_EQ(verifier.config().poll_batch, 1u);
    ShmChannel channel(64);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());
    channel.send(Message(Opcode::PointerDefine, 0x100, 0xAA));
    EXPECT_EQ(verifier.poll(), 1u);

    Verifier::Config huge;
    huge.poll_batch = 1 << 20; // clamped down to kMaxPollBatch
    Verifier clamped(fx.kernel, fx.policy, huge);
    EXPECT_EQ(clamped.config().poll_batch, Verifier::kMaxPollBatch);
    ShmChannel channel2(1 << 10);
    clamped.attachChannel(&channel2, 1);
    for (int i = 0; i < 600; ++i)
        channel2.send(Message(Opcode::PointerDefine, 0x1000 + 8 * i, i));
    EXPECT_EQ(clamped.poll(), 600u);
}

TEST(Verifier, RoundRobinDrainsBothChannelsFairly)
{
    // Two busy channels for two processes: a full poll must drain both
    // regardless of attach order (the per-round batch cap prevents the
    // first channel from starving the second).
    VerifierFixture fx;
    Verifier::Config config;
    config.poll_batch = 8;
    Verifier verifier(fx.kernel, fx.policy, config);
    ShmChannel first(1 << 10), second(1 << 10);
    verifier.attachChannel(&first, 1);
    verifier.attachChannel(&second, 2);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());
    ASSERT_TRUE(fx.kernel.enableProcess(2).isOk());

    for (int i = 0; i < 100; ++i) {
        first.send(Message(Opcode::PointerDefine, 0x1000 + 8 * i, i));
        second.send(Message(Opcode::PointerDefine, 0x9000 + 8 * i, i));
    }
    EXPECT_EQ(verifier.poll(), 200u);
    EXPECT_EQ(verifier.statsFor(1).messages, 100u);
    EXPECT_EQ(verifier.statsFor(2).messages, 100u);
}

TEST(Verifier, SequenceGapDetectedUnderBatchedDrain)
{
    // Same integrity property as SequenceGapIsIntegrityViolation, but
    // with drops and the gap-exposing message drained in single batched
    // polls: batching must not mask a sequence gap.
    VerifierFixture fx;
    Verifier::Config config;
    config.check_sequence = true;
    config.kill_on_violation = false;
    config.poll_batch = Verifier::kMaxPollBatch;
    Verifier verifier(fx.kernel, fx.policy, config);

    FpgaConfig fpga_config;
    fpga_config.host_buffer_messages = 4;
    fpga_config.model_latency = false;
    FpgaChannel channel(fpga_config);
    channel.afu().setPidRegister(1);
    verifier.attachChannel(&channel, 1, /*device_stamped=*/true);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());

    for (int i = 0; i < 8; ++i)
        channel.send(Message(Opcode::Heartbeat, i)); // overrun: drops
    verifier.poll(); // whole surviving prefix drains as ONE batch
    EXPECT_FALSE(verifier.hasViolation(1));
    channel.send(Message(Opcode::Heartbeat, 99)); // exposes the gap
    verifier.poll();
    EXPECT_TRUE(verifier.hasViolation(1));
}

TEST(Verifier, BatchSpanningMultipleProcessesUsesRightContext)
{
    // The pid memo must not leak one process's context into another's
    // messages when a drain alternates between channels.
    VerifierFixture fx;
    Verifier::Config config;
    config.kill_on_violation = false;
    Verifier verifier(fx.kernel, fx.policy, config);
    ShmChannel one(64), two(64);
    verifier.attachChannel(&one, 1);
    verifier.attachChannel(&two, 2);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());
    ASSERT_TRUE(fx.kernel.enableProcess(2).isOk());

    one.send(Message(Opcode::PointerDefine, 0x100, 0xAA));
    two.send(Message(Opcode::PointerCheck, 0x100, 0xAA)); // undefined for 2
    verifier.poll();
    EXPECT_FALSE(verifier.hasViolation(1));
    EXPECT_TRUE(verifier.hasViolation(2)); // use-after-free for pid 2
}

TEST(Verifier, VerifierKilledMidEpochDeniesNextSyscall)
{
    // The monitored program sends its System-Call message and enters the
    // syscall — but the verifier dies in between. Fail closed demands
    // the pause ends in denial within the epoch, not a hang and never a
    // spurious resume.
    faultinject::disarmAll();
    VerifierFixture fx; // 50ms epoch
    Verifier verifier(fx.kernel, fx.policy);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());
    verifier.start();

    faultinject::FaultPlan::instance().arm(
        faultinject::Site::VerifierCrash, 1.0, /*after_n=*/0,
        /*max_fires=*/1);
    ASSERT_TRUE(channel.send(Message(Opcode::Syscall, 1)).isOk());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!verifier.crashed() &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(verifier.crashed());

    const auto start = std::chrono::steady_clock::now();
    const Status status =
        fx.kernel.syscallEnter(1, 1, /*spin_fast_path=*/false);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::PolicyViolation);
    EXPECT_EQ(fx.kernel.statsFor(1).epoch_timeouts, 1u);
    EXPECT_LE(elapsed, 10 * shortEpoch().epoch)
        << "denial must arrive within a bounded number of epochs";

    verifier.stop(); // must join the crashed loop without draining
    faultinject::disarmAll();
}

TEST(Verifier, MaxEntriesTracksPolicyMetadata)
{
    VerifierFixture fx;
    Verifier verifier(fx.kernel, fx.policy);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(fx.kernel.enableProcess(1).isOk());
    for (int i = 0; i < 50; ++i)
        channel.send(Message(Opcode::PointerDefine, 0x1000 + 8 * i, i));
    channel.send(Message(Opcode::PointerBlockInvalidate, 0x1000, 400));
    verifier.poll();
    EXPECT_EQ(verifier.statsFor(1).max_entries, 50u);
}

} // namespace
} // namespace hq
