/**
 * @file
 * Deterministic fault injection: spec parsing, seeded replay, the
 * zero-cost-disabled contract, and — for every non-latency fault site —
 * a check that the injected fault is either recovered from or safely
 * denied, never silently accepted (the tentpole claim of the fault
 * subsystem; see docs/fault_injection.md for the fail-closed matrix).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "faultinject/fault.h"
#include "fpga/fpga_channel.h"
#include "ipc/shm_channel.h"
#include "ipc/posix_channels.h"
#include "ipc/spsc_ring.h"
#include "ipc/xproc_ring.h"
#include "kernel/kernel.h"
#include "policy/pointer_integrity.h"
#include "telemetry/event_log.h"
#include "telemetry/telemetry.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

namespace fi = faultinject;

constexpr Pid kPid = 77;

/** Every test leaves the process-global plan disarmed. */
class FaultInjectTest : public ::testing::Test
{
  protected:
    void SetUp() override { fi::disarmAll(); }
    void TearDown() override
    {
        fi::disarmAll();
        telemetry::setEnabled(false);
    }
};

/** kernel + verifier + shm channel wired for one monitored pid. */
struct Harness
{
    KernelModule kernel;
    std::shared_ptr<PointerIntegrityPolicy> policy;
    std::unique_ptr<Verifier> verifier;
    ShmChannel channel{1 << 10};

    explicit Harness(Verifier::Config config = makeConfig())
        : policy(std::make_shared<PointerIntegrityPolicy>())
    {
        verifier = std::make_unique<Verifier>(kernel, policy, config);
        kernel.enableProcess(kPid);
        verifier->attachChannel(&channel, kPid);
    }

    static Verifier::Config
    makeConfig()
    {
        Verifier::Config config;
        config.kill_on_violation = false;
        config.check_sequence = true;
        config.check_crc = true;
        return config;
    }
};

// --------------------------------------------------------------------
// Plan mechanics: grammar, determinism, zero cost when disabled.
// --------------------------------------------------------------------

TEST_F(FaultInjectTest, SpecGrammarParsesSitesRatesAndTriggers)
{
    ASSERT_TRUE(fi::configureFromSpec(
                    "seed=42,ring_drop:0.5,verifier_crash:1:100:1")
                    .isOk());
    EXPECT_TRUE(fi::armed());
    EXPECT_EQ(fi::FaultPlan::instance().seed(), 42u);
    const std::string description = fi::FaultPlan::instance().describe();
    EXPECT_NE(description.find("ring_drop"), std::string::npos);
    EXPECT_NE(description.find("verifier_crash"), std::string::npos);
}

TEST_F(FaultInjectTest, MalformedSpecsAreRejectedAndDisarm)
{
    EXPECT_FALSE(fi::configureFromSpec("no_such_site:0.5").isOk());
    EXPECT_FALSE(fi::armed());
    EXPECT_FALSE(fi::configureFromSpec("ring_drop:1.5").isOk());
    EXPECT_FALSE(fi::configureFromSpec("ring_drop").isOk());
    EXPECT_FALSE(fi::configureFromSpec("ring_drop:0.5:x").isOk());
    EXPECT_FALSE(fi::configureFromSpec("seed=abc,ring_drop:0.5").isOk());
    EXPECT_FALSE(fi::armed());
}

TEST_F(FaultInjectTest, SiteNamesRoundTrip)
{
    for (int i = 0; i < fi::kNumSites; ++i) {
        const auto site = static_cast<fi::Site>(i);
        fi::Site parsed;
        ASSERT_TRUE(fi::siteFromName(fi::siteName(site), parsed))
            << fi::siteName(site);
        EXPECT_EQ(parsed, site);
    }
}

TEST_F(FaultInjectTest, SameSeedReplaysTheExactFirePattern)
{
    auto pattern = [](std::uint64_t seed) {
        fi::FaultPlan &plan = fi::FaultPlan::instance();
        plan.reset();
        plan.setSeed(seed);
        plan.arm(fi::Site::RingDrop, 0.3);
        std::vector<bool> fired;
        for (int i = 0; i < 200; ++i)
            fired.push_back(plan.fire(fi::Site::RingDrop));
        plan.reset();
        return fired;
    };
    const auto first = pattern(1234);
    const auto second = pattern(1234);
    const auto different = pattern(99887766);
    EXPECT_EQ(first, second);
    EXPECT_NE(first, different);
    // ~30% rate: sanity-check the distribution is neither 0 nor 1.
    const auto fires = std::count(first.begin(), first.end(), true);
    EXPECT_GT(fires, 20);
    EXPECT_LT(fires, 120);
}

TEST_F(FaultInjectTest, AfterNAndMaxFiresGateInjections)
{
    fi::FaultPlan &plan = fi::FaultPlan::instance();
    plan.arm(fi::Site::RingStall, 1.0, /*after_n=*/10, /*max_fires=*/3);
    int fired = 0;
    for (int i = 0; i < 50; ++i) {
        const bool hit = plan.fire(fi::Site::RingStall);
        if (hit) {
            ++fired;
            EXPECT_GE(i, 10) << "fired inside the after_n window";
        }
    }
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(plan.injected(fi::Site::RingStall), 3u);
    EXPECT_EQ(plan.eligible(fi::Site::RingStall), 50u);
}

TEST_F(FaultInjectTest, DisarmedFirePathIsOneRelaxedLoad)
{
    EXPECT_FALSE(fi::armed());
    // The free-function gate must not even count eligibility while
    // disarmed — that is the zero-cost contract for hot paths.
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(fi::fire(fi::Site::RingDrop));
    EXPECT_EQ(fi::FaultPlan::instance().eligible(fi::Site::RingDrop), 0u);
}

TEST_F(FaultInjectTest, HandleArgsStripsFlagAndArms)
{
    char prog[] = "prog";
    char keep[] = "--other=1";
    char spec[] = "--fault-spec=ring_drop:0.25";
    char *argv[] = {prog, keep, spec, nullptr};
    int argc = 3;
    fi::handleArgs(argc, argv);
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "--other=1");
    EXPECT_TRUE(fi::armed());
}

// --------------------------------------------------------------------
// Message integrity primitives.
// --------------------------------------------------------------------

TEST_F(FaultInjectTest, MessageCrcDetectsEverySingleBitFlip)
{
    Message message(Opcode::PointerCheck, 0xDEADBEEF, 0x1234);
    message.pid = 7;
    message.seq = 42;
    message.pad = messageCrc(message);
    ASSERT_EQ(message.pad, messageCrc(message));

    auto *bytes = reinterpret_cast<unsigned char *>(&message);
    for (std::size_t bit = 0; bit < sizeof(Message) * 8; ++bit) {
        bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
        EXPECT_NE(message.pad, messageCrc(message))
            << "undetected flip at bit " << bit;
        bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    }
}

TEST_F(FaultInjectTest, CorruptFlipsExactlyOneBit)
{
    Message message(Opcode::PointerDefine, 0xAAAA, 0xBBBB);
    message.pad = messageCrc(message);
    Message original = message;
    fi::corrupt(message);
    const auto *a = reinterpret_cast<const unsigned char *>(&original);
    const auto *b = reinterpret_cast<const unsigned char *>(&message);
    int flipped = 0;
    for (std::size_t i = 0; i < sizeof(Message); ++i) {
        unsigned char diff = a[i] ^ b[i];
        while (diff != 0) {
            flipped += diff & 1;
            diff >>= 1;
        }
    }
    EXPECT_EQ(flipped, 1);
    EXPECT_NE(message.pad, messageCrc(message));
}

// --------------------------------------------------------------------
// Ring fault classes: drop / dup / corrupt / stall.
// --------------------------------------------------------------------

TEST_F(FaultInjectTest, RingDropIsDetectedAsSequenceGap)
{
    Harness harness;
    // Drop exactly one push, after the first 5 messages established the
    // sequence baseline.
    fi::FaultPlan::instance().arm(fi::Site::RingDrop, 1.0, /*after_n=*/5,
                                  /*max_fires=*/1);
    for (int i = 0; i < 20; ++i)
        ASSERT_TRUE(
            harness.channel.send(Message(Opcode::PointerDefine, 0x100 + i,
                                         i))
                .isOk());
    harness.verifier->poll();
    const auto stats = harness.verifier->statsFor(kPid);
    EXPECT_EQ(stats.violations, 1u) << "dropped message not detected";
    EXPECT_EQ(stats.messages, 19u) << "19 of 20 messages should arrive";
    EXPECT_EQ(fi::FaultPlan::instance().injected(fi::Site::RingDrop), 1u);
}

TEST_F(FaultInjectTest, RingDuplicateIsDetectedAsSequenceRepeat)
{
    Harness harness;
    fi::FaultPlan::instance().arm(fi::Site::RingDup, 1.0, /*after_n=*/5,
                                  /*max_fires=*/1);
    for (int i = 0; i < 20; ++i)
        ASSERT_TRUE(
            harness.channel.send(Message(Opcode::PointerDefine, 0x100 + i,
                                         i))
                .isOk());
    harness.verifier->poll();
    const auto stats = harness.verifier->statsFor(kPid);
    EXPECT_GE(stats.violations, 1u) << "duplicated message not detected";
    EXPECT_EQ(stats.messages, 21u) << "the duplicate also arrives";
}

TEST_F(FaultInjectTest, RingCorruptionIsDetectedByCrcAndNotInterpreted)
{
    Harness harness;
    fi::FaultPlan::instance().arm(fi::Site::RingCorrupt, 1.0,
                                  /*after_n=*/5, /*max_fires=*/1);
    for (int i = 0; i < 20; ++i)
        ASSERT_TRUE(
            harness.channel.send(Message(Opcode::PointerDefine, 0x100 + i,
                                         i))
                .isOk());
    harness.verifier->poll();
    const auto stats = harness.verifier->statsFor(kPid);
    EXPECT_GE(stats.violations, 1u) << "corrupted message not detected";
    // The corrupted message must never reach the policy: 19 clean
    // messages processed, the 20th rejected before interpretation.
    EXPECT_EQ(stats.messages, 19u);
}

TEST_F(FaultInjectTest, RingStallSurfacesBackpressureAndRecovers)
{
    SpscRing ring(8);
    fi::FaultPlan::instance().arm(fi::Site::RingStall, 1.0, /*after_n=*/0,
                                  /*max_fires=*/2);
    Message message(Opcode::EventCount, 1, 1);
    // Two stalled attempts fail even though the ring is empty...
    EXPECT_FALSE(ring.tryPush(message));
    EXPECT_FALSE(ring.tryPush(message));
    // ...then the producer's retry goes through: recovery, no loss.
    EXPECT_TRUE(ring.tryPush(message));
    EXPECT_EQ(ring.size(), 1u);
}

TEST_F(FaultInjectTest, PermanentStallFailsClosedWithBoundedSpin)
{
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy, Harness::makeConfig());
    kernel.enableProcess(kPid);
    ShmChannel channel(16);
    verifier.attachChannel(&channel, kPid);
    channel.setSendSpinLimit(1000);
    fi::FaultPlan::instance().arm(fi::Site::RingStall, 1.0);
    const Status status =
        channel.send(Message(Opcode::PointerDefine, 0x1, 0x2));
    ASSERT_FALSE(status.isOk()) << "permanently stalled send must fail";
    EXPECT_EQ(status.code(), StatusCode::Unavailable);
}

// --------------------------------------------------------------------
// Transport faults: injected EAGAIN with bounded retry-with-backoff.
// --------------------------------------------------------------------

TEST_F(FaultInjectTest, TransientTransportErrorsAreRetriedAndRecovered)
{
    SocketChannel channel;
    // 5 injected EAGAINs, then the send goes through.
    fi::FaultPlan::instance().arm(fi::Site::TransportError, 1.0,
                                  /*after_n=*/0, /*max_fires=*/5);
    ASSERT_TRUE(channel.send(Message(Opcode::EventCount, 1, 1)).isOk());
    Message out;
    ASSERT_TRUE(channel.tryRecv(out));
    EXPECT_EQ(out.arg0, 1u);
    EXPECT_EQ(fi::FaultPlan::instance().injected(fi::Site::TransportError),
              5u);
}

TEST_F(FaultInjectTest, PersistentTransportErrorFailsClosed)
{
    SocketChannel channel;
    fi::FaultPlan::instance().arm(fi::Site::TransportError, 1.0);
    const Status status = channel.send(Message(Opcode::EventCount, 1, 1));
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::Unavailable);
}

TEST_F(FaultInjectTest, PipeAndMqTransportsShareTheRetryContract)
{
    fi::FaultPlan::instance().arm(fi::Site::TransportError, 1.0,
                                  /*after_n=*/0, /*max_fires=*/3);
    PipeChannel pipe;
    ASSERT_TRUE(pipe.send(Message(Opcode::EventCount, 2, 1)).isOk());
    if (MqChannel::supported()) {
        // reset() clears the injected count; a bare re-arm would leave
        // the previous 3 fires counted against the new cap.
        fi::disarmAll();
        fi::FaultPlan::instance().arm(fi::Site::TransportError, 1.0,
                                      /*after_n=*/0, /*max_fires=*/3);
        MqChannel mq(8);
        ASSERT_TRUE(mq.send(Message(Opcode::EventCount, 3, 1)).isOk());
    }
}

// --------------------------------------------------------------------
// FPGA AFU faults.
// --------------------------------------------------------------------

TEST_F(FaultInjectTest, AfuOverflowDropsAreCountedAndFlaggedAsSeqGap)
{
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.kill_on_violation = false;
    config.check_sequence = true;
    Verifier verifier(kernel, policy, config);
    kernel.enableProcess(kPid);

    FpgaChannel channel;
    channel.afu().setPidRegister(kPid);
    verifier.attachChannel(&channel, kPid, /*device_stamped=*/true);

    fi::FaultPlan::instance().arm(fi::Site::AfuOverflow, 1.0,
                                  /*after_n=*/5, /*max_fires=*/1);
    for (int i = 0; i < 20; ++i)
        ASSERT_TRUE(
            channel.send(Message(Opcode::PointerDefine, 0x200 + i, i))
                .isOk());
    verifier.poll();
    EXPECT_EQ(channel.afu().droppedMessages(), 1u);
    const auto stats = verifier.statsFor(kPid);
    EXPECT_EQ(stats.violations, 1u)
        << "AFU overflow drop must surface as a sequence gap";
}

TEST_F(FaultInjectTest, AfuDoorbellDelayOnlyDelaysNeverLoses)
{
    FpgaChannel channel;
    channel.afu().setPidRegister(kPid);
    fi::FaultPlan::instance().arm(fi::Site::AfuDoorbellDelay, 1.0,
                                  /*after_n=*/0, /*max_fires=*/3);
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(
            channel.send(Message(Opcode::PointerDefine, 0x300 + i, i))
                .isOk());
    Message out;
    int received = 0;
    while (channel.tryRecv(out))
        ++received;
    EXPECT_EQ(received, 6) << "a delayed doorbell must not lose messages";
}

// --------------------------------------------------------------------
// Kernel faults: every one must end in denial, never a spurious resume.
// --------------------------------------------------------------------

KernelModule::Config
fastEpochConfig(std::chrono::milliseconds epoch)
{
    KernelModule::Config config;
    config.epoch = epoch;
    config.spin = std::chrono::microseconds(10);
    return config;
}

TEST_F(FaultInjectTest, LostNotificationIsDeniedByEpochTimeout)
{
    KernelModule kernel(fastEpochConfig(std::chrono::milliseconds(50)));
    kernel.enableProcess(kPid);
    fi::FaultPlan::instance().arm(fi::Site::KernelLostNotify, 1.0);
    kernel.syscallResume(kPid); // lost: sync_ok is never set
    const Status status =
        kernel.syscallEnter(kPid, 1, /*spin_fast_path=*/false);
    ASSERT_FALSE(status.isOk())
        << "a lost resume must never allow the syscall";
    EXPECT_EQ(status.code(), StatusCode::PolicyViolation);
    EXPECT_EQ(kernel.statsFor(kPid).epoch_timeouts, 1u);
}

TEST_F(FaultInjectTest, SpuriousWakeDoesNotBecomeSpuriousResume)
{
    KernelModule kernel(fastEpochConfig(std::chrono::milliseconds(50)));
    kernel.enableProcess(kPid);
    fi::FaultPlan::instance().arm(fi::Site::KernelSpuriousWake, 1.0,
                                  /*after_n=*/0, /*max_fires=*/1);
    // No resume ever arrives: the injected early wake must re-block and
    // the syscall must still be denied at the epoch.
    const Status status =
        kernel.syscallEnter(kPid, 1, /*spin_fast_path=*/false);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::PolicyViolation);
}

TEST_F(FaultInjectTest, SpuriousWakeStillResumesOnRealNotification)
{
    KernelModule kernel(fastEpochConfig(std::chrono::milliseconds(500)));
    kernel.enableProcess(kPid);
    fi::FaultPlan::instance().arm(fi::Site::KernelSpuriousWake, 1.0,
                                  /*after_n=*/0, /*max_fires=*/1);
    std::thread resumer([&kernel] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        kernel.syscallResume(kPid);
    });
    const Status status =
        kernel.syscallEnter(kPid, 1, /*spin_fast_path=*/false);
    resumer.join();
    EXPECT_TRUE(status.isOk()) << status.toString();
}

TEST_F(FaultInjectTest, EpochDelayDelaysButStillDeniesWithinTwoEpochs)
{
    const auto epoch = std::chrono::milliseconds(50);
    KernelModule kernel(fastEpochConfig(epoch));
    kernel.enableProcess(kPid);
    fi::FaultPlan::instance().arm(fi::Site::KernelEpochDelay, 1.0);
    const auto start = std::chrono::steady_clock::now();
    const Status status =
        kernel.syscallEnter(kPid, 1, /*spin_fast_path=*/false);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_FALSE(status.isOk()) << "delayed epoch must still deny";
    EXPECT_EQ(status.code(), StatusCode::PolicyViolation);
    EXPECT_GE(elapsed, epoch);
    EXPECT_LE(elapsed, 10 * epoch) << "denial must not be unbounded";
}

// --------------------------------------------------------------------
// Verifier faults.
// --------------------------------------------------------------------

TEST_F(FaultInjectTest, SlowPollDelaysButVerifiesEverything)
{
    Harness harness;
    fi::FaultPlan::instance().arm(fi::Site::VerifierSlowPoll, 1.0,
                                  /*after_n=*/0, /*max_fires=*/2);
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(
            harness.channel.send(Message(Opcode::PointerDefine, 0x400 + i,
                                         i))
                .isOk());
    harness.verifier->poll();
    const auto stats = harness.verifier->statsFor(kPid);
    EXPECT_EQ(stats.messages, 10u);
    EXPECT_EQ(stats.violations, 0u);
}

// --------------------------------------------------------------------
// Silent-accept audit.
// --------------------------------------------------------------------

TEST_F(FaultInjectTest, AuditPassesWhenDropsAreDetected)
{
    telemetry::setEnabled(true);
    Harness harness;
    fi::FaultPlan::instance().arm(fi::Site::RingDrop, 1.0, /*after_n=*/5,
                                  /*max_fires=*/1);
    fi::captureDetectorBaselines();
    for (int i = 0; i < 20; ++i)
        ASSERT_TRUE(
            harness.channel.send(Message(Opcode::PointerDefine, 0x500 + i,
                                         i))
                .isOk());
    harness.verifier->poll();
    ASSERT_GE(harness.verifier->statsFor(kPid).violations, 1u);
    EXPECT_EQ(fi::emitAuditRecords(), 0)
        << "detected drops must not be reported as silent accepts";
}

TEST_F(FaultInjectTest, AuditFlagsUndetectedDropsAsSilentAccepts)
{
    telemetry::setEnabled(true);
    // A verifier with *no* integrity checking: drops vanish silently.
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.kill_on_violation = false;
    Verifier verifier(kernel, policy, config);
    kernel.enableProcess(kPid);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, kPid);

    fi::FaultPlan::instance().arm(fi::Site::RingDrop, 1.0, /*after_n=*/5,
                                  /*max_fires=*/1);
    fi::captureDetectorBaselines();
    for (int i = 0; i < 20; ++i)
        ASSERT_TRUE(
            channel.send(Message(Opcode::PointerDefine, 0x600 + i, i))
                .isOk());
    verifier.poll();
    ASSERT_EQ(verifier.statsFor(kPid).violations, 0u);
    EXPECT_EQ(fi::emitAuditRecords(), 1)
        << "an undetected drop must be reported as a silent accept";
}

TEST_F(FaultInjectTest, AuditWritesSilentAcceptRecordsToTheEventLog)
{
    telemetry::setEnabled(true);
    const std::string path =
        ::testing::TempDir() + "faultinject_audit.jsonl";
    ASSERT_TRUE(telemetry::EventLog::instance().open(path));

    fi::FaultPlan::instance().arm(fi::Site::RingDrop, 1.0);
    fi::captureDetectorBaselines();
    SpscRing ring(16);
    ring.tryPush(Message(Opcode::EventCount, 1, 1)); // dropped, unchecked
    EXPECT_EQ(fi::emitAuditRecords(), 1);
    telemetry::EventLog::instance().close();

    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("\"type\":\"silent_accept\""),
              std::string::npos)
        << contents;
    EXPECT_NE(contents.find("ring_drop"), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(FaultInjectTest, CrossProcessReportRoundTripFoldsChildCounts)
{
    // Simulate the fork()-based deployment: the "child" injects ring
    // drops that only the "parent" verifier could detect, exports its
    // report, and the parent absorbs it before auditing.
    telemetry::setEnabled(true);
    fi::FaultPlan::instance().arm(fi::Site::RingDrop, 1.0, /*after_n=*/0,
                                  /*max_fires=*/2);
    fi::captureDetectorBaselines();
    SpscRing ring(16);
    ring.tryPush(Message(Opcode::EventCount, 1, 1)); // dropped
    ring.tryPush(Message(Opcode::EventCount, 2, 2)); // dropped
    const std::string report = fi::exportCrossProcessReport();
    EXPECT_NE(report.find("inj ring_drop 2"), std::string::npos)
        << report;

    // "Parent": fresh plan (same armed spec), no local injections.
    fi::disarmAll();
    fi::FaultPlan::instance().arm(fi::Site::RingDrop, 1.0, /*after_n=*/0,
                                  /*max_fires=*/2);
    fi::captureDetectorBaselines();
    ASSERT_TRUE(fi::absorbCrossProcessReport(report));
    EXPECT_EQ(fi::FaultPlan::instance().injected(fi::Site::RingDrop), 2u);
    // Parent-side detector fired (the verifier flagged the gap):
    telemetry::Registry::instance().counter("verifier.violations").inc();
    EXPECT_EQ(fi::emitAuditRecords(), 0)
        << "absorbed child injections judged against parent detectors";
}

TEST_F(FaultInjectTest, CrossProcessReportCarriesChildDetectorDeltas)
{
    // A child that failed *closed* (its own ipc counters moved) must
    // not read as a silent accept in the parent.
    telemetry::setEnabled(true);
    fi::FaultPlan::instance().arm(fi::Site::RingStall, 1.0, /*after_n=*/0,
                                  /*max_fires=*/1);
    fi::captureDetectorBaselines();
    SpscRing ring(16);
    // The stalled push itself bumps ipc.ring_push_fail (telemetry on).
    EXPECT_FALSE(ring.tryPush(Message(Opcode::EventCount, 1, 1)));
    const std::string report = fi::exportCrossProcessReport();
    EXPECT_NE(report.find("det ipc.ring_push_fail 1"), std::string::npos)
        << report;

    fi::disarmAll();
    fi::FaultPlan::instance().arm(fi::Site::RingStall, 1.0, /*after_n=*/0,
                                  /*max_fires=*/1);
    fi::captureDetectorBaselines();
    ASSERT_TRUE(fi::absorbCrossProcessReport(report));
    EXPECT_EQ(fi::emitAuditRecords(), 0)
        << "child-side detector delta must satisfy the audit";
}

TEST_F(FaultInjectTest, MalformedCrossProcessReportsAreRejected)
{
    EXPECT_FALSE(fi::absorbCrossProcessReport(""));
    EXPECT_FALSE(fi::absorbCrossProcessReport("garbage\n"));
    EXPECT_FALSE(
        fi::absorbCrossProcessReport("hq-fault-report 1\n")); // no end
    EXPECT_FALSE(fi::absorbCrossProcessReport(
        "hq-fault-report 1\ninj not_a_site 1 1\nend\n"));
    EXPECT_FALSE(fi::absorbCrossProcessReport(
        "hq-fault-report 1\nbogus line here\nend\n"));
    EXPECT_TRUE(
        fi::absorbCrossProcessReport("hq-fault-report 1\nend\n"));
}

} // namespace
} // namespace hq
