/**
 * @file
 * VM execution tests: interpreter semantics, memory model, control-flow
 * hijack mechanics, and end-to-end behavior of every CFI design on
 * benign and malicious programs (with a live verifier).
 */

#include <gtest/gtest.h>

#include "cfi/design.h"
#include "ipc/shm_channel.h"
#include "ir/builder.h"
#include "policy/pointer_integrity.h"
#include "runtime/vm.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

using namespace ir;

/** Kernel + verifier + channel + runtime, polled deterministically. */
struct HqHarness
{
    KernelModule kernel;
    std::shared_ptr<PointerIntegrityPolicy> policy =
        std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier;
    ShmChannel channel{1 << 14};
    HqRuntime runtime{1, channel, kernel};

    explicit HqHarness(bool kill_on_violation = false)
        : verifier(kernel, policy,
                   [&] {
                       Verifier::Config config;
                       config.kill_on_violation = kill_on_violation;
                       return config;
                   }())
    {
        verifier.attachChannel(&channel, 1);
        verifier.start(); // live concurrent verification
        EXPECT_TRUE(runtime.enable().isOk());
    }

    ~HqHarness() { verifier.stop(); }

    void drain() { verifier.stop(); }
};

RunResult
runBare(Module &module, VmConfig config = VmConfig{})
{
    Vm vm(module, config, nullptr);
    return vm.run();
}

// ---------------------------------------------------------------------
// Core interpreter semantics
// ---------------------------------------------------------------------

TEST(VmCore, ReturnsConstant)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    builder.ret(builder.constInt(42));
    builder.endFunction();
    module.entry_function = 0;

    RunResult result = runBare(module);
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_EQ(result.return_value, 42u);
}

TEST(VmCore, ArithmeticKinds)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int a = builder.constInt(10);
    const int b = builder.constInt(3);
    int acc = builder.arith(ArithKind::Add, a, b);      // 13
    acc = builder.arith(ArithKind::Mul, acc, b);        // 39
    acc = builder.arith(ArithKind::Sub, acc, a);        // 29
    acc = builder.arith(ArithKind::Xor, acc, b);        // 30
    acc = builder.arith(ArithKind::And, acc, a);        // 10
    acc = builder.arith(ArithKind::Or, acc, b);         // 11
    acc = builder.arith(ArithKind::Shr, acc, builder.constInt(1)); // 5
    const int lt = builder.arith(ArithKind::Lt, b, a);  // 1
    acc = builder.arith(ArithKind::Add, acc, lt);       // 6
    const int eq = builder.arith(ArithKind::Eq, a, a);  // 1
    acc = builder.arith(ArithKind::Add, acc, eq);       // 7
    builder.ret(acc);
    builder.endFunction();
    module.entry_function = 0;

    EXPECT_EQ(runBare(module).return_value, 7u);
}

TEST(VmCore, StackSlotRoundTrip)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int slot = builder.allocaOp(8);
    builder.store(slot, builder.constInt(0xABCD), TypeRef::intTy());
    const int loaded = builder.load(slot, TypeRef::intTy());
    builder.ret(loaded);
    builder.endFunction();
    module.entry_function = 0;

    EXPECT_EQ(runBare(module).return_value, 0xABCDu);
}

TEST(VmCore, CallPassesArgsAndReturnsValue)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("add", 2);
    builder.ret(builder.arith(ArithKind::Add, 0, 1));
    builder.endFunction();
    builder.beginFunction("main");
    const int x = builder.constInt(30);
    const int y = builder.constInt(12);
    builder.ret(builder.callDirect(0, {x, y}));
    builder.endFunction();
    module.entry_function = 1;

    EXPECT_EQ(runBare(module).return_value, 42u);
}

TEST(VmCore, LoopComputesSum)
{
    // sum = 0; for (i = 0; i < 10; ++i) sum += i;  => 45
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int sum_slot = builder.allocaOp(8);
    const int i_slot = builder.allocaOp(8);
    const int zero = builder.constInt(0);
    const int one = builder.constInt(1);
    const int ten = builder.constInt(10);
    builder.store(sum_slot, zero, TypeRef::intTy());
    builder.store(i_slot, zero, TypeRef::intTy());
    const int bb_head = builder.newBlock();
    const int bb_body = builder.newBlock();
    const int bb_exit = builder.newBlock();
    builder.br(bb_head);
    builder.setBlock(bb_head);
    const int i1 = builder.load(i_slot, TypeRef::intTy());
    const int cond = builder.arith(ArithKind::Lt, i1, ten);
    builder.condBr(cond, bb_body, bb_exit);
    builder.setBlock(bb_body);
    const int s = builder.load(sum_slot, TypeRef::intTy());
    const int i2 = builder.load(i_slot, TypeRef::intTy());
    const int s2 = builder.arith(ArithKind::Add, s, i2);
    builder.store(sum_slot, s2, TypeRef::intTy());
    const int i3 = builder.arith(ArithKind::Add, i2, one);
    builder.store(i_slot, i3, TypeRef::intTy());
    builder.br(bb_head);
    builder.setBlock(bb_exit);
    builder.ret(builder.load(sum_slot, TypeRef::intTy()));
    builder.endFunction();
    module.entry_function = 0;

    EXPECT_EQ(runBare(module).return_value, 45u);
}

TEST(VmCore, RecursionComputesFactorial)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("fact", 1);
    const int bb_rec = builder.newBlock();
    const int bb_base = builder.newBlock();
    const int two = builder.constInt(2);
    const int is_small = builder.arith(ArithKind::Lt, 0, two);
    builder.condBr(is_small, bb_base, bb_rec);
    builder.setBlock(bb_rec);
    const int one = builder.constInt(1);
    const int n1 = builder.arith(ArithKind::Sub, 0, one);
    const int sub = builder.callDirect(0, {n1});
    builder.ret(builder.arith(ArithKind::Mul, 0, sub));
    builder.setBlock(bb_base);
    const int unit = builder.constInt(1);
    builder.ret(unit);
    builder.endFunction();
    module.entry_function = 0;

    Module copy = module;
    Vm vm(copy, VmConfig{}, nullptr);
    RunResult result = vm.run({6});
    EXPECT_EQ(result.return_value, 720u);
}

TEST(VmCore, MallocFreeReuse)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int size = builder.constInt(32);
    const int p1 = builder.mallocOp(size);
    builder.freeOp(p1);
    const int p2 = builder.mallocOp(size); // LIFO reuse
    builder.ret(builder.arith(ArithKind::Eq, p1, p2));
    builder.endFunction();
    module.entry_function = 0;

    EXPECT_EQ(runBare(module).return_value, 1u);
}

TEST(VmCore, ReallocPreservesContents)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int size = builder.constInt(16);
    const int p = builder.mallocOp(size);
    builder.store(p, builder.constInt(0x1234), TypeRef::intTy());
    const int bigger = builder.constInt(64);
    const int q = builder.reallocOp(p, bigger);
    builder.ret(builder.load(q, TypeRef::intTy()));
    builder.endFunction();
    module.entry_function = 0;

    EXPECT_EQ(runBare(module).return_value, 0x1234u);
}

TEST(VmCore, DoubleFreeCrashes)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int size = builder.constInt(32);
    const int p = builder.mallocOp(size);
    builder.freeOp(p);
    builder.freeOp(p);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    EXPECT_EQ(runBare(module).exit, ExitKind::Crash);
}

TEST(VmCore, UnmappedAccessCrashes)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int wild = builder.constInt(0xDEAD0000);
    builder.load(wild, TypeRef::intTy());
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    RunResult result = runBare(module);
    EXPECT_EQ(result.exit, ExitKind::Crash);
    EXPECT_NE(result.detail.find("segfault"), std::string::npos);
}

TEST(VmCore, ReadOnlyGlobalRejectsWrites)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("f");
    builder.ret();
    builder.endFunction();
    Global table;
    table.name = "const_table";
    table.size = 16;
    table.section = Section::RoData;
    table.funcptr_init = {{0, 0}};
    const int gid = builder.addGlobal(table);
    builder.beginFunction("main");
    const int addr = builder.globalAddr(gid);
    builder.store(addr, builder.constInt(0x41), TypeRef::intTy());
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    RunResult result = runBare(module);
    EXPECT_EQ(result.exit, ExitKind::Crash);
    EXPECT_NE(result.detail.find("read-only"), std::string::npos);
}

TEST(VmCore, GlobalFuncPtrInitAndIndirectCall)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("f");
    builder.ret(builder.constInt(99));
    builder.endFunction();
    Global g;
    g.name = "handler";
    g.size = 8;
    g.funcptr_init = {{0, 0}};
    const int gid = builder.addGlobal(g);
    builder.beginFunction("main");
    const int addr = builder.globalAddr(gid);
    const int fp = builder.load(addr, TypeRef::funcPtr(0));
    builder.ret(builder.callIndirect(fp, {}, 0));
    builder.endFunction();
    module.entry_function = 1;

    EXPECT_EQ(runBare(module).return_value, 99u);
}

TEST(VmCore, VCallDispatchesThroughVtable)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("method", 1);
    builder.ret(builder.constInt(7));
    builder.endFunction();
    const int cls = builder.addClass("Widget", {0});
    builder.beginFunction("main");
    const int size = builder.constInt(16);
    const int obj = builder.mallocOp(size);
    const int vt = builder.globalAddr(module.classes[cls].vtable_global);
    builder.store(obj, vt, TypeRef::vtablePtr());
    builder.ret(builder.vcall(obj, 0, {obj}, -1));
    builder.endFunction();
    module.entry_function = 1;

    EXPECT_EQ(runBare(module).return_value, 7u);
}

TEST(VmCore, InfiniteLoopReportsHang)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    builder.br(0);
    builder.endFunction();
    module.entry_function = 0;

    VmConfig config;
    config.max_instructions = 1000;
    EXPECT_EQ(runBare(module, config).exit, ExitKind::Hang);
}

TEST(VmCore, NullIndirectCallCrashes)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int null_fp = builder.constInt(0);
    builder.callIndirect(null_fp, {}, 0);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    RunResult result = runBare(module);
    EXPECT_EQ(result.exit, ExitKind::Crash);
    EXPECT_NE(result.detail.find("NULL"), std::string::npos);
}

// ---------------------------------------------------------------------
// Control-flow hijack mechanics (the RIPE substrate)
// ---------------------------------------------------------------------

/**
 * A program where an out-of-bounds store through a stack buffer
 * overwrites the frame's return pointer with &attack_payload.
 * Layout: [buf (32 bytes)][return pointer] — the overflow writes at
 * buf+32.
 */
Module
stackSmashModule()
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("attack_payload");
    builder.ret(builder.constInt(0x666));
    builder.endFunction();

    builder.beginFunction("victim");
    const int buf = builder.allocaOp(32);
    const int overflow_off = builder.constInt(32);
    const int target = builder.arith(ArithKind::Add, buf, overflow_off);
    const int payload = builder.funcAddr(0, 0);
    builder.store(target, payload, TypeRef::intTy()); // linear overflow
    builder.ret();
    builder.endFunction();

    builder.beginFunction("main");
    builder.callDirect(1, {});
    builder.ret(builder.constInt(0));
    builder.endFunction();
    module.entry_function = 2;
    return module;
}

TEST(VmHijack, StackSmashDivertsControlWithoutProtection)
{
    Module module = stackSmashModule();
    VmConfig config;
    config.attack_payload_function = 0;
    RunResult result = runBare(module, config);
    EXPECT_TRUE(result.attack_payload_reached);
}

TEST(VmHijack, SafeStackDefeatsLinearOverflow)
{
    Module module = stackSmashModule();
    VmConfig config;
    config.attack_payload_function = 0;
    config.safe_stack = true;
    RunResult result = runBare(module, config);
    // The overflow lands in the (now unused) stack slot area; the real
    // return pointer is on the safe stack.
    EXPECT_FALSE(result.attack_payload_reached);
    EXPECT_EQ(result.exit, ExitKind::Ok);
}

/** Overflow reaching the safe stack via a disclosed retptr address. */
Module
disclosureSmashModule()
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("attack_payload");
    builder.ret(builder.constInt(0x666));
    builder.endFunction();

    builder.beginFunction("victim");
    // __builtin_return_address: disclose where the retptr lives.
    const int ret_slot = builder.retAddrAddr();
    const int payload = builder.funcAddr(0, 0);
    builder.store(ret_slot, payload, TypeRef::intTy());
    builder.ret();
    builder.endFunction();

    builder.beginFunction("main");
    builder.callDirect(1, {});
    builder.ret(builder.constInt(0));
    builder.endFunction();
    module.entry_function = 2;
    return module;
}

TEST(VmHijack, DisclosureDefeatsSafeStack)
{
    Module module = disclosureSmashModule();
    VmConfig config;
    config.attack_payload_function = 0;
    config.safe_stack = true;
    RunResult result = runBare(module, config);
    EXPECT_TRUE(result.attack_payload_reached);
}

TEST(VmHijack, GarbageRetPtrCrashes)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("victim");
    const int ret_slot = builder.retAddrAddr();
    builder.store(ret_slot, builder.constInt(0x12345), TypeRef::intTy());
    builder.ret();
    builder.endFunction();
    builder.beginFunction("main");
    builder.callDirect(0, {});
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    RunResult result = runBare(module);
    EXPECT_EQ(result.exit, ExitKind::Crash);
    EXPECT_NE(result.detail.find("return pointer"), std::string::npos);
}

// ---------------------------------------------------------------------
// HQ-CFI end-to-end with live verifier
// ---------------------------------------------------------------------

/** Instrument for a design and run with an HQ harness. */
RunResult
runWithHarness(Module module, CfiDesign design, HqHarness &harness,
               int attack_payload = -1)
{
    EXPECT_TRUE(instrumentModule(module, design).isOk());
    VmConfig config = makeVmConfig(design);
    config.attack_payload_function = attack_payload;
    Vm vm(module, config,
          designInfo(design).hq_messages ? &harness.runtime : nullptr);
    RunResult result = vm.run();
    harness.drain();
    return result;
}

Module
benignFuncPtrProgram()
{
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();
    builder.beginFunction("callee", 0, sig);
    builder.ret(builder.constInt(5));
    builder.endFunction();
    builder.beginFunction("main");
    const int slot = builder.allocaOp(8, TypeRef::funcPtr(sig));
    const int fp = builder.funcAddr(0, sig);
    builder.store(slot, fp, TypeRef::funcPtr(sig));
    // A call that clobbers forwarding so a real check survives.
    builder.callDirect(0, {slot});
    const int loaded = builder.load(slot, TypeRef::funcPtr(sig));
    builder.ret(builder.callIndirect(loaded, {}, sig));
    builder.endFunction();
    module.entry_function = 1;
    return module;
}

TEST(VmHq, BenignProgramHasNoViolations)
{
    HqHarness harness;
    RunResult result =
        runWithHarness(benignFuncPtrProgram(), CfiDesign::HqSfeStk,
                       harness);
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_EQ(result.return_value, 5u);
    EXPECT_FALSE(harness.verifier.hasViolation(1));
    EXPECT_GT(harness.verifier.statsFor(1).messages, 0u);
}

Module
corruptedFuncPtrProgram()
{
    // Overwrites a protected function-pointer slot through a decayed
    // (int-typed) out-of-bounds store, then calls through it.
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();
    builder.beginFunction("good", 0, sig);
    builder.ret(builder.constInt(1));
    builder.endFunction();
    builder.beginFunction("attack_payload", 0, sig);
    builder.ret(builder.constInt(2));
    builder.endFunction();
    builder.beginFunction("main");
    const int buf = builder.allocaOp(32);
    const int fp_slot = builder.allocaOp(8, TypeRef::funcPtr(sig));
    const int fp = builder.funcAddr(0, sig);
    builder.store(fp_slot, fp, TypeRef::funcPtr(sig));
    // Attacker: out-of-bounds write from buf into fp_slot (buf+32).
    const int off = builder.constInt(32);
    const int oob = builder.arith(ArithKind::Add, buf, off);
    const int evil = builder.funcAddr(1, sig);
    const int evil_int = builder.cast(evil, TypeRef::intTy());
    builder.store(oob, evil_int, TypeRef::intTy());
    const int loaded = builder.load(fp_slot, TypeRef::funcPtr(sig));
    builder.ret(builder.callIndirect(loaded, {}, sig));
    builder.endFunction();
    module.entry_function = 2;
    return module;
}

TEST(VmHq, CorruptionDetectedByVerifier)
{
    HqHarness harness;
    RunResult result =
        runWithHarness(corruptedFuncPtrProgram(), CfiDesign::HqSfeStk,
                       harness, /*attack_payload=*/1);
    // Asynchronous detection: the program may reach the payload, but
    // the verifier records the violation (the kernel would kill it at
    // the next syscall).
    EXPECT_TRUE(harness.verifier.hasViolation(1));
    (void)result;
}

TEST(VmHq, UseAfterFreeOnFuncPtrDetected)
{
    // A function pointer in a heap block, freed, then checked: the
    // use-after-free detection unique to HQ-CFI (§4.1.2).
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();
    builder.beginFunction("callee", 0, sig);
    builder.ret(builder.constInt(3));
    builder.endFunction();
    builder.beginFunction("main");
    const int size = builder.constInt(16);
    const int obj = builder.mallocOp(size);
    const int fp = builder.funcAddr(0, sig);
    builder.store(obj, fp, TypeRef::funcPtr(sig));
    builder.freeOp(obj); // invalidates pointers in the block
    const int stale = builder.load(obj, TypeRef::funcPtr(sig));
    builder.callIndirect(stale, {}, sig);
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    HqHarness harness;
    runWithHarness(std::move(module), CfiDesign::HqSfeStk, harness);
    EXPECT_TRUE(harness.verifier.hasViolation(1));
    auto *ctx = static_cast<PointerIntegrityContext *>(
        harness.verifier.contextFor(1));
    ASSERT_NE(ctx, nullptr);
    EXPECT_EQ(ctx->lastViolation(), PointerViolation::UseAfterFree);
}

TEST(VmHq, RetPtrVariantDetectsReturnCorruption)
{
    HqHarness harness;
    RunResult result = runWithHarness(stackSmashModule(),
                                      CfiDesign::HqRetPtr, harness,
                                      /*attack_payload=*/0);
    EXPECT_TRUE(harness.verifier.hasViolation(1));
    (void)result;
}

TEST(VmHq, SyscallSyncHandshakeCompletes)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    builder.syscall(1);
    builder.syscall(2);
    builder.ret(builder.constInt(0));
    builder.endFunction();
    module.entry_function = 0;

    HqHarness harness;
    RunResult result =
        runWithHarness(std::move(module), CfiDesign::HqSfeStk, harness);
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_EQ(harness.kernel.statsFor(1).syscalls, 2u);
    EXPECT_FALSE(harness.verifier.hasViolation(1));
}

TEST(VmHq, KillOnViolationStopsAtSyscall)
{
    // Corrupt a pointer, then attempt a syscall: with kill-on-violation
    // the kernel refuses to resume.
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();
    builder.beginFunction("good", 0, sig);
    builder.ret(builder.constInt(1));
    builder.endFunction();
    builder.beginFunction("main");
    const int slot = builder.allocaOp(8, TypeRef::funcPtr(sig));
    const int fp = builder.funcAddr(0, sig);
    builder.store(slot, fp, TypeRef::funcPtr(sig));
    builder.callDirect(0, {slot}); // escape: keep the check
    const int casted = builder.cast(slot, TypeRef::dataPtr());
    builder.store(casted, builder.constInt(0xBAD), TypeRef::intTy());
    const int loaded = builder.load(slot, TypeRef::funcPtr(sig));
    // The check fires here; the violation is pending asynchronously.
    (void)loaded;
    builder.syscall(60);
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    HqHarness harness(/*kill_on_violation=*/true);
    EXPECT_TRUE(
        instrumentModule(module, CfiDesign::HqSfeStk).isOk());
    VmConfig config = makeVmConfig(CfiDesign::HqSfeStk);
    Vm vm(module, config, &harness.runtime);
    RunResult result = vm.run();
    EXPECT_EQ(result.exit, ExitKind::Killed);
}

// ---------------------------------------------------------------------
// Baseline designs: characteristic behavior
// ---------------------------------------------------------------------

TEST(VmDesigns, ClangCfiPassesBenignMatchingTypes)
{
    HqHarness harness;
    RunResult result = runWithHarness(benignFuncPtrProgram(),
                                      CfiDesign::ClangCfi, harness);
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_GT(result.inline_checks, 0u);
    EXPECT_EQ(result.inline_violations, 0u);
}

Module
castedSignatureProgram()
{
    // povray pattern (§5.1): define a pointer with one signature, call
    // it through another after a cast. Benign, but type-matching CFI
    // designs flag it.
    Module module;
    IrBuilder builder(module);
    const int sig_a = builder.newSignatureClass();
    const int sig_b = builder.newSignatureClass();
    builder.beginFunction("handler", 0, sig_a);
    builder.ret(builder.constInt(4));
    builder.endFunction();
    builder.beginFunction("main");
    const int slot = builder.allocaOp(8, TypeRef::funcPtr(sig_a));
    const int fp = builder.funcAddr(0, sig_a);
    builder.store(slot, fp, TypeRef::funcPtr(sig_a));
    builder.callDirect(0, {slot});
    const int loaded = builder.load(slot, TypeRef::funcPtr(sig_a));
    const int casted = builder.cast(loaded, TypeRef::funcPtr(sig_b));
    builder.ret(builder.callIndirect(casted, {}, sig_b));
    builder.endFunction();
    module.entry_function = 1;
    return module;
}

TEST(VmDesigns, ClangCfiFalsePositiveOnCastedSignature)
{
    HqHarness harness;
    RunResult result = runWithHarness(castedSignatureProgram(),
                                      CfiDesign::ClangCfi, harness);
    EXPECT_EQ(result.exit, ExitKind::InlineViolation);
}

TEST(VmDesigns, HqAcceptsCastedSignature)
{
    // Pointer integrity is precise: the value matches its definition,
    // so HQ does not flag the benign cast.
    HqHarness harness;
    RunResult result = runWithHarness(castedSignatureProgram(),
                                      CfiDesign::HqSfeStk, harness);
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_FALSE(harness.verifier.hasViolation(1));
}

Module
decayedStoreProgram()
{
    // Store a function pointer through an int-typed (decayed) access,
    // then load it back typed and call it. Benign; defeats type-based
    // instrumentation.
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();
    builder.beginFunction("handler", 0, sig);
    builder.ret(builder.constInt(6));
    builder.endFunction();
    builder.beginFunction("main");
    const int slot = builder.allocaOp(8, TypeRef::funcPtr(sig));
    const int fp = builder.funcAddr(0, sig);
    const int decayed = builder.cast(fp, TypeRef::intTy());
    builder.store(slot, decayed, TypeRef::intTy()); // decayed store
    builder.callDirect(0, {slot});
    const int loaded = builder.load(slot, TypeRef::funcPtr(sig));
    builder.ret(builder.callIndirect(loaded, {}, sig));
    builder.endFunction();
    module.entry_function = 1;
    return module;
}

TEST(VmDesigns, CcfiFalsePositiveOnDecayedStore)
{
    HqHarness harness;
    RunResult result = runWithHarness(decayedStoreProgram(),
                                      CfiDesign::Ccfi, harness);
    // No MAC was written by the int-typed store; the typed load's MAC
    // check fails on a benign value.
    EXPECT_EQ(result.exit, ExitKind::InlineViolation);
}

TEST(VmDesigns, CpiCrashOnDecayedStore)
{
    HqHarness harness;
    RunResult result = runWithHarness(decayedStoreProgram(),
                                      CfiDesign::Cpi, harness);
    // The decayed store bypassed the safe store; the redirected load
    // observes NULL and the call crashes (§5.1).
    EXPECT_EQ(result.exit, ExitKind::Crash);
    EXPECT_NE(result.detail.find("NULL"), std::string::npos);
}

TEST(VmDesigns, HqHandlesDecayedStore)
{
    HqHarness harness;
    RunResult result = runWithHarness(decayedStoreProgram(),
                                      CfiDesign::HqSfeStk, harness);
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_EQ(result.return_value, 6u);
    EXPECT_FALSE(harness.verifier.hasViolation(1));
}

TEST(VmDesigns, CcfiBlocksRetPtrCorruption)
{
    Module module = disclosureSmashModule();
    VmConfig config = makeVmConfig(CfiDesign::Ccfi);
    config.attack_payload_function = 0;
    Module instrumented = module;
    ASSERT_TRUE(instrumentModule(instrumented, CfiDesign::Ccfi).isOk());
    Vm vm(instrumented, config, nullptr);
    RunResult result = vm.run();
    EXPECT_EQ(result.exit, ExitKind::InlineViolation);
    EXPECT_FALSE(result.attack_payload_reached);
}

TEST(VmDesigns, BaselineRunsEverythingUnprotected)
{
    HqHarness harness;
    RunResult result = runWithHarness(decayedStoreProgram(),
                                      CfiDesign::Baseline, harness);
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_EQ(result.inline_checks, 0u);
}

TEST(VmHq, ReallocMovesProtectedPointersWithBlock)
{
    // A function pointer lives in a heap block that realloc relocates:
    // the POINTER-BLOCK-MOVE message must carry the shadow entry to the
    // new address, so the post-realloc check passes and the stale
    // address is invalidated (§4.1.3's realloc optimization).
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();
    builder.beginFunction("callee", 0, sig);
    builder.ret(builder.constInt(9));
    builder.endFunction();
    builder.beginFunction("main");
    const int size = builder.constInt(16);
    const int p = builder.mallocOp(size);
    const int fp = builder.funcAddr(0, sig);
    builder.store(p, fp, TypeRef::funcPtr(sig));
    // Force relocation: grow beyond the size class.
    const int big = builder.constInt(256);
    const int q = builder.reallocOp(p, big);
    const int moved = builder.load(q, TypeRef::funcPtr(sig));
    builder.ret(builder.callIndirect(moved, {}, sig));
    builder.endFunction();
    module.entry_function = 1;

    HqHarness harness;
    RunResult result =
        runWithHarness(std::move(module), CfiDesign::HqSfeStk, harness);
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_EQ(result.return_value, 9u);
    EXPECT_FALSE(harness.verifier.hasViolation(1));
}

TEST(VmDesigns, AllDesignsRunBenignProgramToCompletion)
{
    for (CfiDesign design : allDesigns()) {
        HqHarness harness;
        RunResult result =
            runWithHarness(benignFuncPtrProgram(), design, harness);
        EXPECT_EQ(result.exit, ExitKind::Ok)
            << designInfo(design).name << ": " << result.detail;
        EXPECT_EQ(result.return_value, 5u) << designInfo(design).name;
    }
}

} // namespace
} // namespace hq
