/**
 * @file
 * Unit tests for src/ipc: message format, SPSC ring, every channel kind,
 * and the integrity property that distinguishes AppendWrite from raw
 * shared memory.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "ipc/channel.h"
#include "ipc/message.h"
#include "ipc/posix_channels.h"
#include "ipc/shm_channel.h"
#include "ipc/spsc_ring.h"

namespace hq {
namespace {

TEST(Message, WireFormatIs32Bytes)
{
    EXPECT_EQ(sizeof(Message), 32u);
}

TEST(Message, ConstructorFillsFields)
{
    Message m(Opcode::PointerDefine, 0x1000, 0x2000);
    EXPECT_EQ(m.op, Opcode::PointerDefine);
    EXPECT_EQ(m.arg0, 0x1000u);
    EXPECT_EQ(m.arg1, 0x2000u);
    EXPECT_EQ(m.pid, 0u);
    EXPECT_EQ(m.seq, 0u);
}

TEST(Message, AllOpcodesHaveNames)
{
    for (std::uint32_t op = 0;
         op < static_cast<std::uint32_t>(Opcode::NumOpcodes); ++op) {
        EXPECT_STRNE(opcodeName(static_cast<Opcode>(op)), "UNKNOWN")
            << "opcode " << op;
    }
}

TEST(Message, ToStringContainsOpcodeName)
{
    Message m(Opcode::PointerCheck, 0xdead, 0xbeef);
    const std::string s = m.toString();
    EXPECT_NE(s.find("POINTER-CHECK"), std::string::npos);
}

TEST(SpscRing, CapacityRoundsUpToPow2)
{
    SpscRing ring(1000);
    EXPECT_EQ(ring.capacity(), 1024u);
    SpscRing tiny(0);
    EXPECT_EQ(tiny.capacity(), 1u);
}

TEST(SpscRing, PushPopFifoOrder)
{
    SpscRing ring(8);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_TRUE(ring.tryPush(Message(Opcode::EventCount, i)));
    EXPECT_EQ(ring.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) {
        Message out;
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out.arg0, i);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PushFailsWhenFull)
{
    SpscRing ring(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(Message(Opcode::EventCount, i)));
    EXPECT_FALSE(ring.tryPush(Message(Opcode::EventCount, 99)));
    Message out;
    EXPECT_TRUE(ring.tryPop(out));
    EXPECT_TRUE(ring.tryPush(Message(Opcode::EventCount, 99)));
}

TEST(SpscRing, PopFailsWhenEmpty)
{
    SpscRing ring(4);
    Message out;
    EXPECT_FALSE(ring.tryPop(out));
}

TEST(SpscRing, WrapAroundPreservesOrder)
{
    SpscRing ring(4);
    Message out;
    for (std::uint64_t round = 0; round < 100; ++round) {
        ASSERT_TRUE(ring.tryPush(Message(Opcode::EventCount, round)));
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out.arg0, round);
    }
}

TEST(SpscRing, ConcurrentProducerConsumer)
{
    SpscRing ring(256);
    constexpr std::uint64_t kCount = 200000;

    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kCount; ++i) {
            while (!ring.tryPush(Message(Opcode::EventCount, i)))
                std::this_thread::yield();
        }
    });

    std::uint64_t expected = 0;
    Message out;
    while (expected < kCount) {
        if (ring.tryPop(out)) {
            ASSERT_EQ(out.arg0, expected);
            ++expected;
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, BatchPushPopRoundTrip)
{
    SpscRing ring(16);
    Message in[10];
    for (std::uint64_t i = 0; i < 10; ++i)
        in[i] = Message(Opcode::EventCount, i, i * 3);
    EXPECT_EQ(ring.tryPushBatch(in, 10), 10u);
    EXPECT_EQ(ring.size(), 10u);

    Message out[16];
    EXPECT_EQ(ring.tryPopBatch(out, 16), 10u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(out[i].arg0, i);
        EXPECT_EQ(out[i].arg1, i * 3);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, BatchPushIsPartialWhenNearlyFull)
{
    SpscRing ring(8);
    Message in[8];
    for (std::uint64_t i = 0; i < 8; ++i)
        in[i] = Message(Opcode::EventCount, i);
    EXPECT_EQ(ring.tryPushBatch(in, 6), 6u);
    // Only 2 slots remain: the push is partial, not rejected.
    EXPECT_EQ(ring.tryPushBatch(in + 6, 2), 2u);
    EXPECT_EQ(ring.tryPushBatch(in, 4), 0u);

    Message out[8];
    EXPECT_EQ(ring.tryPopBatch(out, 3), 3u);
    for (std::uint64_t i = 0; i < 3; ++i)
        EXPECT_EQ(out[i].arg0, i);
    EXPECT_EQ(ring.tryPopBatch(out, 8), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(out[i].arg0, i + 3);
}

TEST(SpscRing, BatchZeroAndEmptyEdges)
{
    SpscRing ring(8);
    Message m;
    EXPECT_EQ(ring.tryPushBatch(&m, 0), 0u);
    EXPECT_EQ(ring.tryPopBatch(&m, 0), 0u);
    EXPECT_EQ(ring.tryPopBatch(&m, 8), 0u); // empty ring
}

TEST(SpscRing, BatchOpsWrapAroundPreserveOrder)
{
    SpscRing ring(8);
    Message in[5], out[8];
    std::uint64_t next = 0;
    // Offset the cursors so every batch straddles the wrap point at
    // least once over the rounds.
    for (std::uint64_t round = 0; round < 100; ++round) {
        for (auto &message : in)
            message = Message(Opcode::EventCount, next++);
        ASSERT_EQ(ring.tryPushBatch(in, 5), 5u);
        ASSERT_EQ(ring.tryPopBatch(out, 8), 5u);
        for (std::uint64_t i = 0; i < 5; ++i)
            ASSERT_EQ(out[i].arg0, next - 5 + i);
    }
}

TEST(SpscRing, BatchInteroperatesWithSingleOps)
{
    SpscRing ring(8);
    Message in[3], out[8];
    for (std::uint64_t i = 0; i < 3; ++i)
        in[i] = Message(Opcode::EventCount, i);
    ASSERT_TRUE(ring.tryPush(Message(Opcode::EventCount, 99)));
    ASSERT_EQ(ring.tryPushBatch(in, 3), 3u);
    Message single;
    ASSERT_TRUE(ring.tryPop(single));
    EXPECT_EQ(single.arg0, 99u);
    ASSERT_EQ(ring.tryPopBatch(out, 8), 3u);
    for (std::uint64_t i = 0; i < 3; ++i)
        EXPECT_EQ(out[i].arg0, i);
}

TEST(SpscRing, ConcurrentBatchProducerConsumerNoLossNoReorder)
{
    SpscRing ring(256);
    constexpr std::uint64_t kCount = 400000;
    constexpr std::size_t kBatch = 32;

    std::thread producer([&] {
        Message in[kBatch];
        std::uint64_t sent = 0;
        while (sent < kCount) {
            const std::size_t want =
                kBatch < kCount - sent
                    ? kBatch
                    : static_cast<std::size_t>(kCount - sent);
            for (std::size_t i = 0; i < want; ++i)
                in[i] = Message(Opcode::EventCount, sent + i);
            std::size_t pushed = 0;
            while (pushed < want) {
                const std::size_t n =
                    ring.tryPushBatch(in + pushed, want - pushed);
                if (n == 0)
                    std::this_thread::yield();
                pushed += n;
            }
            sent += want;
        }
    });

    Message out[kBatch];
    std::uint64_t expected = 0;
    while (expected < kCount) {
        const std::size_t n = ring.tryPopBatch(out, kBatch);
        if (n == 0) {
            std::this_thread::yield();
            continue;
        }
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(out[i].arg0, expected);
            ++expected;
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, ConcurrentMixedSingleAndBatchStress)
{
    // Batched producer against a single-message consumer: the cached
    // cursors on either side must never let a message be lost, repeated,
    // or reordered regardless of which API moved it.
    SpscRing ring(64);
    constexpr std::uint64_t kCount = 200000;

    std::thread producer([&] {
        Message in[16];
        std::uint64_t sent = 0;
        while (sent < kCount) {
            const std::size_t want =
                16 < kCount - sent
                    ? std::size_t{16}
                    : static_cast<std::size_t>(kCount - sent);
            for (std::size_t i = 0; i < want; ++i)
                in[i] = Message(Opcode::EventCount, sent + i);
            std::size_t pushed = 0;
            while (pushed < want) {
                const std::size_t n =
                    ring.tryPushBatch(in + pushed, want - pushed);
                if (n == 0)
                    std::this_thread::yield();
                pushed += n;
            }
            sent += want;
        }
    });

    Message out;
    std::uint64_t expected = 0;
    while (expected < kCount) {
        if (ring.tryPop(out)) {
            ASSERT_EQ(out.arg0, expected);
            ++expected;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, OverwritePendingModelsShmCorruption)
{
    SpscRing ring(8);
    ring.tryPush(Message(Opcode::PointerDefine, 1, 2));
    ring.tryPush(Message(Opcode::PointerCheck, 1, 2));
    EXPECT_TRUE(ring.overwritePending(0, Message(Opcode::PointerDefine,
                                                 1, 0xbad)));
    Message out;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out.arg1, 0xbadu); // evidence erased
    EXPECT_FALSE(ring.overwritePending(5, Message()));
}

// ---------------------------------------------------------------------
// Channel conformance: every kind delivers messages in order.
// ---------------------------------------------------------------------

class ChannelConformance : public ::testing::TestWithParam<ChannelKind>
{
};

TEST_P(ChannelConformance, RoundTripInOrder)
{
    if (GetParam() == ChannelKind::PosixMq && !MqChannel::supported())
        GTEST_SKIP() << "POSIX message queues unavailable on this host";

    auto channel = makeChannel(GetParam(), 1 << 10);
    ASSERT_NE(channel, nullptr);

    constexpr std::uint64_t kCount = 500;
    std::thread sender([&] {
        for (std::uint64_t i = 0; i < kCount; ++i) {
            ASSERT_TRUE(
                channel->send(Message(Opcode::EventCount, i, i * 2))
                    .isOk());
        }
    });

    std::uint64_t received = 0;
    Message out;
    while (received < kCount) {
        if (channel->tryRecv(out)) {
            EXPECT_EQ(out.op, Opcode::EventCount);
            EXPECT_EQ(out.arg0, received);
            EXPECT_EQ(out.arg1, received * 2);
            ++received;
        } else {
            std::this_thread::yield();
        }
    }
    sender.join();
    EXPECT_EQ(channel->pending(), 0u);
}

TEST_P(ChannelConformance, BatchRecvDrainsInOrder)
{
    if (GetParam() == ChannelKind::PosixMq && !MqChannel::supported())
        GTEST_SKIP() << "POSIX message queues unavailable on this host";

    // Every channel kind must honor the bulk-recv contract, whether it
    // overrides tryRecvBatch (ring-backed kinds) or inherits the
    // single-pop default (syscall kinds).
    auto channel = makeChannel(GetParam(), 1 << 10);
    constexpr std::uint64_t kCount = 300;
    std::thread sender([&] {
        for (std::uint64_t i = 0; i < kCount; ++i) {
            ASSERT_TRUE(
                channel->send(Message(Opcode::EventCount, i, i + 7))
                    .isOk());
        }
    });

    Message out[64];
    EXPECT_EQ(channel->tryRecvBatch(out, 0), 0u);
    std::uint64_t received = 0;
    while (received < kCount) {
        const std::size_t n = channel->tryRecvBatch(out, 64);
        ASSERT_LE(n, 64u);
        if (n == 0) {
            std::this_thread::yield();
            continue;
        }
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(out[i].arg0, received);
            EXPECT_EQ(out[i].arg1, received + 7);
            ++received;
        }
    }
    sender.join();
    EXPECT_EQ(channel->tryRecvBatch(out, 64), 0u);
    EXPECT_EQ(channel->pending(), 0u);
}

TEST_P(ChannelConformance, TraitsAreDeclared)
{
    if (GetParam() == ChannelKind::PosixMq && !MqChannel::supported())
        GTEST_SKIP() << "POSIX message queues unavailable on this host";

    auto channel = makeChannel(GetParam(), 64);
    EXPECT_FALSE(channel->traits().name.empty());
    EXPECT_FALSE(channel->traits().primaryCost.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ChannelConformance,
    ::testing::Values(ChannelKind::PosixMq, ChannelKind::Pipe,
                      ChannelKind::Socket, ChannelKind::SharedMemory,
                      ChannelKind::Fpga, ChannelKind::UarchModel,
                      ChannelKind::CrossProcess),
    [](const ::testing::TestParamInfo<ChannelKind> &info) {
        switch (info.param) {
          case ChannelKind::PosixMq: return "PosixMq";
          case ChannelKind::Pipe: return "Pipe";
          case ChannelKind::Socket: return "Socket";
          case ChannelKind::SharedMemory: return "SharedMemory";
          case ChannelKind::Fpga: return "Fpga";
          case ChannelKind::UarchModel: return "UarchModel";
          case ChannelKind::CrossProcess: return "CrossProcess";
        }
        return "Unknown";
    });

// ---------------------------------------------------------------------
// Table 2 trait properties: append-only vs. async validation.
// ---------------------------------------------------------------------

TEST(ChannelTraits, SharedMemoryIsNotAppendOnly)
{
    auto shm = makeChannel(ChannelKind::SharedMemory, 64);
    EXPECT_FALSE(shm->traits().appendOnly);
    EXPECT_TRUE(shm->traits().asyncValidation);
}

TEST(ChannelTraits, AppendWriteVariantsAreAppendOnlyAndAsync)
{
    for (auto kind : {ChannelKind::Fpga, ChannelKind::UarchModel}) {
        auto channel = makeChannel(kind, 64);
        EXPECT_TRUE(channel->traits().appendOnly)
            << channel->traits().name;
        EXPECT_TRUE(channel->traits().asyncValidation)
            << channel->traits().name;
        EXPECT_EQ(channel->traits().primaryCost, "Mem. Write");
    }
}

TEST(ChannelTraits, SyscallChannelsAreSynchronous)
{
    for (auto kind :
         {ChannelKind::Pipe, ChannelKind::Socket, ChannelKind::PosixMq}) {
        auto channel = makeChannel(kind, 8);
        EXPECT_FALSE(channel->traits().asyncValidation)
            << channel->traits().name;
        EXPECT_EQ(channel->traits().primaryCost, "System Call");
    }
}

TEST(ShmChannel, CorruptionOfSentMessageIsPossible)
{
    // The weakness that motivates AppendWrite: a compromised program can
    // erase evidence from a raw shared-memory transport before the
    // verifier reads it.
    ShmChannel shm(16);
    ASSERT_TRUE(shm.send(Message(Opcode::PointerCheck, 0x10, 0xbad)).isOk());
    EXPECT_TRUE(
        shm.corruptOldestPending(Message(Opcode::PointerCheck, 0x10, 0x0)));
    Message out;
    ASSERT_TRUE(shm.tryRecv(out));
    EXPECT_EQ(out.arg1, 0x0u); // the violation evidence is gone
}

TEST(ShmChannel, CorruptionFailsWhenNothingPending)
{
    ShmChannel shm(16);
    EXPECT_FALSE(shm.corruptOldestPending(Message()));
}

} // namespace
} // namespace hq
