/**
 * @file
 * Tests of the benchmark suite substrate: the 48 profiles, the program
 * generator, the outcome classification (Table 4 taxonomy), and the
 * relative-performance machinery.
 */

#include <gtest/gtest.h>

#include <set>

#include "ir/verify.h"
#include "runtime/vm.h"
#include "workloads/runner.h"
#include "workloads/spec_generator.h"
#include "workloads/spec_profiles.h"

namespace hq {
namespace {

TEST(Profiles, ExactlyFortyEightBenchmarks)
{
    EXPECT_EQ(specProfiles().size(), 48u);
}

TEST(Profiles, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &profile : specProfiles())
        EXPECT_TRUE(names.insert(profile.name).second) << profile.name;
}

TEST(Profiles, TraitCountsMatchPaperShape)
{
    int casted = 0, decayed = 0, uaf = 0, abi = 0, x87 = 0, old_bug = 0,
        allowlist = 0;
    for (const auto &profile : specProfiles()) {
        casted += profile.uses_casted_signature;
        decayed += profile.uses_decayed_funcptr;
        uaf += profile.static_init_uaf;
        abi += profile.ccfi_abi_break;
        x87 += profile.ccfi_x87_sensitive;
        old_bug += profile.old_llvm_baseline_bug;
        allowlist += profile.block_op_allowlist;
    }
    EXPECT_EQ(casted, 15);   // Clang/LLVM CFI false positives (Table 4)
    EXPECT_EQ(decayed, 12);  // CPI mechanical errors
    EXPECT_EQ(uaf, 2);       // the two omnetpp benchmarks (§5.2)
    EXPECT_EQ(abi, 12);      // CCFI errors (Table 4)
    EXPECT_EQ(x87, 9);       // CCFI invalid output
    EXPECT_EQ(old_bug, 2);   // Baseline-CCFI/CPI errors
    EXPECT_EQ(allowlist, 4); // strict-subtype-check failures (§4.1.4)
}

TEST(Profiles, LookupByName)
{
    EXPECT_EQ(specProfile("povray").name, "povray");
    EXPECT_TRUE(specProfile("povray").uses_casted_signature);
    EXPECT_TRUE(specProfile("omnetpp").static_init_uaf);
    EXPECT_TRUE(specProfile("nginx").syscall_rate > 0.01);
}

TEST(Generator, AllProfilesBuildVerifiableModules)
{
    for (const auto &profile : specProfiles()) {
        ir::Module module = buildSpecModule(profile, 0.01);
        const Status status = ir::verifyModule(module);
        EXPECT_TRUE(status.isOk())
            << profile.name << ": " << status.toString();
        EXPECT_GT(module.instructionCount(), 20u) << profile.name;
    }
}

TEST(Generator, DeterministicAcrossBuilds)
{
    const auto &profile = specProfile("perlbench");
    ir::Module a = buildSpecModule(profile, 0.01);
    ir::Module b = buildSpecModule(profile, 0.01);
    EXPECT_EQ(a.instructionCount(), b.instructionCount());
    EXPECT_EQ(a.functions.size(), b.functions.size());
}

TEST(Generator, BaselineRunsToCompletionOnAllProfiles)
{
    for (const auto &profile : specProfiles()) {
        ir::Module module = buildSpecModule(profile, 0.01);
        VmConfig config;
        Vm vm(module, config, nullptr);
        const RunResult result = vm.run();
        EXPECT_EQ(result.exit, ExitKind::Ok)
            << profile.name << ": " << result.detail;
    }
}

TEST(Generator, ChecksumIsDeterministic)
{
    const auto &profile = specProfile("bzip2");
    std::uint64_t checksums[2];
    for (int round = 0; round < 2; ++round) {
        ir::Module module = buildSpecModule(profile, 0.02);
        VmConfig config;
        Vm vm(module, config, nullptr);
        checksums[round] = vm.run().return_value;
    }
    EXPECT_EQ(checksums[0], checksums[1]);
}

// ---------------------------------------------------------------------
// Runner classification (Table 4 behaviors)
// ---------------------------------------------------------------------

RunnerOptions
smallRun()
{
    RunnerOptions options;
    options.scale = 0.02;
    return options;
}

TEST(Runner, BaselineIsOkOnEverything)
{
    WorkloadRunner runner(smallRun());
    for (const std::string name :
         {"perlbench", "povray", "omnetpp", "lbm", "nginx"}) {
        const BenchmarkOutcome outcome =
            runner.run(specProfile(name), CfiDesign::Baseline);
        EXPECT_TRUE(outcome.ok) << name;
        EXPECT_FALSE(outcome.error) << name;
    }
}

TEST(Runner, HqIsOkOnCastedAndDecayedProfiles)
{
    WorkloadRunner runner(smallRun());
    for (const std::string name : {"povray", "perlbench", "xalancbmk"}) {
        const BenchmarkOutcome outcome =
            runner.run(specProfile(name), CfiDesign::HqSfeStk);
        EXPECT_TRUE(outcome.ok)
            << name << " exit=" << exitKindName(outcome.exit);
        EXPECT_FALSE(outcome.false_positive) << name;
    }
}

TEST(Runner, HqDetectsOmnetppUafAsGenuineViolation)
{
    WorkloadRunner runner(smallRun());
    const BenchmarkOutcome outcome =
        runner.run(specProfile("omnetpp"), CfiDesign::HqSfeStk);
    EXPECT_TRUE(outcome.genuine_violation);
    EXPECT_FALSE(outcome.false_positive);
    // The program still completes with correct output (the bug is
    // latent), so the benchmark counts as OK for HQ-CFI.
    EXPECT_TRUE(outcome.ok);
}

TEST(Runner, ClangCfiFalsePositiveOnCastedSignature)
{
    WorkloadRunner runner(smallRun());
    const BenchmarkOutcome outcome =
        runner.run(specProfile("povray"), CfiDesign::ClangCfi);
    EXPECT_TRUE(outcome.false_positive);
    EXPECT_FALSE(outcome.ok);
}

TEST(Runner, ClangCfiOkOnPlainProfiles)
{
    WorkloadRunner runner(smallRun());
    const BenchmarkOutcome outcome =
        runner.run(specProfile("lbm"), CfiDesign::ClangCfi);
    EXPECT_TRUE(outcome.ok);
}

TEST(Runner, CcfiFalsePositiveOnDecayedProfile)
{
    WorkloadRunner runner(smallRun());
    RunnerOptions options = smallRun();
    options.apply_modeled_outcomes = false; // mechanical only
    WorkloadRunner mech(options);
    const BenchmarkOutcome outcome =
        mech.run(specProfile("x264_r"), CfiDesign::Ccfi);
    EXPECT_TRUE(outcome.false_positive);
}

TEST(Runner, CpiCrashesOnDecayedProfile)
{
    RunnerOptions options = smallRun();
    options.apply_modeled_outcomes = false;
    WorkloadRunner runner(options);
    const BenchmarkOutcome outcome =
        runner.run(specProfile("x264_r"), CfiDesign::Cpi);
    EXPECT_TRUE(outcome.error);
    EXPECT_EQ(outcome.exit, ExitKind::Crash);
}

TEST(Runner, CpiOkOnCastedOnlyProfile)
{
    RunnerOptions options = smallRun();
    options.apply_modeled_outcomes = false;
    WorkloadRunner runner(options);
    // gobmk uses signature casts but no decayed stores: CPI tolerates
    // it (pointer values are unchanged).
    const BenchmarkOutcome outcome =
        runner.run(specProfile("gobmk"), CfiDesign::Cpi);
    EXPECT_TRUE(outcome.ok) << exitKindName(outcome.exit);
}

TEST(Runner, ModeledOutcomesApplyToCcfi)
{
    WorkloadRunner runner(smallRun());
    const BenchmarkOutcome abi =
        runner.run(specProfile("omnetpp"), CfiDesign::Ccfi);
    EXPECT_TRUE(abi.error); // modeled ABI break
    const BenchmarkOutcome x87 =
        runner.run(specProfile("milc"), CfiDesign::Ccfi);
    EXPECT_TRUE(x87.invalid); // modeled x87 precision loss
}

TEST(Runner, MessagesFlowUnderHq)
{
    WorkloadRunner runner(smallRun());
    const BenchmarkOutcome outcome =
        runner.run(specProfile("h264ref"), CfiDesign::HqSfeStk);
    EXPECT_GT(outcome.messages_sent, 100u);
    EXPECT_EQ(outcome.messages_sent, outcome.verifier_messages);
    EXPECT_GT(outcome.syscalls, 0u);
}

TEST(Runner, RelativePerformanceIsPositive)
{
    RunnerOptions options;
    options.scale = 0.05;
    WorkloadRunner runner(options);
    const double rel = runner.relativePerformance(specProfile("mcf"),
                                                  CfiDesign::HqSfeStk);
    EXPECT_GT(rel, 0.05);
    EXPECT_LT(rel, 3.0);
}

TEST(Runner, InstrumentedSlowerThanBaselineOnHotProfile)
{
    RunnerOptions options;
    options.scale = 0.2;
    WorkloadRunner runner(options);
    // h264ref has the highest message rate: instrumentation must cost
    // something measurable.
    const double rel = runner.relativePerformance(
        specProfile("h264ref"), CfiDesign::HqRetPtr);
    EXPECT_LT(rel, 1.0);
}

} // namespace
} // namespace hq
