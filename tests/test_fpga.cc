/**
 * @file
 * Unit tests for the AppendWrite-FPGA device model: MMIO transaction
 * assembly, PID stamping from the kernel-managed register, sequence
 * counters, drop-on-full behavior, and the channel adapter.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "fpga/afu.h"
#include "fpga/fpga_channel.h"

namespace hq {
namespace {

FpgaConfig
fastConfig(std::size_t capacity = 1 << 10)
{
    FpgaConfig config;
    config.host_buffer_messages = capacity;
    config.model_latency = false; // functional-only for unit tests
    return config;
}

TEST(FpgaAfu, TwoWriteCommitAssemblesMessage)
{
    FpgaAfu afu(fastConfig());
    const auto commit =
        FpgaAfu::kRegCommitBase +
        8 * static_cast<std::uint32_t>(Opcode::PointerDefine);
    afu.mmioWrite(FpgaAfu::kRegArg0, 0x1000);
    afu.mmioWrite(commit, 0x2000);

    Message out;
    ASSERT_TRUE(afu.hostRead(out));
    EXPECT_EQ(out.op, Opcode::PointerDefine);
    EXPECT_EQ(out.arg0, 0x1000u);
    EXPECT_EQ(out.arg1, 0x2000u);
}

TEST(FpgaAfu, SingleWriteCommitForOneArgOps)
{
    FpgaAfu afu(fastConfig());
    const auto commit = FpgaAfu::kRegCommitBase +
                        8 * static_cast<std::uint32_t>(Opcode::Syscall);
    afu.mmioWrite(commit, 42);

    Message out;
    ASSERT_TRUE(afu.hostRead(out));
    EXPECT_EQ(out.op, Opcode::Syscall);
    EXPECT_EQ(out.arg0, 42u);
    EXPECT_EQ(out.arg1, 0u);
}

TEST(FpgaAfu, MmioWriteCountMatchesArity)
{
    EXPECT_EQ(FpgaAfu::mmioWritesFor(Opcode::Syscall), 1);
    EXPECT_EQ(FpgaAfu::mmioWritesFor(Opcode::PointerInvalidate), 1);
    EXPECT_EQ(FpgaAfu::mmioWritesFor(Opcode::PointerDefine), 2);
    EXPECT_EQ(FpgaAfu::mmioWritesFor(Opcode::PointerBlockCopy), 2);
}

TEST(FpgaAfu, PidStampedFromKernelRegister)
{
    FpgaAfu afu(fastConfig());
    afu.setPidRegister(777);
    const auto commit = FpgaAfu::kRegCommitBase +
                        8 * static_cast<std::uint32_t>(Opcode::Syscall);
    afu.mmioWrite(commit, 1);
    // Context switch: the kernel reloads the PID register.
    afu.setPidRegister(888);
    afu.mmioWrite(commit, 2);

    Message out;
    ASSERT_TRUE(afu.hostRead(out));
    EXPECT_EQ(out.pid, 777u);
    ASSERT_TRUE(afu.hostRead(out));
    EXPECT_EQ(out.pid, 888u);
}

TEST(FpgaAfu, SequenceCounterIsConsecutive)
{
    FpgaAfu afu(fastConfig());
    const auto commit = FpgaAfu::kRegCommitBase +
                        8 * static_cast<std::uint32_t>(Opcode::Heartbeat);
    for (int i = 0; i < 10; ++i)
        afu.mmioWrite(commit, i);

    Message out;
    for (std::uint32_t i = 0; i < 10; ++i) {
        ASSERT_TRUE(afu.hostRead(out));
        EXPECT_EQ(out.seq, i);
    }
}

TEST(FpgaAfu, DropsOnFullHostBufferAndLeavesSeqGap)
{
    FpgaAfu afu(fastConfig(/*capacity=*/4));
    const auto commit = FpgaAfu::kRegCommitBase +
                        8 * static_cast<std::uint32_t>(Opcode::Heartbeat);
    for (int i = 0; i < 6; ++i)
        afu.mmioWrite(commit, i); // no back-pressure: 2 drops
    EXPECT_EQ(afu.droppedMessages(), 2u);

    // Drain, then send one more: its sequence number exposes the gap.
    Message out;
    while (afu.hostRead(out)) {
    }
    afu.mmioWrite(commit, 99);
    ASSERT_TRUE(afu.hostRead(out));
    EXPECT_EQ(out.seq, 6u); // seq 4 and 5 were consumed by drops
}

TEST(FpgaAfu, UnmappedOffsetsAreIgnored)
{
    FpgaAfu afu(fastConfig());
    afu.mmioWrite(0x7777, 0xdead);   // unmapped
    afu.mmioWrite(0x101, 0xdead);    // unaligned commit window write
    Message out;
    EXPECT_FALSE(afu.hostRead(out));
}

TEST(FpgaChannel, SendStampsPidAndSeq)
{
    FpgaChannel channel(fastConfig());
    channel.afu().setPidRegister(1234);
    ASSERT_TRUE(channel.send(Message(Opcode::PointerDefine, 8, 9)).isOk());
    ASSERT_TRUE(channel.send(Message(Opcode::PointerCheck, 8, 9)).isOk());

    Message out;
    ASSERT_TRUE(channel.tryRecv(out));
    EXPECT_EQ(out.op, Opcode::PointerDefine);
    EXPECT_EQ(out.pid, 1234u);
    EXPECT_EQ(out.seq, 0u);
    ASSERT_TRUE(channel.tryRecv(out));
    EXPECT_EQ(out.op, Opcode::PointerCheck);
    EXPECT_EQ(out.seq, 1u);
}

TEST(FpgaChannel, SenderCannotForgePid)
{
    FpgaChannel channel(fastConfig());
    channel.afu().setPidRegister(42);
    Message forged(Opcode::Syscall, 1);
    forged.pid = 9999; // attacker-controlled field is ignored
    ASSERT_TRUE(channel.send(forged).isOk());
    Message out;
    ASSERT_TRUE(channel.tryRecv(out));
    EXPECT_EQ(out.pid, 42u);
}

TEST(FpgaChannel, LatencyModelSlowsSends)
{
    FpgaConfig slow;
    slow.mmio_write_ns = 200;
    slow.model_latency = true;
    FpgaChannel channel(slow);

    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(
            channel.send(Message(Opcode::PointerDefine, i, i)).isOk());
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    // 100 two-write messages at 200 ns per MMIO write >= 40 us.
    EXPECT_GE(elapsed, 40000);
}

} // namespace
} // namespace hq
