/**
 * @file
 * Conformance suite for the asynchronous ack path and bounded
 * speculation (DESIGN.md §13): batched epoch acknowledgements, the
 * proactive pre-arm fast path, the speculation window with its barrier
 * syscalls, ack-banking clamps, and the spec_kill audit record.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "ipc/shm_channel.h"
#include "kernel/kernel.h"
#include "policy/pointer_integrity.h"
#include "telemetry/event_log.h"
#include "telemetry/telemetry.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

KernelModule::Config
shortEpoch(std::size_t window = 0)
{
    KernelModule::Config config;
    config.epoch = std::chrono::milliseconds(50);
    config.speculation_window = window;
    return config;
}

// ---------------------------------------------------------------------
// Syscall classification
// ---------------------------------------------------------------------

TEST(GatingClassify, SpeculationBarriers)
{
    // Process-control syscalls always enforce strict catch-up: their
    // effects (new processes, image replacement, signals, exit) cannot
    // be undone by a late kill.
    for (std::uint64_t sysno : {56u, 57u, 58u, 59u, 60u, 62u, 231u, 322u})
        EXPECT_TRUE(KernelModule::isSpeculationBarrier(sysno)) << sysno;
    for (std::uint64_t sysno : {0u, 1u, 2u, 39u, 228u})
        EXPECT_FALSE(KernelModule::isSpeculationBarrier(sysno)) << sysno;
}

TEST(GatingClassify, ReadOnlySyscalls)
{
    for (std::uint64_t sysno :
         {39u, 63u, 79u, 96u, 102u, 110u, 186u, 228u, 318u})
        EXPECT_TRUE(KernelModule::isReadOnlySyscall(sysno)) << sysno;
    // Write-like and process-control syscalls are never elidable.
    for (std::uint64_t sysno : {0u, 1u, 2u, 56u, 59u, 231u})
        EXPECT_FALSE(KernelModule::isReadOnlySyscall(sysno)) << sysno;
}

TEST(GatingClassify, ElisionSkipsBarrierMachinery)
{
    // With elision on, a read-only syscall passes without consuming any
    // gate state — no ack, no pre-arm, no speculation credit.
    KernelModule::Config config = shortEpoch();
    config.elide_readonly_syscalls = true;
    KernelModule kernel(config);
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    EXPECT_TRUE(kernel.syscallEnter(1, 228).isOk()); // clock_gettime
    EXPECT_EQ(kernel.statsFor(1).waits, 0u);
    EXPECT_EQ(kernel.statsFor(1).spec_syscalls, 0u);
    EXPECT_EQ(kernel.speculationDepth(1), 0u);
}

// ---------------------------------------------------------------------
// Batched acknowledgements
// ---------------------------------------------------------------------

TEST(GatingAck, BlockedEnterReleasedByBatchedAck)
{
    // Two processes block at their gates; one syscallResumeBatch call
    // carrying both acks must release both.
    KernelModule kernel(shortEpoch());
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    ASSERT_TRUE(kernel.enableProcess(2).isOk());

    Status first = Status::ok(), second = Status::ok();
    std::thread enter1([&] {
        first = kernel.syscallEnter(1, 1, /*spin_fast_path=*/false);
    });
    std::thread enter2([&] {
        second = kernel.syscallEnter(2, 1, /*spin_fast_path=*/false);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const KernelModule::SyscallAck acks[] = {{1, 1}, {2, 1}};
    kernel.syscallResumeBatch(acks, 2);
    enter1.join();
    enter2.join();
    EXPECT_TRUE(first.isOk());
    EXPECT_TRUE(second.isOk());
    EXPECT_EQ(kernel.statsFor(1).waits, 1u);
    EXPECT_EQ(kernel.statsFor(2).waits, 1u);
}

TEST(GatingAck, MergedAckCountCreditsMultipleSyscalls)
{
    // Window 4: retire three syscalls ahead of their acks, then credit
    // all three with one merged {pid, count=3} entry.
    KernelModule kernel(shortEpoch(4));
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(kernel.syscallEnter(1, 1).isOk());
    EXPECT_EQ(kernel.speculationDepth(1), 3u);

    const KernelModule::SyscallAck ack{1, 3};
    kernel.syscallResumeBatch(&ack, 1);
    EXPECT_EQ(kernel.speculationDepth(1), 0u);
    EXPECT_EQ(kernel.statsFor(1).waits, 0u);
}

TEST(GatingAck, AckBankingIsClampedToOnePipelinedCredit)
{
    // A flood of forged acks before any syscall must bank at most ONE
    // admission (the legitimate pipelined pre-ack) — the counter gate
    // keeps the old boolean's semantics under strict mode.
    KernelModule kernel(shortEpoch());
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    for (int i = 0; i < 10; ++i)
        kernel.syscallResume(1);

    EXPECT_TRUE(kernel.syscallEnter(1, 1).isOk()); // the banked credit
    // No acker: the second syscall must NOT ride the flood. Fail closed
    // via epoch timeout.
    Status s = kernel.syscallEnter(1, 1, /*spin_fast_path=*/false);
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(kernel.statsFor(1).epoch_timeouts, 1u);
}

// ---------------------------------------------------------------------
// Proactive pre-arm
// ---------------------------------------------------------------------

TEST(GatingPreArm, FastPathSkipsWaitAndIsConsumed)
{
    KernelModule kernel(shortEpoch());
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    kernel.preArmProcess(1);
    EXPECT_TRUE(kernel.syscallEnter(1, 1).isOk());
    EXPECT_EQ(kernel.statsFor(1).waits, 0u);
    EXPECT_EQ(kernel.statsFor(1).pre_arm_hits, 1u);

    // The pre-arm is a single admission: the next syscall waits again.
    Status s = kernel.syscallEnter(1, 1, /*spin_fast_path=*/false);
    EXPECT_FALSE(s.isOk()); // epoch timeout — nothing acked it
}

TEST(GatingPreArm, BarrierSyscallIgnoresPreArm)
{
    // A pre-armed gate must not admit a barrier syscall (execve-like):
    // barriers always require full ack catch-up.
    KernelModule kernel(shortEpoch());
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    kernel.preArmProcess(1);
    Status s = kernel.syscallEnter(1, 59, /*spin_fast_path=*/false);
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(kernel.statsFor(1).epoch_timeouts, 1u);
}

TEST(GatingPreArm, KilledProcessCannotBePreArmed)
{
    KernelModule kernel(shortEpoch());
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    kernel.killProcess(1, "violation");
    kernel.preArmProcess(1);
    EXPECT_FALSE(kernel.syscallEnter(1, 1).isOk());
}

TEST(GatingPreArm, VerifierPreArmsAfterFullDrain)
{
    // proactive_acks: a poll that drains the channel to empty pre-arms
    // the gate, so the NEXT syscall enters without blocking even though
    // its own sync message has not been processed yet.
    KernelModule kernel(shortEpoch());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.proactive_acks = true;
    Verifier verifier(kernel, policy, config);
    ShmChannel channel(64);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(kernel.enableProcess(1).isOk());

    channel.send(Message(Opcode::PointerDefine, 0x100, 0xAA));
    verifier.poll(); // full drain → pre-arm
    EXPECT_TRUE(kernel.syscallEnter(1, 1).isOk());
    EXPECT_EQ(kernel.statsFor(1).waits, 0u);
    EXPECT_EQ(kernel.statsFor(1).pre_arm_hits, 1u);
}

TEST(GatingPreArm, NoPreArmForViolatedProcess)
{
    // The drain that discovers the violation must not pre-arm the gate
    // it just slammed shut.
    KernelModule kernel(shortEpoch());
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.proactive_acks = true;
    Verifier verifier(kernel, policy, config);
    ShmChannel channel(64);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(kernel.enableProcess(1).isOk());

    channel.send(Message(Opcode::PointerCheck, 0x666, 0x1)); // violation
    verifier.poll();
    EXPECT_FALSE(kernel.syscallEnter(1, 1).isOk());
    EXPECT_EQ(kernel.statsFor(1).pre_arm_hits, 0u);
}

// ---------------------------------------------------------------------
// Bounded speculation
// ---------------------------------------------------------------------

TEST(GatingSpec, WindowConfigIsClamped)
{
    KernelModule::Config config;
    config.speculation_window = 1 << 20;
    KernelModule kernel(config);
    EXPECT_EQ(kernel.config().speculation_window,
              KernelModule::kMaxSpeculationWindow);

    KernelModule::Config zero;
    zero.speculation_window = 0;
    KernelModule strict(zero);
    EXPECT_EQ(strict.config().speculation_window, 0u);
}

TEST(GatingSpec, WindowAdmitsAheadOfAcksThenFailsClosed)
{
    // Window 4: exactly four syscalls retire with zero acks; the fifth
    // exceeds the bound and must be denied within the epoch.
    KernelModule kernel(shortEpoch(4));
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(kernel.syscallEnter(1, 1).isOk()) << i;
    EXPECT_EQ(kernel.statsFor(1).waits, 0u);
    EXPECT_EQ(kernel.statsFor(1).spec_syscalls, 4u);
    EXPECT_EQ(kernel.statsFor(1).max_spec_depth, 4u);
    EXPECT_EQ(kernel.speculationDepth(1), 4u);

    Status s = kernel.syscallEnter(1, 1, /*spin_fast_path=*/false);
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::PolicyViolation);
    EXPECT_EQ(kernel.statsFor(1).epoch_timeouts, 1u);
}

TEST(GatingSpec, BarrierSyscallEnforcesStrictCatchUp)
{
    // Window 4 admits write-like syscalls speculatively, but an
    // execve-like barrier demands every outstanding ack first.
    KernelModule kernel(shortEpoch(4));
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    ASSERT_TRUE(kernel.syscallEnter(1, 1).isOk()); // depth 1, fine
    Status s = kernel.syscallEnter(1, 59, /*spin_fast_path=*/false);
    EXPECT_FALSE(s.isOk()); // barrier: unacked depth 1 blocks it
    EXPECT_EQ(kernel.statsFor(1).epoch_timeouts, 1u);
}

TEST(GatingSpec, ViolationInsideWindowKillsBeforeNextSyscall)
{
    // The attack the bound defends: d ≤ K syscalls retire ahead of
    // validation, the verifier then finds the violation — the kill must
    // land before syscall d+1 retires.
    KernelModule kernel(shortEpoch(4));
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy); // kill_on_violation default
    ShmChannel channel(64);
    verifier.attachChannel(&channel, 1);
    ASSERT_TRUE(kernel.enableProcess(1).isOk());

    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(kernel.syscallEnter(1, 1).isOk()); // depth 3 ≤ 4
    channel.send(Message(Opcode::PointerCheck, 0x666, 0x1)); // violation
    verifier.poll();
    EXPECT_TRUE(kernel.isKilled(1));
    EXPECT_FALSE(kernel.syscallEnter(1, 1).isOk());
    EXPECT_EQ(kernel.statsFor(1).syscalls, 4u); // the 4th never retired
}

TEST(GatingSpec, SpecKillWritesAuditRecordWithDepth)
{
    const std::string path =
        "/tmp/hq_gating_spec_kill_" + std::to_string(::getpid()) +
        ".jsonl";
    ASSERT_TRUE(telemetry::EventLog::instance().open(path));

    KernelModule kernel(shortEpoch(4));
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    ASSERT_TRUE(kernel.syscallEnter(1, 1).isOk());
    ASSERT_TRUE(kernel.syscallEnter(1, 1).isOk()); // unacked depth 2
    kernel.killProcess(1, "policy violation");
    telemetry::EventLog::instance().close();

    std::ifstream in(path);
    std::stringstream contents;
    contents << in.rdbuf();
    std::remove(path.c_str());
    EXPECT_NE(contents.str().find("\"type\":\"spec_kill\""),
              std::string::npos)
        << contents.str();
    EXPECT_NE(contents.str().find("\"arg0\":2"), std::string::npos)
        << "record must carry the in-window depth: " << contents.str();
    EXPECT_NE(contents.str().find("\"arg1\":4"), std::string::npos)
        << "record must carry the configured window: " << contents.str();
}

TEST(GatingSpec, StrictKillWritesNoSpecKillRecord)
{
    const std::string path =
        "/tmp/hq_gating_strict_kill_" + std::to_string(::getpid()) +
        ".jsonl";
    ASSERT_TRUE(telemetry::EventLog::instance().open(path));

    KernelModule kernel(shortEpoch());
    ASSERT_TRUE(kernel.enableProcess(1).isOk());
    kernel.killProcess(1, "policy violation"); // depth 0: nothing retired
    telemetry::EventLog::instance().close();

    std::ifstream in(path);
    std::stringstream contents;
    contents << in.rdbuf();
    std::remove(path.c_str());
    EXPECT_EQ(contents.str().find("spec_kill"), std::string::npos)
        << contents.str();
}

// ---------------------------------------------------------------------
// End-to-end: batching + speculation under a sharded verifier
// ---------------------------------------------------------------------

TEST(GatingSoak, ShardedSpeculativePipelineStaysSound)
{
    // 4 shards × 8 processes, window 4, proactive acks: every benign
    // process completes all syscalls with zero violations, and the
    // telemetry confirms the async path actually engaged.
    constexpr int kProcs = 8;
    constexpr int kSyscallsPerProc = 64;

    telemetry::setEnabled(true);
    telemetry::Registry::instance().reset();

    KernelModule::Config kconfig;
    kconfig.epoch = std::chrono::milliseconds(500);
    kconfig.speculation_window = 4;
    KernelModule kernel(kconfig);
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config vconfig;
    vconfig.num_shards = 4;
    vconfig.proactive_acks = true;
    Verifier verifier(kernel, policy, vconfig);

    std::vector<std::unique_ptr<ShmChannel>> channels;
    for (int p = 0; p < kProcs; ++p) {
        channels.push_back(std::make_unique<ShmChannel>(1 << 12));
        verifier.attachChannel(channels.back().get(),
                               static_cast<Pid>(p + 1));
        ASSERT_TRUE(kernel.enableProcess(static_cast<Pid>(p + 1)).isOk());
    }
    verifier.start();

    std::vector<std::thread> procs;
    std::vector<int> failures(kProcs, 0);
    for (int p = 0; p < kProcs; ++p) {
        procs.emplace_back([&, p] {
            const Pid pid = static_cast<Pid>(p + 1);
            ShmChannel &channel = *channels[p];
            for (int i = 0; i < kSyscallsPerProc; ++i) {
                const std::uint64_t addr = 0x1000 + 16 * i;
                while (!channel
                            .send(Message(Opcode::PointerDefine, addr, i))
                            .isOk())
                    std::this_thread::yield();
                while (!channel
                            .send(Message(Opcode::PointerCheck, addr, i))
                            .isOk())
                    std::this_thread::yield();
                while (!channel.send(Message(Opcode::Syscall, 1)).isOk())
                    std::this_thread::yield();
                if (!kernel.syscallEnter(pid, 1).isOk())
                    ++failures[p];
            }
        });
    }
    for (std::thread &t : procs)
        t.join();
    verifier.stop();

    for (int p = 0; p < kProcs; ++p) {
        const Pid pid = static_cast<Pid>(p + 1);
        EXPECT_EQ(failures[p], 0) << "pid " << pid;
        EXPECT_FALSE(verifier.hasViolation(pid)) << "pid " << pid;
        EXPECT_FALSE(kernel.isKilled(pid)) << "pid " << pid;
        EXPECT_EQ(kernel.statsFor(pid).syscalls,
                  static_cast<std::uint64_t>(kSyscallsPerProc))
            << "pid " << pid;
        EXPECT_LE(kernel.statsFor(pid).max_spec_depth, 4u)
            << "pid " << pid;
    }
    // The coalesced-ack path carried the load (every ack goes through
    // the batch call, so the counter tracks total acks credited).
    EXPECT_GT(
        telemetry::Registry::instance().counter("verifier.acks_batched")
            .value(),
        0u);
    telemetry::setEnabled(false);
    telemetry::Registry::instance().reset();
}

} // namespace
} // namespace hq
