/**
 * @file
 * Unit tests for the execution policies: pointer integrity (HQ-CFI
 * semantics from §4.1.3/§4.1.5), memory safety (§4.2), and the §4.3
 * policies (event counting, watchdog).
 */

#include <gtest/gtest.h>

#include "policy/data_flow.h"
#include "policy/ifc.h"
#include "policy/memory_safety.h"
#include "policy/memory_tagging.h"
#include "policy/misc_policies.h"
#include "policy/pointer_integrity.h"
#include "policy/policy_module.h"

namespace hq {
namespace {

Message
msg(Opcode op, std::uint64_t a0 = 0, std::uint64_t a1 = 0)
{
    return Message(op, a0, a1);
}

// ---------------------------------------------------------------------
// Pointer integrity
// ---------------------------------------------------------------------

class PointerIntegrityTest : public ::testing::Test
{
  protected:
    PointerIntegrityContext ctx{1};
};

TEST_F(PointerIntegrityTest, DefineThenCheckSucceeds)
{
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x100, 0xAA)));
    EXPECT_EQ(ctx.violationCount(), 0u);
}

TEST_F(PointerIntegrityTest, CorruptedValueIsViolation)
{
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    Status s = ctx.handleMessage(msg(Opcode::PointerCheck, 0x100, 0xBB));
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::PolicyViolation);
    EXPECT_EQ(ctx.lastViolation(), PointerViolation::Corrupted);
}

TEST_F(PointerIntegrityTest, CheckAfterInvalidateIsUseAfterFree)
{
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    ctx.handleMessage(msg(Opcode::PointerInvalidate, 0x100));
    Status s = ctx.handleMessage(msg(Opcode::PointerCheck, 0x100, 0xAA));
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(ctx.lastViolation(), PointerViolation::UseAfterFree);
}

TEST_F(PointerIntegrityTest, CheckOfNeverDefinedPointerIsViolation)
{
    Status s = ctx.handleMessage(msg(Opcode::PointerCheck, 0x500, 0x1));
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(ctx.lastViolation(), PointerViolation::UseAfterFree);
}

TEST_F(PointerIntegrityTest, RedefineUpdatesShadowValue)
{
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xBB));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x100, 0xBB)));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x100, 0xAA)));
}

TEST_F(PointerIntegrityTest, CheckInvalidateRemovesEntry)
{
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    EXPECT_TRUE(
        ctx.handleMessage(msg(Opcode::PointerCheckInvalidate, 0x100, 0xAA)));
    // Second check: the entry is gone (return pointer was consumed).
    EXPECT_FALSE(
        ctx.handleMessage(msg(Opcode::PointerCheckInvalidate, 0x100, 0xAA)));
    EXPECT_EQ(ctx.lastViolation(), PointerViolation::UseAfterFree);
}

TEST_F(PointerIntegrityTest, FailedCheckInvalidateKeepsEntry)
{
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    EXPECT_FALSE(
        ctx.handleMessage(msg(Opcode::PointerCheckInvalidate, 0x100, 0xBB)));
    // Check-invalidate only invalidates on success.
    std::uint64_t value = 0;
    EXPECT_TRUE(ctx.lookup(0x100, value));
    EXPECT_EQ(value, 0xAAu);
}

TEST_F(PointerIntegrityTest, BlockCopyMovesPointersWithBytes)
{
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x108, 0xBB));
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x200, 0xCC)); // outside
    // memcpy(dst=0x300, src=0x100, sz=0x10)
    ctx.handleMessage(msg(Opcode::BlockSize, 0x10));
    ctx.handleMessage(msg(Opcode::PointerBlockCopy, 0x100, 0x300));

    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x300, 0xAA)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x308, 0xBB)));
    // Source copies remain valid for COPY.
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x100, 0xAA)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x200, 0xCC)));
}

TEST_F(PointerIntegrityTest, BlockCopyInvalidatesPreexistingDestination)
{
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x300, 0xDD));
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    ctx.handleMessage(msg(Opcode::BlockSize, 0x10));
    ctx.handleMessage(msg(Opcode::PointerBlockCopy, 0x100, 0x2F8));
    // 0x300 lies inside [0x2F8, 0x308): its old pointer must be gone,
    // replaced only if a source pointer landed exactly there.
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x300, 0xDD)));
}

TEST_F(PointerIntegrityTest, BlockMoveInvalidatesSource)
{
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    // realloc-style move to 0x400.
    ctx.handleMessage(msg(Opcode::BlockSize, 0x10));
    ctx.handleMessage(msg(Opcode::PointerBlockMove, 0x100, 0x400));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x400, 0xAA)));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x100, 0xAA)));
    EXPECT_EQ(ctx.lastViolation(), PointerViolation::UseAfterFree);
}

TEST_F(PointerIntegrityTest, BlockInvalidateClearsRange)
{
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x110, 0xBB));
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x120, 0xCC));
    // free() of [0x100, 0x118)
    ctx.handleMessage(msg(Opcode::PointerBlockInvalidate, 0x100, 0x18));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x100, 0xAA)));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x110, 0xBB)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x120, 0xCC)));
}

TEST_F(PointerIntegrityTest, ZeroSizeBlockCopyIsNoop)
{
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    ctx.handleMessage(msg(Opcode::BlockSize, 0));
    ctx.handleMessage(msg(Opcode::PointerBlockCopy, 0x100, 0x300));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x300, 0xAA)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x100, 0xAA)));
}

TEST_F(PointerIntegrityTest, OverlappingBlockCopyForward)
{
    // memmove semantics: [0x100,0x110) -> [0x108,0x118), ranges intersect.
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x108, 0xBB));
    ctx.handleMessage(msg(Opcode::BlockSize, 0x10));
    ctx.handleMessage(msg(Opcode::PointerBlockCopy, 0x100, 0x108));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x108, 0xAA)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x110, 0xBB)));
}

TEST_F(PointerIntegrityTest, EntryCountTracksDefinitions)
{
    EXPECT_EQ(ctx.entryCount(), 0u);
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 1));
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x108, 2));
    EXPECT_EQ(ctx.entryCount(), 2u);
    ctx.handleMessage(msg(Opcode::PointerInvalidate, 0x100));
    EXPECT_EQ(ctx.entryCount(), 1u);
    EXPECT_EQ(ctx.maxEntryCount(), 2u);
}

TEST_F(PointerIntegrityTest, CloneForChildCopiesShadowStore)
{
    ctx.handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    auto child = ctx.cloneForChild(2);
    EXPECT_TRUE(child->handleMessage(msg(Opcode::PointerCheck, 0x100, 0xAA)));
    // Child mutations do not affect the parent.
    child->handleMessage(msg(Opcode::PointerInvalidate, 0x100));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerCheck, 0x100, 0xAA)));
}

TEST_F(PointerIntegrityTest, SyscallAndInitMessagesAreIgnored)
{
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::Syscall, 42)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::Init, 1)));
    EXPECT_EQ(ctx.entryCount(), 0u);
}

// ---------------------------------------------------------------------
// Memory safety
// ---------------------------------------------------------------------

class MemorySafetyTest : public ::testing::Test
{
  protected:
    MemorySafetyContext ctx{1};
};

TEST_F(MemorySafetyTest, CreateThenCheckInBounds)
{
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::AllocCreate, 0x1000, 0x100)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::AllocCheck, 0x1000)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::AllocCheck, 0x10FF)));
}

TEST_F(MemorySafetyTest, OutOfBoundsAccessIsViolation)
{
    ctx.handleMessage(msg(Opcode::AllocCreate, 0x1000, 0x100));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::AllocCheck, 0x1100)));
    EXPECT_EQ(ctx.lastViolation(), MemoryViolation::OutOfBounds);
}

TEST_F(MemorySafetyTest, UseAfterFreeIsViolation)
{
    ctx.handleMessage(msg(Opcode::AllocCreate, 0x1000, 0x100));
    ctx.handleMessage(msg(Opcode::AllocDestroy, 0x1000));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::AllocCheck, 0x1000)));
}

TEST_F(MemorySafetyTest, OverlappingCreateIsViolation)
{
    ctx.handleMessage(msg(Opcode::AllocCreate, 0x1000, 0x100));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::AllocCreate, 0x1080, 0x100)));
    EXPECT_EQ(ctx.lastViolation(), MemoryViolation::OverlapCreate);
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::AllocCreate, 0xF80, 0x100)));
}

TEST_F(MemorySafetyTest, AdjacentAllocationsDoNotOverlap)
{
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::AllocCreate, 0x1000, 0x100)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::AllocCreate, 0x1100, 0x100)));
}

TEST_F(MemorySafetyTest, CheckBaseDetectsCrossAllocation)
{
    ctx.handleMessage(msg(Opcode::AllocCreate, 0x1000, 0x100));
    ctx.handleMessage(msg(Opcode::AllocCreate, 0x2000, 0x100));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::AllocCheckBase, 0x1000, 0x10FF)));
    EXPECT_FALSE(
        ctx.handleMessage(msg(Opcode::AllocCheckBase, 0x1000, 0x2000)));
    EXPECT_EQ(ctx.lastViolation(), MemoryViolation::CrossAllocation);
}

TEST_F(MemorySafetyTest, DoubleFreeIsViolation)
{
    ctx.handleMessage(msg(Opcode::AllocCreate, 0x1000, 0x100));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::AllocDestroy, 0x1000)));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::AllocDestroy, 0x1000)));
    EXPECT_EQ(ctx.lastViolation(), MemoryViolation::InvalidFree);
}

TEST_F(MemorySafetyTest, ExtendMovesAllocation)
{
    ctx.handleMessage(msg(Opcode::AllocCreate, 0x1000, 0x100));
    // realloc to 0x3000, size 0x200.
    ctx.handleMessage(msg(Opcode::BlockSize, 0x200));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::AllocExtend, 0x1000, 0x3000)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::AllocCheck, 0x31FF)));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::AllocCheck, 0x1000)));
}

TEST_F(MemorySafetyTest, ExtendOfUnknownBaseIsViolation)
{
    ctx.handleMessage(msg(Opcode::BlockSize, 0x100));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::AllocExtend, 0x9999, 0x3000)));
}

TEST_F(MemorySafetyTest, DestroyAllClearsStackFrame)
{
    ctx.handleMessage(msg(Opcode::AllocCreate, 0x1000, 0x10));
    ctx.handleMessage(msg(Opcode::AllocCreate, 0x1020, 0x10));
    ctx.handleMessage(msg(Opcode::AllocCreate, 0x2000, 0x10));
    EXPECT_TRUE(
        ctx.handleMessage(msg(Opcode::AllocDestroyAll, 0x1000, 0x100)));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::AllocCheck, 0x1000)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::AllocCheck, 0x2000)));
}

TEST_F(MemorySafetyTest, DestroyAllOfEmptyRangeIsViolation)
{
    EXPECT_FALSE(
        ctx.handleMessage(msg(Opcode::AllocDestroyAll, 0x1000, 0x100)));
}

TEST_F(MemorySafetyTest, CloneForChildCopiesAllocations)
{
    ctx.handleMessage(msg(Opcode::AllocCreate, 0x1000, 0x100));
    auto child = ctx.cloneForChild(2);
    EXPECT_TRUE(child->handleMessage(msg(Opcode::AllocCheck, 0x1000)));
}

// ---------------------------------------------------------------------
// Event counting and watchdog (§4.3)
// ---------------------------------------------------------------------

TEST(EventCount, AccumulatesPerCounter)
{
    EventCountContext ctx(1);
    ctx.handleMessage(msg(Opcode::EventCount, 7, 1));
    ctx.handleMessage(msg(Opcode::EventCount, 7, 2));
    ctx.handleMessage(msg(Opcode::EventCount, 9, 5));
    EXPECT_EQ(ctx.counter(7), 3u);
    EXPECT_EQ(ctx.counter(9), 5u);
    EXPECT_EQ(ctx.counter(999), 0u);
}

TEST(EventCount, CloneCopiesCounters)
{
    EventCountContext ctx(1);
    ctx.handleMessage(msg(Opcode::EventCount, 7, 10));
    auto child = ctx.cloneForChild(2);
    auto *child_ctx = static_cast<EventCountContext *>(child.get());
    EXPECT_EQ(child_ctx->counter(7), 10u);
}

TEST(Watchdog, AcceptsMonotonicHeartbeats)
{
    WatchdogContext ctx(1, /*max_gap=*/10);
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::Heartbeat, 100)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::Heartbeat, 105)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::Heartbeat, 115)));
}

TEST(Watchdog, RejectsGapBeyondBudget)
{
    WatchdogContext ctx(1, 10);
    ctx.handleMessage(msg(Opcode::Heartbeat, 100));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::Heartbeat, 200)));
}

TEST(Watchdog, RejectsRegression)
{
    WatchdogContext ctx(1, 10);
    ctx.handleMessage(msg(Opcode::Heartbeat, 100));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::Heartbeat, 99)));
}

// ---------------------------------------------------------------------
// Data-flow integrity (§4.3)
// ---------------------------------------------------------------------

TEST(DataFlow, AllowedWriterPasses)
{
    DataFlowContext ctx(1);
    // Writer 3 stores; the load allows writers {3, 5}.
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::DfiWrite, 0x100, 3)));
    const std::uint64_t mask = (1u << 3) | (1u << 5);
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::DfiRead, 0x100, mask)));
    EXPECT_EQ(ctx.violationCount(), 0u);
}

TEST(DataFlow, DisallowedWriterIsViolation)
{
    DataFlowContext ctx(1);
    // Writer 7 (e.g. an attacker-reached memcpy) stored last, but the
    // load only expects writers {3, 5}.
    ctx.handleMessage(msg(Opcode::DfiWrite, 0x100, 7));
    const std::uint64_t mask = (1u << 3) | (1u << 5);
    Status s = ctx.handleMessage(msg(Opcode::DfiRead, 0x100, mask));
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::PolicyViolation);
    EXPECT_EQ(ctx.violationCount(), 1u);
}

TEST(DataFlow, UnwrittenMemoryIsInitialWriter)
{
    DataFlowContext ctx(1);
    EXPECT_EQ(ctx.lastWriter(0x500), DataFlowContext::kInitialWriter);
    // Loads of uninitialized data pass only when the initial writer
    // (bit 0) is in the allowed set.
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::DfiRead, 0x500, 0x1)));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::DfiRead, 0x500, 0x8)));
}

TEST(DataFlow, LatestWriterWins)
{
    DataFlowContext ctx(1);
    ctx.handleMessage(msg(Opcode::DfiWrite, 0x100, 2));
    ctx.handleMessage(msg(Opcode::DfiWrite, 0x100, 9));
    EXPECT_EQ(ctx.lastWriter(0x100), 9u);
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::DfiRead, 0x100, 1u << 2)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::DfiRead, 0x100, 1u << 9)));
}

TEST(DataFlow, EntryCountAndClone)
{
    DataFlowContext ctx(1);
    ctx.handleMessage(msg(Opcode::DfiWrite, 0x100, 1));
    ctx.handleMessage(msg(Opcode::DfiWrite, 0x108, 2));
    EXPECT_EQ(ctx.entryCount(), 2u);
    auto child = ctx.cloneForChild(2);
    auto *child_ctx = static_cast<DataFlowContext *>(child.get());
    EXPECT_EQ(child_ctx->lastWriter(0x108), 2u);
}

TEST(MemoryTagging, MatchingTagPasses)
{
    MemoryTaggingContext ctx(1);
    // Tag [0x1000, 0x1040) with tag 5.
    ctx.handleMessage(msg(Opcode::TagSet, 0x1000, (0x40 << 8) | 5));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::TagCheck, 0x1000, 5)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::TagCheck, 0x103F, 5)));
    EXPECT_EQ(ctx.violationCount(), 0u);
}

TEST(MemoryTagging, MismatchedTagIsViolation)
{
    MemoryTaggingContext ctx(1);
    ctx.handleMessage(msg(Opcode::TagSet, 0x1000, (0x40 << 8) | 5));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::TagCheck, 0x1000, 6)));
    EXPECT_EQ(ctx.violationCount(), 1u);
}

TEST(MemoryTagging, UntaggedMemoryIsViolation)
{
    MemoryTaggingContext ctx(1);
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::TagCheck, 0x9000, 0)));
}

TEST(MemoryTagging, RetagDetectsUseAfterFree)
{
    // MTE-style temporal safety: free retags the region; a stale
    // pointer still carries the old tag.
    MemoryTaggingContext ctx(1);
    ctx.handleMessage(msg(Opcode::TagSet, 0x1000, (0x40 << 8) | 5));
    ctx.handleMessage(msg(Opcode::TagSet, 0x1000, (0x40 << 8) | 9));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::TagCheck, 0x1010, 5)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::TagCheck, 0x1010, 9)));
}

TEST(MemoryTagging, ZeroSizeRetagRemovesRegion)
{
    MemoryTaggingContext ctx(1);
    ctx.handleMessage(msg(Opcode::TagSet, 0x1000, (0x40 << 8) | 5));
    EXPECT_EQ(ctx.entryCount(), 1u);
    ctx.handleMessage(msg(Opcode::TagSet, 0x1000, 0));
    EXPECT_EQ(ctx.entryCount(), 0u);
    EXPECT_EQ(ctx.tagOf(0x1000), -1);
}

TEST(MemoryTagging, AdjacentRegionsKeepDistinctTags)
{
    MemoryTaggingContext ctx(1);
    ctx.handleMessage(msg(Opcode::TagSet, 0x1000, (0x40 << 8) | 1));
    ctx.handleMessage(msg(Opcode::TagSet, 0x1040, (0x40 << 8) | 2));
    // A linear overflow crossing the boundary changes the required tag.
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::TagCheck, 0x103F, 1)));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::TagCheck, 0x1040, 1)));
    EXPECT_EQ(ctx.tagOf(0x1040), 2);
}

TEST(MemoryTagging, CloneCopiesRegions)
{
    MemoryTaggingContext ctx(1);
    ctx.handleMessage(msg(Opcode::TagSet, 0x1000, (0x10 << 8) | 3));
    auto child = ctx.cloneForChild(2);
    auto *child_ctx = static_cast<MemoryTaggingContext *>(child.get());
    EXPECT_EQ(child_ctx->tagOf(0x1008), 3);
}

TEST(DataFlow, IgnoresOtherPolicyTraffic)
{
    DataFlowContext ctx(1);
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerDefine, 1, 2)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::Syscall, 60)));
    EXPECT_EQ(ctx.entryCount(), 0u);
}

// ---------------------------------------------------------------------
// Information-flow control (label lattice)
// ---------------------------------------------------------------------

TEST(Ifc, UnlabeledAddressesArePublic)
{
    IfcContext ctx(1);
    EXPECT_EQ(ctx.labelOf(0x100), label::kPublic);
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::LabelCheck, 0x100,
                                      label::kSecret)));
    EXPECT_EQ(ctx.violationCount(), 0u);
}

TEST(Ifc, LabeledSourceReachingSinkIsViolation)
{
    IfcContext ctx(1);
    ctx.handleMessage(msg(Opcode::LabelDef, 0x100, label::kSecret));
    Status s = ctx.handleMessage(msg(Opcode::LabelCheck, 0x100,
                                     label::kSecret));
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::PolicyViolation);
    EXPECT_EQ(ctx.violationCount(), 1u);
}

TEST(Ifc, JoinPropagatesLabelAlongDataFlow)
{
    IfcContext ctx(1);
    ctx.handleMessage(msg(Opcode::LabelDef, 0x100, label::kSecret));
    ctx.handleMessage(msg(Opcode::LabelJoin, 0x100, 0x200));
    ctx.handleMessage(msg(Opcode::LabelJoin, 0x200, 0x300));
    EXPECT_EQ(ctx.labelOf(0x300), label::kSecret);
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::LabelCheck, 0x300,
                                       label::kSecret)));
}

TEST(Ifc, JoinIsLatticeOrOfFacets)
{
    IfcContext ctx(1);
    ctx.handleMessage(msg(Opcode::LabelDef, 0x100, label::kSecret));
    ctx.handleMessage(msg(Opcode::LabelDef, 0x200, label::kTainted));
    ctx.handleMessage(msg(Opcode::LabelJoin, 0x100, 0x300));
    ctx.handleMessage(msg(Opcode::LabelJoin, 0x200, 0x300));
    EXPECT_EQ(ctx.labelOf(0x300), label::kSecret | label::kTainted);
    // A sink forbidding only one facet still fires on the joined label.
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::LabelCheck, 0x300,
                                       label::kTainted)));
}

TEST(Ifc, CheckMatchesOnlyForbiddenFacets)
{
    IfcContext ctx(1);
    ctx.handleMessage(msg(Opcode::LabelDef, 0x100, label::kTainted));
    // Secret-forbidding sink accepts merely tainted data.
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::LabelCheck, 0x100,
                                      label::kSecret)));
    EXPECT_FALSE(ctx.handleMessage(msg(Opcode::LabelCheck, 0x100,
                                       label::kTainted)));
}

TEST(Ifc, DeclassifyClearsLabelAndTableEntry)
{
    IfcContext ctx(1);
    ctx.handleMessage(msg(Opcode::LabelDef, 0x100, label::kSecret));
    EXPECT_EQ(ctx.entryCount(), 1u);
    ctx.handleMessage(msg(Opcode::LabelDef, 0x100, label::kPublic));
    EXPECT_EQ(ctx.entryCount(), 0u);
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::LabelCheck, 0x100,
                                      label::kSecret)));
}

TEST(Ifc, PublicJoinIsNoOpAndAddsNoEntry)
{
    IfcContext ctx(1);
    // Loop-counter style joins from unlabeled sources must not bloat
    // the table.
    ctx.handleMessage(msg(Opcode::LabelJoin, 0x900, 0x200));
    EXPECT_EQ(ctx.entryCount(), 0u);
    EXPECT_EQ(ctx.labelOf(0x200), label::kPublic);
}

TEST(Ifc, FingerprintIsOrderIndependent)
{
    IfcContext a(1);
    a.handleMessage(msg(Opcode::LabelDef, 0x100, label::kSecret));
    a.handleMessage(msg(Opcode::LabelDef, 0x200, label::kTainted));
    IfcContext b(1);
    b.handleMessage(msg(Opcode::LabelDef, 0x200, label::kTainted));
    b.handleMessage(msg(Opcode::LabelDef, 0x100, label::kSecret));
    EXPECT_EQ(a.tableFingerprint(), b.tableFingerprint());

    b.handleMessage(msg(Opcode::LabelDef, 0x300, label::kSecret));
    EXPECT_NE(a.tableFingerprint(), b.tableFingerprint());
}

TEST(Ifc, CloneCopiesLabelTable)
{
    IfcContext ctx(1);
    ctx.handleMessage(msg(Opcode::LabelDef, 0x100, label::kSecret));
    auto child = ctx.cloneForChild(2);
    auto *child_ctx = static_cast<IfcContext *>(child.get());
    EXPECT_EQ(child_ctx->labelOf(0x100), label::kSecret);
    child_ctx->handleMessage(msg(Opcode::LabelDef, 0x100, label::kPublic));
    EXPECT_EQ(ctx.labelOf(0x100), label::kSecret);
}

TEST(Ifc, IgnoresOtherPolicyTraffic)
{
    IfcContext ctx(1);
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::PointerDefine, 1, 2)));
    EXPECT_TRUE(ctx.handleMessage(msg(Opcode::DfiWrite, 0x100, 3)));
    EXPECT_EQ(ctx.entryCount(), 0u);
}

// ---------------------------------------------------------------------
// Policy-module composition
// ---------------------------------------------------------------------

std::unique_ptr<MultiPolicyContext>
makeCfiPlusIfcContext()
{
    MultiPolicy multi;
    multi.addPolicy(std::make_unique<PointerIntegrityPolicy>());
    multi.addPolicy(std::make_unique<IfcPolicy>());
    auto ctx = multi.makeContext(1);
    return std::unique_ptr<MultiPolicyContext>(
        static_cast<MultiPolicyContext *>(ctx.release()));
}

TEST(MultiPolicyComposition, FansMessagesToEveryFamily)
{
    auto ctx = makeCfiPlusIfcContext();
    ctx->handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    ctx->handleMessage(msg(Opcode::LabelDef, 0x200, label::kSecret));
    EXPECT_EQ(ctx->entryCount(), 2u); // one CFI entry + one label entry
    EXPECT_NE(ctx->contextFor("cfi"), nullptr);
    EXPECT_NE(ctx->contextFor("ifc"), nullptr);
    EXPECT_EQ(ctx->contextFor("nonesuch"), nullptr);
}

TEST(MultiPolicyComposition, PropagatesSubPolicyViolations)
{
    // Regression guard: a sub-policy's failing Status must surface from
    // the composite (an always-OK fan-out silently disables every
    // registered family).
    auto ctx = makeCfiPlusIfcContext();
    ctx->handleMessage(msg(Opcode::LabelDef, 0x100, label::kSecret));
    Status s = ctx->handleMessage(msg(Opcode::LabelCheck, 0x100,
                                      label::kSecret));
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::PolicyViolation);
    EXPECT_STREQ(ctx->violationFamily(), "ifc");

    ctx->handleMessage(msg(Opcode::PointerDefine, 0x300, 0xAA));
    EXPECT_FALSE(ctx->handleMessage(msg(Opcode::PointerCheck, 0x300, 0xBB)));
    EXPECT_STREQ(ctx->violationFamily(), "cfi");

    // A clean message resets the attribution tag.
    EXPECT_TRUE(ctx->handleMessage(msg(Opcode::Syscall, 60)));
    EXPECT_STREQ(ctx->violationFamily(), "");
}

TEST(MultiPolicyComposition, CfiAloneIgnoresLabelTraffic)
{
    // The leakbench contrast in miniature: the CFI family alone accepts
    // the whole label stream, so only the IFC module turns it into a
    // verdict.
    PointerIntegrityContext cfi(1);
    EXPECT_TRUE(cfi.handleMessage(msg(Opcode::LabelDef, 0x100,
                                      label::kSecret)));
    EXPECT_TRUE(cfi.handleMessage(msg(Opcode::LabelJoin, 0x100, 0x200)));
    EXPECT_TRUE(cfi.handleMessage(msg(Opcode::LabelCheck, 0x200,
                                      label::kSecret)));
    EXPECT_EQ(cfi.entryCount(), 0u);
}

TEST(MultiPolicyComposition, AppliesToScopesModulesPerPid)
{
    // Application-specific module scoped to pid 7 only.
    class ScopedIfcModule : public PolicyModule
    {
      public:
        const char *family() const override { return "ifc"; }
        std::unique_ptr<PolicyContext>
        makeContext(Pid pid) override
        {
            return std::make_unique<IfcContext>(pid);
        }
        bool appliesTo(Pid pid) override { return pid == 7; }
    };

    MultiPolicy multi;
    multi.addPolicy(std::make_unique<PointerIntegrityPolicy>());
    multi.add(std::make_unique<ScopedIfcModule>());

    auto covered = multi.makeContext(7);
    auto *covered_ctx = static_cast<MultiPolicyContext *>(covered.get());
    EXPECT_NE(covered_ctx->contextFor("ifc"), nullptr);
    covered_ctx->handleMessage(msg(Opcode::LabelDef, 0x100, label::kSecret));
    EXPECT_FALSE(covered_ctx->handleMessage(msg(Opcode::LabelCheck, 0x100,
                                                label::kSecret)));

    auto other = multi.makeContext(8);
    auto *other_ctx = static_cast<MultiPolicyContext *>(other.get());
    EXPECT_EQ(other_ctx->contextFor("ifc"), nullptr);
    // The uncovered pid's label traffic sails through.
    other_ctx->handleMessage(msg(Opcode::LabelDef, 0x100, label::kSecret));
    EXPECT_TRUE(other_ctx->handleMessage(msg(Opcode::LabelCheck, 0x100,
                                             label::kSecret)));
}

TEST(MultiPolicyComposition, CloneForChildClonesEveryFamily)
{
    auto ctx = makeCfiPlusIfcContext();
    ctx->handleMessage(msg(Opcode::PointerDefine, 0x100, 0xAA));
    ctx->handleMessage(msg(Opcode::LabelDef, 0x200, label::kSecret));
    auto child = ctx->cloneForChild(2);
    auto *child_ctx = static_cast<MultiPolicyContext *>(child.get());
    EXPECT_TRUE(child_ctx->handleMessage(msg(Opcode::PointerCheck, 0x100,
                                             0xAA)));
    auto *child_ifc =
        static_cast<IfcContext *>(child_ctx->contextFor("ifc"));
    ASSERT_NE(child_ifc, nullptr);
    EXPECT_EQ(child_ifc->labelOf(0x200), label::kSecret);
}

} // namespace
} // namespace hq
