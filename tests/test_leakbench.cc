/**
 * @file
 * LeakBench verdict tests: every data-only attack in the corpus must be
 * ACCEPTED by a CFI-only verifier (control flow is never corrupted) and
 * DENIED by CFI+IFC (the LABEL-CHECK violation blocks the confirmation
 * syscall). The parity suites re-run the corpus across verifier shard
 * counts {1,4} and wire formats {v1, v2, v2+var-records} and diff the
 * whole verdict table field by field — the same shard/format parity
 * gates the RIPE suite gets.
 */

#include <gtest/gtest.h>

#include "compiler/ifc_passes.h"
#include "ir/instr.h"
#include "workloads/leakbench.h"

namespace hq {
namespace {

/** One comparable verdict row. */
struct VerdictRow
{
    std::string scenario;
    bool cfi_leaked;
    bool cfi_detected;
    bool ifc_leaked;
    bool ifc_detected;
    std::uint64_t ifc_violations;

    bool
    operator==(const VerdictRow &other) const
    {
        return scenario == other.scenario &&
               cfi_leaked == other.cfi_leaked &&
               cfi_detected == other.cfi_detected &&
               ifc_leaked == other.ifc_leaked &&
               ifc_detected == other.ifc_detected &&
               ifc_violations == other.ifc_violations;
    }
};

std::vector<VerdictRow>
verdictTable(std::size_t num_shards, WireFormat format,
             bool var_records = false)
{
    std::vector<VerdictRow> table;
    for (LeakScenario scenario : leakScenarioSuite()) {
        const LeakResult cfi = runLeakAttack(
            scenario, PolicySuite::CfiOnly, num_shards, format,
            var_records);
        const LeakResult ifc = runLeakAttack(
            scenario, PolicySuite::CfiPlusIfc, num_shards, format,
            var_records);
        table.push_back(VerdictRow{leakScenarioName(scenario),
                                   cfi.leaked, cfi.detected, ifc.leaked,
                                   ifc.detected, ifc.ifc_violations});
    }
    return table;
}

void
expectTablesEqual(const std::vector<VerdictRow> &baseline,
                  const std::vector<VerdictRow> &other,
                  const std::string &what)
{
    ASSERT_EQ(baseline.size(), other.size()) << what;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(baseline[i].scenario, other[i].scenario) << what;
        EXPECT_EQ(baseline[i].cfi_leaked, other[i].cfi_leaked)
            << what << ": " << baseline[i].scenario;
        EXPECT_EQ(baseline[i].cfi_detected, other[i].cfi_detected)
            << what << ": " << baseline[i].scenario;
        EXPECT_EQ(baseline[i].ifc_leaked, other[i].ifc_leaked)
            << what << ": " << baseline[i].scenario;
        EXPECT_EQ(baseline[i].ifc_detected, other[i].ifc_detected)
            << what << ": " << baseline[i].scenario;
        EXPECT_EQ(baseline[i].ifc_violations, other[i].ifc_violations)
            << what << ": " << baseline[i].scenario;
    }
}

// --- The headline contract: CFI accepts, CFI+IFC denies ---------------

class LeakVerdict : public ::testing::TestWithParam<LeakScenario>
{};

TEST_P(LeakVerdict, CfiAloneAccepts)
{
    const LeakResult result =
        runLeakAttack(GetParam(), PolicySuite::CfiOnly);
    EXPECT_TRUE(result.leaked)
        << "data-only attack should complete under CFI alone";
    EXPECT_FALSE(result.detected)
        << "CFI must not flag a control-flow-clean run";
}

TEST_P(LeakVerdict, CfiPlusIfcDenies)
{
    const LeakResult result =
        runLeakAttack(GetParam(), PolicySuite::CfiPlusIfc);
    EXPECT_FALSE(result.leaked)
        << "IFC violation must block the confirmation syscall";
    EXPECT_TRUE(result.detected);
    EXPECT_GE(result.ifc_violations, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LeakVerdict, ::testing::ValuesIn(leakScenarioSuite()),
    [](const ::testing::TestParamInfo<LeakScenario> &info) {
        std::string tag = leakScenarioName(info.param);
        for (char &c : tag)
            if (c == '-')
                c = '_';
        return tag;
    });

// --- Shard / wire-format parity sweeps --------------------------------

TEST(LeakParity, ShardCountDoesNotChangeVerdicts)
{
    const auto one = verdictTable(1, WireFormat::V1);
    const auto four = verdictTable(4, WireFormat::V1);
    expectTablesEqual(one, four, "1 vs 4 shards");
}

TEST(LeakParity, WireFormatDoesNotChangeVerdicts)
{
    const auto v1 = verdictTable(1, WireFormat::V1);
    const auto v2 = verdictTable(1, WireFormat::V2);
    expectTablesEqual(v1, v2, "v1 vs v2");
}

TEST(LeakParity, VarRecordsDoNotChangeVerdicts)
{
    const auto v2 = verdictTable(1, WireFormat::V2);
    const auto var = verdictTable(1, WireFormat::V2, true);
    expectTablesEqual(v2, var, "v2 fixed vs v2 var-records");
}

TEST(LeakParity, ShardedV2MatchesSerialV1)
{
    // The cross term: the full corpus at {4 shards, v2} against the
    // {1 shard, v1} baseline.
    const auto baseline = verdictTable(1, WireFormat::V1);
    const auto crossed = verdictTable(4, WireFormat::V2);
    expectTablesEqual(baseline, crossed, "1-shard v1 vs 4-shard v2");
}

// --- Instrumentation shape ---------------------------------------------

int
countOps(const ir::Module &module, ir::IrOp op)
{
    int count = 0;
    for (const auto &function : module.functions)
        for (const auto &block : function.blocks)
            for (const auto &instr : block.instrs)
                count += instr.op == op;
    return count;
}

TEST(LeakLowering, AnnotatedScenariosGetLabelOps)
{
    for (LeakScenario scenario : leakScenarioSuite()) {
        ir::Module module = buildLeakModule(scenario);
        PassManager pm;
        pm.add(std::make_unique<IfcLoweringPass>());
        ASSERT_TRUE(pm.run(module).isOk())
            << leakScenarioName(scenario);
        // Every scenario has at least one labeled source (global
        // annotation or explicit runtime LABEL-DEF), propagating joins,
        // and a sink check.
        EXPECT_GE(countOps(module, ir::IrOp::LabelDefMsg), 1)
            << leakScenarioName(scenario);
        EXPECT_GE(countOps(module, ir::IrOp::LabelJoinMsg), 1)
            << leakScenarioName(scenario);
        EXPECT_GE(countOps(module, ir::IrOp::LabelCheckMsg), 1)
            << leakScenarioName(scenario);
    }
}

} // namespace
} // namespace hq
