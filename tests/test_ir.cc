/**
 * @file
 * Unit tests for the mini-IR: types, builder, CFG, dominator and
 * post-dominator trees, module verification, and the compiler analyses
 * (slot resolution, function-pointer taint, escape).
 */

#include <gtest/gtest.h>

#include "compiler/analysis.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/cfg.h"
#include "ir/dominators.h"
#include "ir/verify.h"

namespace hq {
namespace {

using namespace ir;

TEST(Types, ProtectedPointerKinds)
{
    EXPECT_TRUE(TypeRef::funcPtr(0).isProtectedPtr());
    EXPECT_TRUE(TypeRef::vtablePtr().isProtectedPtr());
    EXPECT_FALSE(TypeRef::intTy().isProtectedPtr());
    EXPECT_FALSE(TypeRef::dataPtr().isProtectedPtr());
}

TEST(Types, StructContainsFuncPtrTransitively)
{
    Module module;
    IrBuilder builder(module);

    StructInfo inner;
    inner.name = "inner";
    inner.size = 16;
    inner.fields = {{0, TypeRef::intTy()}, {8, TypeRef::funcPtr(0)}};
    const int inner_id = builder.addStruct(inner);

    StructInfo outer;
    outer.name = "outer";
    outer.size = 24;
    outer.fields = {{0, TypeRef::intTy()},
                    {8, TypeRef::structTy(inner_id)}};
    const int outer_id = builder.addStruct(outer);

    StructInfo plain;
    plain.name = "plain";
    plain.size = 16;
    plain.fields = {{0, TypeRef::intTy()}, {8, TypeRef::dataPtr()}};
    const int plain_id = builder.addStruct(plain);

    EXPECT_TRUE(module.structContainsFuncPtr(inner_id));
    EXPECT_TRUE(module.structContainsFuncPtr(outer_id));
    EXPECT_FALSE(module.structContainsFuncPtr(plain_id));
    EXPECT_FALSE(module.structContainsFuncPtr(-1));
}

/** Build a trivial function: ret 0. */
Module
trivialModule()
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int zero = builder.constInt(0);
    builder.ret(zero);
    builder.endFunction();
    module.entry_function = 0;
    return module;
}

TEST(Builder, TrivialFunctionVerifies)
{
    Module module = trivialModule();
    EXPECT_TRUE(verifyModule(module).isOk());
    EXPECT_EQ(module.instructionCount(), 2u);
}

TEST(Builder, SingleAssignmentRegisters)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("f", /*num_params=*/2);
    const int c = builder.constInt(7);
    const int sum = builder.arith(ArithKind::Add, builder.param(0), c);
    EXPECT_NE(c, sum);
    EXPECT_GE(c, 2); // params take r0, r1
    builder.ret(sum);
    builder.endFunction();
    module.entry_function = 0;
    EXPECT_TRUE(verifyModule(module).isOk());
}

TEST(Verify, CatchesMissingTerminator)
{
    Module module = trivialModule();
    module.functions[0].blocks[0].instrs.pop_back(); // drop ret
    EXPECT_FALSE(verifyModule(module).isOk());
}

TEST(Verify, CatchesDoubleDefinition)
{
    Module module = trivialModule();
    Instr dup = module.functions[0].blocks[0].instrs[0];
    module.functions[0].blocks[0].instrs.insert(
        module.functions[0].blocks[0].instrs.begin(), dup);
    EXPECT_FALSE(verifyModule(module).isOk());
}

TEST(Verify, CatchesBadBranchTarget)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("f");
    builder.br(0);
    builder.endFunction();
    module.entry_function = 0;
    module.functions[0].blocks[0].instrs.back().target0 = 99;
    EXPECT_FALSE(verifyModule(module).isOk());
}

TEST(Verify, CatchesBadEntryFunction)
{
    Module module = trivialModule();
    module.entry_function = 5;
    EXPECT_FALSE(verifyModule(module).isOk());
}

/**
 * Diamond CFG:        bb0
 *                    /    \
 *                  bb1    bb2
 *                    \    /
 *                     bb3 (ret)
 */
Module
diamondModule()
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("diamond", 1);
    const int bb1 = builder.newBlock();
    const int bb2 = builder.newBlock();
    const int bb3 = builder.newBlock();
    builder.condBr(builder.param(0), bb1, bb2);
    builder.setBlock(bb1);
    builder.br(bb3);
    builder.setBlock(bb2);
    builder.br(bb3);
    builder.setBlock(bb3);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;
    return module;
}

TEST(Cfg, DiamondEdges)
{
    Module module = diamondModule();
    Cfg cfg(module.functions[0]);
    EXPECT_EQ(cfg.successors(0).size(), 2u);
    EXPECT_EQ(cfg.predecessors(3).size(), 2u);
    EXPECT_EQ(cfg.exitBlocks(), std::vector<int>{3});
    EXPECT_EQ(cfg.reversePostorder().front(), 0);
    EXPECT_EQ(cfg.reversePostorder().back(), 3);
    EXPECT_TRUE(cfg.reachable(2));
}

TEST(Cfg, UnreachableBlockDetected)
{
    Module module = diamondModule();
    // Add an unreachable block.
    module.functions[0].blocks.emplace_back();
    Instr term;
    term.op = IrOp::Ret;
    module.functions[0].blocks.back().instrs.push_back(term);
    Cfg cfg(module.functions[0]);
    EXPECT_FALSE(cfg.reachable(4));
    EXPECT_EQ(cfg.rpoIndex(4), -1);
}

TEST(Dominators, Diamond)
{
    Module module = diamondModule();
    Cfg cfg(module.functions[0]);
    DominatorTree dom(cfg);
    EXPECT_EQ(dom.idom(0), -1);
    EXPECT_EQ(dom.idom(1), 0);
    EXPECT_EQ(dom.idom(2), 0);
    EXPECT_EQ(dom.idom(3), 0); // join point dominated by entry only
    EXPECT_TRUE(dom.dominates(0, 3));
    EXPECT_FALSE(dom.dominates(1, 3));
    EXPECT_TRUE(dom.dominates(2, 2));
}

TEST(Dominators, PostDominanceDiamond)
{
    Module module = diamondModule();
    Cfg cfg(module.functions[0]);
    DominatorTree pdom(cfg, /*post=*/true);
    // bb3 post-dominates everything.
    EXPECT_TRUE(pdom.dominates(3, 0));
    EXPECT_TRUE(pdom.dominates(3, 1));
    EXPECT_TRUE(pdom.dominates(3, 2));
    EXPECT_FALSE(pdom.dominates(1, 0)); // bb0 can bypass bb1 via bb2
}

TEST(Dominators, LinearChain)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("chain");
    const int bb1 = builder.newBlock();
    const int bb2 = builder.newBlock();
    builder.br(bb1);
    builder.setBlock(bb1);
    builder.br(bb2);
    builder.setBlock(bb2);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    Cfg cfg(module.functions[0]);
    DominatorTree dom(cfg);
    DominatorTree pdom(cfg, true);
    EXPECT_EQ(dom.idom(2), 1);
    EXPECT_EQ(dom.idom(1), 0);
    EXPECT_TRUE(pdom.dominates(2, 0));
    EXPECT_TRUE(pdom.dominates(1, 0));
}

TEST(Dominators, LoopBackEdge)
{
    // bb0 -> bb1 <-> bb2 ; bb1 -> bb3(ret)
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("loop", 1);
    const int bb1 = builder.newBlock();
    const int bb2 = builder.newBlock();
    const int bb3 = builder.newBlock();
    builder.br(bb1);
    builder.setBlock(bb1);
    builder.condBr(builder.param(0), bb2, bb3);
    builder.setBlock(bb2);
    builder.br(bb1);
    builder.setBlock(bb3);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    Cfg cfg(module.functions[0]);
    DominatorTree dom(cfg);
    EXPECT_EQ(dom.idom(1), 0);
    EXPECT_EQ(dom.idom(2), 1);
    EXPECT_EQ(dom.idom(3), 1);
    EXPECT_TRUE(dom.dominates(1, 2));
    EXPECT_FALSE(dom.dominates(2, 1));
}

// ---------------------------------------------------------------------
// FunctionAnalysis
// ---------------------------------------------------------------------

TEST(Analysis, SlotResolutionThroughCastAndOffset)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("f");
    const int slot = builder.allocaOp(32);
    const int casted = builder.cast(slot, TypeRef::dataPtr());
    const int eight = builder.constInt(8);
    const int field = builder.arith(ArithKind::Add, casted, eight);
    builder.store(field, builder.constInt(1), TypeRef::intTy());
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    FunctionAnalysis fa(module, module.functions[0]);
    const SlotRef resolved = fa.slotOf(field);
    EXPECT_EQ(resolved.base, SlotRef::Base::Stack);
    EXPECT_EQ(resolved.id, 0);
    EXPECT_EQ(resolved.offset, 8u);
    EXPECT_TRUE(resolved.exact_offset);
}

TEST(Analysis, VariableIndexLosesOffsetPrecision)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("f", 1);
    const int slot = builder.allocaOp(64);
    const int idx = builder.param(0);
    const int addr = builder.arith(ArithKind::Add, slot, idx);
    builder.store(addr, builder.constInt(1), TypeRef::intTy());
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    FunctionAnalysis fa(module, module.functions[0]);
    const SlotRef resolved = fa.slotOf(addr);
    EXPECT_EQ(resolved.base, SlotRef::Base::Stack);
    EXPECT_FALSE(resolved.exact_offset);
}

TEST(Analysis, UnresolvableAddress)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("f", 1);
    const int loaded = builder.load(builder.param(0), TypeRef::dataPtr());
    builder.store(loaded, builder.constInt(0), TypeRef::intTy());
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    FunctionAnalysis fa(module, module.functions[0]);
    EXPECT_EQ(fa.slotOf(loaded).base, SlotRef::Base::Unknown);
}

TEST(Analysis, TaintRule1DefinedFromFuncPtr)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("target");
    builder.ret();
    builder.endFunction();
    builder.beginFunction("f");
    const int fp = builder.funcAddr(0, /*signature_class=*/0);
    const int decayed = builder.cast(fp, TypeRef::intTy()); // decay!
    const int slot = builder.allocaOp(8);
    builder.store(slot, decayed, TypeRef::intTy());
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    FunctionAnalysis fa(module, module.functions[1]);
    EXPECT_TRUE(fa.isTainted(fp));
    EXPECT_TRUE(fa.isTainted(decayed));
    // The int-typed slot is protected because a tainted value is stored.
    EXPECT_TRUE(fa.isProtectedStackSlot(0));
}

TEST(Analysis, TaintRule2UseCastToFuncPtr)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("f", 1);
    const int raw = builder.load(builder.param(0), TypeRef::intTy());
    const int as_fp = builder.cast(raw, TypeRef::funcPtr(0));
    builder.callIndirect(as_fp, {}, 0);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    FunctionAnalysis fa(module, module.functions[0]);
    // Rule (2): raw's value is used as a function pointer, so raw is
    // treated as one.
    EXPECT_TRUE(fa.isTainted(raw));
    EXPECT_TRUE(fa.isTainted(as_fp));
}

TEST(Analysis, UntaintedIntStays)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("f");
    const int value = builder.constInt(42);
    const int slot = builder.allocaOp(8);
    builder.store(slot, value, TypeRef::intTy());
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    FunctionAnalysis fa(module, module.functions[0]);
    EXPECT_FALSE(fa.isTainted(value));
    EXPECT_FALSE(fa.isProtectedStackSlot(0));
}

TEST(Analysis, EscapeViaCallArgument)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("callee", 1);
    builder.ret();
    builder.endFunction();
    builder.beginFunction("f");
    const int kept = builder.allocaOp(8);
    const int leaked = builder.allocaOp(8);
    builder.callDirect(0, {leaked});
    builder.store(kept, builder.constInt(1), TypeRef::intTy());
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    FunctionAnalysis fa(module, module.functions[1]);
    EXPECT_FALSE(fa.stackSlotEscapes(0));
    EXPECT_TRUE(fa.stackSlotEscapes(1));
}

TEST(Analysis, EscapeViaStoredAddress)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("f");
    const int slot = builder.allocaOp(8);
    const int holder = builder.allocaOp(8);
    builder.store(holder, slot, TypeRef::dataPtr()); // &slot escapes
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    FunctionAnalysis fa(module, module.functions[0]);
    EXPECT_TRUE(fa.stackSlotEscapes(0));
    EXPECT_FALSE(fa.stackSlotEscapes(1));
}

TEST(Analysis, GlobalsAlwaysEscape)
{
    Module module;
    IrBuilder builder(module);
    Global g;
    g.name = "g";
    g.size = 8;
    const int gid = builder.addGlobal(g);
    builder.beginFunction("f");
    const int addr = builder.globalAddr(gid);
    builder.store(addr, builder.constInt(0), TypeRef::intTy());
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    FunctionAnalysis fa(module, module.functions[0]);
    const SlotRef slot = fa.slotOf(addr);
    EXPECT_EQ(slot.base, SlotRef::Base::Global);
    EXPECT_TRUE(fa.slotEscapes(slot));
}

TEST(Analysis, GlobalWithFuncPtrInitIsProtected)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("handler");
    builder.ret();
    builder.endFunction();
    Global g;
    g.name = "dispatch_table";
    g.size = 16;
    g.funcptr_init = {{0, 0}};
    const int gid = builder.addGlobal(g);
    builder.beginFunction("f");
    const int addr = builder.globalAddr(gid);
    builder.load(addr, TypeRef::intTy());
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    FunctionAnalysis fa(module, module.functions[1]);
    EXPECT_TRUE(fa.isProtectedSlot(fa.slotOf(addr)));
}

TEST(Printer, DumpContainsStructure)
{
    Module module = diamondModule();
    module.name = "demo";
    module.functions[0].attrs.returns_twice = true;
    Global g;
    g.name = "table";
    g.size = 16;
    g.funcptr_init = {{0, 0}};
    module.globals.push_back(g);
    module.globals.back().id = 0;

    const std::string dump = printModule(module);
    EXPECT_NE(dump.find("module demo"), std::string::npos);
    EXPECT_NE(dump.find("func @diamond"), std::string::npos);
    EXPECT_NE(dump.find("returns_twice"), std::string::npos);
    EXPECT_NE(dump.find("global @table"), std::string::npos);
    EXPECT_NE(dump.find("bb3:"), std::string::npos);
    EXPECT_NE(dump.find("condbr"), std::string::npos);
}

TEST(Printer, MarksInstrumentedInstructions)
{
    Module module = diamondModule();
    Instr msg;
    msg.op = IrOp::HqSyscallMsg;
    msg.flags = kFlagInstrumentation;
    auto &entry = module.functions[0].blocks[0].instrs;
    entry.insert(entry.begin(), msg);
    const std::string dump =
        printFunction(module, module.functions[0]);
    EXPECT_NE(dump.find("; instrumented"), std::string::npos);
}

TEST(Analysis, DefSitesForParamsAreInvalid)
{
    Module module = diamondModule();
    FunctionAnalysis fa(module, module.functions[0]);
    EXPECT_FALSE(fa.def(0).valid()); // parameter
    EXPECT_EQ(fa.defInstr(0), nullptr);
}

} // namespace
} // namespace hq
