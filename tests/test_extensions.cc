/**
 * @file
 * Tests of the extension features: read-only syscall synchronization
 * elision (the §5.3.3 future-work item), the real cross-process
 * shared-memory channel, multi-writer per-core AMRs with message
 * ordering, and bidirectional core-to-core communication (§4.3).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "cfi/design.h"
#include "compiler/passes.h"
#include "ipc/shm_channel.h"
#include "ipc/xproc_ring.h"
#include "ir/builder.h"
#include "policy/pointer_integrity.h"
#include "runtime/vm.h"
#include "uarch/amr.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

using namespace ir;

// ---------------------------------------------------------------------
// Read-only syscall elision
// ---------------------------------------------------------------------

TEST(ReadonlyElision, KernelClassifiesSyscalls)
{
    EXPECT_TRUE(KernelModule::isReadOnlySyscall(39));   // getpid
    EXPECT_TRUE(KernelModule::isReadOnlySyscall(228));  // clock_gettime
    EXPECT_FALSE(KernelModule::isReadOnlySyscall(1));   // write
    EXPECT_FALSE(KernelModule::isReadOnlySyscall(59));  // execve
}

TEST(ReadonlyElision, KernelSkipsGatingWhenEnabled)
{
    KernelModule::Config config;
    config.epoch = std::chrono::milliseconds(30);
    config.elide_readonly_syscalls = true;
    KernelModule kernel(config);
    ASSERT_TRUE(kernel.enableProcess(1).isOk());

    // Read-only syscall: no pause even without any sync message.
    EXPECT_TRUE(kernel.syscallEnter(1, 228).isOk());
    // Side-effecting syscall: still gated (epoch expires).
    EXPECT_FALSE(kernel.syscallEnter(1, 1).isOk());
}

TEST(ReadonlyElision, PassSkipsReadonlyMessages)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    builder.syscall(228); // clock_gettime: elidable
    builder.syscall(1);   // write: needs sync
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    PassManager pm;
    pm.add(std::make_unique<SyscallSyncPass>(/*elide_readonly=*/true));
    ASSERT_TRUE(pm.run(module).isOk());
    EXPECT_EQ(pm.stats().get("sync.messages"), 1);
    EXPECT_EQ(pm.stats().get("sync.readonly_elided"), 1);
}

TEST(ReadonlyElision, EndToEndMixedSyscalls)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    for (int i = 0; i < 5; ++i) {
        builder.syscall(228);
        builder.syscall(1);
    }
    builder.ret(builder.constInt(0));
    builder.endFunction();
    module.entry_function = 0;

    // Instrument with elision, run against an eliding kernel.
    LoweringOptions lowering;
    lowering.mode = LoweringMode::Hq;
    PassManager pm;
    pm.add(std::make_unique<InitialLoweringPass>(lowering));
    pm.add(std::make_unique<SyscallSyncPass>(true));
    ASSERT_TRUE(pm.run(module).isOk());

    KernelModule::Config kconfig;
    kconfig.elide_readonly_syscalls = true;
    KernelModule kernel(kconfig);
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, 1);
    HqRuntime runtime(1, channel, kernel);
    ASSERT_TRUE(runtime.enable().isOk());
    verifier.start();

    VmConfig config = makeVmConfig(CfiDesign::HqSfeStk);
    Vm vm(module, config, &runtime);
    const RunResult result = vm.run();
    verifier.stop();
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    // All ten intercepted, but only the five write() calls synced.
    EXPECT_EQ(kernel.statsFor(1).syscalls, 5u);
    EXPECT_EQ(verifier.statsFor(1).syscall_acks, 5u);
}

// ---------------------------------------------------------------------
// Cross-process shared-memory channel
// ---------------------------------------------------------------------

TEST(XprocChannel, SameProcessRoundTrip)
{
    XprocChannel channel(64);
    ASSERT_TRUE(channel.valid());
    for (std::uint64_t i = 0; i < 10; ++i)
        ASSERT_TRUE(
            channel.send(Message(Opcode::EventCount, i)).isOk());
    EXPECT_EQ(channel.pending(), 10u);
    Message out;
    for (std::uint64_t i = 0; i < 10; ++i) {
        ASSERT_TRUE(channel.tryRecv(out));
        EXPECT_EQ(out.arg0, i);
    }
    EXPECT_FALSE(channel.tryRecv(out));
}

TEST(XprocChannel, DeliversAcrossFork)
{
    XprocChannel channel(1 << 10);
    ASSERT_TRUE(channel.valid());

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        for (std::uint64_t i = 0; i < 500; ++i)
            channel.send(Message(Opcode::EventCount, i, i * 3));
        channel.send(Message(Opcode::Syscall, 60));
        _exit(0);
    }

    std::uint64_t received = 0;
    bool done = false;
    Message out;
    while (!done) {
        if (!channel.tryRecv(out))
            continue;
        if (out.op == Opcode::Syscall) {
            done = true;
        } else {
            EXPECT_EQ(out.arg0, received);
            EXPECT_EQ(out.arg1, received * 3);
            ++received;
        }
    }
    int wstatus = 0;
    waitpid(child, &wstatus, 0);
    EXPECT_EQ(received, 500u);
    EXPECT_TRUE(WIFEXITED(wstatus));
}

TEST(XprocChannel, SenderBlocksAcrossForkWhenFull)
{
    XprocChannel channel(16);
    ASSERT_TRUE(channel.valid());
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // 200 messages through a 16-slot ring: must block and resume.
        for (std::uint64_t i = 0; i < 200; ++i)
            channel.send(Message(Opcode::EventCount, i));
        _exit(0);
    }
    std::uint64_t received = 0;
    Message out;
    while (received < 200) {
        if (channel.tryRecv(out)) {
            EXPECT_EQ(out.arg0, received);
            ++received;
        }
    }
    int wstatus = 0;
    waitpid(child, &wstatus, 0);
    EXPECT_TRUE(WIFEXITED(wstatus));
}

// ---------------------------------------------------------------------
// Multi-writer per-core AMRs and message ordering (§4.3)
// ---------------------------------------------------------------------

TEST(MultiWriter, PerCoreAmrsWithTimestampOrdering)
{
    // Each writer core has its own AMR (the §2.3.2 design); a single
    // reader drains both. Cross-core order is not guaranteed by the
    // transport, so each message carries a global counter in arg1 —
    // exactly the paper's suggestion for policies needing ordering.
    Amr amr_a(1 << 12);
    Amr amr_b(1 << 12);
    std::atomic<std::uint64_t> global_clock{0};
    constexpr std::uint64_t kPerWriter = 5000;

    auto writer = [&](Amr &amr, std::uint64_t id) {
        for (std::uint64_t i = 0; i < kPerWriter; ++i) {
            Message message(Opcode::EventCount, id,
                            global_clock.fetch_add(1));
            while (amr.appendWrite(message) == AppendResult::Full)
                std::this_thread::yield();
        }
    };
    std::thread t1(writer, std::ref(amr_a), 1);
    std::thread t2(writer, std::ref(amr_b), 2);

    std::vector<Message> received;
    received.reserve(2 * kPerWriter);
    while (received.size() < 2 * kPerWriter) {
        Message out;
        if (amr_a.tryRead(out))
            received.push_back(out);
        if (amr_b.tryRead(out))
            received.push_back(out);
    }
    t1.join();
    t2.join();

    // Per-writer FIFO: timestamps from one writer arrive increasing.
    std::uint64_t last_a = 0, last_b = 0;
    bool first_a = true, first_b = true;
    for (const Message &message : received) {
        std::uint64_t &last = message.arg0 == 1 ? last_a : last_b;
        bool &first = message.arg0 == 1 ? first_a : first_b;
        if (!first) {
            EXPECT_GT(message.arg1, last);
        }
        last = message.arg1;
        first = false;
    }

    // Global order is reconstructable: the timestamps are a permutation
    // of 0..N-1.
    std::vector<std::uint64_t> stamps;
    for (const Message &message : received)
        stamps.push_back(message.arg1);
    std::sort(stamps.begin(), stamps.end());
    for (std::uint64_t i = 0; i < stamps.size(); ++i)
        EXPECT_EQ(stamps[i], i);
}

TEST(MultiWriter, VerifierDrainsMultipleChannels)
{
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy);
    ShmChannel core0(1 << 10);
    ShmChannel core1(1 << 10);
    verifier.attachChannel(&core0, 1);
    verifier.attachChannel(&core1, 1);
    ASSERT_TRUE(kernel.enableProcess(1).isOk());

    core0.send(Message(Opcode::PointerDefine, 0x100, 0xAA));
    core1.send(Message(Opcode::PointerDefine, 0x200, 0xBB));
    verifier.poll();
    EXPECT_EQ(verifier.statsFor(1).messages, 2u);
    EXPECT_EQ(verifier.contextFor(1)->entryCount(), 2u);
}

// ---------------------------------------------------------------------
// Bidirectional communication (§4.3)
// ---------------------------------------------------------------------

TEST(Bidirectional, PingPongOverTwoAmrs)
{
    // One buffer per direction, each core appending to the other's
    // buffer — the paper's bidirectional configuration.
    Amr a_to_b(64);
    Amr b_to_a(64);
    constexpr std::uint64_t kRounds = 1000;

    std::thread side_b([&] {
        Message in;
        for (std::uint64_t round = 0; round < kRounds; ++round) {
            while (!a_to_b.tryRead(in))
                std::this_thread::yield();
            Message reply(Opcode::EventCount, in.arg0 + 1);
            while (b_to_a.appendWrite(reply) == AppendResult::Full)
                std::this_thread::yield();
        }
    });

    std::uint64_t value = 0;
    Message in;
    for (std::uint64_t round = 0; round < kRounds; ++round) {
        while (a_to_b.appendWrite(Message(Opcode::EventCount, value)) ==
               AppendResult::Full)
            std::this_thread::yield();
        while (!b_to_a.tryRead(in))
            std::this_thread::yield();
        value = in.arg0 + 1;
    }
    side_b.join();
    // Each round adds 2 (one increment per side).
    EXPECT_EQ(value, 2 * kRounds);
}

// ---------------------------------------------------------------------
// Naive-sync ablation mode
// ---------------------------------------------------------------------

TEST(NaiveSync, StillCorrectJustSlower)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    builder.syscall(1);
    builder.syscall(1);
    builder.ret(builder.constInt(0));
    builder.endFunction();
    module.entry_function = 0;
    ASSERT_TRUE(instrumentModule(module, CfiDesign::HqSfeStk).isOk());

    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier verifier(kernel, policy);
    ShmChannel channel(1 << 10);
    verifier.attachChannel(&channel, 1);
    HqRuntime runtime(1, channel, kernel);
    ASSERT_TRUE(runtime.enable().isOk());
    verifier.start();

    VmConfig config = makeVmConfig(CfiDesign::HqSfeStk);
    config.naive_sync = true;
    Vm vm(module, config, &runtime);
    const RunResult result = vm.run();
    verifier.stop();
    EXPECT_EQ(result.exit, ExitKind::Ok) << result.detail;
    EXPECT_EQ(kernel.statsFor(1).syscalls, 2u);
#ifdef HQ_SANITIZE_BUILD
    // Sanitizer scheduling skew lets the verifier ack before the
    // syscall thread reaches the sync_ok check, so a round trip can
    // complete without ever recording a wait. Correctness (both
    // syscalls resumed, none denied) is asserted above either way.
    EXPECT_LE(kernel.statsFor(1).waits, 2u);
#else
    // Every syscall paid the blocking round trip.
    EXPECT_EQ(kernel.statsFor(1).waits, 2u);
#endif
}

} // namespace
} // namespace hq
