/**
 * @file
 * Unit tests for the instrumentation passes: devirtualization, initial
 * lowering for each design mechanism, store-to-load forwarding, message
 * elision, final lowering (strict subtype checking + allowlist), and
 * System-Call message placement.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/passes.h"
#include "ir/builder.h"
#include "ir/verify.h"

namespace hq {
namespace {

using namespace ir;

/** Count instructions with the given opcode across the module. */
int
countOps(const Module &module, IrOp op)
{
    int count = 0;
    for (const auto &function : module.functions)
        for (const auto &block : function.blocks)
            for (const auto &instr : block.instrs)
                count += instr.op == op;
    return count;
}

/** Run a single pass with verification, asserting it stays well-formed. */
StatSet
runPass(Module &module, std::unique_ptr<Pass> pass)
{
    PassManager pm;
    pm.add(std::move(pass));
    const Status status = pm.run(module);
    EXPECT_TRUE(status.isOk()) << status.toString();
    return pm.stats();
}

/**
 * A module with one funcptr round-trip: store a function's address to a
 * stack slot, load it back, call it, plus a syscall at the end.
 */
Module
funcPtrModule()
{
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();

    builder.beginFunction("callee", 0, sig);
    builder.ret(builder.constInt(1));
    builder.endFunction();

    builder.beginFunction("main");
    const int slot = builder.allocaOp(8, TypeRef::funcPtr(sig));
    const int fp = builder.funcAddr(0, sig);
    builder.store(slot, fp, TypeRef::funcPtr(sig));
    const int loaded = builder.load(slot, TypeRef::funcPtr(sig));
    builder.callIndirect(loaded, {}, sig);
    builder.syscall(60);
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;
    return module;
}

TEST(InitialLowering, HqInsertsDefineAndCheck)
{
    Module module = funcPtrModule();
    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    StatSet stats =
        runPass(module, std::make_unique<InitialLoweringPass>(options));

    EXPECT_EQ(countOps(module, IrOp::HqDefine), 1);
    EXPECT_EQ(countOps(module, IrOp::HqCheck), 1);
    // The slot escapes? No call receives it; invalidate at ret.
    EXPECT_EQ(countOps(module, IrOp::HqInvalidate), 1);
    EXPECT_EQ(stats.get("lower.hq.defines"), 1);
}

TEST(InitialLowering, HqProtectsDecayedStore)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("callee");
    builder.ret();
    builder.endFunction();
    builder.beginFunction("main");
    const int fp = builder.funcAddr(0, 0);
    const int decayed = builder.cast(fp, TypeRef::intTy());
    const int slot = builder.allocaOp(8);
    builder.store(slot, decayed, TypeRef::intTy()); // int-typed store!
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    // HQ's taint analysis still protects the decayed store.
    EXPECT_EQ(countOps(module, IrOp::HqDefine), 1);
}

TEST(InitialLowering, CcfiMissesDecayedStore)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("callee");
    builder.ret();
    builder.endFunction();
    builder.beginFunction("main");
    const int fp = builder.funcAddr(0, 0);
    const int decayed = builder.cast(fp, TypeRef::intTy());
    const int slot = builder.allocaOp(8);
    builder.store(slot, decayed, TypeRef::intTy());
    const int loaded = builder.load(slot, TypeRef::funcPtr(0));
    builder.callIndirect(loaded, {}, 0);
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    LoweringOptions options;
    options.mode = LoweringMode::Ccfi;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    // The int-typed store carries no MAC define, but the typed load is
    // checked: the combination is CCFI's false-positive pattern.
    EXPECT_EQ(countOps(module, IrOp::MacDefine), 0);
    EXPECT_EQ(countOps(module, IrOp::MacCheck), 1);
}

TEST(InitialLowering, CpiRedirectsTypedAccesses)
{
    Module module = funcPtrModule();
    LoweringOptions options;
    options.mode = LoweringMode::Cpi;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    EXPECT_EQ(countOps(module, IrOp::SafeStore), 1);
    EXPECT_EQ(countOps(module, IrOp::SafeLoad), 1);
    // The original typed store/load were replaced.
    EXPECT_EQ(countOps(module, IrOp::Store), 0);
    EXPECT_EQ(countOps(module, IrOp::Load), 0);
}

TEST(InitialLowering, ClangCfiChecksIndirectCalls)
{
    Module module = funcPtrModule();
    LoweringOptions options;
    options.mode = LoweringMode::ClangCfi;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    EXPECT_EQ(countOps(module, IrOp::CfiTypeCheck), 1);
    EXPECT_EQ(countOps(module, IrOp::HqCheck), 0);
}

TEST(InitialLowering, BaselineAddsNothing)
{
    Module module = funcPtrModule();
    const std::size_t before = module.instructionCount();
    LoweringOptions options;
    options.mode = LoweringMode::None;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    EXPECT_EQ(module.instructionCount(), before);
}

// ---------------------------------------------------------------------
// VCall expansion and devirtualization
// ---------------------------------------------------------------------

Module
vcallModule(int static_class)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("method", 1);
    builder.ret(builder.constInt(7));
    builder.endFunction();
    const int cls = builder.addClass("Widget", {0});
    builder.beginFunction("main");
    const int size = builder.constInt(16);
    const int obj = builder.mallocOp(size);
    // Object construction: store the vtable pointer.
    const int vt = builder.globalAddr(module.classes[cls].vtable_global);
    builder.store(obj, vt, TypeRef::vtablePtr());
    builder.vcall(obj, 0, {obj}, static_class);
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;
    return module;
}

TEST(Devirtualization, KnownClassBecomesDirectCall)
{
    Module module = vcallModule(/*static_class=*/0);
    StatSet stats = runPass(module,
                            std::make_unique<DevirtualizationPass>());
    EXPECT_EQ(stats.get("devirt.calls"), 1);
    EXPECT_EQ(countOps(module, IrOp::VCall), 0);
    EXPECT_EQ(countOps(module, IrOp::CallDirect), 1);
}

TEST(Devirtualization, UnknownClassRemainsVirtual)
{
    Module module = vcallModule(/*static_class=*/-1);
    StatSet stats = runPass(module,
                            std::make_unique<DevirtualizationPass>());
    EXPECT_EQ(stats.get("devirt.calls"), 0);
    EXPECT_EQ(countOps(module, IrOp::VCall), 1);
}

TEST(InitialLowering, VCallExpansionUnderHq)
{
    Module module = vcallModule(-1);
    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    EXPECT_EQ(countOps(module, IrOp::VCall), 0);
    EXPECT_EQ(countOps(module, IrOp::CallIndirect), 1);
    // Two checks: vtable pointer load + the vtable-ptr *store* define.
    EXPECT_GE(countOps(module, IrOp::HqCheck), 1);
    EXPECT_EQ(countOps(module, IrOp::HqDefine), 1);
    // The vtable-entry load is read-only: exactly one check total.
    EXPECT_EQ(countOps(module, IrOp::HqCheck), 1);
}

TEST(InitialLowering, DevirtualizedCallNeedsNoCheck)
{
    Module module = vcallModule(0);
    runPass(module, std::make_unique<DevirtualizationPass>());
    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    // Devirtualization eliminated the indirect call and its check.
    EXPECT_EQ(countOps(module, IrOp::HqCheck), 0);
}

// ---------------------------------------------------------------------
// Store-to-load forwarding
// ---------------------------------------------------------------------

TEST(Forwarding, ElidesCheckDominatedByDefine)
{
    Module module = funcPtrModule();
    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    ASSERT_EQ(countOps(module, IrOp::HqCheck), 1);

    StatSet stats =
        runPass(module, std::make_unique<StoreToLoadForwardingPass>());
    EXPECT_EQ(stats.get("optimize.checks_forwarded"), 1);
    EXPECT_EQ(countOps(module, IrOp::HqCheck), 0);
}

TEST(Forwarding, KeepsCheckAfterClobberingCall)
{
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();
    builder.beginFunction("callee", 1);
    builder.ret();
    builder.endFunction();
    builder.beginFunction("main");
    const int slot = builder.allocaOp(8, TypeRef::funcPtr(sig));
    const int fp = builder.funcAddr(0, sig);
    builder.store(slot, fp, TypeRef::funcPtr(sig));
    builder.callDirect(0, {slot}); // slot escapes: callee may write it
    const int loaded = builder.load(slot, TypeRef::funcPtr(sig));
    builder.callIndirect(loaded, {}, sig);
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    StatSet stats =
        runPass(module, std::make_unique<StoreToLoadForwardingPass>());
    EXPECT_EQ(stats.get("optimize.checks_forwarded"), 0);
    EXPECT_EQ(countOps(module, IrOp::HqCheck), 1);
}

TEST(Forwarding, ForwardsAcrossCallForNonEscapingSlot)
{
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();
    builder.beginFunction("callee");
    builder.ret();
    builder.endFunction();
    builder.beginFunction("main");
    const int slot = builder.allocaOp(8, TypeRef::funcPtr(sig));
    const int fp = builder.funcAddr(0, sig);
    builder.store(slot, fp, TypeRef::funcPtr(sig));
    builder.callDirect(0, {}); // does not receive &slot
    const int loaded = builder.load(slot, TypeRef::funcPtr(sig));
    builder.callIndirect(loaded, {}, sig);
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    StatSet stats =
        runPass(module, std::make_unique<StoreToLoadForwardingPass>());
    EXPECT_EQ(stats.get("optimize.checks_forwarded"), 1);
    // Forwarding crossed a call: the recursion guard is inserted.
    EXPECT_EQ(stats.get("optimize.guarded_functions"), 1);
    EXPECT_EQ(countOps(module, IrOp::HqGuardEnter), 1);
    EXPECT_EQ(countOps(module, IrOp::HqGuardExit), 1);
}

TEST(Forwarding, SkipsVolatileLoads)
{
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();
    builder.beginFunction("callee");
    builder.ret();
    builder.endFunction();
    builder.beginFunction("main");
    const int slot = builder.allocaOp(8, TypeRef::funcPtr(sig));
    const int fp = builder.funcAddr(0, sig);
    builder.store(slot, fp, TypeRef::funcPtr(sig));
    const int loaded = builder.load(slot, TypeRef::funcPtr(sig));
    // Mark the load volatile post hoc.
    builder.currentFunction().blocks[0].instrs.back().flags |=
        kFlagVolatile;
    builder.callIndirect(loaded, {}, sig);
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    StatSet stats =
        runPass(module, std::make_unique<StoreToLoadForwardingPass>());
    EXPECT_EQ(stats.get("optimize.checks_forwarded"), 0);
}

TEST(Forwarding, SkipsReturnsTwiceFunctions)
{
    Module module = funcPtrModule();
    module.functions[1].attrs.returns_twice = true;
    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    StatSet stats =
        runPass(module, std::make_unique<StoreToLoadForwardingPass>());
    EXPECT_EQ(stats.get("optimize.checks_forwarded"), 0);
}

// ---------------------------------------------------------------------
// Message elision
// ---------------------------------------------------------------------

TEST(Elision, RemovesNeverCheckedDefine)
{
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();
    builder.beginFunction("callee");
    builder.ret();
    builder.endFunction();
    builder.beginFunction("main");
    const int slot = builder.allocaOp(8, TypeRef::funcPtr(sig));
    const int fp = builder.funcAddr(0, sig);
    builder.store(slot, fp, TypeRef::funcPtr(sig));
    // Never loaded or called: the define is superfluous.
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    ASSERT_EQ(countOps(module, IrOp::HqDefine), 1);
    ASSERT_EQ(countOps(module, IrOp::HqInvalidate), 1);

    StatSet stats = runPass(module,
                            std::make_unique<MessageElisionPass>());
    EXPECT_EQ(stats.get("optimize.defines_elided"), 1);
    EXPECT_EQ(countOps(module, IrOp::HqDefine), 0);
    EXPECT_EQ(countOps(module, IrOp::HqInvalidate), 0);
}

TEST(Elision, KeepsCheckedDefine)
{
    Module module = funcPtrModule();
    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    StatSet stats = runPass(module,
                            std::make_unique<MessageElisionPass>());
    EXPECT_EQ(stats.get("optimize.defines_elided"), 0);
    EXPECT_EQ(countOps(module, IrOp::HqDefine), 1);
}

TEST(Elision, KeepsEscapingDefine)
{
    Module module;
    IrBuilder builder(module);
    const int sig = builder.newSignatureClass();
    builder.beginFunction("callee", 1);
    builder.ret();
    builder.endFunction();
    builder.beginFunction("main");
    const int slot = builder.allocaOp(8, TypeRef::funcPtr(sig));
    const int fp = builder.funcAddr(0, sig);
    builder.store(slot, fp, TypeRef::funcPtr(sig));
    builder.callDirect(0, {slot}); // escapes: callee may check it
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    runPass(module, std::make_unique<MessageElisionPass>());
    EXPECT_EQ(countOps(module, IrOp::HqDefine), 1);
}

TEST(Elision, DeduplicatesConsecutiveInvalidates)
{
    Module module = funcPtrModule();
    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<InitialLoweringPass>(options));

    // Simulate an inlined destructor emitting a duplicate invalidate.
    auto &instrs = module.functions[1].blocks[0].instrs;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        if (instrs[i].op == IrOp::HqInvalidate) {
            instrs.insert(instrs.begin() + i, instrs[i]);
            break;
        }
    }
    ASSERT_EQ(countOps(module, IrOp::HqInvalidate), 2);

    StatSet stats = runPass(module,
                            std::make_unique<MessageElisionPass>());
    EXPECT_EQ(stats.get("optimize.invalidates_elided"), 1);
    EXPECT_EQ(countOps(module, IrOp::HqInvalidate), 1);
}

// ---------------------------------------------------------------------
// Final lowering (block ops)
// ---------------------------------------------------------------------

Module
memcpyModule(TypeRef elem_type)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int src = builder.allocaOp(64);
    const int dst = builder.allocaOp(64);
    const int size = builder.constInt(64);
    builder.memcpyOp(dst, src, size, elem_type);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;
    return module;
}

int
countBlockFlagged(const Module &module)
{
    int count = 0;
    for (const auto &function : module.functions)
        for (const auto &block : function.blocks)
            for (const auto &instr : block.instrs)
                count += (instr.flags & kFlagEmitBlockMsg) != 0;
    return count;
}

TEST(FinalLowering, StrictSubtypeElidesIntMemcpy)
{
    Module module = memcpyModule(TypeRef::intTy());
    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    StatSet stats =
        runPass(module, std::make_unique<FinalLoweringPass>(options));
    EXPECT_EQ(stats.get("lower.block_ops_elided"), 1);
    EXPECT_EQ(countBlockFlagged(module), 0);
}

TEST(FinalLowering, InstrumentsFuncPtrStructMemcpy)
{
    Module module;
    IrBuilder builder(module);
    StructInfo with_fp;
    with_fp.name = "handler_entry";
    with_fp.size = 16;
    with_fp.fields = {{0, TypeRef::intTy()}, {8, TypeRef::funcPtr(0)}};
    const int sid = builder.addStruct(with_fp);
    builder.beginFunction("main");
    const int src = builder.allocaOp(64);
    const int dst = builder.allocaOp(64);
    const int size = builder.constInt(64);
    builder.memcpyOp(dst, src, size, TypeRef::structTy(sid));
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    StatSet stats =
        runPass(module, std::make_unique<FinalLoweringPass>(options));
    EXPECT_EQ(stats.get("lower.block_ops"), 1);
    EXPECT_EQ(countBlockFlagged(module), 1);
}

TEST(FinalLowering, AllowlistOverridesStrictChecking)
{
    Module module = memcpyModule(TypeRef::intTy());
    module.functions[0].attrs.block_op_allowlisted = true;
    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<FinalLoweringPass>(options));
    EXPECT_EQ(countBlockFlagged(module), 1);
}

TEST(FinalLowering, DisabledStrictCheckingInstrumentsEverything)
{
    Module module = memcpyModule(TypeRef::intTy());
    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    options.strict_subtype_check = false;
    runPass(module, std::make_unique<FinalLoweringPass>(options));
    EXPECT_EQ(countBlockFlagged(module), 1);
}

TEST(FinalLowering, FreeAlwaysInstrumented)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int size = builder.constInt(32);
    const int p = builder.mallocOp(size);
    builder.freeOp(p);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<FinalLoweringPass>(options));
    EXPECT_EQ(countBlockFlagged(module), 1);
}

TEST(FinalLowering, NoOpForBaselines)
{
    Module module = memcpyModule(TypeRef::intTy());
    module.functions[0].attrs.block_op_allowlisted = true;
    LoweringOptions options;
    options.mode = LoweringMode::ClangCfi;
    runPass(module, std::make_unique<FinalLoweringPass>(options));
    EXPECT_EQ(countBlockFlagged(module), 0);
}

// ---------------------------------------------------------------------
// System-Call message placement
// ---------------------------------------------------------------------

TEST(SyscallSync, InsertsMessageBeforeSyscall)
{
    Module module = funcPtrModule();
    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    StatSet stats = runPass(module, std::make_unique<SyscallSyncPass>());
    EXPECT_EQ(stats.get("sync.messages"), 1);
    EXPECT_EQ(countOps(module, IrOp::HqSyscallMsg), 1);

    // The message precedes the syscall in the block.
    const auto &instrs = module.functions[1].blocks[0].instrs;
    int msg_pos = -1;
    int sys_pos = -1;
    for (int i = 0; i < static_cast<int>(instrs.size()); ++i) {
        if (instrs[i].op == IrOp::HqSyscallMsg)
            msg_pos = i;
        if (instrs[i].op == IrOp::Syscall)
            sys_pos = i;
    }
    ASSERT_GE(msg_pos, 0);
    ASSERT_GE(sys_pos, 0);
    EXPECT_LT(msg_pos, sys_pos);
}

TEST(SyscallSync, HoistsPastPlainComputation)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int a = builder.constInt(1);
    const int b = builder.constInt(2);
    builder.arith(ArithKind::Add, a, b);
    builder.syscall(1);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    StatSet stats = runPass(module, std::make_unique<SyscallSyncPass>());
    EXPECT_EQ(stats.get("sync.hoisted"), 1);
    // Message lands at the very top of the block.
    EXPECT_EQ(module.functions[0].blocks[0].instrs[0].op,
              IrOp::HqSyscallMsg);
}

TEST(SyscallSync, DoesNotHoistPastCalls)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("noop");
    builder.ret();
    builder.endFunction();
    builder.beginFunction("main");
    builder.callDirect(0, {});
    builder.syscall(1);
    builder.ret();
    builder.endFunction();
    module.entry_function = 1;

    runPass(module, std::make_unique<SyscallSyncPass>());
    const auto &instrs = module.functions[1].blocks[0].instrs;
    // Order must be: call, message, syscall, ret.
    ASSERT_EQ(instrs.size(), 4u);
    EXPECT_EQ(instrs[0].op, IrOp::CallDirect);
    EXPECT_EQ(instrs[1].op, IrOp::HqSyscallMsg);
    EXPECT_EQ(instrs[2].op, IrOp::Syscall);
}

TEST(SyscallSync, HoistsThroughLinearChainBlocks)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    const int bb1 = builder.newBlock();
    const int a = builder.constInt(1);
    builder.br(bb1);
    builder.setBlock(bb1);
    const int b = builder.constInt(2);
    builder.arith(ArithKind::Add, a, b);
    builder.syscall(1);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    StatSet stats = runPass(module, std::make_unique<SyscallSyncPass>());
    EXPECT_EQ(stats.get("sync.hoisted"), 1);
    // The message hoisted into the entry block.
    EXPECT_EQ(module.functions[0].blocks[0].instrs[0].op,
              IrOp::HqSyscallMsg);
}

TEST(SyscallSync, StaysInConditionalBlock)
{
    // The syscall is conditional: its message must not hoist above the
    // branch (the point must be post-dominated by the syscall).
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main", 1);
    const int bb_sys = builder.newBlock();
    const int bb_exit = builder.newBlock();
    builder.condBr(builder.param(0), bb_sys, bb_exit);
    builder.setBlock(bb_sys);
    builder.syscall(1);
    builder.br(bb_exit);
    builder.setBlock(bb_exit);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    runPass(module, std::make_unique<SyscallSyncPass>());
    // Message stays in bb_sys (block 1), not the entry block.
    EXPECT_EQ(module.functions[0].blocks[1].instrs[0].op,
              IrOp::HqSyscallMsg);
    for (const auto &instr : module.functions[0].blocks[0].instrs)
        EXPECT_NE(instr.op, IrOp::HqSyscallMsg);
}

TEST(SyscallSync, MultipleSyscallsEachGetMessages)
{
    Module module;
    IrBuilder builder(module);
    builder.beginFunction("main");
    builder.syscall(0);
    builder.syscall(1);
    builder.syscall(2);
    builder.ret();
    builder.endFunction();
    module.entry_function = 0;

    StatSet stats = runPass(module, std::make_unique<SyscallSyncPass>());
    EXPECT_EQ(stats.get("sync.messages"), 3);
    // Messages cannot hoist past prior syscalls.
    const auto &instrs = module.functions[0].blocks[0].instrs;
    std::vector<IrOp> ops;
    for (const auto &instr : instrs)
        ops.push_back(instr.op);
    const std::vector<IrOp> expected{
        IrOp::HqSyscallMsg, IrOp::Syscall, IrOp::HqSyscallMsg,
        IrOp::Syscall,      IrOp::HqSyscallMsg, IrOp::Syscall,
        IrOp::Ret};
    EXPECT_EQ(ops, expected);
}

// ---------------------------------------------------------------------
// Full pipeline
// ---------------------------------------------------------------------

TEST(Pipeline, FullHqPipelineVerifies)
{
    Module module = funcPtrModule();
    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    options.retptr_messages = true;

    PassManager pm;
    pm.add(std::make_unique<DevirtualizationPass>());
    pm.add(std::make_unique<InitialLoweringPass>(options));
    pm.add(std::make_unique<StoreToLoadForwardingPass>());
    pm.add(std::make_unique<MessageElisionPass>());
    pm.add(std::make_unique<FinalLoweringPass>(options));
    pm.add(std::make_unique<SyscallSyncPass>());
    const Status status = pm.run(module);
    EXPECT_TRUE(status.isOk()) << status.toString();
    EXPECT_EQ(countOps(module, IrOp::HqSyscallMsg), 1);
}

TEST(Pipeline, RetPtrAttrsSetOnQualifyingFunctions)
{
    Module module = funcPtrModule();
    LoweringOptions options;
    options.mode = LoweringMode::Hq;
    options.retptr_messages = true;
    runPass(module, std::make_unique<InitialLoweringPass>(options));
    // main has alloca + store + ret: qualifies.
    EXPECT_TRUE(module.functions[1].attrs.instrument_return);
    // callee has no alloca: exempt.
    EXPECT_FALSE(module.functions[0].attrs.instrument_return);
}

} // namespace
} // namespace hq
