/**
 * @file
 * Unit tests for src/common: status, stats, RNG determinism, logging.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/timer.h"

namespace hq {
namespace {

TEST(Status, DefaultIsOk)
{
    Status status;
    EXPECT_TRUE(status.isOk());
    EXPECT_TRUE(static_cast<bool>(status));
    EXPECT_EQ(status.code(), StatusCode::Ok);
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    Status status = Status::error(StatusCode::NotFound, "missing pid");
    EXPECT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), StatusCode::NotFound);
    EXPECT_EQ(status.message(), "missing pid");
    EXPECT_EQ(status.toString(), "NOT_FOUND: missing pid");
}

TEST(Status, AllCodesHaveNames)
{
    for (int c = 0; c <= static_cast<int>(StatusCode::PolicyViolation);
         ++c) {
        EXPECT_STRNE(statusCodeName(static_cast<StatusCode>(c)),
                     "UNKNOWN");
    }
}

TEST(Expected, ValuePath)
{
    Expected<int> e(42);
    ASSERT_TRUE(e.hasValue());
    EXPECT_EQ(e.value(), 42);
    EXPECT_TRUE(e.status().isOk());
}

TEST(Expected, ErrorPath)
{
    Expected<int> e(Status::error(StatusCode::Internal, "boom"));
    EXPECT_FALSE(e.hasValue());
    EXPECT_EQ(e.status().code(), StatusCode::Internal);
}

TEST(Stats, MeanAndGeomean)
{
    std::vector<double> samples{1.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(samples), 7.0 / 3.0);
    EXPECT_NEAR(geomean(samples), 2.0, 1e-12);
}

TEST(Stats, EmptySampleEdgeCases)
{
    std::vector<double> empty;
    EXPECT_DOUBLE_EQ(mean(empty), 0.0);
    EXPECT_DOUBLE_EQ(geomean(empty), 0.0);
    EXPECT_DOUBLE_EQ(stddev(empty), 0.0);
    EXPECT_DOUBLE_EQ(median(empty), 0.0);
    EXPECT_DOUBLE_EQ(minOf(empty), 0.0);
    EXPECT_DOUBLE_EQ(maxOf(empty), 0.0);
}

TEST(Stats, StddevMatchesHandComputation)
{
    std::vector<double> samples{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    // Sample stddev with n-1 denominator.
    EXPECT_NEAR(stddev(samples), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MedianOddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, RunningStatTracksExtrema)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_DOUBLE_EQ(stat.min(), 0.0);
    stat.add(5.0);
    stat.add(-1.0);
    stat.add(3.0);
    EXPECT_EQ(stat.count(), 3u);
    EXPECT_DOUBLE_EQ(stat.min(), -1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 5.0);
    EXPECT_NEAR(stat.mean(), 7.0 / 3.0, 1e-12);
}

TEST(Stats, StatSetIncrementAndGet)
{
    StatSet stats;
    EXPECT_DOUBLE_EQ(stats.get("absent"), 0.0);
    stats.increment("messages");
    stats.increment("messages", 4.0);
    stats.set("entries", 285.0);
    EXPECT_DOUBLE_EQ(stats.get("messages"), 5.0);
    EXPECT_DOUBLE_EQ(stats.get("entries"), 285.0);
    EXPECT_NE(stats.toString().find("messages 5"), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    bool diverged = false;
    for (int i = 0; i < 10 && !diverged; ++i)
        diverged = a.next() != b.next();
    EXPECT_TRUE(diverged);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextInRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Log, LevelFiltering)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(saved);
}

TEST(Timer, MeasuresForwardTime)
{
    Timer timer;
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i)
        sink = sink + i;
    EXPECT_GT(timer.elapsedNs(), 0u);
    EXPECT_GE(timer.elapsedSeconds(), 0.0);
}

} // namespace
} // namespace hq
