/**
 * @file
 * The "< 2% disabled overhead" acceptance check, promoted from a docs
 * claim into a ctest: with telemetry disabled, the observability layer
 * (send-wrapper sidecar hook, trace scopes, statsboard publisher) must
 * not perturb the message pipeline.
 *
 * Measured as A/B over the same workload — a monitored sender streaming
 * pointer-check messages through a ShmChannel into Verifier::poll —
 * with the only difference being a running statsboard publisher (the
 * piece an operator attaches mid-run with hq_stat). Both configs keep
 * telemetry disabled, so the comparison isolates exactly the machinery
 * that is supposed to be free when off.
 *
 * Timing hygiene for CI noise: interleaved trials, min-of-trials per
 * config (minimum is robust to scheduling outliers), and up to three
 * attempts before declaring failure.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "ipc/shm_channel.h"
#include "kernel/kernel.h"
#include "policy/pointer_integrity.h"
#include "telemetry/statsboard.h"
#include "telemetry/telemetry.h"
#include "verifier/verifier.h"

namespace hq {
namespace {

constexpr Pid kPid = 21;
constexpr std::size_t kMessagesPerRun = 200000;
constexpr int kTrials = 5;
constexpr int kAttempts = 3;
constexpr double kMaxOverhead = 0.02;

/** One timed run: stream kMessagesPerRun checks through the verifier. */
double
runPipelineSeconds()
{
    KernelModule kernel;
    auto policy = std::make_shared<PointerIntegrityPolicy>();
    Verifier::Config config;
    config.kill_on_violation = false;
    config.num_shards = 1; // the gate measures the serial hot path
    Verifier verifier(kernel, policy, config);
    kernel.enableProcess(kPid);

    ShmChannel channel(1 << 12);
    verifier.attachChannel(&channel, kPid);

    const auto start = std::chrono::steady_clock::now();
    channel.send(Message(Opcode::PointerDefine, 0x100, 0xAA));
    std::size_t sent = 1;
    while (sent < kMessagesPerRun) {
        // Sender and verifier share this thread: send a burst, drain it.
        for (int i = 0; i < 512 && sent < kMessagesPerRun; ++i, ++sent)
            channel.send(Message(Opcode::PointerCheck, 0x100, 0xAA));
        verifier.poll();
    }
    verifier.poll();
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

TEST(DisabledOverhead, StatsboardAndSidecarHooksStayUnderTwoPercent)
{
#ifdef HQ_SANITIZE_BUILD
    GTEST_SKIP() << "timing gate is meaningless under sanitizer "
                    "instrumentation";
#endif
    telemetry::setEnabled(false);

    double best_ratio = 1e9;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
        double plain = 1e9;
        double observed = 1e9;
        runPipelineSeconds(); // warm-up: page in code and buffers
        for (int trial = 0; trial < kTrials; ++trial) {
            // Interleave configs so drift (thermal, noisy neighbors)
            // hits both equally.
            plain = std::min(plain, runPipelineSeconds());
            {
                telemetry::StatsPublisher publisher(
                    "/hq_test_overhead_board",
                    std::chrono::milliseconds(50));
                ASSERT_TRUE(publisher.valid());
                publisher.start();
                observed = std::min(observed, runPipelineSeconds());
                publisher.stop();
            }
        }
        const double ratio = observed / plain;
        best_ratio = std::min(best_ratio, ratio);
        if (best_ratio <= 1.0 + kMaxOverhead)
            break;
    }

    EXPECT_LE(best_ratio, 1.0 + kMaxOverhead)
        << "disabled-telemetry pipeline slowed by "
        << (best_ratio - 1.0) * 100 << "% with a statsboard publisher "
        << "attached (budget " << kMaxOverhead * 100 << "%)";
}

} // namespace
} // namespace hq
