# Empty dependencies file for cross_process.
# This may be replaced when dependencies are built.
