file(REMOVE_RECURSE
  "CMakeFiles/cross_process.dir/cross_process.cpp.o"
  "CMakeFiles/cross_process.dir/cross_process.cpp.o.d"
  "cross_process"
  "cross_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
