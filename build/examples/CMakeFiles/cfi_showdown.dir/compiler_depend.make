# Empty compiler generated dependencies file for cfi_showdown.
# This may be replaced when dependencies are built.
