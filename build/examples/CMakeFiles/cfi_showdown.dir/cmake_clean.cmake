file(REMOVE_RECURSE
  "CMakeFiles/cfi_showdown.dir/cfi_showdown.cpp.o"
  "CMakeFiles/cfi_showdown.dir/cfi_showdown.cpp.o.d"
  "cfi_showdown"
  "cfi_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfi_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
