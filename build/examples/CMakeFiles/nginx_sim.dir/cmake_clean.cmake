file(REMOVE_RECURSE
  "CMakeFiles/nginx_sim.dir/nginx_sim.cpp.o"
  "CMakeFiles/nginx_sim.dir/nginx_sim.cpp.o.d"
  "nginx_sim"
  "nginx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nginx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
