# Empty compiler generated dependencies file for nginx_sim.
# This may be replaced when dependencies are built.
