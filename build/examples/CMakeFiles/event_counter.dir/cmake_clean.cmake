file(REMOVE_RECURSE
  "CMakeFiles/event_counter.dir/event_counter.cpp.o"
  "CMakeFiles/event_counter.dir/event_counter.cpp.o.d"
  "event_counter"
  "event_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
