# Empty dependencies file for event_counter.
# This may be replaced when dependencies are built.
