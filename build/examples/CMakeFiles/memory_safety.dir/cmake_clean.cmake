file(REMOVE_RECURSE
  "CMakeFiles/memory_safety.dir/memory_safety.cpp.o"
  "CMakeFiles/memory_safety.dir/memory_safety.cpp.o.d"
  "memory_safety"
  "memory_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
