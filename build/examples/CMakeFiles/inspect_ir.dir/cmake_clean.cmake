file(REMOVE_RECURSE
  "CMakeFiles/inspect_ir.dir/inspect_ir.cpp.o"
  "CMakeFiles/inspect_ir.dir/inspect_ir.cpp.o.d"
  "inspect_ir"
  "inspect_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
