# Empty compiler generated dependencies file for inspect_ir.
# This may be replaced when dependencies are built.
