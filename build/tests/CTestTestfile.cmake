# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_ipc[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_policy[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_verifier[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_ripe[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_setjmp[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_reproduction[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_vm[1]_include.cmake")
include("/root/repo/build/tests/test_dfi[1]_include.cmake")
