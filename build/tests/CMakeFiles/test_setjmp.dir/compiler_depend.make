# Empty compiler generated dependencies file for test_setjmp.
# This may be replaced when dependencies are built.
