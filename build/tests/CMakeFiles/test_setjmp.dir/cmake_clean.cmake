file(REMOVE_RECURSE
  "CMakeFiles/test_setjmp.dir/test_setjmp.cc.o"
  "CMakeFiles/test_setjmp.dir/test_setjmp.cc.o.d"
  "test_setjmp"
  "test_setjmp.pdb"
  "test_setjmp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_setjmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
