file(REMOVE_RECURSE
  "CMakeFiles/test_ripe.dir/test_ripe.cc.o"
  "CMakeFiles/test_ripe.dir/test_ripe.cc.o.d"
  "test_ripe"
  "test_ripe.pdb"
  "test_ripe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
