# Empty compiler generated dependencies file for test_ripe.
# This may be replaced when dependencies are built.
