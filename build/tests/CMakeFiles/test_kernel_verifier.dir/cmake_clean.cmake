file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_verifier.dir/test_kernel_verifier.cc.o"
  "CMakeFiles/test_kernel_verifier.dir/test_kernel_verifier.cc.o.d"
  "test_kernel_verifier"
  "test_kernel_verifier.pdb"
  "test_kernel_verifier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
