# Empty dependencies file for test_kernel_verifier.
# This may be replaced when dependencies are built.
