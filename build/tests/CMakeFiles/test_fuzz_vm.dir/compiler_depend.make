# Empty compiler generated dependencies file for test_fuzz_vm.
# This may be replaced when dependencies are built.
