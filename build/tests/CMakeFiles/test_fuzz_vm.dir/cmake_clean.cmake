file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_vm.dir/test_fuzz_vm.cc.o"
  "CMakeFiles/test_fuzz_vm.dir/test_fuzz_vm.cc.o.d"
  "test_fuzz_vm"
  "test_fuzz_vm.pdb"
  "test_fuzz_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
