file(REMOVE_RECURSE
  "CMakeFiles/test_dfi.dir/test_dfi.cc.o"
  "CMakeFiles/test_dfi.dir/test_dfi.cc.o.d"
  "test_dfi"
  "test_dfi.pdb"
  "test_dfi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
