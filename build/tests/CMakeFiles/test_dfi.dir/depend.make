# Empty dependencies file for test_dfi.
# This may be replaced when dependencies are built.
