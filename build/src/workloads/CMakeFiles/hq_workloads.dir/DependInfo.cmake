
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/ripe.cc" "src/workloads/CMakeFiles/hq_workloads.dir/ripe.cc.o" "gcc" "src/workloads/CMakeFiles/hq_workloads.dir/ripe.cc.o.d"
  "/root/repo/src/workloads/runner.cc" "src/workloads/CMakeFiles/hq_workloads.dir/runner.cc.o" "gcc" "src/workloads/CMakeFiles/hq_workloads.dir/runner.cc.o.d"
  "/root/repo/src/workloads/spec_generator.cc" "src/workloads/CMakeFiles/hq_workloads.dir/spec_generator.cc.o" "gcc" "src/workloads/CMakeFiles/hq_workloads.dir/spec_generator.cc.o.d"
  "/root/repo/src/workloads/spec_profiles.cc" "src/workloads/CMakeFiles/hq_workloads.dir/spec_profiles.cc.o" "gcc" "src/workloads/CMakeFiles/hq_workloads.dir/spec_profiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfi/CMakeFiles/hq_cfi.dir/DependInfo.cmake"
  "/root/repo/build/src/verifier/CMakeFiles/hq_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/hq_channels.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/hq_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hq_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hq_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/hq_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/hq_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/hq_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/hq_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/hq_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
