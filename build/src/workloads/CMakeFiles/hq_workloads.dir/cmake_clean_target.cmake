file(REMOVE_RECURSE
  "libhq_workloads.a"
)
