# Empty compiler generated dependencies file for hq_workloads.
# This may be replaced when dependencies are built.
