file(REMOVE_RECURSE
  "CMakeFiles/hq_workloads.dir/ripe.cc.o"
  "CMakeFiles/hq_workloads.dir/ripe.cc.o.d"
  "CMakeFiles/hq_workloads.dir/runner.cc.o"
  "CMakeFiles/hq_workloads.dir/runner.cc.o.d"
  "CMakeFiles/hq_workloads.dir/spec_generator.cc.o"
  "CMakeFiles/hq_workloads.dir/spec_generator.cc.o.d"
  "CMakeFiles/hq_workloads.dir/spec_profiles.cc.o"
  "CMakeFiles/hq_workloads.dir/spec_profiles.cc.o.d"
  "libhq_workloads.a"
  "libhq_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
