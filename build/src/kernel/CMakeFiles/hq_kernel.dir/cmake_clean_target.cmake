file(REMOVE_RECURSE
  "libhq_kernel.a"
)
