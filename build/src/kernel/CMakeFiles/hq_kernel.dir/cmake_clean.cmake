file(REMOVE_RECURSE
  "CMakeFiles/hq_kernel.dir/kernel.cc.o"
  "CMakeFiles/hq_kernel.dir/kernel.cc.o.d"
  "libhq_kernel.a"
  "libhq_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
