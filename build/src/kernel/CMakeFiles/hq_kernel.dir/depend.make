# Empty dependencies file for hq_kernel.
# This may be replaced when dependencies are built.
