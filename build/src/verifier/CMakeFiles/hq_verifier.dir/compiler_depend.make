# Empty compiler generated dependencies file for hq_verifier.
# This may be replaced when dependencies are built.
