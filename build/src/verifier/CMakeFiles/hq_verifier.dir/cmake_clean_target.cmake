file(REMOVE_RECURSE
  "libhq_verifier.a"
)
