file(REMOVE_RECURSE
  "CMakeFiles/hq_verifier.dir/verifier.cc.o"
  "CMakeFiles/hq_verifier.dir/verifier.cc.o.d"
  "libhq_verifier.a"
  "libhq_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
