
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/analysis.cc" "src/compiler/CMakeFiles/hq_compiler.dir/analysis.cc.o" "gcc" "src/compiler/CMakeFiles/hq_compiler.dir/analysis.cc.o.d"
  "/root/repo/src/compiler/devirt.cc" "src/compiler/CMakeFiles/hq_compiler.dir/devirt.cc.o" "gcc" "src/compiler/CMakeFiles/hq_compiler.dir/devirt.cc.o.d"
  "/root/repo/src/compiler/dfi_lowering.cc" "src/compiler/CMakeFiles/hq_compiler.dir/dfi_lowering.cc.o" "gcc" "src/compiler/CMakeFiles/hq_compiler.dir/dfi_lowering.cc.o.d"
  "/root/repo/src/compiler/lowering.cc" "src/compiler/CMakeFiles/hq_compiler.dir/lowering.cc.o" "gcc" "src/compiler/CMakeFiles/hq_compiler.dir/lowering.cc.o.d"
  "/root/repo/src/compiler/optimize.cc" "src/compiler/CMakeFiles/hq_compiler.dir/optimize.cc.o" "gcc" "src/compiler/CMakeFiles/hq_compiler.dir/optimize.cc.o.d"
  "/root/repo/src/compiler/pass_manager.cc" "src/compiler/CMakeFiles/hq_compiler.dir/pass_manager.cc.o" "gcc" "src/compiler/CMakeFiles/hq_compiler.dir/pass_manager.cc.o.d"
  "/root/repo/src/compiler/syscall_sync.cc" "src/compiler/CMakeFiles/hq_compiler.dir/syscall_sync.cc.o" "gcc" "src/compiler/CMakeFiles/hq_compiler.dir/syscall_sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/hq_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/hq_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
