file(REMOVE_RECURSE
  "CMakeFiles/hq_compiler.dir/analysis.cc.o"
  "CMakeFiles/hq_compiler.dir/analysis.cc.o.d"
  "CMakeFiles/hq_compiler.dir/devirt.cc.o"
  "CMakeFiles/hq_compiler.dir/devirt.cc.o.d"
  "CMakeFiles/hq_compiler.dir/dfi_lowering.cc.o"
  "CMakeFiles/hq_compiler.dir/dfi_lowering.cc.o.d"
  "CMakeFiles/hq_compiler.dir/lowering.cc.o"
  "CMakeFiles/hq_compiler.dir/lowering.cc.o.d"
  "CMakeFiles/hq_compiler.dir/optimize.cc.o"
  "CMakeFiles/hq_compiler.dir/optimize.cc.o.d"
  "CMakeFiles/hq_compiler.dir/pass_manager.cc.o"
  "CMakeFiles/hq_compiler.dir/pass_manager.cc.o.d"
  "CMakeFiles/hq_compiler.dir/syscall_sync.cc.o"
  "CMakeFiles/hq_compiler.dir/syscall_sync.cc.o.d"
  "libhq_compiler.a"
  "libhq_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
