file(REMOVE_RECURSE
  "libhq_compiler.a"
)
