# Empty dependencies file for hq_compiler.
# This may be replaced when dependencies are built.
