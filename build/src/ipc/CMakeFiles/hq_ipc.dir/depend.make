# Empty dependencies file for hq_ipc.
# This may be replaced when dependencies are built.
