file(REMOVE_RECURSE
  "libhq_ipc.a"
)
