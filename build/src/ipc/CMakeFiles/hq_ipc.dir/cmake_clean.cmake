file(REMOVE_RECURSE
  "CMakeFiles/hq_ipc.dir/message.cc.o"
  "CMakeFiles/hq_ipc.dir/message.cc.o.d"
  "CMakeFiles/hq_ipc.dir/posix_channels.cc.o"
  "CMakeFiles/hq_ipc.dir/posix_channels.cc.o.d"
  "CMakeFiles/hq_ipc.dir/shm_channel.cc.o"
  "CMakeFiles/hq_ipc.dir/shm_channel.cc.o.d"
  "CMakeFiles/hq_ipc.dir/spsc_ring.cc.o"
  "CMakeFiles/hq_ipc.dir/spsc_ring.cc.o.d"
  "CMakeFiles/hq_ipc.dir/xproc_ring.cc.o"
  "CMakeFiles/hq_ipc.dir/xproc_ring.cc.o.d"
  "libhq_ipc.a"
  "libhq_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
