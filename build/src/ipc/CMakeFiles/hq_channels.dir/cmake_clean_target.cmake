file(REMOVE_RECURSE
  "libhq_channels.a"
)
