file(REMOVE_RECURSE
  "CMakeFiles/hq_channels.dir/channel_factory.cc.o"
  "CMakeFiles/hq_channels.dir/channel_factory.cc.o.d"
  "libhq_channels.a"
  "libhq_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
