# Empty compiler generated dependencies file for hq_channels.
# This may be replaced when dependencies are built.
