file(REMOVE_RECURSE
  "libhq_policy.a"
)
