
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/data_flow.cc" "src/policy/CMakeFiles/hq_policy.dir/data_flow.cc.o" "gcc" "src/policy/CMakeFiles/hq_policy.dir/data_flow.cc.o.d"
  "/root/repo/src/policy/memory_safety.cc" "src/policy/CMakeFiles/hq_policy.dir/memory_safety.cc.o" "gcc" "src/policy/CMakeFiles/hq_policy.dir/memory_safety.cc.o.d"
  "/root/repo/src/policy/memory_tagging.cc" "src/policy/CMakeFiles/hq_policy.dir/memory_tagging.cc.o" "gcc" "src/policy/CMakeFiles/hq_policy.dir/memory_tagging.cc.o.d"
  "/root/repo/src/policy/misc_policies.cc" "src/policy/CMakeFiles/hq_policy.dir/misc_policies.cc.o" "gcc" "src/policy/CMakeFiles/hq_policy.dir/misc_policies.cc.o.d"
  "/root/repo/src/policy/pointer_integrity.cc" "src/policy/CMakeFiles/hq_policy.dir/pointer_integrity.cc.o" "gcc" "src/policy/CMakeFiles/hq_policy.dir/pointer_integrity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ipc/CMakeFiles/hq_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
