# Empty compiler generated dependencies file for hq_policy.
# This may be replaced when dependencies are built.
