file(REMOVE_RECURSE
  "CMakeFiles/hq_policy.dir/data_flow.cc.o"
  "CMakeFiles/hq_policy.dir/data_flow.cc.o.d"
  "CMakeFiles/hq_policy.dir/memory_safety.cc.o"
  "CMakeFiles/hq_policy.dir/memory_safety.cc.o.d"
  "CMakeFiles/hq_policy.dir/memory_tagging.cc.o"
  "CMakeFiles/hq_policy.dir/memory_tagging.cc.o.d"
  "CMakeFiles/hq_policy.dir/misc_policies.cc.o"
  "CMakeFiles/hq_policy.dir/misc_policies.cc.o.d"
  "CMakeFiles/hq_policy.dir/pointer_integrity.cc.o"
  "CMakeFiles/hq_policy.dir/pointer_integrity.cc.o.d"
  "libhq_policy.a"
  "libhq_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
