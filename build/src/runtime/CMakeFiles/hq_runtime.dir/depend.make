# Empty dependencies file for hq_runtime.
# This may be replaced when dependencies are built.
