file(REMOVE_RECURSE
  "libhq_runtime.a"
)
