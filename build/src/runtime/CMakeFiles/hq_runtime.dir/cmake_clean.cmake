file(REMOVE_RECURSE
  "CMakeFiles/hq_runtime.dir/memory.cc.o"
  "CMakeFiles/hq_runtime.dir/memory.cc.o.d"
  "CMakeFiles/hq_runtime.dir/vm.cc.o"
  "CMakeFiles/hq_runtime.dir/vm.cc.o.d"
  "libhq_runtime.a"
  "libhq_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
