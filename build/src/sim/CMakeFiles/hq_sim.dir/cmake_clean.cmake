file(REMOVE_RECURSE
  "CMakeFiles/hq_sim.dir/core_model.cc.o"
  "CMakeFiles/hq_sim.dir/core_model.cc.o.d"
  "libhq_sim.a"
  "libhq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
