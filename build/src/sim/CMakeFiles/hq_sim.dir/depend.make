# Empty dependencies file for hq_sim.
# This may be replaced when dependencies are built.
