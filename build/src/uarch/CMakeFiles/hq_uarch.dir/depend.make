# Empty dependencies file for hq_uarch.
# This may be replaced when dependencies are built.
