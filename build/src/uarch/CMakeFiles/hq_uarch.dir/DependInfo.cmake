
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/amr.cc" "src/uarch/CMakeFiles/hq_uarch.dir/amr.cc.o" "gcc" "src/uarch/CMakeFiles/hq_uarch.dir/amr.cc.o.d"
  "/root/repo/src/uarch/uarch_model_channel.cc" "src/uarch/CMakeFiles/hq_uarch.dir/uarch_model_channel.cc.o" "gcc" "src/uarch/CMakeFiles/hq_uarch.dir/uarch_model_channel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ipc/CMakeFiles/hq_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
