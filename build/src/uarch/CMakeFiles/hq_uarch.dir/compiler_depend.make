# Empty compiler generated dependencies file for hq_uarch.
# This may be replaced when dependencies are built.
