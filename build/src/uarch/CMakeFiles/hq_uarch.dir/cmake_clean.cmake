file(REMOVE_RECURSE
  "CMakeFiles/hq_uarch.dir/amr.cc.o"
  "CMakeFiles/hq_uarch.dir/amr.cc.o.d"
  "CMakeFiles/hq_uarch.dir/uarch_model_channel.cc.o"
  "CMakeFiles/hq_uarch.dir/uarch_model_channel.cc.o.d"
  "libhq_uarch.a"
  "libhq_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
