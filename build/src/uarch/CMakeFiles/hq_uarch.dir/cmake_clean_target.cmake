file(REMOVE_RECURSE
  "libhq_uarch.a"
)
