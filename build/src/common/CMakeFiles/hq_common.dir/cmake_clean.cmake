file(REMOVE_RECURSE
  "CMakeFiles/hq_common.dir/log.cc.o"
  "CMakeFiles/hq_common.dir/log.cc.o.d"
  "CMakeFiles/hq_common.dir/stats.cc.o"
  "CMakeFiles/hq_common.dir/stats.cc.o.d"
  "CMakeFiles/hq_common.dir/status.cc.o"
  "CMakeFiles/hq_common.dir/status.cc.o.d"
  "libhq_common.a"
  "libhq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
