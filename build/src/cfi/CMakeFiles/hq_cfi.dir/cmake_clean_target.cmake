file(REMOVE_RECURSE
  "libhq_cfi.a"
)
