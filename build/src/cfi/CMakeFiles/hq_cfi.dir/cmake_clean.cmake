file(REMOVE_RECURSE
  "CMakeFiles/hq_cfi.dir/design.cc.o"
  "CMakeFiles/hq_cfi.dir/design.cc.o.d"
  "libhq_cfi.a"
  "libhq_cfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_cfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
