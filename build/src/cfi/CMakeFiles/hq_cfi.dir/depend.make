# Empty dependencies file for hq_cfi.
# This may be replaced when dependencies are built.
