# Empty compiler generated dependencies file for hq_fpga.
# This may be replaced when dependencies are built.
