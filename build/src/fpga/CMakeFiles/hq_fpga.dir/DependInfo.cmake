
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/afu.cc" "src/fpga/CMakeFiles/hq_fpga.dir/afu.cc.o" "gcc" "src/fpga/CMakeFiles/hq_fpga.dir/afu.cc.o.d"
  "/root/repo/src/fpga/fpga_channel.cc" "src/fpga/CMakeFiles/hq_fpga.dir/fpga_channel.cc.o" "gcc" "src/fpga/CMakeFiles/hq_fpga.dir/fpga_channel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ipc/CMakeFiles/hq_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
