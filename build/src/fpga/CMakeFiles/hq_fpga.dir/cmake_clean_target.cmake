file(REMOVE_RECURSE
  "libhq_fpga.a"
)
