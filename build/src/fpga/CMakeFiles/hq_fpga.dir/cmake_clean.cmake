file(REMOVE_RECURSE
  "CMakeFiles/hq_fpga.dir/afu.cc.o"
  "CMakeFiles/hq_fpga.dir/afu.cc.o.d"
  "CMakeFiles/hq_fpga.dir/fpga_channel.cc.o"
  "CMakeFiles/hq_fpga.dir/fpga_channel.cc.o.d"
  "libhq_fpga.a"
  "libhq_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
