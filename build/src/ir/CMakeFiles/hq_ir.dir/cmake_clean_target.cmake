file(REMOVE_RECURSE
  "libhq_ir.a"
)
