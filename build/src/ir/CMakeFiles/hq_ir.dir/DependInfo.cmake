
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cc" "src/ir/CMakeFiles/hq_ir.dir/builder.cc.o" "gcc" "src/ir/CMakeFiles/hq_ir.dir/builder.cc.o.d"
  "/root/repo/src/ir/cfg.cc" "src/ir/CMakeFiles/hq_ir.dir/cfg.cc.o" "gcc" "src/ir/CMakeFiles/hq_ir.dir/cfg.cc.o.d"
  "/root/repo/src/ir/dominators.cc" "src/ir/CMakeFiles/hq_ir.dir/dominators.cc.o" "gcc" "src/ir/CMakeFiles/hq_ir.dir/dominators.cc.o.d"
  "/root/repo/src/ir/module.cc" "src/ir/CMakeFiles/hq_ir.dir/module.cc.o" "gcc" "src/ir/CMakeFiles/hq_ir.dir/module.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/hq_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/hq_ir.dir/printer.cc.o.d"
  "/root/repo/src/ir/verify.cc" "src/ir/CMakeFiles/hq_ir.dir/verify.cc.o" "gcc" "src/ir/CMakeFiles/hq_ir.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
