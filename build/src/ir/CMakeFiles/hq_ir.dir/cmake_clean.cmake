file(REMOVE_RECURSE
  "CMakeFiles/hq_ir.dir/builder.cc.o"
  "CMakeFiles/hq_ir.dir/builder.cc.o.d"
  "CMakeFiles/hq_ir.dir/cfg.cc.o"
  "CMakeFiles/hq_ir.dir/cfg.cc.o.d"
  "CMakeFiles/hq_ir.dir/dominators.cc.o"
  "CMakeFiles/hq_ir.dir/dominators.cc.o.d"
  "CMakeFiles/hq_ir.dir/module.cc.o"
  "CMakeFiles/hq_ir.dir/module.cc.o.d"
  "CMakeFiles/hq_ir.dir/printer.cc.o"
  "CMakeFiles/hq_ir.dir/printer.cc.o.d"
  "CMakeFiles/hq_ir.dir/verify.cc.o"
  "CMakeFiles/hq_ir.dir/verify.cc.o.d"
  "libhq_ir.a"
  "libhq_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
