# Empty compiler generated dependencies file for hq_ir.
# This may be replaced when dependencies are built.
