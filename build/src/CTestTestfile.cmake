# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("ipc")
subdirs("fpga")
subdirs("uarch")
subdirs("kernel")
subdirs("policy")
subdirs("verifier")
subdirs("ir")
subdirs("compiler")
subdirs("runtime")
subdirs("cfi")
subdirs("sim")
subdirs("workloads")
