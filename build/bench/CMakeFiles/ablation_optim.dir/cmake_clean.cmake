file(REMOVE_RECURSE
  "CMakeFiles/ablation_optim.dir/ablation_optim.cc.o"
  "CMakeFiles/ablation_optim.dir/ablation_optim.cc.o.d"
  "ablation_optim"
  "ablation_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
