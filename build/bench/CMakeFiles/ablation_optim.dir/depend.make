# Empty dependencies file for ablation_optim.
# This may be replaced when dependencies are built.
