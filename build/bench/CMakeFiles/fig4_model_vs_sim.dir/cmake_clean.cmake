file(REMOVE_RECURSE
  "CMakeFiles/fig4_model_vs_sim.dir/fig4_model_vs_sim.cc.o"
  "CMakeFiles/fig4_model_vs_sim.dir/fig4_model_vs_sim.cc.o.d"
  "fig4_model_vs_sim"
  "fig4_model_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_model_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
