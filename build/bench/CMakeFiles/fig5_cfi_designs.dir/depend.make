# Empty dependencies file for fig5_cfi_designs.
# This may be replaced when dependencies are built.
