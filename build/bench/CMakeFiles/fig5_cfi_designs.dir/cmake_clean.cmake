file(REMOVE_RECURSE
  "CMakeFiles/fig5_cfi_designs.dir/fig5_cfi_designs.cc.o"
  "CMakeFiles/fig5_cfi_designs.dir/fig5_cfi_designs.cc.o.d"
  "fig5_cfi_designs"
  "fig5_cfi_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cfi_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
