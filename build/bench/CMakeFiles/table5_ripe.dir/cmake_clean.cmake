file(REMOVE_RECURSE
  "CMakeFiles/table5_ripe.dir/table5_ripe.cc.o"
  "CMakeFiles/table5_ripe.dir/table5_ripe.cc.o.d"
  "table5_ripe"
  "table5_ripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_ripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
