# Empty dependencies file for table5_ripe.
# This may be replaced when dependencies are built.
