file(REMOVE_RECURSE
  "CMakeFiles/sec54_metrics.dir/sec54_metrics.cc.o"
  "CMakeFiles/sec54_metrics.dir/sec54_metrics.cc.o.d"
  "sec54_metrics"
  "sec54_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
