# Empty compiler generated dependencies file for sec54_metrics.
# This may be replaced when dependencies are built.
