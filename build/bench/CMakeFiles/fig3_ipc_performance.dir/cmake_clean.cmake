file(REMOVE_RECURSE
  "CMakeFiles/fig3_ipc_performance.dir/fig3_ipc_performance.cc.o"
  "CMakeFiles/fig3_ipc_performance.dir/fig3_ipc_performance.cc.o.d"
  "fig3_ipc_performance"
  "fig3_ipc_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ipc_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
