# Empty dependencies file for fig3_ipc_performance.
# This may be replaced when dependencies are built.
