file(REMOVE_RECURSE
  "CMakeFiles/table6_loc.dir/table6_loc.cc.o"
  "CMakeFiles/table6_loc.dir/table6_loc.cc.o.d"
  "table6_loc"
  "table6_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
