# Empty compiler generated dependencies file for table6_loc.
# This may be replaced when dependencies are built.
