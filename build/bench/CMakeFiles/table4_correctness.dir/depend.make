# Empty dependencies file for table4_correctness.
# This may be replaced when dependencies are built.
