file(REMOVE_RECURSE
  "CMakeFiles/table2_ipc_primitives.dir/table2_ipc_primitives.cc.o"
  "CMakeFiles/table2_ipc_primitives.dir/table2_ipc_primitives.cc.o.d"
  "table2_ipc_primitives"
  "table2_ipc_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_ipc_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
