# Empty compiler generated dependencies file for table2_ipc_primitives.
# This may be replaced when dependencies are built.
