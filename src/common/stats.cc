#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace hq {

double
mean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double total = 0.0;
    for (double sample : samples)
        total += sample;
    return total / static_cast<double>(samples.size());
}

double
geomean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double log_total = 0.0;
    for (double sample : samples) {
        assert(sample > 0.0 && "geomean requires positive samples");
        log_total += std::log(sample);
    }
    return std::exp(log_total / static_cast<double>(samples.size()));
}

double
stddev(const std::vector<double> &samples)
{
    if (samples.size() < 2)
        return 0.0;
    const double mu = mean(samples);
    double sq_total = 0.0;
    for (double sample : samples)
        sq_total += (sample - mu) * (sample - mu);
    return std::sqrt(sq_total / static_cast<double>(samples.size() - 1));
}

double
median(std::vector<double> samples)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const std::size_t n = samples.size();
    if (n % 2 == 1)
        return samples[n / 2];
    return (samples[n / 2 - 1] + samples[n / 2]) / 2.0;
}

double
minOf(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    return *std::min_element(samples.begin(), samples.end());
}

double
maxOf(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    return *std::max_element(samples.begin(), samples.end());
}

void
RunningStat::add(double sample)
{
    if (_count == 0) {
        _min = sample;
        _max = sample;
    } else {
        _min = std::min(_min, sample);
        _max = std::max(_max, sample);
    }
    ++_count;
    _total += sample;
    const double delta = sample - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (sample - _mean);
}

void
RunningStat::addRepeated(double sample, std::uint64_t repeat)
{
    if (repeat == 0)
        return;
    // Chan et al. parallel merge of this accumulator with a batch of
    // `repeat` identical samples (mean = sample, M2 = 0): exact, so
    // batched recording matches `repeat` calls to add() bit-for-bit in
    // count/total and to rounding in mean/M2.
    if (_count == 0) {
        _min = sample;
        _max = sample;
    } else {
        _min = std::min(_min, sample);
        _max = std::max(_max, sample);
    }
    const double n_a = static_cast<double>(_count);
    const double n_b = static_cast<double>(repeat);
    const double delta = sample - _mean;
    _count += repeat;
    _total += sample * n_b;
    _mean += delta * n_b / (n_a + n_b);
    _m2 += delta * delta * n_a * n_b / (n_a + n_b);
}

double
RunningStat::mean() const
{
    return _count ? _mean : 0.0;
}

double
RunningStat::variance() const
{
    return _count > 1 ? _m2 / static_cast<double>(_count - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
StatSet::set(const std::string &name, double value)
{
    _values[name] = value;
}

void
StatSet::increment(const std::string &name, double delta)
{
    _values[name] += delta;
}

double
StatSet::get(const std::string &name) const
{
    auto it = _values.find(name);
    return it == _values.end() ? 0.0 : it->second;
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &[name, value] : _values)
        os << name << " " << value << "\n";
    return os.str();
}

} // namespace hq
