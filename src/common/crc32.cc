#include "common/crc32.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace hq {
namespace crc32 {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u; // reflected zlib polynomial

/**
 * Slice tables. Table 0 is the classic byte table; table k maps a byte
 * processed k positions early, so eight lookups retire eight input
 * bytes with no serial dependency between them.
 */
struct SliceTables
{
    std::uint32_t t[8][256];

    constexpr SliceTables() : t()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc & 1u) ? kPoly ^ (crc >> 1) : crc >> 1;
            t[0][i] = crc;
        }
        for (int k = 1; k < 8; ++k) {
            for (std::uint32_t i = 0; i < 256; ++i)
                t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
        }
    }
};

constexpr SliceTables kTables;

/** Byte loop in "raw" space (caller handles the pre/post inversion). */
inline std::uint32_t
rawScalar(std::uint32_t c, const unsigned char *p, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        c = kTables.t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c;
}

/** Slice-by-8 in raw space. */
inline std::uint32_t
rawSlice8(std::uint32_t c, const unsigned char *p, std::size_t len)
{
    while (len >= 8) {
        std::uint32_t lo;
        std::uint32_t hi;
        std::memcpy(&lo, p, 4);
        std::memcpy(&hi, p + 4, 4);
        lo ^= c;
        c = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
            kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
            kTables.t[3][hi & 0xFFu] ^ kTables.t[2][(hi >> 8) & 0xFFu] ^
            kTables.t[1][(hi >> 16) & 0xFFu] ^ kTables.t[0][hi >> 24];
        p += 8;
        len -= 8;
    }
    return rawScalar(c, p, len);
}

std::atomic<Fn> g_dispatch{nullptr};

} // namespace

std::uint32_t
scalar(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    return rawScalar(crc ^ 0xFFFFFFFFu, p, len) ^ 0xFFFFFFFFu;
}

std::uint32_t
slice8(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    return rawSlice8(crc ^ 0xFFFFFFFFu, p, len) ^ 0xFFFFFFFFu;
}

#if defined(__x86_64__) || defined(__i386__)

bool
pclmulAvailable()
{
    return __builtin_cpu_supports("pclmul") &&
           __builtin_cpu_supports("sse4.1");
}

/*
 * PCLMULQDQ folding (Gopal et al., "Fast CRC Computation for Generic
 * Polynomials Using PCLMULQDQ"; layout as in zlib's crc32_simd). The
 * running 512-bit state is four 128-bit accumulators; one fold step
 * multiplies an accumulator by x^T mod P (T = distance folded over, in
 * bits) and XORs in the next block of input, preserving the invariant
 * CRC(state || remaining input) == CRC(original input).
 *
 * Constants (reflected domain):
 *   k1 = x^(4*128+32) mod P   k2 = x^(4*128-32) mod P   (fold 64 bytes)
 *   k3 = x^(128+32)  mod P    k4 = x^(128-32)  mod P    (fold 16 bytes)
 *
 * Final reduction: instead of the Barrett step, the 16-byte accumulator
 * is simply run through the raw table CRC (CRC-of-init-value identity:
 * a raw init value XORs into the first bytes of the stream), which is
 * exact and negligible at frame sizes.
 */
__attribute__((target("pclmul,sse4.1"))) std::uint32_t
pclmul(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = crc ^ 0xFFFFFFFFu;
    if (len < 64)
        return rawSlice8(c, p, len) ^ 0xFFFFFFFFu;

    const __m128i k1k2 =
        _mm_set_epi64x(0x00000001c6e41596ll, 0x0000000154442bd4ll);
    const __m128i k3k4 =
        _mm_set_epi64x(0x00000000ccaa009ell, 0x00000001751997d0ll);

    __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 16));
    __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 32));
    __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 48));
    x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(c)));
    p += 64;
    len -= 64;

    while (len >= 64) {
        __m128i y1 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
        __m128i y2 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
        __m128i y3 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
        __m128i y4 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
        x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
        x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
        x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
        x1 = _mm_xor_si128(
            x1, _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)));
        x2 = _mm_xor_si128(
            x2,
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 16)));
        x3 = _mm_xor_si128(
            x3,
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 32)));
        x4 = _mm_xor_si128(
            x4,
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 48)));
        x1 = _mm_xor_si128(x1, y1);
        x2 = _mm_xor_si128(x2, y2);
        x3 = _mm_xor_si128(x3, y3);
        x4 = _mm_xor_si128(x4, y4);
        p += 64;
        len -= 64;
    }

    // Fold the four accumulators into one.
    __m128i y = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(x1, x2);
    x1 = _mm_xor_si128(x1, y);
    y = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(x1, x3);
    x1 = _mm_xor_si128(x1, y);
    y = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(x1, x4);
    x1 = _mm_xor_si128(x1, y);

    while (len >= 16) {
        y = _mm_clmulepi64_si128(x1, k3k4, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
        x1 = _mm_xor_si128(
            x1, _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)));
        x1 = _mm_xor_si128(x1, y);
        p += 16;
        len -= 16;
    }

    alignas(16) unsigned char acc[16];
    _mm_store_si128(reinterpret_cast<__m128i *>(acc), x1);
    c = rawScalar(0, acc, 16);
    return rawSlice8(c, p, len) ^ 0xFFFFFFFFu;
}

#else

bool
pclmulAvailable()
{
    return false;
}

#endif // x86

namespace {

Fn
resolve()
{
    const char *force = std::getenv("HQ_FORCE_SCALAR_CRC");
    if (force != nullptr && force[0] == '1')
        return &scalar;
#if defined(__x86_64__) || defined(__i386__)
    if (pclmulAvailable())
        return &pclmul;
#endif
    return &slice8;
}

} // namespace

Fn
best()
{
    Fn fn = g_dispatch.load(std::memory_order_relaxed);
    if (fn == nullptr) {
        fn = resolve();
        g_dispatch.store(fn, std::memory_order_relaxed);
    }
    return fn;
}

const char *
implName()
{
    const Fn fn = best();
    if (fn == &scalar)
        return "scalar";
#if defined(__x86_64__) || defined(__i386__)
    if (fn == &pclmul)
        return "pclmul";
#endif
    return "slice8";
}

void
redetect()
{
    g_dispatch.store(nullptr, std::memory_order_relaxed);
}

} // namespace crc32
} // namespace hq
