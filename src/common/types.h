/**
 * @file
 * Fundamental type aliases shared across the HerQules reproduction.
 */

#ifndef HQ_COMMON_TYPES_H
#define HQ_COMMON_TYPES_H

#include <cstdint>

namespace hq {

/** Process identifier inside the simulated system. */
using Pid = std::uint32_t;

/** Virtual address inside a simulated process address space. */
using Addr = std::uint64_t;

/** A null address constant; the VM never maps page zero. */
inline constexpr Addr kNullAddr = 0;

/** Cycle count used by the microarchitectural simulator. */
using Cycles = std::uint64_t;

/** Monotonic tick used by the simulated kernel for epochs. */
using Tick = std::uint64_t;

} // namespace hq

#endif // HQ_COMMON_TYPES_H
