/**
 * @file
 * Summary statistics helpers used by the benchmark harnesses.
 *
 * The paper reports geometric means of relative performance (Figures 3-5)
 * and arithmetic means with standard deviations across 3 runs; these
 * helpers compute exactly those aggregates.
 */

#ifndef HQ_COMMON_STATS_H
#define HQ_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hq {

/** Arithmetic mean; returns 0 for an empty sample. */
double mean(const std::vector<double> &samples);

/** Geometric mean; all samples must be positive. */
double geomean(const std::vector<double> &samples);

/** Sample (n-1) standard deviation; returns 0 for n < 2. */
double stddev(const std::vector<double> &samples);

/** Median (midpoint of sorted sample); returns 0 for an empty sample. */
double median(std::vector<double> samples);

/** Smallest element; returns 0 for an empty sample. */
double minOf(const std::vector<double> &samples);

/** Largest element; returns 0 for an empty sample. */
double maxOf(const std::vector<double> &samples);

/**
 * Incremental accumulator for counters and derived statistics.
 *
 * Used by the verifier and kernel module to track per-process message and
 * system-call statistics without storing every sample, and by the
 * telemetry histograms for Welford-style mean/stddev of latency samples.
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double sample);

    /**
     * Fold `repeat` copies of sample in O(1) (batched telemetry: one
     * amortized-latency sample per message of a batch). Equivalent to
     * calling add(sample) `repeat` times.
     */
    void addRepeated(double sample, std::uint64_t repeat);

    std::uint64_t count() const { return _count; }
    double total() const { return _total; }
    double mean() const;
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    /** Sample (n-1) variance via Welford's algorithm; 0 for n < 2. */
    double variance() const;

    /** Sample standard deviation; 0 for n < 2. */
    double stddev() const;

  private:
    std::uint64_t _count = 0;
    double _total = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    double _mean = 0.0; //!< Welford running mean
    double _m2 = 0.0;   //!< Welford sum of squared deviations
};

/**
 * Named scalar statistics registry, for dumping structured results
 * ("stat value" lines) from benches and the verifier.
 */
class StatSet
{
  public:
    /** Set (or overwrite) a named statistic. */
    void set(const std::string &name, double value);

    /** Add delta to a named statistic, creating it at 0 if absent. */
    void increment(const std::string &name, double delta = 1.0);

    /** Value of a named statistic, or 0 if never set. */
    double get(const std::string &name) const;

    const std::map<std::string, double> &all() const { return _values; }

    /** Render one "name value" line per statistic, sorted by name. */
    std::string toString() const;

  private:
    std::map<std::string, double> _values;
};

} // namespace hq

#endif // HQ_COMMON_STATS_H
