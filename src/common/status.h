/**
 * @file
 * Lightweight status and expected-value types.
 *
 * The reproduction avoids exceptions on hot paths (the runtime messaging
 * library sits on the monitored program's critical path), so fallible
 * operations return a Status or an Expected<T> instead of throwing.
 */

#ifndef HQ_COMMON_STATUS_H
#define HQ_COMMON_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace hq {

/** Error category for a failed operation. */
enum class StatusCode {
    Ok = 0,
    InvalidArgument,
    NotFound,
    AlreadyExists,
    ResourceExhausted,
    FailedPrecondition,
    PermissionDenied,
    Unavailable,
    Internal,
    PolicyViolation,
};

/** Human-readable name of a status code. */
const char *statusCodeName(StatusCode code);

/**
 * Result of a fallible operation: a code plus an optional message.
 *
 * The default-constructed Status is Ok.
 */
class Status
{
  public:
    Status() = default;

    Status(StatusCode code, std::string message)
        : _code(code), _message(std::move(message))
    {}

    static Status ok() { return Status(); }

    static Status
    error(StatusCode code, std::string message)
    {
        return Status(code, std::move(message));
    }

    bool isOk() const { return _code == StatusCode::Ok; }
    explicit operator bool() const { return isOk(); }

    StatusCode code() const { return _code; }
    const std::string &message() const { return _message; }

    /** Render "CODE: message" for logs and test failures. */
    std::string toString() const;

  private:
    StatusCode _code = StatusCode::Ok;
    std::string _message;
};

/**
 * Either a value of type T or a failure Status.
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : _value(std::move(value)) {}
    Expected(Status status) : _status(std::move(status))
    {
        assert(!_status.isOk() && "Expected built from Ok status");
    }

    bool hasValue() const { return _value.has_value(); }
    explicit operator bool() const { return hasValue(); }

    const T &
    value() const
    {
        assert(hasValue());
        return *_value;
    }

    T &
    value()
    {
        assert(hasValue());
        return *_value;
    }

    T
    takeValue()
    {
        assert(hasValue());
        return std::move(*_value);
    }

    const Status &
    status() const
    {
        static const Status ok_status;
        return hasValue() ? ok_status : _status;
    }

  private:
    std::optional<T> _value;
    Status _status;
};

} // namespace hq

#endif // HQ_COMMON_STATUS_H
