#include "common/status.h"

namespace hq {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "OK";
      case StatusCode::InvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::NotFound: return "NOT_FOUND";
      case StatusCode::AlreadyExists: return "ALREADY_EXISTS";
      case StatusCode::ResourceExhausted: return "RESOURCE_EXHAUSTED";
      case StatusCode::FailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::PermissionDenied: return "PERMISSION_DENIED";
      case StatusCode::Unavailable: return "UNAVAILABLE";
      case StatusCode::Internal: return "INTERNAL";
      case StatusCode::PolicyViolation: return "POLICY_VIOLATION";
    }
    return "UNKNOWN";
}

std::string
Status::toString() const
{
    std::string out = statusCodeName(_code);
    if (!_message.empty()) {
        out += ": ";
        out += _message;
    }
    return out;
}

} // namespace hq
