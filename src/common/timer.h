/**
 * @file
 * Wall-clock timing helpers for benchmark harnesses.
 */

#ifndef HQ_COMMON_TIMER_H
#define HQ_COMMON_TIMER_H

#include <chrono>
#include <cstdint>

namespace hq {

/** Steady-clock stopwatch; starts on construction. */
class Timer
{
  public:
    Timer() : _start(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { _start = Clock::now(); }

    /** Elapsed nanoseconds since construction or last reset(). */
    std::uint64_t
    elapsedNs() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - _start)
            .count();
    }

    /** Elapsed seconds as a double. */
    double
    elapsedSeconds() const
    {
        return static_cast<double>(elapsedNs()) * 1e-9;
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point _start;
};

} // namespace hq

#endif // HQ_COMMON_TIMER_H
