/**
 * @file
 * Minimal leveled logging, in the spirit of gem5's inform()/warn()/fatal().
 *
 * Logging is process-global and thread-safe. Benchmarks set the level to
 * Error so verifier chatter does not perturb timing.
 */

#ifndef HQ_COMMON_LOG_H
#define HQ_COMMON_LOG_H

#include <sstream>
#include <string>

namespace hq {

enum class LogLevel { Debug = 0, Info, Warn, Error, Off };

/** Set the global log threshold; messages below it are dropped. */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/** Emit one formatted line ("[LEVEL] message") to stderr. */
void logMessage(LogLevel level, const std::string &message);

namespace detail {

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Log at Debug level; arguments are streamed together. */
template <typename... Args>
void
logDebug(Args &&...args)
{
    if (logLevel() <= LogLevel::Debug)
        logMessage(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

/** Log at Info level. */
template <typename... Args>
void
logInfo(Args &&...args)
{
    if (logLevel() <= LogLevel::Info)
        logMessage(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

/** Log at Warn level. */
template <typename... Args>
void
logWarn(Args &&...args)
{
    if (logLevel() <= LogLevel::Warn)
        logMessage(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/** Log at Error level. */
template <typename... Args>
void
logError(Args &&...args)
{
    if (logLevel() <= LogLevel::Error)
        logMessage(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

/** Abort with a message; used for conditions that indicate repo bugs. */
[[noreturn]] void panic(const std::string &message);

} // namespace hq

#endif // HQ_COMMON_LOG_H
