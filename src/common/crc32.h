/**
 * @file
 * CRC32 (reflected, polynomial 0xEDB88320 — the zlib/gzip CRC) with
 * runtime-dispatched implementations.
 *
 * The v1 wire format pays a byte-at-a-time table CRC per 32-byte
 * message; the v2 batched frame format amortizes one checksum over a
 * whole frame, which makes the CRC kernel itself worth vectorizing:
 *
 *  - `scalar`  — the reference single-table byte loop (kept forever as
 *    the differential-testing oracle; parity tests compare every other
 *    implementation against it on random and adversarial buffers);
 *  - `slice8`  — slice-by-8: eight derived tables consume 8 bytes per
 *    iteration with no inter-byte dependency chain;
 *  - `pclmul`  — carry-less-multiply folding (PCLMULQDQ + SSE4.1),
 *    processing 64 bytes per fold iteration, compiled with a function
 *    target attribute and selected only when CPUID reports support.
 *
 * `update()` dispatches through a function pointer resolved once at
 * first use. Setting `HQ_FORCE_SCALAR_CRC=1` in the environment pins
 * the scalar path (CI runs a no-SIMD leg this way), so every checksum
 * the system produces is reproducible on any hardware.
 *
 * All implementations compute the identical function: zlib-style
 * streaming, `crc' = update(crc, bytes, len)` with 0 as the initial
 * value (pre/post inversion handled internally), so checksums can be
 * chained across discontiguous spans (the frame decoder checks a
 * wrapped ring without copying).
 */

#ifndef HQ_COMMON_CRC32_H
#define HQ_COMMON_CRC32_H

#include <cstddef>
#include <cstdint>

namespace hq {
namespace crc32 {

/** Streaming CRC32 function type (zlib convention, initial crc = 0). */
using Fn = std::uint32_t (*)(std::uint32_t crc, const void *data,
                             std::size_t len);

/** Reference byte-at-a-time table implementation (the parity oracle). */
std::uint32_t scalar(std::uint32_t crc, const void *data, std::size_t len);

/** Slice-by-8: 8 bytes per iteration, portable C++. */
std::uint32_t slice8(std::uint32_t crc, const void *data, std::size_t len);

/** True when this build carries the PCLMUL path and the CPU supports it. */
bool pclmulAvailable();

#if defined(__x86_64__) || defined(__i386__)
/** PCLMULQDQ folding path; call only when pclmulAvailable(). */
std::uint32_t pclmul(std::uint32_t crc, const void *data, std::size_t len);
#endif

/**
 * The dispatched implementation: fastest available unless
 * HQ_FORCE_SCALAR_CRC=1 pins the scalar path. Resolved once (relaxed
 * atomic pointer), so the steady-state cost is one indirect call.
 */
Fn best();

/** Name of the dispatched implementation ("scalar"/"slice8"/"pclmul"). */
const char *implName();

/** Streaming update through the dispatched implementation. */
inline std::uint32_t
update(std::uint32_t crc, const void *data, std::size_t len)
{
    return best()(crc, data, len);
}

/** One-shot CRC32 of a buffer. */
inline std::uint32_t
compute(const void *data, std::size_t len)
{
    return update(0, data, len);
}

/** Re-run dispatch (tests toggle HQ_FORCE_SCALAR_CRC and re-resolve). */
void redetect();

} // namespace crc32
} // namespace hq

#endif // HQ_COMMON_CRC32_H
