/**
 * @file
 * Small bit-manipulation helpers shared by the ring buffers and the
 * flat hash map (power-of-two capacity sizing).
 */

#ifndef HQ_COMMON_BITS_H
#define HQ_COMMON_BITS_H

#include <cstddef>
#include <limits>

namespace hq {

/**
 * Smallest power of two >= value (1 for value <= 1). Values above the
 * largest representable power of two clamp to that power instead of
 * looping forever / overflowing: callers size allocations from the
 * result, and an allocation that large fails loudly downstream anyway.
 */
constexpr std::size_t
roundUpPow2(std::size_t value)
{
    constexpr std::size_t max_pow2 =
        std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
    if (value <= 1)
        return 1;
    if (value > max_pow2)
        return max_pow2;
    std::size_t pow2 = 1;
    while (pow2 < value)
        pow2 <<= 1;
    return pow2;
}

} // namespace hq

#endif // HQ_COMMON_BITS_H
