/**
 * @file
 * Open-addressed flat hash map for the verifier's policy hot tables.
 *
 * The per-message policy work is dominated by point lookups into the
 * shadow stores (pointer address -> expected value, allocation base ->
 * size, address -> last writer). node-based std::map/std::unordered_map
 * pay a pointer chase plus an allocation per entry on that path; this
 * map keeps key/value pairs in one contiguous power-of-two array with
 * linear probing, so a lookup is a hash, a masked index, and a short
 * forward scan over adjacent cache lines.
 *
 * Design points:
 *  - power-of-two capacity (bucket = mixed hash & mask), grown at ~7/8
 *    load factor by rehashing into a doubled array;
 *  - linear probing with *backward-shift* deletion (Knuth 6.4 Algorithm
 *    R): erase re-packs the probe chain instead of leaving tombstones,
 *    so heavy insert/erase churn (pointer invalidation, free()) never
 *    degrades probe lengths;
 *  - integral keys are mixed with the murmur3 finalizer before masking:
 *    shadow-store keys are 8/16-byte-aligned addresses whose low bits
 *    carry no entropy, and an identity hash would stride the table.
 *
 * Iteration order is unspecified (callers that need ranges scan with
 * forEach and filter). References/pointers into the map are invalidated
 * by insert (rehash) and erase (backward shift), like a std::vector.
 */

#ifndef HQ_COMMON_FLAT_MAP_H
#define HQ_COMMON_FLAT_MAP_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bits.h"

namespace hq {

/** murmur3 64-bit finalizer: full-avalanche mix for integral keys. */
constexpr std::uint64_t
mixHash64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/** Default FlatMap hash: murmur3-mixed for integers, std::hash else. */
template <typename Key, typename = void>
struct FlatMapHash
{
    std::size_t
    operator()(const Key &key) const
    {
        return std::hash<Key>{}(key);
    }
};

template <typename Key>
struct FlatMapHash<Key, std::enable_if_t<std::is_integral_v<Key>>>
{
    std::size_t
    operator()(Key key) const
    {
        return static_cast<std::size_t>(
            mixHash64(static_cast<std::uint64_t>(key)));
    }
};

template <typename Key, typename Value, typename Hash = FlatMapHash<Key>>
class FlatMap
{
  public:
    explicit FlatMap(std::size_t min_capacity = kMinCapacity)
    {
        rehash(roundUpPow2(
            min_capacity < kMinCapacity ? kMinCapacity : min_capacity));
    }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    std::size_t capacity() const { return _mask + 1; }

    /** Pointer to the mapped value, or nullptr when absent. */
    Value *
    find(const Key &key)
    {
        const std::size_t idx = indexOf(key);
        return idx == kNotFound ? nullptr : &_slots[idx].value;
    }

    const Value *
    find(const Key &key) const
    {
        const std::size_t idx = indexOf(key);
        return idx == kNotFound ? nullptr : &_slots[idx].value;
    }

    bool contains(const Key &key) const { return indexOf(key) != kNotFound; }

    /**
     * Hint the cache that key's home bucket is about to be probed.
     * Issues a prefetch for the bucket's slot and used-flag lines; a
     * batched caller (the verifier draining a frame) prefetches every
     * key's bucket first, then probes, so the loads overlap instead of
     * serializing one miss per message.
     */
    void
    prefetch(const Key &key) const
    {
#if defined(__GNUC__) || defined(__clang__)
        const std::size_t idx = bucketOf(key);
        __builtin_prefetch(&_slots[idx], 0 /*read*/, 1 /*low locality*/);
        __builtin_prefetch(&_used[idx], 0, 1);
#else
        (void)key;
#endif
    }

    /**
     * Batched point lookup: pre-hash all count keys and prefetch their
     * home buckets, then probe. out[i] receives the mapped value's
     * address (nullptr when absent); pointers are invalidated by the
     * next insert/erase, exactly as with find(). The two-pass shape
     * turns count dependent cache misses into one overlapped wave.
     */
    void
    findBatch(const Key *keys, std::size_t count, Value **out)
    {
        constexpr std::size_t kStride = 16; // bound the prefetch window
        for (std::size_t base = 0; base < count; base += kStride) {
            const std::size_t n = std::min(kStride, count - base);
            for (std::size_t i = 0; i < n; ++i)
                prefetch(keys[base + i]);
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t idx = indexOf(keys[base + i]);
                out[base + i] =
                    idx == kNotFound ? nullptr : &_slots[idx].value;
            }
        }
    }

    /** Mapped value for key, default-constructed and inserted if absent. */
    Value &
    operator[](const Key &key)
    {
        std::size_t idx = indexOf(key);
        if (idx != kNotFound)
            return _slots[idx].value;
        maybeGrow();
        idx = insertSlot(key);
        _slots[idx].value = Value{};
        return _slots[idx].value;
    }

    /** Insert or overwrite; @return true when the key was newly added. */
    bool
    insertOrAssign(const Key &key, Value value)
    {
        std::size_t idx = indexOf(key);
        if (idx != kNotFound) {
            _slots[idx].value = std::move(value);
            return false;
        }
        maybeGrow();
        idx = insertSlot(key);
        _slots[idx].value = std::move(value);
        return true;
    }

    /**
     * Remove key with backward-shift re-packing (no tombstones).
     * @return true when an entry was erased.
     */
    bool
    erase(const Key &key)
    {
        std::size_t hole = indexOf(key);
        if (hole == kNotFound)
            return false;
        // Walk the chain after the hole; any element whose home bucket
        // does not lie strictly inside (hole, probe] may legally occupy
        // the hole, keeping every remaining element reachable.
        std::size_t probe = hole;
        for (;;) {
            probe = (probe + 1) & _mask;
            if (!_used[probe])
                break;
            const std::size_t home = bucketOf(_slots[probe].key);
            if (((probe - home) & _mask) >= ((probe - hole) & _mask)) {
                _slots[hole] = std::move(_slots[probe]);
                hole = probe;
            }
        }
        _used[hole] = 0;
        _slots[hole] = Slot{};
        --_size;
        return true;
    }

    void
    clear()
    {
        std::fill(_used.begin(), _used.end(), std::uint8_t{0});
        std::fill(_slots.begin(), _slots.end(), Slot{});
        _size = 0;
    }

    /** Grow (never shrink) so count entries fit without rehashing. */
    void
    reserve(std::size_t count)
    {
        const std::size_t needed = roundUpPow2(count + count / 4);
        if (needed > capacity())
            rehash(needed);
    }

    /** Invoke fn(key, value) for every entry, unspecified order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i <= _mask; ++i) {
            if (_used[i])
                fn(_slots[i].key, _slots[i].value);
        }
    }

    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t i = 0; i <= _mask; ++i) {
            if (_used[i])
                fn(_slots[i].key, _slots[i].value);
        }
    }

  private:
    static constexpr std::size_t kMinCapacity = 16;
    static constexpr std::size_t kNotFound = ~std::size_t{0};

    struct Slot
    {
        Key key{};
        Value value{};
    };

    std::size_t bucketOf(const Key &key) const { return _hash(key) & _mask; }

    /** Slot index holding key, or kNotFound. */
    std::size_t
    indexOf(const Key &key) const
    {
        std::size_t idx = bucketOf(key);
        while (_used[idx]) {
            if (_slots[idx].key == key)
                return idx;
            idx = (idx + 1) & _mask;
        }
        return kNotFound;
    }

    /** First free slot of key's probe chain; marks it used. */
    std::size_t
    insertSlot(const Key &key)
    {
        std::size_t idx = bucketOf(key);
        while (_used[idx])
            idx = (idx + 1) & _mask;
        _used[idx] = 1;
        _slots[idx].key = key;
        ++_size;
        return idx;
    }

    void
    maybeGrow()
    {
        // Grow at 7/8 load: linear probing degrades sharply past that.
        if ((_size + 1) * 8 > capacity() * 7)
            rehash(capacity() * 2);
    }

    void
    rehash(std::size_t new_capacity)
    {
        std::vector<Slot> old_slots = std::move(_slots);
        std::vector<std::uint8_t> old_used = std::move(_used);
        _slots.assign(new_capacity, Slot{});
        _used.assign(new_capacity, 0);
        _mask = new_capacity - 1;
        _size = 0;
        for (std::size_t i = 0; i < old_slots.size(); ++i) {
            if (!old_used[i])
                continue;
            const std::size_t idx = insertSlot(old_slots[i].key);
            _slots[idx].value = std::move(old_slots[i].value);
        }
    }

    std::vector<Slot> _slots;
    std::vector<std::uint8_t> _used;
    std::size_t _mask = 0;
    std::size_t _size = 0;
    Hash _hash;
};

} // namespace hq

#endif // HQ_COMMON_FLAT_MAP_H
