/**
 * @file
 * Deterministic pseudo-random number generator (splitmix64 + xoshiro256**).
 *
 * Workload generation must be reproducible across runs and machines, so the
 * repo uses this fixed-algorithm RNG everywhere instead of std::mt19937
 * (whose distributions are not specified bit-exactly across standard
 * library implementations).
 */

#ifndef HQ_COMMON_RNG_H
#define HQ_COMMON_RNG_H

#include <cstdint>

namespace hq {

/** xoshiro256** seeded via splitmix64; fully deterministic. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Reinitialize the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : _state)
            word = splitmix64(seed);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            const std::uint64_t value = next();
            if (value >= threshold)
                return value % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    nextInRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + nextBelow(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return nextDouble() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &state)
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t _state[4];
};

} // namespace hq

#endif // HQ_COMMON_RNG_H
