#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace hq {

namespace {

std::atomic<LogLevel> global_level{LogLevel::Warn};
std::mutex log_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &message)
{
    std::lock_guard<std::mutex> guard(log_mutex);
    std::fprintf(stderr, "[%s] %s\n", levelName(level), message.c_str());
}

void
panic(const std::string &message)
{
    logMessage(LogLevel::Error, "panic: " + message);
    std::abort();
}

} // namespace hq
