/**
 * @file
 * Additional execution policies from §2 and §4.3: the reliable event
 * counter (the paper's motivating toy example) and a software watchdog.
 */

#ifndef HQ_POLICY_MISC_POLICIES_H
#define HQ_POLICY_MISC_POLICIES_H

#include <cstdint>

#include "common/flat_map.h"
#include "policy/policy.h"

namespace hq {

/**
 * Reliable event counting (§2's toy example): the program sends
 * EVENT-COUNT(id, delta) before each counted event. Because messages are
 * append-only, a later compromise cannot retract earlier increments.
 */
class EventCountContext : public PolicyContext
{
  public:
    explicit EventCountContext(Pid pid) : _pid(pid) {}

    Status handleMessage(const Message &message) override;
    std::unique_ptr<PolicyContext> cloneForChild(Pid child) const override;
    std::size_t entryCount() const override { return _counters.size(); }

    /** Verified value of counter id (0 if never incremented). */
    std::uint64_t counter(std::uint64_t id) const;

  private:
    Pid _pid;
    FlatMap<std::uint64_t, std::uint64_t> _counters;
};

class EventCountPolicy : public Policy
{
  public:
    const std::string &name() const override { return _name; }

    std::unique_ptr<PolicyContext>
    makeContext(Pid pid) override
    {
        return std::make_unique<EventCountContext>(pid);
    }

  private:
    std::string _name = "event-count";
};

/**
 * Software watchdog (§4.3): the program sends HEARTBEAT(tick) messages
 * carrying a monotonic tick; a regression or a gap larger than the
 * configured budget is reported as a violation on the next heartbeat.
 */
class WatchdogContext : public PolicyContext
{
  public:
    WatchdogContext(Pid pid, std::uint64_t max_gap)
        : _pid(pid), _max_gap(max_gap)
    {}

    Status handleMessage(const Message &message) override;
    std::unique_ptr<PolicyContext> cloneForChild(Pid child) const override;

    std::uint64_t lastTick() const { return _last_tick; }

  private:
    Pid _pid;
    std::uint64_t _max_gap;
    std::uint64_t _last_tick = 0;
    bool _seen_any = false;
};

class WatchdogPolicy : public Policy
{
  public:
    explicit WatchdogPolicy(std::uint64_t max_gap = 1000)
        : _max_gap(max_gap)
    {}

    const std::string &name() const override { return _name; }

    std::unique_ptr<PolicyContext>
    makeContext(Pid pid) override
    {
        return std::make_unique<WatchdogContext>(pid, _max_gap);
    }

  private:
    std::uint64_t _max_gap;
    std::string _name = "watchdog";
};

} // namespace hq

#endif // HQ_POLICY_MISC_POLICIES_H
