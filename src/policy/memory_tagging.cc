#include "policy/memory_tagging.h"

namespace hq {

int
MemoryTaggingContext::tagOf(Addr address) const
{
    auto it = _regions.upper_bound(address);
    if (it == _regions.begin())
        return -1;
    --it;
    if (address >= it->first && address < it->first + it->second.size)
        return it->second.tag;
    return -1;
}

Status
MemoryTaggingContext::handleMessage(const Message &message)
{
    switch (message.op) {
      case Opcode::TagSet: {
        Region region;
        region.size = message.arg1 >> 8;
        region.tag = static_cast<std::uint8_t>(message.arg1 & 0xFF);
        if (region.size == 0) {
            // Retagging to size 0 removes the region (deallocation).
            _regions.erase(message.arg0);
            return Status::ok();
        }
        _regions[message.arg0] = region;
        return Status::ok();
      }

      case Opcode::TagCheck: {
        const int memory_tag = tagOf(message.arg0);
        const auto pointer_tag =
            static_cast<int>(message.arg1 & 0xFF);
        if (memory_tag >= 0 && memory_tag == pointer_tag)
            return Status::ok();
        ++_violations;
        return Status::error(StatusCode::PolicyViolation,
                             "memory-tagging: " + message.toString());
      }

      default:
        return Status::ok();
    }
}

std::unique_ptr<PolicyContext>
MemoryTaggingContext::cloneForChild(Pid child) const
{
    auto clone = std::make_unique<MemoryTaggingContext>(child);
    clone->_regions = _regions;
    return clone;
}

} // namespace hq
