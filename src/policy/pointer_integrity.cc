#include "policy/pointer_integrity.h"

#include <vector>

#include "common/log.h"

namespace hq {

Status
PointerIntegrityContext::violation(PointerViolation kind,
                                   const Message &message)
{
    _last_violation = kind;
    ++_violations;
    return Status::error(StatusCode::PolicyViolation,
                         "pointer-integrity: " + message.toString());
}

void
PointerIntegrityContext::notePeak()
{
    if (_pointers.size() > _max_entries)
        _max_entries = _pointers.size();
}

bool
PointerIntegrityContext::lookup(Addr address, std::uint64_t &value_out) const
{
    auto it = _pointers.find(address);
    if (it == _pointers.end())
        return false;
    value_out = it->second;
    return true;
}

Status
PointerIntegrityContext::handleMessage(const Message &message)
{
    switch (message.op) {
      case Opcode::Init:
      case Opcode::Syscall:
      case Opcode::Heartbeat:
      case Opcode::EventCount:
        return Status::ok(); // not pointer-policy relevant

      case Opcode::BlockSize:
        _pending_block_size = message.arg0;
        return Status::ok();

      case Opcode::PointerDefine:
        _pointers[message.arg0] = message.arg1;
        notePeak();
        return Status::ok();

      case Opcode::PointerCheck:
      case Opcode::PointerCheckInvalidate: {
        auto it = _pointers.find(message.arg0);
        if (it == _pointers.end()) {
            // Never defined or previously invalidated: a use-after-free
            // on a control-flow pointer.
            return violation(PointerViolation::UseAfterFree, message);
        }
        if (it->second != message.arg1)
            return violation(PointerViolation::Corrupted, message);
        if (message.op == Opcode::PointerCheckInvalidate)
            _pointers.erase(it);
        return Status::ok();
      }

      case Opcode::PointerInvalidate:
        _pointers.erase(message.arg0);
        return Status::ok();

      case Opcode::PointerBlockCopy:
      case Opcode::PointerBlockMove: {
        const Addr src = message.arg0;
        const Addr dst = message.arg1;
        const std::uint64_t size = _pending_block_size;
        _pending_block_size = 0;
        if (size == 0)
            return Status::ok();

        // Collect source pointers first: ranges may intersect for COPY.
        std::vector<std::pair<Addr, std::uint64_t>> moved;
        for (auto it = _pointers.lower_bound(src);
             it != _pointers.end() && it->first < src + size; ++it) {
            moved.emplace_back(dst + (it->first - src), it->second);
        }

        // MOVE removes the originals (realloc frees the source block).
        if (message.op == Opcode::PointerBlockMove) {
            auto it = _pointers.lower_bound(src);
            while (it != _pointers.end() && it->first < src + size)
                it = _pointers.erase(it);
        }

        // Pre-existing pointers in the destination are invalidated: the
        // raw bytes there were overwritten.
        {
            auto it = _pointers.lower_bound(dst);
            while (it != _pointers.end() && it->first < dst + size)
                it = _pointers.erase(it);
        }

        for (const auto &[addr, value] : moved)
            _pointers[addr] = value;
        notePeak();
        return Status::ok();
      }

      case Opcode::PointerBlockInvalidate: {
        const Addr base = message.arg0;
        const std::uint64_t size = message.arg1;
        auto it = _pointers.lower_bound(base);
        while (it != _pointers.end() && it->first < base + size)
            it = _pointers.erase(it);
        return Status::ok();
      }

      default:
        // Allocation opcodes reaching the pointer policy indicate a
        // misrouted message; not a program violation.
        logWarn("pointer-integrity ignoring ", message.toString());
        return Status::ok();
    }
}

std::unique_ptr<PolicyContext>
PointerIntegrityContext::cloneForChild(Pid child) const
{
    auto clone = std::make_unique<PointerIntegrityContext>(child);
    clone->_pointers = _pointers;
    clone->_pending_block_size = _pending_block_size;
    clone->_max_entries = _pointers.size();
    return clone;
}

} // namespace hq
