#include "policy/pointer_integrity.h"

#include <vector>

#include "common/log.h"

namespace hq {

Status
PointerIntegrityContext::violation(PointerViolation kind,
                                   const Message &message)
{
    _last_violation = kind;
    ++_violations;
    return Status::error(StatusCode::PolicyViolation,
                         "pointer-integrity: " + message.toString());
}

void
PointerIntegrityContext::notePeak()
{
    if (_pointers.size() > _max_entries)
        _max_entries = _pointers.size();
}

bool
PointerIntegrityContext::lookup(Addr address, std::uint64_t &value_out) const
{
    const std::uint64_t *value = _pointers.find(address);
    if (value == nullptr)
        return false;
    value_out = *value;
    return true;
}

Status
PointerIntegrityContext::handleMessage(const Message &message)
{
    switch (message.op) {
      case Opcode::Init:
      case Opcode::Syscall:
      case Opcode::Heartbeat:
      case Opcode::EventCount:
        return Status::ok(); // not pointer-policy relevant

      case Opcode::LabelDef:
      case Opcode::LabelCheck:
      case Opcode::LabelJoin:
        // Another policy family's traffic on the shared stream (the
        // IFC label policy); a CFI-only verifier accepts it untouched.
        return Status::ok();

      case Opcode::BlockSize:
        _pending_block_size = message.arg0;
        return Status::ok();

      case Opcode::PointerDefine:
        _pointers[message.arg0] = message.arg1;
        notePeak();
        return Status::ok();

      case Opcode::PointerCheck:
      case Opcode::PointerCheckInvalidate: {
        const std::uint64_t *value = _pointers.find(message.arg0);
        if (value == nullptr) {
            // Never defined or previously invalidated: a use-after-free
            // on a control-flow pointer.
            return violation(PointerViolation::UseAfterFree, message);
        }
        if (*value != message.arg1)
            return violation(PointerViolation::Corrupted, message);
        if (message.op == Opcode::PointerCheckInvalidate)
            _pointers.erase(message.arg0);
        return Status::ok();
      }

      case Opcode::PointerInvalidate:
        _pointers.erase(message.arg0);
        return Status::ok();

      case Opcode::PointerBlockCopy:
      case Opcode::PointerBlockMove: {
        const Addr src = message.arg0;
        const Addr dst = message.arg1;
        const std::uint64_t size = _pending_block_size;
        _pending_block_size = 0;
        if (size == 0)
            return Status::ok();

        // Block operations are rare (memcpy/realloc boundaries) and the
        // shadow store is small, so a full scan replaces the ordered
        // range queries the old std::map offered. Collect first, then
        // mutate: erase invalidates scan positions, and source and
        // destination ranges may intersect for COPY.
        std::vector<std::pair<Addr, std::uint64_t>> moved;
        std::vector<Addr> stale;
        _pointers.forEach([&](Addr addr, std::uint64_t value) {
            if (addr >= src && addr < src + size) {
                moved.emplace_back(dst + (addr - src), value);
                // MOVE removes the originals (realloc frees the source).
                if (message.op == Opcode::PointerBlockMove)
                    stale.push_back(addr);
            }
            // Pre-existing pointers in the destination are invalidated:
            // the raw bytes there were overwritten.
            if (addr >= dst && addr < dst + size)
                stale.push_back(addr);
        });
        for (Addr addr : stale)
            _pointers.erase(addr);
        for (const auto &[addr, value] : moved)
            _pointers[addr] = value;
        notePeak();
        return Status::ok();
      }

      case Opcode::PointerBlockInvalidate: {
        const Addr base = message.arg0;
        const std::uint64_t size = message.arg1;
        std::vector<Addr> stale;
        _pointers.forEach([&](Addr addr, std::uint64_t) {
            if (addr >= base && addr < base + size)
                stale.push_back(addr);
        });
        for (Addr addr : stale)
            _pointers.erase(addr);
        return Status::ok();
      }

      default:
        // Allocation opcodes reaching the pointer policy indicate a
        // misrouted message; not a program violation.
        logWarn("pointer-integrity ignoring ", message.toString());
        return Status::ok();
    }
}

std::unique_ptr<PolicyContext>
PointerIntegrityContext::cloneForChild(Pid child) const
{
    auto clone = std::make_unique<PointerIntegrityContext>(child);
    clone->_pointers = _pointers;
    clone->_pending_block_size = _pending_block_size;
    clone->_max_entries = _pointers.size();
    return clone;
}

} // namespace hq
