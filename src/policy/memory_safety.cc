#include "policy/memory_safety.h"

#include <vector>

#include "common/log.h"

namespace hq {

Status
MemorySafetyContext::violation(MemoryViolation kind, const Message &message)
{
    _last_violation = kind;
    ++_violations;
    return Status::error(StatusCode::PolicyViolation,
                         "memory-safety: " + message.toString());
}

bool
MemorySafetyContext::findContaining(Addr address, Addr &base_out) const
{
    // Live allocations never overlap (enforced on CREATE/EXTEND), so at
    // most one interval can contain the address; a full scan suffices.
    bool found = false;
    Addr base = 0;
    _allocations.forEach([&](Addr alloc_base, std::uint64_t size) {
        if (address >= alloc_base && address < alloc_base + size) {
            found = true;
            base = alloc_base;
        }
    });
    base_out = base;
    return found;
}

bool
MemorySafetyContext::overlapsExisting(Addr base, std::uint64_t size) const
{
    if (size == 0)
        return false;
    bool overlaps = false;
    _allocations.forEach([&](Addr alloc_base, std::uint64_t alloc_size) {
        if (alloc_base < base + size && base < alloc_base + alloc_size)
            overlaps = true;
    });
    return overlaps;
}

bool
MemorySafetyContext::isLive(Addr address) const
{
    Addr base;
    return findContaining(address, base);
}

Status
MemorySafetyContext::handleMessage(const Message &message)
{
    switch (message.op) {
      case Opcode::Init:
      case Opcode::Syscall:
      case Opcode::Heartbeat:
      case Opcode::EventCount:
        return Status::ok();

      case Opcode::BlockSize:
        _pending_block_size = message.arg0;
        return Status::ok();

      case Opcode::AllocCreate: {
        const Addr base = message.arg0;
        const std::uint64_t size = message.arg1;
        if (overlapsExisting(base, size))
            return violation(MemoryViolation::OverlapCreate, message);
        _allocations[base] = size;
        return Status::ok();
      }

      case Opcode::AllocCheck: {
        Addr base;
        if (!findContaining(message.arg0, base))
            return violation(MemoryViolation::OutOfBounds, message);
        return Status::ok();
      }

      case Opcode::AllocCheckBase: {
        Addr base1, base2;
        const bool ok1 = findContaining(message.arg0, base1);
        const bool ok2 = findContaining(message.arg1, base2);
        if (!ok1 || !ok2)
            return violation(MemoryViolation::OutOfBounds, message);
        if (base1 != base2)
            return violation(MemoryViolation::CrossAllocation, message);
        return Status::ok();
      }

      case Opcode::AllocExtend: {
        const Addr src = message.arg0;
        const Addr dst = message.arg1;
        const std::uint64_t size = _pending_block_size;
        _pending_block_size = 0;
        if (!_allocations.erase(src))
            return violation(MemoryViolation::InvalidFree, message);
        if (overlapsExisting(dst, size)) {
            // Reinstate nothing: the extend target is invalid.
            return violation(MemoryViolation::OverlapCreate, message);
        }
        _allocations[dst] = size;
        return Status::ok();
      }

      case Opcode::AllocDestroy:
        if (!_allocations.erase(message.arg0))
            return violation(MemoryViolation::InvalidFree, message);
        return Status::ok();

      case Opcode::AllocDestroyAll: {
        const Addr base = message.arg0;
        const std::uint64_t size = message.arg1;
        std::vector<Addr> stale;
        _allocations.forEach([&](Addr alloc_base, std::uint64_t) {
            if (alloc_base >= base && alloc_base < base + size)
                stale.push_back(alloc_base);
        });
        for (Addr alloc_base : stale)
            _allocations.erase(alloc_base);
        if (stale.empty())
            return violation(MemoryViolation::InvalidFree, message);
        return Status::ok();
      }

      default:
        logWarn("memory-safety ignoring ", message.toString());
        return Status::ok();
    }
}

std::unique_ptr<PolicyContext>
MemorySafetyContext::cloneForChild(Pid child) const
{
    auto clone = std::make_unique<MemorySafetyContext>(child);
    clone->_allocations = _allocations;
    clone->_pending_block_size = _pending_block_size;
    return clone;
}

} // namespace hq
