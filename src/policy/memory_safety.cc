#include "policy/memory_safety.h"

#include "common/log.h"

namespace hq {

Status
MemorySafetyContext::violation(MemoryViolation kind, const Message &message)
{
    _last_violation = kind;
    ++_violations;
    return Status::error(StatusCode::PolicyViolation,
                         "memory-safety: " + message.toString());
}

std::map<Addr, std::uint64_t>::const_iterator
MemorySafetyContext::findContaining(Addr address) const
{
    auto it = _allocations.upper_bound(address);
    if (it == _allocations.begin())
        return _allocations.end();
    --it;
    if (address >= it->first && address < it->first + it->second)
        return it;
    return _allocations.end();
}

bool
MemorySafetyContext::overlapsExisting(Addr base, std::uint64_t size) const
{
    if (size == 0)
        return false;
    // Allocation starting before base that extends into [base, base+size)?
    auto it = _allocations.upper_bound(base);
    if (it != _allocations.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second > base)
            return true;
    }
    // Allocation starting inside [base, base+size)?
    return it != _allocations.end() && it->first < base + size;
}

bool
MemorySafetyContext::isLive(Addr address) const
{
    return findContaining(address) != _allocations.end();
}

Status
MemorySafetyContext::handleMessage(const Message &message)
{
    switch (message.op) {
      case Opcode::Init:
      case Opcode::Syscall:
      case Opcode::Heartbeat:
      case Opcode::EventCount:
        return Status::ok();

      case Opcode::BlockSize:
        _pending_block_size = message.arg0;
        return Status::ok();

      case Opcode::AllocCreate: {
        const Addr base = message.arg0;
        const std::uint64_t size = message.arg1;
        if (overlapsExisting(base, size))
            return violation(MemoryViolation::OverlapCreate, message);
        _allocations[base] = size;
        return Status::ok();
      }

      case Opcode::AllocCheck:
        if (findContaining(message.arg0) == _allocations.end())
            return violation(MemoryViolation::OutOfBounds, message);
        return Status::ok();

      case Opcode::AllocCheckBase: {
        auto a1 = findContaining(message.arg0);
        auto a2 = findContaining(message.arg1);
        if (a1 == _allocations.end() || a2 == _allocations.end())
            return violation(MemoryViolation::OutOfBounds, message);
        if (a1 != a2)
            return violation(MemoryViolation::CrossAllocation, message);
        return Status::ok();
      }

      case Opcode::AllocExtend: {
        const Addr src = message.arg0;
        const Addr dst = message.arg1;
        const std::uint64_t size = _pending_block_size;
        _pending_block_size = 0;
        auto it = _allocations.find(src);
        if (it == _allocations.end())
            return violation(MemoryViolation::InvalidFree, message);
        _allocations.erase(it);
        if (overlapsExisting(dst, size)) {
            // Reinstate nothing: the extend target is invalid.
            return violation(MemoryViolation::OverlapCreate, message);
        }
        _allocations[dst] = size;
        return Status::ok();
      }

      case Opcode::AllocDestroy: {
        auto it = _allocations.find(message.arg0);
        if (it == _allocations.end())
            return violation(MemoryViolation::InvalidFree, message);
        _allocations.erase(it);
        return Status::ok();
      }

      case Opcode::AllocDestroyAll: {
        const Addr base = message.arg0;
        const std::uint64_t size = message.arg1;
        auto it = _allocations.lower_bound(base);
        bool any = false;
        while (it != _allocations.end() && it->first < base + size) {
            it = _allocations.erase(it);
            any = true;
        }
        if (!any)
            return violation(MemoryViolation::InvalidFree, message);
        return Status::ok();
      }

      default:
        logWarn("memory-safety ignoring ", message.toString());
        return Status::ok();
    }
}

std::unique_ptr<PolicyContext>
MemorySafetyContext::cloneForChild(Pid child) const
{
    auto clone = std::make_unique<MemorySafetyContext>(child);
    clone->_allocations = _allocations;
    clone->_pending_block_size = _pending_block_size;
    return clone;
}

} // namespace hq
