#include "policy/policy_module.h"

namespace hq {

Status
MultiPolicyContext::handleMessage(const Message &message)
{
    _last_family = "";
    for (Slot &slot : _slots) {
        Status status = slot.context->handleMessage(message);
        if (!status.isOk()) {
            _last_family = slot.family.c_str();
            return status;
        }
    }
    return Status::ok();
}

void
MultiPolicyContext::prefetchBatch(const Message *messages, std::size_t count)
{
    for (Slot &slot : _slots)
        slot.context->prefetchBatch(messages, count);
}

std::unique_ptr<PolicyContext>
MultiPolicyContext::cloneForChild(Pid child) const
{
    std::vector<Slot> clones;
    clones.reserve(_slots.size());
    for (const Slot &slot : _slots)
        clones.push_back({slot.family, slot.context->cloneForChild(child)});
    return std::make_unique<MultiPolicyContext>(std::move(clones));
}

std::size_t
MultiPolicyContext::entryCount() const
{
    std::size_t total = 0;
    for (const Slot &slot : _slots)
        total += slot.context->entryCount();
    return total;
}

PolicyContext *
MultiPolicyContext::contextFor(const std::string &family)
{
    for (Slot &slot : _slots) {
        if (slot.family == family)
            return slot.context.get();
    }
    return nullptr;
}

MultiPolicy &
MultiPolicy::add(std::unique_ptr<PolicyModule> module)
{
    _modules.push_back(std::move(module));
    return *this;
}

MultiPolicy &
MultiPolicy::addPolicy(std::unique_ptr<Policy> policy)
{
    return add(std::make_unique<PolicyModuleAdapter>(std::move(policy)));
}

std::unique_ptr<PolicyContext>
MultiPolicy::makeContext(Pid pid)
{
    std::vector<MultiPolicyContext::Slot> slots;
    slots.reserve(_modules.size());
    for (auto &module : _modules) {
        if (!module->appliesTo(pid))
            continue;
        slots.push_back({module->family(), module->makeContext(pid)});
    }
    return std::make_unique<MultiPolicyContext>(std::move(slots));
}

} // namespace hq
