#include "policy/ifc.h"

#include <algorithm>

#include "telemetry/telemetry.h"

namespace hq {

HQ_TELEMETRY_HANDLE(ifcChecksCounter, Counter, "verifier.ifc.checks")
HQ_TELEMETRY_HANDLE(ifcViolationsCounter, Counter, "verifier.ifc.violations")
HQ_TELEMETRY_HANDLE(ifcJoinsCounter, Counter, "verifier.ifc.label_joins")

std::uint64_t
IfcContext::labelOf(Addr address) const
{
    const std::uint64_t *label = _labels.find(address);
    return label == nullptr ? label::kPublic : *label;
}

Status
IfcContext::handleMessage(const Message &message)
{
    switch (message.op) {
      case Opcode::LabelDef:
        // PUBLIC is the bottom element and the table's implicit default;
        // storing it would only bloat the slice, so clear instead.
        if (message.arg1 == label::kPublic)
            _labels.erase(message.arg0);
        else
            _labels[message.arg0] = message.arg1;
        return Status::ok();

      case Opcode::LabelJoin: {
        if (telemetry::enabled())
            ifcJoinsCounter().add(1);
        const std::uint64_t src = labelOf(message.arg0);
        if (src == label::kPublic)
            return Status::ok(); // join with bottom is a no-op
        _labels[message.arg1] |= src;
        return Status::ok();
      }

      case Opcode::LabelCheck: {
        if (telemetry::enabled())
            ifcChecksCounter().add(1);
        const std::uint64_t flowing = labelOf(message.arg0);
        const std::uint64_t forbidden = message.arg1;
        if ((flowing & forbidden) == 0)
            return Status::ok();
        ++_violations;
        if (telemetry::enabled())
            ifcViolationsCounter().add(1);
        return Status::error(StatusCode::PolicyViolation,
                             "information-flow-control: " +
                                 message.toString());
      }

      default:
        return Status::ok(); // other policies' traffic
    }
}

std::unique_ptr<PolicyContext>
IfcContext::cloneForChild(Pid child) const
{
    auto clone = std::make_unique<IfcContext>(child);
    clone->_labels = _labels;
    return clone;
}

std::vector<std::pair<Addr, std::uint64_t>>
IfcContext::tableSnapshot() const
{
    std::vector<std::pair<Addr, std::uint64_t>> entries;
    entries.reserve(_labels.size());
    _labels.forEach([&entries](Addr address, std::uint64_t label) {
        entries.emplace_back(address, label);
    });
    std::sort(entries.begin(), entries.end());
    return entries;
}

std::uint64_t
IfcContext::tableFingerprint() const
{
    std::uint64_t hash = 0xcbf29ce484222325ull; // FNV-1a offset basis
    auto mix = [&hash](std::uint64_t value) {
        for (int i = 0; i < 8; ++i) {
            hash ^= (value >> (i * 8)) & 0xFF;
            hash *= 0x100000001b3ull;
        }
    };
    for (const auto &[address, label] : tableSnapshot()) {
        mix(address);
        mix(label);
    }
    return hash;
}

} // namespace hq
