/**
 * @file
 * Taint / information-flow-control label policy.
 *
 * The second policy family on the HerQules message stream (the paper's
 * §4.3 argues the queue is policy-agnostic; LIO-style label tracking is
 * the canonical non-CFI example). Labels form a join-semilattice encoded
 * as a 64-bit bitmask: PUBLIC (0) is bottom, each bit is an independent
 * taint facet (SECRET, TAINTED, ...), and the join of two labels is
 * their bitwise OR. The instrumented program reports
 *
 *   LABEL-DEF(a, label)   bind `label` to address a (0 clears it)
 *   LABEL-JOIN(src, dst)  data flowed src -> dst; label(dst) |= label(src)
 *   LABEL-CHECK(a, forbid) value at a reaches a sink forbidding `forbid`
 *
 * and the verifier keeps a per-process address->label FlatMap slice,
 * flagging any check whose joined label intersects the sink's forbidden
 * set — the signature of a data-only leak that CFI cannot see (control
 * flow stays entirely valid).
 */

#ifndef HQ_POLICY_IFC_H
#define HQ_POLICY_IFC_H

#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "policy/policy.h"

namespace hq {

/** Well-known label facets (any of the 64 bits is a valid facet). */
namespace label {
constexpr std::uint64_t kPublic = 0;       //!< lattice bottom
constexpr std::uint64_t kTainted = 1u << 0; //!< attacker-influenced input
constexpr std::uint64_t kSecret = 1u << 1;  //!< confidential data
} // namespace label

class IfcContext : public PolicyContext
{
  public:
    explicit IfcContext(Pid pid) : _pid(pid) {}

    Status handleMessage(const Message &message) override;
    std::unique_ptr<PolicyContext> cloneForChild(Pid child) const override;
    std::size_t entryCount() const override { return _labels.size(); }
    const char *violationFamily() const override { return "ifc"; }

    /** Prefetch the label-table buckets a drained batch will probe. */
    void
    prefetchBatch(const Message *messages, std::size_t count) override
    {
        for (std::size_t i = 0; i < count; ++i) {
            switch (messages[i].op) {
              case Opcode::LabelDef:
              case Opcode::LabelCheck:
              case Opcode::LabelJoin:
                _labels.prefetch(messages[i].arg0);
                break;
              default:
                break;
            }
        }
    }

    /** Current label of an address (kPublic when unlabeled). */
    std::uint64_t labelOf(Addr address) const;

    std::uint64_t violationCount() const { return _violations; }

    /**
     * Order-independent fingerprint of the label table (FNV-1a over the
     * sorted (address, label) pairs). Two tables holding identical
     * bindings fingerprint identically regardless of FlatMap probe
     * history — the crash-recovery replay tests compare a replayed
     * verifier's table against an uncrashed reference with this.
     */
    std::uint64_t tableFingerprint() const;

    /** Sorted (address, label) snapshot (test hook). */
    std::vector<std::pair<Addr, std::uint64_t>> tableSnapshot() const;

  private:
    Pid _pid;
    /// Address -> label bitmask. Same open-addressed FlatMap slice shape
    /// as the CFI shadow store; unlabeled (PUBLIC) addresses hold no
    /// entry so entryCount() reflects only live taint.
    FlatMap<Addr, std::uint64_t> _labels;
    std::uint64_t _violations = 0;
};

class IfcPolicy : public Policy
{
  public:
    const std::string &name() const override { return _name; }

    std::unique_ptr<PolicyContext>
    makeContext(Pid pid) override
    {
        return std::make_unique<IfcContext>(pid);
    }

  private:
    std::string _name = "information-flow-control";
};

} // namespace hq

#endif // HQ_POLICY_IFC_H
