/**
 * @file
 * Execution-policy interface for the verifier (paper §4).
 *
 * A Policy is a factory for per-process PolicyContexts. The verifier
 * allocates a context when a monitored process enables HerQules, copies
 * it on fork/clone, and destroys it at process exit (§3.4). Each context
 * consumes the process's AppendWrite message stream and reports
 * violations through Status.
 */

#ifndef HQ_POLICY_POLICY_H
#define HQ_POLICY_POLICY_H

#include <cstddef>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "ipc/message.h"

namespace hq {

/** Per-process policy state. */
class PolicyContext
{
  public:
    virtual ~PolicyContext() = default;

    /**
     * Consume one message from the monitored process.
     * @return PolicyViolation status when a check fails; Ok otherwise.
     */
    virtual Status handleMessage(const Message &message) = 0;

    /**
     * Batched cache warm-up: the verifier is about to feed these
     * messages to handleMessage() in order. Implementations with large
     * point-lookup tables prefetch the buckets the batch will probe so
     * the misses overlap; the default does nothing. Must not mutate
     * state or report violations — purely a performance hint.
     */
    virtual void
    prefetchBatch(const Message *messages, std::size_t count)
    {
        (void)messages;
        (void)count;
    }

    /** Deep-copy the context for a fork/clone child. */
    virtual std::unique_ptr<PolicyContext> cloneForChild(Pid child) const = 0;

    /**
     * Number of metadata entries held (the §5.4 memory-overhead metric:
     * 16-byte pointer-value pairs for the CFI policy).
     */
    virtual std::size_t entryCount() const { return 0; }

    /**
     * Short policy-family tag ("cfi", "ifc", "dfi", ...) attached to
     * JSONL violation records as the "policy" field. Composite contexts
     * return the family of the module that raised the most recent
     * violation; the default covers contexts predating policy
     * diversity.
     */
    virtual const char *violationFamily() const { return ""; }
};

/** A policy: names itself and mints per-process contexts. */
class Policy
{
  public:
    virtual ~Policy() = default;

    virtual const std::string &name() const = 0;

    virtual std::unique_ptr<PolicyContext> makeContext(Pid pid) = 0;
};

} // namespace hq

#endif // HQ_POLICY_POLICY_H
