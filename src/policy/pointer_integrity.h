/**
 * @file
 * Fine-grained pointer-integrity policy — the HQ-CFI verifier side
 * (paper §4.1.2-§4.1.5).
 *
 * The verifier keeps a shadow copy of every protected control-flow
 * pointer (function pointers, vtable pointers, vtable-table pointers,
 * and — under HQ-CFI-RetPtr — return pointers) as 16-byte address/value
 * pairs. POINTER-CHECK compares the program's runtime value against the
 * shadow copy: a mismatch means corruption; a missing entry means the
 * pointer was invalidated earlier, i.e. a use-after-free on a
 * control-flow pointer, which prior CFI designs cannot detect.
 *
 * Block operations mirror the memcpy/memmove/realloc/free semantics of
 * §4.1.3: pointers move with the bytes that contain them and pre-existing
 * destination pointers are invalidated.
 */

#ifndef HQ_POLICY_POINTER_INTEGRITY_H
#define HQ_POLICY_POINTER_INTEGRITY_H

#include <cstdint>

#include "common/flat_map.h"
#include "common/stats.h"
#include "policy/policy.h"

namespace hq {

/** Classifies a detected pointer-integrity violation. */
enum class PointerViolation {
    None,
    Corrupted,    //!< value differs from the shadow copy
    UseAfterFree, //!< checked pointer was previously invalidated
    Integrity,    //!< transport-integrity failure (dropped message)
};

class PointerIntegrityContext : public PolicyContext
{
  public:
    explicit PointerIntegrityContext(Pid pid) : _pid(pid) {}

    Status handleMessage(const Message &message) override;
    std::unique_ptr<PolicyContext> cloneForChild(Pid child) const override;
    std::size_t entryCount() const override { return _pointers.size(); }
    const char *violationFamily() const override { return "cfi"; }

    /** Prefetch the shadow-store buckets a drained batch will probe
     *  (point-lookup opcodes only; block operations scan anyway). */
    void
    prefetchBatch(const Message *messages, std::size_t count) override
    {
        for (std::size_t i = 0; i < count; ++i) {
            switch (messages[i].op) {
              case Opcode::PointerDefine:
              case Opcode::PointerCheck:
              case Opcode::PointerInvalidate:
              case Opcode::PointerCheckInvalidate:
                _pointers.prefetch(messages[i].arg0);
                break;
              default:
                break;
            }
        }
    }

    /** Kind of the most recent violation (for tests and RIPE harness). */
    PointerViolation lastViolation() const { return _last_violation; }

    /** Total violations recorded over the context lifetime. */
    std::uint64_t violationCount() const { return _violations; }

    /** Shadow value of pointer at address, if defined (test hook). */
    bool lookup(Addr address, std::uint64_t &value_out) const;

    /** High-water mark of shadow entries (§5.4 memory metric). */
    std::size_t maxEntryCount() const { return _max_entries; }

  private:
    Status violation(PointerViolation kind, const Message &message);
    void notePeak();

    Pid _pid;
    /// Shadow pointer store: address -> expected value. Open-addressed
    /// flat map: DEFINE/CHECK/INVALIDATE (the per-message hot path) are
    /// point lookups; the rare block operations (memcpy/realloc/free
    /// boundaries) scan the table instead of using ordered ranges, which
    /// is cheap at observed shadow-store sizes (§5.4: low hundreds).
    FlatMap<Addr, std::uint64_t> _pointers;
    std::uint64_t _pending_block_size = 0;
    PointerViolation _last_violation = PointerViolation::None;
    std::uint64_t _violations = 0;
    std::size_t _max_entries = 0;
};

class PointerIntegrityPolicy : public Policy
{
  public:
    const std::string &name() const override { return _name; }

    std::unique_ptr<PolicyContext>
    makeContext(Pid pid) override
    {
        return std::make_unique<PointerIntegrityContext>(pid);
    }

  private:
    std::string _name = "pointer-integrity";
};

} // namespace hq

#endif // HQ_POLICY_POINTER_INTEGRITY_H
