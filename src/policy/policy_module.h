/**
 * @file
 * Pluggable policy modules (Schlegel-style application-specific
 * policies behind the trusted enforcement boundary).
 *
 * A PolicyModule packages one policy family — a family tag, a
 * per-process context factory, and an applicability predicate — so
 * several families (CFI, IFC, DFI, app-specific) can be registered on
 * one verifier and enforced over the same message stream. MultiPolicy
 * is the composition point: it is itself a Policy, so the verifier's
 * drain path is unchanged; its per-process context fans each message
 * out to every applicable module's sub-context (batched prefetch
 * included) and reports the first failing module's verdict.
 *
 * Registration happens per-pid at context-creation time (the paper's
 * registration step 1b): appliesTo(pid) decides whether a module's
 * sub-context is minted for that process at all, so an app-specific
 * module pays nothing for processes it does not cover.
 */

#ifndef HQ_POLICY_POLICY_MODULE_H
#define HQ_POLICY_POLICY_MODULE_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "policy/policy.h"

namespace hq {

/** One pluggable policy family. */
class PolicyModule
{
  public:
    virtual ~PolicyModule() = default;

    /** Family tag carried by violation records ("cfi", "ifc", ...). */
    virtual const char *family() const = 0;

    /** Mint the per-process state for one monitored pid. */
    virtual std::unique_ptr<PolicyContext> makeContext(Pid pid) = 0;

    /**
     * Whether this module covers `pid`. Application-specific modules
     * override this to scope themselves to the processes they know;
     * the default enforces everywhere.
     */
    virtual bool
    appliesTo(Pid pid)
    {
        (void)pid;
        return true;
    }
};

/**
 * Adapts an existing Policy (PointerIntegrityPolicy & co.) into a
 * module without touching the policy class itself. The family tag
 * comes from a freshly minted context's violationFamily().
 */
class PolicyModuleAdapter : public PolicyModule
{
  public:
    explicit PolicyModuleAdapter(std::unique_ptr<Policy> policy)
        : _policy(std::move(policy)),
          _family(_policy->makeContext(0)->violationFamily())
    {}

    const char *family() const override { return _family.c_str(); }

    std::unique_ptr<PolicyContext>
    makeContext(Pid pid) override
    {
        return _policy->makeContext(pid);
    }

  private:
    std::unique_ptr<Policy> _policy;
    std::string _family;
};

/** Composite per-process context: fans messages out to every module. */
class MultiPolicyContext : public PolicyContext
{
  public:
    struct Slot
    {
        std::string family;
        std::unique_ptr<PolicyContext> context;
    };

    explicit MultiPolicyContext(std::vector<Slot> slots)
        : _slots(std::move(slots))
    {}

    Status handleMessage(const Message &message) override;
    void prefetchBatch(const Message *messages, std::size_t count) override;
    std::unique_ptr<PolicyContext> cloneForChild(Pid child) const override;
    std::size_t entryCount() const override;
    const char *violationFamily() const override { return _last_family; }

    /** Sub-context of the module tagged `family` (nullptr if absent). */
    PolicyContext *contextFor(const std::string &family);

  private:
    std::vector<Slot> _slots;
    /// Family of the most recent violating module; every message that
    /// passes cleanly resets it so a stale tag never outlives its
    /// violation record.
    const char *_last_family = "";
};

/**
 * A Policy composed of registered PolicyModules. Register modules
 * before handing the policy to the verifier; registration order is
 * enforcement order (first failing module wins the verdict).
 */
class MultiPolicy : public Policy
{
  public:
    const std::string &name() const override { return _name; }

    /** Register one module. Returns *this for chaining. */
    MultiPolicy &add(std::unique_ptr<PolicyModule> module);

    /** Convenience: wrap and register a plain Policy. */
    MultiPolicy &addPolicy(std::unique_ptr<Policy> policy);

    std::unique_ptr<PolicyContext> makeContext(Pid pid) override;

    std::size_t moduleCount() const { return _modules.size(); }

  private:
    std::string _name = "multi-policy";
    std::vector<std::unique_ptr<PolicyModule>> _modules;
};

} // namespace hq

#endif // HQ_POLICY_POLICY_MODULE_H
