#include "policy/misc_policies.h"

namespace hq {

Status
EventCountContext::handleMessage(const Message &message)
{
    if (message.op == Opcode::EventCount)
        _counters[message.arg0] += message.arg1;
    return Status::ok();
}

std::unique_ptr<PolicyContext>
EventCountContext::cloneForChild(Pid child) const
{
    auto clone = std::make_unique<EventCountContext>(child);
    clone->_counters = _counters;
    return clone;
}

std::uint64_t
EventCountContext::counter(std::uint64_t id) const
{
    const std::uint64_t *value = _counters.find(id);
    return value == nullptr ? 0 : *value;
}

Status
WatchdogContext::handleMessage(const Message &message)
{
    if (message.op != Opcode::Heartbeat)
        return Status::ok();
    const std::uint64_t tick = message.arg0;
    if (_seen_any) {
        if (tick <= _last_tick || tick - _last_tick > _max_gap) {
            _last_tick = tick;
            return Status::error(StatusCode::PolicyViolation,
                                 "watchdog: heartbeat gap or regression");
        }
    }
    _seen_any = true;
    _last_tick = tick;
    return Status::ok();
}

std::unique_ptr<PolicyContext>
WatchdogContext::cloneForChild(Pid child) const
{
    auto clone = std::make_unique<WatchdogContext>(child, _max_gap);
    clone->_last_tick = _last_tick;
    clone->_seen_any = _seen_any;
    return clone;
}

} // namespace hq
