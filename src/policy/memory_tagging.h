/**
 * @file
 * Memory-tagging policy (§4.3 lists memory tagging among the policies
 * HerQules can host; the semantics follow ARM MTE: allocations carry a
 * small tag, pointers carry a matching tag, and an access whose pointer
 * tag differs from the memory tag is a spatial or temporal violation).
 *
 * Unlike hardware MTE's 4-bit tags and 16-byte granules, the verifier
 * keeps exact region extents, so tag reuse does not create the usual
 * 1-in-16 false-negative probability within a region.
 */

#ifndef HQ_POLICY_MEMORY_TAGGING_H
#define HQ_POLICY_MEMORY_TAGGING_H

#include <cstdint>
#include <map>

#include "policy/policy.h"

namespace hq {

class MemoryTaggingContext : public PolicyContext
{
  public:
    explicit MemoryTaggingContext(Pid pid) : _pid(pid) {}

    Status handleMessage(const Message &message) override;
    std::unique_ptr<PolicyContext> cloneForChild(Pid child) const override;
    std::size_t entryCount() const override { return _regions.size(); }

    std::uint64_t violationCount() const { return _violations; }

    /** Tag of the region containing address; -1 when untagged. */
    int tagOf(Addr address) const;

  private:
    struct Region
    {
        std::uint64_t size = 0;
        std::uint8_t tag = 0;
    };

    Pid _pid;
    std::map<Addr, Region> _regions;
    std::uint64_t _violations = 0;
};

class MemoryTaggingPolicy : public Policy
{
  public:
    const std::string &name() const override { return _name; }

    std::unique_ptr<PolicyContext>
    makeContext(Pid pid) override
    {
        return std::make_unique<MemoryTaggingContext>(pid);
    }

  private:
    std::string _name = "memory-tagging";
};

} // namespace hq

#endif // HQ_POLICY_MEMORY_TAGGING_H
