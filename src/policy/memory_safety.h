/**
 * @file
 * Memory-safety execution policy (paper §4.2).
 *
 * Enforces spatial safety (accesses stay inside their allocation) and
 * temporal safety (the allocation is still live) by tracking allocation
 * creation, access checks, extension, and destruction in an interval map.
 */

#ifndef HQ_POLICY_MEMORY_SAFETY_H
#define HQ_POLICY_MEMORY_SAFETY_H

#include <cstdint>

#include "common/flat_map.h"
#include "policy/policy.h"

namespace hq {

/** Classifies a detected memory-safety violation. */
enum class MemoryViolation {
    None,
    OutOfBounds,     //!< access outside any live allocation
    CrossAllocation, //!< two addresses in different allocations
    OverlapCreate,   //!< new allocation overlaps a live one
    InvalidFree,     //!< destroy of a non-allocation (or double free)
};

class MemorySafetyContext : public PolicyContext
{
  public:
    explicit MemorySafetyContext(Pid pid) : _pid(pid) {}

    Status handleMessage(const Message &message) override;
    std::unique_ptr<PolicyContext> cloneForChild(Pid child) const override;
    std::size_t entryCount() const override { return _allocations.size(); }

    MemoryViolation lastViolation() const { return _last_violation; }
    std::uint64_t violationCount() const { return _violations; }

    /** True when address lies inside a live allocation (test hook). */
    bool isLive(Addr address) const;

  private:
    Status violation(MemoryViolation kind, const Message &message);

    /**
     * Base of the live allocation containing address.
     * @return true and sets base_out when found.
     */
    bool findContaining(Addr address, Addr &base_out) const;

    /** True when [base, base+size) overlaps a live allocation. */
    bool overlapsExisting(Addr base, std::uint64_t size) const;

    Pid _pid;
    /// base address -> size of each live allocation. Open-addressed flat
    /// map: the hot opcodes (CREATE/DESTROY/EXTEND) are exact-base point
    /// lookups; the containment/overlap checks scan the table, which is
    /// cheap at the table sizes the §5.4 workloads reach (≈10²) and keeps
    /// the common path allocation- and pointer-chase-free.
    FlatMap<Addr, std::uint64_t> _allocations;
    std::uint64_t _pending_block_size = 0;
    MemoryViolation _last_violation = MemoryViolation::None;
    std::uint64_t _violations = 0;
};

class MemorySafetyPolicy : public Policy
{
  public:
    const std::string &name() const override { return _name; }

    std::unique_ptr<PolicyContext>
    makeContext(Pid pid) override
    {
        return std::make_unique<MemorySafetyContext>(pid);
    }

  private:
    std::string _name = "memory-safety";
};

} // namespace hq

#endif // HQ_POLICY_MEMORY_SAFETY_H
