/**
 * @file
 * Data-flow integrity policy (§4.3 names DFI as an example of the
 * broader policy family HerQules supports; the mechanism follows
 * Castro et al., OSDI'06).
 *
 * The compiler assigns each store instruction a writer id and computes,
 * per load, the set of writer ids reaching it (the static data-flow
 * graph). At runtime the program reports DFI-WRITE(addr, writer) before
 * each protected store and DFI-READ(addr, allowed_mask) before each
 * protected load; the verifier keeps a last-writer table and flags
 * loads observing a value produced by a disallowed writer — the
 * signature of a memory-corruption attack on non-control data.
 */

#ifndef HQ_POLICY_DATA_FLOW_H
#define HQ_POLICY_DATA_FLOW_H

#include <cstdint>

#include "common/flat_map.h"
#include "policy/policy.h"

namespace hq {

class DataFlowContext : public PolicyContext
{
  public:
    /** Writer id assigned to not-yet-written memory. */
    static constexpr std::uint64_t kInitialWriter = 0;

    explicit DataFlowContext(Pid pid) : _pid(pid) {}

    Status handleMessage(const Message &message) override;
    std::unique_ptr<PolicyContext> cloneForChild(Pid child) const override;
    std::size_t entryCount() const override { return _last_writer.size(); }
    const char *violationFamily() const override { return "dfi"; }

    std::uint64_t violationCount() const { return _violations; }

    /** Last recorded writer of an address (kInitialWriter if none). */
    std::uint64_t lastWriter(Addr address) const;

  private:
    Pid _pid;
    /// DFI last-writer table: every protected load and store hits it, so
    /// it uses the open-addressed flat map (point lookups only).
    FlatMap<Addr, std::uint64_t> _last_writer;
    std::uint64_t _violations = 0;
};

class DataFlowPolicy : public Policy
{
  public:
    const std::string &name() const override { return _name; }

    std::unique_ptr<PolicyContext>
    makeContext(Pid pid) override
    {
        return std::make_unique<DataFlowContext>(pid);
    }

  private:
    std::string _name = "data-flow-integrity";
};

} // namespace hq

#endif // HQ_POLICY_DATA_FLOW_H
