#include "policy/data_flow.h"

namespace hq {

std::uint64_t
DataFlowContext::lastWriter(Addr address) const
{
    const std::uint64_t *writer = _last_writer.find(address);
    return writer == nullptr ? kInitialWriter : *writer;
}

Status
DataFlowContext::handleMessage(const Message &message)
{
    switch (message.op) {
      case Opcode::DfiWrite:
        // Writer ids above 63 cannot be expressed in a read's allowed
        // bitmask; clamp defensively (the instrumentation assigns dense
        // small ids).
        _last_writer[message.arg0] = message.arg1 & 63;
        return Status::ok();

      case Opcode::DfiRead: {
        const std::uint64_t writer = lastWriter(message.arg0);
        const std::uint64_t allowed_mask = message.arg1;
        if ((allowed_mask >> writer) & 1)
            return Status::ok();
        ++_violations;
        return Status::error(StatusCode::PolicyViolation,
                             "data-flow-integrity: " +
                                 message.toString());
      }

      default:
        return Status::ok(); // other policies' traffic
    }
}

std::unique_ptr<PolicyContext>
DataFlowContext::cloneForChild(Pid child) const
{
    auto clone = std::make_unique<DataFlowContext>(child);
    clone->_last_writer = _last_writer;
    return clone;
}

} // namespace hq
