/**
 * @file
 * Textual dump of mini-IR modules, for debugging instrumentation
 * pipelines and inspecting generated benchmarks.
 */

#ifndef HQ_IR_PRINTER_H
#define HQ_IR_PRINTER_H

#include <string>

#include "ir/module.h"

namespace hq::ir {

/** Render one function as text (header, attrs, blocks, instructions). */
std::string printFunction(const Module &module, const Function &function);

/** Render the whole module (globals, classes, functions). */
std::string printModule(const Module &module);

} // namespace hq::ir

#endif // HQ_IR_PRINTER_H
