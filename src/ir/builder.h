/**
 * @file
 * Convenience builder for constructing mini-IR modules in workload
 * generators and tests. Maintains the single-assignment discipline
 * (every emitted instruction defines a fresh register).
 */

#ifndef HQ_IR_BUILDER_H
#define HQ_IR_BUILDER_H

#include <cassert>
#include <string>

#include "ir/module.h"

namespace hq::ir {

/** Builds one function at a time inside a module. */
class IrBuilder
{
  public:
    explicit IrBuilder(Module &module) : _module(module) {}

    // --- Module-level pieces ------------------------------------------

    /** Create a struct type; returns its id. */
    int addStruct(StructInfo info);

    /** Create a global; returns its id. */
    int addGlobal(Global global);

    /** Create a class with a read-only vtable global; returns class id. */
    int addClass(const std::string &name, std::vector<int> vtable_funcs,
                 int base_class = -1);

    /** Allocate a fresh signature class id for type-matching CFI. */
    int newSignatureClass();

    // --- Function construction ----------------------------------------

    /**
     * Begin a new function; subsequent emits go to its entry block.
     * @return the function id.
     */
    int beginFunction(const std::string &name, int num_params = 0,
                      int signature_class = 0);

    /** Finish the current function (verifies a terminator exists). */
    void endFunction();

    /** Create a new (empty) block in the current function. */
    int newBlock();

    /** Redirect emission to an existing block. */
    void setBlock(int block);

    int currentBlock() const { return _current_block; }
    Function &currentFunction();

    /** Register holding parameter `index` (parameters are r0..rN-1). */
    int param(int index) const { return index; }

    // --- Instruction emission (each returns the dest register or -1) ---

    int constInt(std::uint64_t value);
    int funcAddr(int func_id, int signature_class);
    int globalAddr(int global_id);
    int allocaOp(std::uint64_t size, TypeRef type = TypeRef::intTy());
    int arith(ArithKind kind, int a, int b);
    int cast(int value, TypeRef to);
    int load(int addr, TypeRef type);
    void store(int addr, int value, TypeRef type);
    void memcpyOp(int dst, int src, int size, TypeRef elem_type);
    void memmoveOp(int dst, int src, int size, TypeRef elem_type);
    int mallocOp(int size_reg);
    void freeOp(int addr);
    int reallocOp(int addr, int size_reg);
    int callDirect(int func_id, std::vector<int> args = {});
    int callIndirect(int funcptr, std::vector<int> args = {},
                     int signature_class = -1);
    int vcall(int object, int slot, std::vector<int> args = {},
              int static_class = -1);
    void syscall(std::uint64_t sysno);
    int setjmp(int jmp_buf_addr);
    void longjmp(int jmp_buf_addr, int value);
    int retAddrAddr();
    void ret(int value = -1);
    void br(int target);
    void condBr(int cond, int if_true, int if_false);

    /** Append an arbitrary pre-built instruction. */
    int emit(Instr instr);

  private:
    int freshReg();

    Module &_module;
    int _current_function = -1;
    int _current_block = -1;
};

} // namespace hq::ir

#endif // HQ_IR_BUILDER_H
