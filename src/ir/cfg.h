/**
 * @file
 * Control-flow graph utilities: successor/predecessor lists and reverse
 * postorder, the substrate for the dominator analyses the paper's
 * instrumentation relies on (§3.2, §4.1.4).
 */

#ifndef HQ_IR_CFG_H
#define HQ_IR_CFG_H

#include <vector>

#include "ir/module.h"

namespace hq::ir {

/** Successor/predecessor adjacency for one function's blocks. */
class Cfg
{
  public:
    explicit Cfg(const Function &function);

    const std::vector<int> &successors(int block) const
    {
        return _successors[block];
    }

    const std::vector<int> &predecessors(int block) const
    {
        return _predecessors[block];
    }

    /** Blocks in reverse postorder from the entry (unreachable omitted). */
    const std::vector<int> &reversePostorder() const { return _rpo; }

    /** Blocks ending in Ret (exit nodes for post-dominance). */
    const std::vector<int> &exitBlocks() const { return _exits; }

    int numBlocks() const { return static_cast<int>(_successors.size()); }

    /** True when the block is reachable from the entry. */
    bool reachable(int block) const { return _rpo_index[block] >= 0; }

    /** Position of a block in reverse postorder (-1 if unreachable). */
    int rpoIndex(int block) const { return _rpo_index[block]; }

  private:
    std::vector<std::vector<int>> _successors;
    std::vector<std::vector<int>> _predecessors;
    std::vector<int> _rpo;
    std::vector<int> _rpo_index;
    std::vector<int> _exits;
};

} // namespace hq::ir

#endif // HQ_IR_CFG_H
