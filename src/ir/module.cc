#include "ir/module.h"

#include <sstream>

namespace hq::ir {

const char *
irOpName(IrOp op)
{
    switch (op) {
      case IrOp::Nop: return "nop";
      case IrOp::ConstInt: return "const";
      case IrOp::FuncAddr: return "funcaddr";
      case IrOp::GlobalAddr: return "globaladdr";
      case IrOp::Alloca: return "alloca";
      case IrOp::Arith: return "arith";
      case IrOp::Cast: return "cast";
      case IrOp::Load: return "load";
      case IrOp::Store: return "store";
      case IrOp::Memcpy: return "memcpy";
      case IrOp::Memmove: return "memmove";
      case IrOp::Malloc: return "malloc";
      case IrOp::Free: return "free";
      case IrOp::Realloc: return "realloc";
      case IrOp::CallDirect: return "call";
      case IrOp::CallIndirect: return "icall";
      case IrOp::VCall: return "vcall";
      case IrOp::Syscall: return "syscall";
      case IrOp::Setjmp: return "setjmp";
      case IrOp::Longjmp: return "longjmp";
      case IrOp::RetAddrAddr: return "retaddraddr";
      case IrOp::Ret: return "ret";
      case IrOp::Br: return "br";
      case IrOp::CondBr: return "condbr";
      case IrOp::HqDefine: return "hq.define";
      case IrOp::HqCheck: return "hq.check";
      case IrOp::HqInvalidate: return "hq.invalidate";
      case IrOp::HqCheckInvalidate: return "hq.checkinvalidate";
      case IrOp::HqBlockCopy: return "hq.blockcopy";
      case IrOp::HqBlockMove: return "hq.blockmove";
      case IrOp::HqBlockInvalidate: return "hq.blockinvalidate";
      case IrOp::HqSyscallMsg: return "hq.syscall";
      case IrOp::HqGuardEnter: return "hq.guard.enter";
      case IrOp::HqGuardExit: return "hq.guard.exit";
      case IrOp::DfiWriteMsg: return "dfi.write";
      case IrOp::DfiReadMsg: return "dfi.read";
      case IrOp::LabelDefMsg: return "ifc.labeldef";
      case IrOp::LabelCheckMsg: return "ifc.labelcheck";
      case IrOp::LabelJoinMsg: return "ifc.labeljoin";
      case IrOp::CfiTypeCheck: return "cfi.typecheck";
      case IrOp::MacDefine: return "ccfi.macdefine";
      case IrOp::MacCheck: return "ccfi.maccheck";
      case IrOp::SafeStore: return "cpi.safestore";
      case IrOp::SafeLoad: return "cpi.safeload";
      case IrOp::NumOps: break;
    }
    return "?";
}

std::string
Instr::toString() const
{
    std::ostringstream os;
    if (dest >= 0)
        os << "r" << dest << " = ";
    os << irOpName(op);
    if (a >= 0)
        os << " r" << a;
    if (b >= 0)
        os << ", r" << b;
    if (c >= 0)
        os << ", r" << c;
    if (imm != 0 || op == IrOp::ConstInt || op == IrOp::FuncAddr ||
        op == IrOp::GlobalAddr || op == IrOp::Syscall)
        os << " #" << imm;
    if (target0 >= 0)
        os << " ->bb" << target0;
    if (target1 >= 0)
        os << "/bb" << target1;
    if (!args.empty()) {
        os << " (";
        for (std::size_t i = 0; i < args.size(); ++i)
            os << (i ? ", r" : "r") << args[i];
        os << ")";
    }
    return os.str();
}

bool
Module::structContainsFuncPtr(int struct_id) const
{
    if (struct_id < 0 || struct_id >= static_cast<int>(structs.size()))
        return false;
    const StructInfo &info = structs[struct_id];
    for (const FieldInfo &field : info.fields) {
        if (field.type.isProtectedPtr())
            return true;
        if (field.type.kind == TypeKind::Struct &&
            field.type.struct_id != struct_id &&
            structContainsFuncPtr(field.type.struct_id)) {
            return true;
        }
    }
    return false;
}

std::size_t
Module::instructionCount() const
{
    std::size_t count = 0;
    for (const Function &function : functions)
        for (const BasicBlock &block : function.blocks)
            count += block.instrs.size();
    return count;
}

} // namespace hq::ir
