#include "ir/cfg.h"

#include <algorithm>

namespace hq::ir {

Cfg::Cfg(const Function &function)
{
    const int n = static_cast<int>(function.blocks.size());
    _successors.resize(n);
    _predecessors.resize(n);
    _rpo_index.assign(n, -1);

    for (int block = 0; block < n; ++block) {
        const Instr &term = function.blocks[block].terminator();
        switch (term.op) {
          case IrOp::Br:
            _successors[block].push_back(term.target0);
            break;
          case IrOp::CondBr:
            _successors[block].push_back(term.target0);
            if (term.target1 != term.target0)
                _successors[block].push_back(term.target1);
            break;
          case IrOp::Ret:
            _exits.push_back(block);
            break;
          default:
            break; // verifier rejects blocks without terminators
        }
        for (int succ : _successors[block])
            _predecessors[succ].push_back(block);
    }

    // Iterative postorder DFS from the entry block.
    std::vector<int> postorder;
    std::vector<char> visited(n, 0);
    std::vector<std::pair<int, std::size_t>> stack;
    if (n > 0) {
        stack.emplace_back(0, 0);
        visited[0] = 1;
    }
    while (!stack.empty()) {
        auto &[block, edge] = stack.back();
        if (edge < _successors[block].size()) {
            const int succ = _successors[block][edge++];
            if (!visited[succ]) {
                visited[succ] = 1;
                stack.emplace_back(succ, 0);
            }
        } else {
            postorder.push_back(block);
            stack.pop_back();
        }
    }

    _rpo.assign(postorder.rbegin(), postorder.rend());
    for (int i = 0; i < static_cast<int>(_rpo.size()); ++i)
        _rpo_index[_rpo[i]] = i;
}

} // namespace hq::ir
