/**
 * @file
 * Type system of the mini-IR.
 *
 * The reproduction replaces LLVM IR with a small typed IR. Types matter
 * to the instrumentation in exactly the ways the paper exploits them:
 * function-pointer-ness drives define/check placement, struct field
 * layouts drive the strict subtype checking of block memory operations,
 * and type *casts* model the decay that produces false positives in
 * type-matching CFI designs (Clang/LLVM CFI, CCFI).
 */

#ifndef HQ_IR_TYPE_H
#define HQ_IR_TYPE_H

#include <cstdint>
#include <string>
#include <vector>

namespace hq::ir {

enum class TypeKind : std::uint8_t {
    Void,
    Int,      //!< 64-bit integer
    DataPtr,  //!< pointer to non-code data
    FuncPtr,  //!< pointer to executable code (protected)
    VtablePtr,//!< C++ virtual-table pointer (protected, indirect)
    Struct,   //!< composite; fields described by StructInfo
};

/** Lightweight type handle: a kind plus an optional struct id. */
struct TypeRef
{
    TypeKind kind = TypeKind::Int;
    int struct_id = -1; //!< index into Module::structs when kind==Struct
    /**
     * Function-pointer signature class, used by type-matching CFI
     * designs: two function pointers are call-compatible under
     * Clang/LLVM CFI iff their signature classes match. Casts change
     * the static class without changing the runtime value — the source
     * of those designs' false positives.
     */
    int signature_class = -1;

    bool isFuncPtr() const { return kind == TypeKind::FuncPtr; }
    bool isVtablePtr() const { return kind == TypeKind::VtablePtr; }

    /** Pointer kinds that HQ-CFI protects (forward edges). */
    bool
    isProtectedPtr() const
    {
        return kind == TypeKind::FuncPtr || kind == TypeKind::VtablePtr;
    }

    static TypeRef voidTy() { return {TypeKind::Void, -1, -1}; }
    static TypeRef intTy() { return {TypeKind::Int, -1, -1}; }
    static TypeRef dataPtr() { return {TypeKind::DataPtr, -1, -1}; }

    static TypeRef
    funcPtr(int signature_class)
    {
        return {TypeKind::FuncPtr, -1, signature_class};
    }

    static TypeRef vtablePtr() { return {TypeKind::VtablePtr, -1, -1}; }

    static TypeRef
    structTy(int struct_id)
    {
        return {TypeKind::Struct, struct_id, -1};
    }

    bool
    operator==(const TypeRef &other) const
    {
        return kind == other.kind && struct_id == other.struct_id &&
               signature_class == other.signature_class;
    }
};

/** One field of a composite type. */
struct FieldInfo
{
    std::uint64_t offset = 0; //!< byte offset within the struct
    TypeRef type;
};

/** A composite (struct/class) type. */
struct StructInfo
{
    std::string name;
    std::uint64_t size = 0; //!< total size in bytes
    std::vector<FieldInfo> fields;
};

} // namespace hq::ir

#endif // HQ_IR_TYPE_H
