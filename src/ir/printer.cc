#include "ir/printer.h"

#include <sstream>

namespace hq::ir {

namespace {

const char *
sectionName(Section section)
{
    switch (section) {
      case Section::Data: return "data";
      case Section::Bss: return "bss";
      case Section::RoData: return "rodata";
    }
    return "?";
}

} // namespace

std::string
printFunction(const Module &module, const Function &function)
{
    std::ostringstream os;
    os << "func @" << function.name << "(params=" << function.num_params
       << ", regs=" << function.num_regs;
    if (function.signature_class >= 0)
        os << ", sig=" << function.signature_class;
    os << ")";
    if (function.attrs.address_taken)
        os << " address_taken";
    if (function.attrs.returns_twice)
        os << " returns_twice";
    if (function.attrs.instrument_return)
        os << " instrument_return";
    if (function.attrs.block_op_allowlisted)
        os << " block_op_allowlist";
    os << " {\n";
    for (std::size_t b = 0; b < function.blocks.size(); ++b) {
        os << "  bb" << b << ":\n";
        for (const Instr &instr : function.blocks[b].instrs) {
            os << "    " << instr.toString();
            if (instr.flags & kFlagInstrumentation)
                os << "  ; instrumented";
            if (instr.flags & kFlagEmitBlockMsg)
                os << "  ; +block-msg";
            os << "\n";
        }
    }
    os << "}\n";
    (void)module;
    return os.str();
}

std::string
printModule(const Module &module)
{
    std::ostringstream os;
    os << "module " << module.name << " (entry=" << module.entry_function
       << ")\n";
    for (const Global &global : module.globals) {
        os << "global @" << global.name << " [" << global.size
           << " bytes, " << sectionName(global.section) << "]";
        if (!global.funcptr_init.empty()) {
            os << " funcptrs={";
            for (const auto &[offset, fn] : global.funcptr_init)
                os << " +" << offset << ":@"
                   << module.functions[fn].name;
            os << " }";
        }
        os << "\n";
    }
    for (const ClassInfo &cls : module.classes) {
        os << "class " << cls.name << " vtable=[";
        for (int fn : cls.vtable)
            os << " " << (fn >= 0 ? module.functions[fn].name : "<pure>");
        os << " ]\n";
    }
    for (const Function &function : module.functions)
        os << printFunction(module, function);
    return os.str();
}

} // namespace hq::ir
