/**
 * @file
 * Functions, globals, classes, and modules of the mini-IR.
 */

#ifndef HQ_IR_MODULE_H
#define HQ_IR_MODULE_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instr.h"
#include "ir/type.h"

namespace hq::ir {

/** A basic block: straight-line instructions ending in a terminator. */
struct BasicBlock
{
    std::vector<Instr> instrs;

    const Instr &
    terminator() const
    {
        return instrs.back();
    }
};

/** Function attributes relevant to instrumentation decisions. */
struct FunctionAttrs
{
    bool address_taken = false; //!< may be an indirect-call target
    bool returns_twice = false; //!< setjmp-like: exempt from forwarding
    bool is_libc = false;       //!< part of the (recompiled) C library
    bool has_inline_syscall = false; //!< contains a Syscall instruction
    /**
     * Marks functions on the paper's block-operation allowlist: they
     * receive decayed function pointers inter-procedurally, so strict
     * subtype checking must not elide their block-op instrumentation.
     */
    bool block_op_allowlisted = false;
    /**
     * Return-pointer protection (set by instrumentation passes):
     * the VM defines the return pointer in the prologue and
     * check-invalidates it in the epilogue (HQ-CFI-RetPtr, §4.1.6), or
     * MACs it under CCFI.
     */
    bool instrument_return = false;
};

struct Function
{
    std::string name;
    int id = -1;
    int num_params = 0;
    int num_regs = 0; //!< size of the virtual register file
    /** Signature class for type-matching CFI designs. */
    int signature_class = 0;
    FunctionAttrs attrs;
    std::vector<BasicBlock> blocks;

    BasicBlock &entry() { return blocks.front(); }
    const BasicBlock &entry() const { return blocks.front(); }
};

/** Program section where a global lives (RIPE overflow origins). */
enum class Section : std::uint8_t {
    Data,   //!< initialized writable data
    Bss,    //!< zero-initialized writable data
    RoData, //!< read-only data (vtables, const function tables)
};

struct Global
{
    std::string name;
    int id = -1;
    std::uint64_t size = 0;
    Section section = Section::Data;
    TypeRef type;
    /**
     * Function-pointer initializers: (byte offset, function id) pairs
     * loaded into the global at startup. These are the "global
     * control-flow pointers" the paper's initializer function registers
     * with the verifier immediately after program startup.
     */
    std::vector<std::pair<std::uint64_t, int>> funcptr_init;
    /** Plain word initializers: (byte offset, value). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> word_init;
    /**
     * Signature class of the funcptr_init entries, used by the CCFI and
     * CPI startup registration (their constructors MAC/relocate global
     * control-flow pointers before main runs).
     */
    int funcptr_class = 0;

    // --- IFC annotations (source/sink attributes; compiler/ifc_passes) --
    /**
     * Source annotation: lattice label bound to this global's bytes at
     * startup (the IfcLoweringPass emits LABEL-DEF per 8-byte granule).
     * 0 = unlabeled.
     */
    std::uint64_t ifc_label = 0;
    /** Byte range the source label covers; size 0 = the whole global. */
    std::uint64_t ifc_label_offset = 0;
    std::uint64_t ifc_label_size = 0;
    /**
     * Sink annotation: values stored into this global must not carry
     * any of these label bits (LABEL-CHECK after every resolved store).
     * 0 = not a sink.
     */
    std::uint64_t ifc_sink_forbid = 0;
};

/** C++ class metadata for virtual dispatch and devirtualization. */
struct ClassInfo
{
    std::string name;
    int id = -1;
    int vtable_global = -1; //!< read-only global holding the vtable
    std::vector<int> vtable; //!< function id per slot
    int base_class = -1;     //!< single inheritance chain
};

struct Module
{
    std::string name;
    std::vector<Function> functions;
    std::vector<Global> globals;
    std::vector<StructInfo> structs;
    std::vector<ClassInfo> classes;
    int entry_function = -1;

    /**
     * Signature-class count (type-matching CFI equivalence classes).
     * Builders allocate class ids densely from 0.
     */
    int num_signature_classes = 0;

    Function *
    functionByName(const std::string &fn_name)
    {
        for (auto &function : functions) {
            if (function.name == fn_name)
                return &function;
        }
        return nullptr;
    }

    /** True when the struct (transitively) contains a protected pointer. */
    bool structContainsFuncPtr(int struct_id) const;

    /** Total instruction count across all functions (sizing stat). */
    std::size_t instructionCount() const;
};

} // namespace hq::ir

#endif // HQ_IR_MODULE_H
