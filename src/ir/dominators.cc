#include "ir/dominators.h"

#include <algorithm>

namespace hq::ir {

namespace {

/**
 * Reverse postorder over an adjacency list from a root.
 * Returns the visit order; unreached nodes are absent.
 */
std::vector<int>
reversePostorder(const std::vector<std::vector<int>> &succ, int root)
{
    std::vector<int> postorder;
    std::vector<char> visited(succ.size(), 0);
    std::vector<std::pair<int, std::size_t>> stack;
    stack.emplace_back(root, 0);
    visited[root] = 1;
    while (!stack.empty()) {
        auto &[node, edge] = stack.back();
        if (edge < succ[node].size()) {
            const int next = succ[node][edge++];
            if (!visited[next]) {
                visited[next] = 1;
                stack.emplace_back(next, 0);
            }
        } else {
            postorder.push_back(node);
            stack.pop_back();
        }
    }
    std::reverse(postorder.begin(), postorder.end());
    return postorder;
}

} // namespace

DominatorTree::DominatorTree(const Cfg &cfg, bool post) : _post(post)
{
    const int n = cfg.numBlocks();
    // Node n is the virtual exit for post-dominance.
    const int num_nodes = post ? n + 1 : n;
    const int root = post ? n : 0;

    // Build the (possibly reversed) graph the analysis runs on.
    std::vector<std::vector<int>> succ(num_nodes);
    std::vector<std::vector<int>> pred(num_nodes);
    if (!post) {
        for (int block = 0; block < n; ++block) {
            succ[block] = cfg.successors(block);
            pred[block] = cfg.predecessors(block);
        }
    } else {
        // Reversed edges; the virtual exit points at every Ret block.
        for (int block = 0; block < n; ++block)
            for (int s : cfg.successors(block)) {
                succ[s].push_back(block);
                pred[block].push_back(s);
            }
        for (int exit_block : cfg.exitBlocks()) {
            succ[root].push_back(exit_block);
            pred[exit_block].push_back(root);
        }
    }

    const std::vector<int> rpo = reversePostorder(succ, root);
    _order_index.assign(num_nodes, -1);
    for (int i = 0; i < static_cast<int>(rpo.size()); ++i)
        _order_index[rpo[i]] = i;

    std::vector<int> idom(num_nodes, -1);
    idom[root] = root;

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (_order_index[a] > _order_index[b])
                a = idom[a];
            while (_order_index[b] > _order_index[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int node : rpo) {
            if (node == root)
                continue;
            int new_idom = -1;
            for (int p : pred[node]) {
                if (idom[p] < 0)
                    continue; // not yet processed / unreachable
                new_idom =
                    new_idom < 0 ? p : intersect(p, new_idom);
            }
            if (new_idom >= 0 && idom[node] != new_idom) {
                idom[node] = new_idom;
                changed = true;
            }
        }
    }

    // Export: root and unreachable nodes get -1; for post-dominance the
    // virtual exit is projected away.
    _idom.assign(n, -1);
    for (int block = 0; block < n; ++block) {
        if (block == root || idom[block] < 0)
            continue;
        const int dominator = idom[block];
        _idom[block] = (post && dominator == root) ? -1 : dominator;
    }
    if (!post && n > 0)
        _idom[0] = -1;
}

bool
DominatorTree::dominates(int a, int b) const
{
    if (a == b)
        return true;
    int node = b;
    while (node >= 0 && node < static_cast<int>(_idom.size())) {
        node = _idom[node];
        if (node == a)
            return true;
        if (node == -1)
            return false;
    }
    return false;
}

} // namespace hq::ir
