#include "ir/builder.h"

#include "common/log.h"

namespace hq::ir {

int
IrBuilder::addStruct(StructInfo info)
{
    _module.structs.push_back(std::move(info));
    return static_cast<int>(_module.structs.size()) - 1;
}

int
IrBuilder::addGlobal(Global global)
{
    global.id = static_cast<int>(_module.globals.size());
    _module.globals.push_back(std::move(global));
    return _module.globals.back().id;
}

int
IrBuilder::addClass(const std::string &name, std::vector<int> vtable_funcs,
                    int base_class)
{
    Global vtable;
    vtable.name = "vtable." + name;
    vtable.size = vtable_funcs.size() * 8;
    vtable.section = Section::RoData; // vtables are read-only (§4.1.3)
    vtable.type = TypeRef::dataPtr();
    for (std::size_t slot = 0; slot < vtable_funcs.size(); ++slot) {
        vtable.funcptr_init.emplace_back(slot * 8, vtable_funcs[slot]);
        if (vtable_funcs[slot] >= 0) {
            _module.functions[vtable_funcs[slot]].attrs.address_taken =
                true;
        }
    }
    const int vtable_global = addGlobal(std::move(vtable));

    ClassInfo info;
    info.name = name;
    info.id = static_cast<int>(_module.classes.size());
    info.vtable_global = vtable_global;
    info.vtable = std::move(vtable_funcs);
    info.base_class = base_class;
    _module.classes.push_back(std::move(info));
    return _module.classes.back().id;
}

int
IrBuilder::newSignatureClass()
{
    return _module.num_signature_classes++;
}

int
IrBuilder::beginFunction(const std::string &name, int num_params,
                         int signature_class)
{
    Function function;
    function.name = name;
    function.id = static_cast<int>(_module.functions.size());
    function.num_params = num_params;
    function.num_regs = num_params; // parameters occupy r0..rN-1
    function.signature_class = signature_class;
    function.blocks.emplace_back();
    _module.functions.push_back(std::move(function));
    _current_function = _module.functions.back().id;
    _current_block = 0;
    return _current_function;
}

void
IrBuilder::endFunction()
{
    Function &function = currentFunction();
    for (std::size_t i = 0; i < function.blocks.size(); ++i) {
        if (function.blocks[i].instrs.empty() ||
            !function.blocks[i].instrs.back().isTerminator()) {
            panic("block bb" + std::to_string(i) + " of " + function.name +
                  " lacks a terminator");
        }
    }
    _current_function = -1;
    _current_block = -1;
}

int
IrBuilder::newBlock()
{
    Function &function = currentFunction();
    function.blocks.emplace_back();
    return static_cast<int>(function.blocks.size()) - 1;
}

void
IrBuilder::setBlock(int block)
{
    assert(block >= 0 &&
           block < static_cast<int>(currentFunction().blocks.size()));
    _current_block = block;
}

Function &
IrBuilder::currentFunction()
{
    assert(_current_function >= 0 && "no function under construction");
    return _module.functions[_current_function];
}

int
IrBuilder::freshReg()
{
    return currentFunction().num_regs++;
}

int
IrBuilder::emit(Instr instr)
{
    currentFunction().blocks[_current_block].instrs.push_back(
        std::move(instr));
    return currentFunction().blocks[_current_block].instrs.back().dest;
}

int
IrBuilder::constInt(std::uint64_t value)
{
    Instr instr;
    instr.op = IrOp::ConstInt;
    instr.dest = freshReg();
    instr.imm = value;
    return emit(std::move(instr));
}

int
IrBuilder::funcAddr(int func_id, int signature_class)
{
    Instr instr;
    instr.op = IrOp::FuncAddr;
    instr.dest = freshReg();
    instr.imm = static_cast<std::uint64_t>(func_id);
    instr.type = TypeRef::funcPtr(signature_class);
    _module.functions[func_id].attrs.address_taken = true;
    return emit(std::move(instr));
}

int
IrBuilder::globalAddr(int global_id)
{
    Instr instr;
    instr.op = IrOp::GlobalAddr;
    instr.dest = freshReg();
    instr.imm = static_cast<std::uint64_t>(global_id);
    instr.type = TypeRef::dataPtr();
    return emit(std::move(instr));
}

int
IrBuilder::allocaOp(std::uint64_t size, TypeRef type)
{
    Instr instr;
    instr.op = IrOp::Alloca;
    instr.dest = freshReg();
    instr.imm = size;
    instr.type = type;
    return emit(std::move(instr));
}

int
IrBuilder::arith(ArithKind kind, int a, int b)
{
    Instr instr;
    instr.op = IrOp::Arith;
    instr.dest = freshReg();
    instr.a = a;
    instr.b = b;
    instr.aux = static_cast<int>(kind);
    return emit(std::move(instr));
}

int
IrBuilder::cast(int value, TypeRef to)
{
    Instr instr;
    instr.op = IrOp::Cast;
    instr.dest = freshReg();
    instr.a = value;
    instr.type = to;
    return emit(std::move(instr));
}

int
IrBuilder::load(int addr, TypeRef type)
{
    Instr instr;
    instr.op = IrOp::Load;
    instr.dest = freshReg();
    instr.a = addr;
    instr.type = type;
    return emit(std::move(instr));
}

void
IrBuilder::store(int addr, int value, TypeRef type)
{
    Instr instr;
    instr.op = IrOp::Store;
    instr.a = addr;
    instr.b = value;
    instr.type = type;
    emit(std::move(instr));
}

void
IrBuilder::memcpyOp(int dst, int src, int size, TypeRef elem_type)
{
    Instr instr;
    instr.op = IrOp::Memcpy;
    instr.a = dst;
    instr.b = src;
    instr.c = size;
    instr.type = elem_type;
    emit(std::move(instr));
}

void
IrBuilder::memmoveOp(int dst, int src, int size, TypeRef elem_type)
{
    Instr instr;
    instr.op = IrOp::Memmove;
    instr.a = dst;
    instr.b = src;
    instr.c = size;
    instr.type = elem_type;
    emit(std::move(instr));
}

int
IrBuilder::mallocOp(int size_reg)
{
    Instr instr;
    instr.op = IrOp::Malloc;
    instr.dest = freshReg();
    instr.a = size_reg;
    instr.type = TypeRef::dataPtr();
    return emit(std::move(instr));
}

void
IrBuilder::freeOp(int addr)
{
    Instr instr;
    instr.op = IrOp::Free;
    instr.a = addr;
    emit(std::move(instr));
}

int
IrBuilder::reallocOp(int addr, int size_reg)
{
    Instr instr;
    instr.op = IrOp::Realloc;
    instr.dest = freshReg();
    instr.a = addr;
    instr.b = size_reg;
    instr.type = TypeRef::dataPtr();
    return emit(std::move(instr));
}

int
IrBuilder::callDirect(int func_id, std::vector<int> args)
{
    Instr instr;
    instr.op = IrOp::CallDirect;
    instr.dest = freshReg();
    instr.imm = static_cast<std::uint64_t>(func_id);
    instr.args = std::move(args);
    return emit(std::move(instr));
}

int
IrBuilder::callIndirect(int funcptr, std::vector<int> args,
                        int signature_class)
{
    Instr instr;
    instr.op = IrOp::CallIndirect;
    instr.dest = freshReg();
    instr.a = funcptr;
    instr.args = std::move(args);
    instr.type = TypeRef::funcPtr(signature_class);
    return emit(std::move(instr));
}

int
IrBuilder::vcall(int object, int slot, std::vector<int> args,
                 int static_class)
{
    Instr instr;
    instr.op = IrOp::VCall;
    instr.dest = freshReg();
    instr.a = object;
    instr.imm = static_cast<std::uint64_t>(slot);
    instr.aux = static_class;
    instr.args = std::move(args);
    return emit(std::move(instr));
}

void
IrBuilder::syscall(std::uint64_t sysno)
{
    Instr instr;
    instr.op = IrOp::Syscall;
    instr.imm = sysno;
    currentFunction().attrs.has_inline_syscall = true;
    emit(std::move(instr));
}

int
IrBuilder::setjmp(int jmp_buf_addr)
{
    Instr instr;
    instr.op = IrOp::Setjmp;
    instr.dest = freshReg();
    instr.a = jmp_buf_addr;
    currentFunction().attrs.returns_twice = true;
    return emit(std::move(instr));
}

void
IrBuilder::longjmp(int jmp_buf_addr, int value)
{
    Instr instr;
    instr.op = IrOp::Longjmp;
    instr.a = jmp_buf_addr;
    instr.b = value;
    emit(std::move(instr));
}

int
IrBuilder::retAddrAddr()
{
    Instr instr;
    instr.op = IrOp::RetAddrAddr;
    instr.dest = freshReg();
    instr.type = TypeRef::dataPtr();
    return emit(std::move(instr));
}

void
IrBuilder::ret(int value)
{
    Instr instr;
    instr.op = IrOp::Ret;
    instr.a = value;
    emit(std::move(instr));
}

void
IrBuilder::br(int target)
{
    Instr instr;
    instr.op = IrOp::Br;
    instr.target0 = target;
    emit(std::move(instr));
}

void
IrBuilder::condBr(int cond, int if_true, int if_false)
{
    Instr instr;
    instr.op = IrOp::CondBr;
    instr.a = cond;
    instr.target0 = if_true;
    instr.target1 = if_false;
    emit(std::move(instr));
}

} // namespace hq::ir
