/**
 * @file
 * Dominator and post-dominator trees (Cooper-Harvey-Kennedy iterative
 * algorithm over reverse postorder).
 *
 * The paper's compiler uses graph dominators in two places this repo
 * reproduces: placing System-Call synchronization messages at the
 * earliest point that dominates the system call and is post-dominated by
 * it (§3.2), and the store-to-load forwarding / message elision
 * optimizations (§4.1.4).
 */

#ifndef HQ_IR_DOMINATORS_H
#define HQ_IR_DOMINATORS_H

#include <vector>

#include "ir/cfg.h"

namespace hq::ir {

/** Dominator tree over a function CFG. */
class DominatorTree
{
  public:
    /**
     * @param cfg the function's control-flow graph
     * @param post compute post-dominators (dominance on reversed edges,
     *             with a virtual exit joining all Ret blocks) instead
     */
    DominatorTree(const Cfg &cfg, bool post = false);

    /**
     * Immediate dominator of block, or -1 for the root/unreachable
     * blocks. For post-dominator trees, -1 also marks blocks whose only
     * "post-dominator" is the virtual exit.
     */
    int idom(int block) const { return _idom[block]; }

    /** True when a dominates b (reflexive). */
    bool dominates(int a, int b) const;

    bool isPostDominatorTree() const { return _post; }

  private:
    std::vector<int> _idom;
    std::vector<int> _order_index; //!< traversal index used for meets
    bool _post;
};

} // namespace hq::ir

#endif // HQ_IR_DOMINATORS_H
