/**
 * @file
 * IR well-formedness verification: every block terminated, registers
 * single-assigned and defined before use (within dominance), branch
 * targets and ids in range. Run by tests and by the pass manager
 * between passes to catch instrumentation bugs early.
 */

#ifndef HQ_IR_VERIFY_H
#define HQ_IR_VERIFY_H

#include "common/status.h"
#include "ir/module.h"

namespace hq::ir {

/** Verify one function; returns the first problem found. */
Status verifyFunction(const Module &module, const Function &function);

/** Verify the entire module. */
Status verifyModule(const Module &module);

} // namespace hq::ir

#endif // HQ_IR_VERIFY_H
