/**
 * @file
 * Instruction set of the mini-IR.
 *
 * The IR is register-based with single assignment (every instruction
 * defines a fresh virtual register; mutable program variables live in
 * memory slots created by Alloca or globals, as in unoptimized LLVM IR).
 * Control flow is explicit: every basic block ends in exactly one
 * terminator (Ret/Br/CondBr).
 *
 * Instrumentation opcodes (Hq*, CfiTypeCheck, Mac*, Safe*) never appear
 * in source programs; they are inserted by the compiler passes of the
 * CFI design being built (src/compiler, src/cfi) and executed by the VM.
 */

#ifndef HQ_IR_INSTR_H
#define HQ_IR_INSTR_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"

namespace hq::ir {

enum class IrOp : std::uint8_t {
    Nop = 0,

    // --- Values ------------------------------------------------------
    ConstInt,   //!< dest = imm
    FuncAddr,   //!< dest = address of function #imm
    GlobalAddr, //!< dest = address of global #imm
    Alloca,     //!< dest = address of a new stack slot of imm bytes
    Arith,      //!< dest = op(a, b); aux selects the ArithKind
    Cast,       //!< dest = a reinterpreted as `type` (models C casts/decay)

    // --- Memory ------------------------------------------------------
    Load,    //!< dest = mem[a]; `type` is the loaded value's static type
    Store,   //!< mem[a] = b; `type` is the stored value's static type
    Memcpy,  //!< memcpy(dst=a, src=b, size=c); `type` = element type copied
    Memmove, //!< memmove(dst=a, src=b, size=c)
    Malloc,  //!< dest = heap alloc of a bytes (or imm if a < 0)
    Free,    //!< free(a)
    Realloc, //!< dest = realloc(a, b bytes)

    // --- Control flow ------------------------------------------------
    CallDirect,   //!< dest = call function #imm(args)
    CallIndirect, //!< dest = call through function pointer in a(args)
    VCall,        //!< dest = virtual call: object a, vtable slot imm;
                  //!< aux >= 0 names the statically-known class (devirt)
    Syscall,      //!< system call #imm (models inline-asm syscall)
    Setjmp,       //!< dest = 0; saves a continuation token to mem[a]
                  //!< (non-local goto support; marks returns_twice)
    Longjmp,      //!< jump to the continuation in mem[a]; setjmp
                  //!< "returns again" with value b (or 1 if b == 0)
    RetAddrAddr,  //!< dest = address of this frame's return-pointer slot
                  //!< (models __builtin_return_address disclosure)
    Ret,          //!< return a (or nothing when a < 0)
    Br,           //!< jump to block target0
    CondBr,       //!< if a != 0 goto target0 else target1

    // --- HerQules instrumentation (messages over AppendWrite) ---------
    HqDefine,          //!< POINTER-DEFINE(mem addr a, value b)
    HqCheck,           //!< POINTER-CHECK(a, b)
    HqInvalidate,      //!< POINTER-INVALIDATE(a)
    HqCheckInvalidate, //!< POINTER-CHECK-INVALIDATE(a, b)
    HqBlockCopy,       //!< POINTER-BLOCK-COPY(src=a, dst=b, size=c)
    HqBlockMove,       //!< POINTER-BLOCK-MOVE(src=a, dst=b, size=c)
    HqBlockInvalidate, //!< POINTER-BLOCK-INVALIDATE(base=a, size=b)
    HqSyscallMsg,      //!< System-Call synchronization message (§2.2)
    HqGuardEnter,      //!< store-to-load-forwarding recursion guard set
    HqGuardExit,       //!< ... guard clear

    // --- Data-flow integrity instrumentation (§4.3) --------------------
    DfiWriteMsg, //!< DFI-WRITE(addr a, writer id imm)
    DfiReadMsg,  //!< DFI-READ(addr a, allowed writer bitmask imm)

    // --- Information-flow-control instrumentation ----------------------
    LabelDefMsg,   //!< LABEL-DEF(addr a, label imm)
    LabelCheckMsg, //!< LABEL-CHECK(addr a, forbidden mask imm)
    LabelJoinMsg,  //!< LABEL-JOIN(src addr a, dst addr b)

    // --- Baseline CFI designs (inline, in-process checks) -------------
    CfiTypeCheck, //!< Clang/LLVM CFI: funcptr a must be in class imm
    MacDefine,    //!< CCFI: write MAC for pointer at addr a, value b
    MacCheck,     //!< CCFI: check MAC for pointer at addr a, value b
    SafeStore,    //!< CPI: safe-store write mem'[a] = b
    SafeLoad,     //!< CPI: dest = safe-store read mem'[a]

    NumOps,
};

/**
 * Sentinel signature class used by Clang/LLVM CFI virtual-call checks:
 * the runtime accepts any target that is a virtual method (member of
 * some class vtable).
 */
inline constexpr std::uint64_t kAnyVtableClass = 0xFFFFFF;

/** Binary operation selector for IrOp::Arith. */
enum class ArithKind : std::uint8_t {
    Add, Sub, Mul, Xor, And, Or, Shr, Lt, Eq,
};

/** Per-instruction flag bits (set by the builder and compiler passes). */
enum InstrFlags : std::uint32_t {
    /** Load reads from read-only memory (vtables): no check needed. */
    kFlagReadOnlySource = 1u << 0,
    /** Volatile/atomic access: excluded from forwarding optimization. */
    kFlagVolatile = 1u << 1,
    /** Block op / free must emit runtime block messages (FinalLowering). */
    kFlagEmitBlockMsg = 1u << 2,
    /** Check elided by store-to-load forwarding (counted, then erased). */
    kFlagElided = 1u << 3,
    /** Instruction was inserted by instrumentation (not source code). */
    kFlagInstrumentation = 1u << 4,
};

/** One IR instruction. See IrOp for field meanings. */
struct Instr
{
    IrOp op = IrOp::Nop;
    int dest = -1;          //!< result register (-1: none)
    int a = -1, b = -1, c = -1; //!< operand registers
    std::uint64_t imm = 0;  //!< immediate (constant, id, size, sysno)
    TypeRef type;           //!< value type where relevant
    int target0 = -1;       //!< branch target (block id)
    int target1 = -1;       //!< CondBr false target
    int aux = -1;           //!< ArithKind, devirt class id, guard id
    std::uint32_t flags = 0; //!< InstrFlags bits
    std::vector<int> args;  //!< call arguments (registers)

    bool
    isTerminator() const
    {
        return op == IrOp::Ret || op == IrOp::Br || op == IrOp::CondBr;
    }

    bool
    isCall() const
    {
        return op == IrOp::CallDirect || op == IrOp::CallIndirect ||
               op == IrOp::VCall;
    }

    /** Render a compact textual form for debugging and tests. */
    std::string toString() const;
};

/** Opcode mnemonic. */
const char *irOpName(IrOp op);

} // namespace hq::ir

#endif // HQ_IR_INSTR_H
