#include "ir/verify.h"

#include <set>

namespace hq::ir {

namespace {

Status
fail(const Function &function, int block, const std::string &what)
{
    return Status::error(StatusCode::FailedPrecondition,
                         function.name + " bb" + std::to_string(block) +
                             ": " + what);
}

} // namespace

Status
verifyFunction(const Module &module, const Function &function)
{
    const int num_blocks = static_cast<int>(function.blocks.size());
    if (num_blocks == 0) {
        return Status::error(StatusCode::FailedPrecondition,
                             function.name + ": no blocks");
    }

    std::set<int> defined;
    for (int p = 0; p < function.num_params; ++p)
        defined.insert(p);

    for (int block = 0; block < num_blocks; ++block) {
        const auto &instrs = function.blocks[block].instrs;
        if (instrs.empty())
            return fail(function, block, "empty block");
        if (!instrs.back().isTerminator())
            return fail(function, block, "missing terminator");

        for (std::size_t i = 0; i < instrs.size(); ++i) {
            const Instr &instr = instrs[i];
            if (instr.isTerminator() && i + 1 != instrs.size())
                return fail(function, block, "terminator mid-block");

            // Register sanity. (Cross-block def-before-use is enforced
            // structurally by the builder; here we check ranges and
            // single assignment, which the passes must preserve.)
            for (int reg : {instr.a, instr.b, instr.c}) {
                if (reg >= function.num_regs)
                    return fail(function, block,
                                "operand register out of range: " +
                                    instr.toString());
            }
            for (int reg : instr.args) {
                if (reg < 0 || reg >= function.num_regs)
                    return fail(function, block,
                                "call arg out of range: " +
                                    instr.toString());
            }
            if (instr.dest >= 0) {
                if (instr.dest >= function.num_regs)
                    return fail(function, block,
                                "dest register out of range");
                if (!defined.insert(instr.dest).second)
                    return fail(function, block,
                                "register multiply defined: " +
                                    instr.toString());
            }

            // Branch targets.
            for (int target : {instr.target0, instr.target1}) {
                if (target >= num_blocks)
                    return fail(function, block,
                                "branch target out of range");
            }
            if (instr.op == IrOp::Br && instr.target0 < 0)
                return fail(function, block, "br without target");
            if (instr.op == IrOp::CondBr &&
                (instr.target0 < 0 || instr.target1 < 0))
                return fail(function, block, "condbr without targets");

            // Id ranges.
            if (instr.op == IrOp::CallDirect || instr.op == IrOp::FuncAddr) {
                if (instr.imm >= module.functions.size())
                    return fail(function, block,
                                "function id out of range");
            }
            if (instr.op == IrOp::GlobalAddr &&
                instr.imm >= module.globals.size())
                return fail(function, block, "global id out of range");
            if (instr.op == IrOp::VCall && instr.aux >= 0 &&
                instr.aux >= static_cast<int>(module.classes.size()))
                return fail(function, block, "class id out of range");
        }
    }
    return Status::ok();
}

Status
verifyModule(const Module &module)
{
    if (module.entry_function < 0 ||
        module.entry_function >=
            static_cast<int>(module.functions.size())) {
        return Status::error(StatusCode::FailedPrecondition,
                             module.name + ": bad entry function");
    }
    for (const Function &function : module.functions) {
        Status status = verifyFunction(module, function);
        if (!status.isOk())
            return status;
    }
    for (const Global &global : module.globals) {
        for (const auto &[offset, func_id] : global.funcptr_init) {
            if (offset + 8 > global.size)
                return Status::error(StatusCode::FailedPrecondition,
                                     global.name +
                                         ": initializer out of range");
            if (func_id < 0 ||
                func_id >= static_cast<int>(module.functions.size()))
                return Status::error(StatusCode::FailedPrecondition,
                                     global.name +
                                         ": initializer bad function");
        }
    }
    return Status::ok();
}

} // namespace hq::ir
