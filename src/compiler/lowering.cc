#include "compiler/passes.h"

namespace hq {

using ir::ArithKind;
using ir::Instr;
using ir::IrOp;
using ir::TypeRef;

namespace {

/** Fresh register in a function being rewritten. */
int
freshReg(ir::Function &function)
{
    return function.num_regs++;
}

Instr
makeInstr(IrOp op, int dest, int a, int b, std::uint64_t imm = 0)
{
    Instr instr;
    instr.op = op;
    instr.dest = dest;
    instr.a = a;
    instr.b = b;
    instr.imm = imm;
    instr.flags = ir::kFlagInstrumentation;
    return instr;
}

/**
 * Expand a VCall into explicit loads + indirect call, appending the
 * per-design vtable-pointer protection. Returns the expansion.
 */
std::vector<Instr>
expandVCall(ir::Function &function, const Instr &vcall, LoweringMode mode,
            StatSet &stats)
{
    std::vector<Instr> out;

    // r_vt = load [object]  (the writable vtable pointer, protected)
    Instr vt_load;
    vt_load.op = IrOp::Load;
    vt_load.dest = freshReg(function);
    vt_load.a = vcall.a;
    vt_load.type = TypeRef::vtablePtr();

    // Per-design protection of the vtable-pointer load.
    switch (mode) {
      case LoweringMode::Hq:
        out.push_back(vt_load);
        out.push_back(makeInstr(IrOp::HqCheck, -1, vcall.a, vt_load.dest));
        stats.increment("lower.hq.checks");
        break;
      case LoweringMode::Ccfi:
        out.push_back(vt_load);
        {
            Instr mac = makeInstr(IrOp::MacCheck, -1, vcall.a,
                                  vt_load.dest);
            mac.type = TypeRef::vtablePtr();
            out.push_back(mac);
        }
        stats.increment("lower.ccfi.checks");
        break;
      case LoweringMode::Cpi:
        // CPI relocates vtable pointers to the safe store.
        vt_load.op = IrOp::SafeLoad;
        out.push_back(vt_load);
        stats.increment("lower.cpi.loads");
        break;
      case LoweringMode::ClangCfi:
      case LoweringMode::None:
        out.push_back(vt_load);
        break;
    }

    // r_fn = load [r_vt + 8*slot]  (vtable entry: read-only memory)
    Instr off;
    off.op = IrOp::ConstInt;
    off.dest = freshReg(function);
    off.imm = vcall.imm * 8;
    off.flags = ir::kFlagInstrumentation;
    out.push_back(off);

    Instr addr;
    addr.op = IrOp::Arith;
    addr.dest = freshReg(function);
    addr.a = vt_load.dest;
    addr.b = off.dest;
    addr.aux = static_cast<int>(ArithKind::Add);
    addr.flags = ir::kFlagInstrumentation;
    out.push_back(addr);

    Instr fn_load;
    fn_load.op = IrOp::Load;
    fn_load.dest = freshReg(function);
    fn_load.a = addr.dest;
    fn_load.type = TypeRef::funcPtr(-1);
    fn_load.flags = ir::kFlagReadOnlySource; // vtables are read-only
    out.push_back(fn_load);

    if (mode == LoweringMode::ClangCfi) {
        // Clang/LLVM CFI vcall check: target must be a virtual method
        // of a compatible class. kAnyVtableClass models the common
        // single-hierarchy case.
        Instr check = makeInstr(IrOp::CfiTypeCheck, -1, fn_load.dest, -1,
                                /*imm=*/ir::kAnyVtableClass);
        out.push_back(check);
        stats.increment("lower.clangcfi.checks");
    }

    Instr call;
    call.op = IrOp::CallIndirect;
    call.dest = vcall.dest;
    call.a = fn_load.dest;
    call.args = vcall.args;
    call.type = TypeRef::funcPtr(-1);
    call.flags = ir::kFlagReadOnlySource; // target from RO vtable
    out.push_back(call);

    return out;
}

} // namespace

void
InitialLoweringPass::runOnFunction(ir::Module &module,
                                   ir::Function &function, StatSet &stats)
{
    const FunctionAnalysis fa(module, function);
    const LoweringMode mode = _options.mode;

    // Protected stack slots (for HQ invalidation at returns): ordinal ->
    // the register holding the slot address.
    std::vector<std::pair<int, int>> protected_allocas;
    if (mode == LoweringMode::Hq) {
        for (int b = 0; b < static_cast<int>(function.blocks.size()); ++b) {
            const auto &instrs = function.blocks[b].instrs;
            for (int i = 0; i < static_cast<int>(instrs.size()); ++i) {
                if (instrs[i].op != IrOp::Alloca)
                    continue;
                const int ordinal = fa.allocaOrdinal(b, i);
                if (fa.isProtectedStackSlot(ordinal))
                    protected_allocas.emplace_back(ordinal,
                                                   instrs[i].dest);
            }
        }
    }

    // Decide + rewrite into fresh block vectors (the analysis holds
    // references into the original ones).
    std::vector<std::vector<Instr>> rewritten(function.blocks.size());

    for (int b = 0; b < static_cast<int>(function.blocks.size()); ++b) {
        const auto &instrs = function.blocks[b].instrs;
        auto &out = rewritten[b];
        out.reserve(instrs.size() + 8);

        for (const Instr &instr : instrs) {
            switch (instr.op) {
              case IrOp::VCall: {
                auto expansion = expandVCall(function, instr, mode, stats);
                out.insert(out.end(), expansion.begin(), expansion.end());
                stats.increment("lower.vcalls_expanded");
                continue;
              }

              case IrOp::Store: {
                const bool typed = instr.type.isProtectedPtr();
                const bool tainted = fa.isTainted(instr.b);
                switch (mode) {
                  case LoweringMode::Hq:
                    // Value-based: runtime address, no aliasing blind
                    // spot (§4.1.2).
                    out.push_back(instr);
                    if (typed || tainted) {
                        out.push_back(makeInstr(IrOp::HqDefine, -1,
                                                instr.a, instr.b));
                        stats.increment("lower.hq.defines");
                    }
                    continue;
                  case LoweringMode::Ccfi:
                    // Type-based only: decayed stores silently skip the
                    // MAC (their false-positive source).
                    out.push_back(instr);
                    if (typed) {
                        Instr mac = makeInstr(IrOp::MacDefine, -1,
                                              instr.a, instr.b);
                        mac.type = instr.type;
                        out.push_back(mac);
                        stats.increment("lower.ccfi.defines");
                    }
                    continue;
                  case LoweringMode::Cpi:
                    // Type-based redirection to the safe store; decayed
                    // stores are missed (their correctness-bug source).
                    if (typed) {
                        Instr redirect = instr;
                        redirect.op = IrOp::SafeStore;
                        out.push_back(redirect);
                        stats.increment("lower.cpi.stores");
                    } else {
                        out.push_back(instr);
                    }
                    continue;
                  default:
                    out.push_back(instr);
                    continue;
                }
              }

              case IrOp::Load: {
                const bool readonly =
                    (instr.flags & ir::kFlagReadOnlySource) != 0;
                const bool typed = instr.type.isProtectedPtr();
                const SlotRef slot = fa.slotOf(instr.a);
                const bool protected_slot = fa.isProtectedSlot(slot);
                switch (mode) {
                  case LoweringMode::Hq:
                    out.push_back(instr);
                    if (!readonly && (typed || protected_slot)) {
                        out.push_back(makeInstr(IrOp::HqCheck, -1,
                                                instr.a, instr.dest));
                        stats.increment("lower.hq.checks");
                    }
                    continue;
                  case LoweringMode::Ccfi:
                    out.push_back(instr);
                    if (!readonly && typed) {
                        Instr mac = makeInstr(IrOp::MacCheck, -1, instr.a,
                                              instr.dest);
                        mac.type = instr.type;
                        out.push_back(mac);
                        stats.increment("lower.ccfi.checks");
                    }
                    continue;
                  case LoweringMode::Cpi:
                    if (!readonly && typed) {
                        Instr redirect = instr;
                        redirect.op = IrOp::SafeLoad;
                        out.push_back(redirect);
                        stats.increment("lower.cpi.loads");
                    } else {
                        out.push_back(instr);
                    }
                    continue;
                  default:
                    out.push_back(instr);
                    continue;
                }
              }

              case IrOp::CallIndirect: {
                if (mode == LoweringMode::ClangCfi &&
                    !(instr.flags & ir::kFlagReadOnlySource)) {
                    // Signature-class check at the indirect call site.
                    out.push_back(makeInstr(
                        IrOp::CfiTypeCheck, -1, instr.a, -1,
                        static_cast<std::uint64_t>(static_cast<std::int64_t>(
                            instr.type.signature_class))));
                    stats.increment("lower.clangcfi.checks");
                }
                out.push_back(instr);
                continue;
              }

              case IrOp::Setjmp: {
                out.push_back(instr);
                if (mode == LoweringMode::Hq) {
                    // Protect the jmp_buf's internal pointer: define on
                    // setjmp, check before every longjmp (§4.1.3).
                    Instr reload;
                    reload.op = IrOp::Load;
                    reload.dest = freshReg(function);
                    reload.a = instr.a;
                    reload.type = TypeRef::dataPtr();
                    reload.flags = ir::kFlagInstrumentation |
                                   ir::kFlagReadOnlySource;
                    out.push_back(reload);
                    out.push_back(makeInstr(IrOp::HqDefine, -1, instr.a,
                                            reload.dest));
                    stats.increment("lower.hq.defines");
                }
                continue;
              }

              case IrOp::Longjmp: {
                if (mode == LoweringMode::Hq) {
                    Instr reload;
                    reload.op = IrOp::Load;
                    reload.dest = freshReg(function);
                    reload.a = instr.a;
                    reload.type = TypeRef::dataPtr();
                    reload.flags = ir::kFlagInstrumentation |
                                   ir::kFlagReadOnlySource;
                    out.push_back(reload);
                    out.push_back(makeInstr(IrOp::HqCheck, -1, instr.a,
                                            reload.dest));
                    stats.increment("lower.hq.checks");
                }
                out.push_back(instr);
                continue;
              }

              case IrOp::Ret: {
                if (mode == LoweringMode::Hq) {
                    // Invalidate protected stack slots on scope exit:
                    // this is what adds use-after-free detection on
                    // control-flow pointers (§4.1.2).
                    for (const auto &[ordinal, reg] : protected_allocas) {
                        out.push_back(
                            makeInstr(IrOp::HqInvalidate, -1, reg, -1));
                        stats.increment("lower.hq.invalidates");
                    }
                }
                out.push_back(instr);
                continue;
              }

              default:
                out.push_back(instr);
                continue;
            }
        }
    }

    for (std::size_t b = 0; b < function.blocks.size(); ++b)
        function.blocks[b].instrs = std::move(rewritten[b]);

    // Return-pointer protection attributes (§4.1.6): functions that may
    // write to memory, are known to return, and contain stack
    // allocations.
    bool writes_memory = false;
    bool has_alloca = false;
    bool has_ret = false;
    bool has_call = false;
    for (const auto &block : function.blocks) {
        for (const Instr &instr : block.instrs) {
            writes_memory |= instr.op == IrOp::Store ||
                             instr.op == IrOp::Memcpy ||
                             instr.op == IrOp::Memmove;
            has_alloca |= instr.op == IrOp::Alloca;
            has_ret |= instr.op == IrOp::Ret;
            has_call |= instr.isCall();
        }
    }
    if (mode == LoweringMode::Hq && _options.retptr_messages) {
        if ((writes_memory || has_call) && has_ret && has_alloca) {
            function.attrs.instrument_return = true;
            stats.increment("lower.retptr_functions");
        }
    }
    if (mode == LoweringMode::Ccfi) {
        // CCFI MACs every returning frame's return pointer.
        if (has_ret) {
            function.attrs.instrument_return = true;
            stats.increment("lower.retptr_functions");
        }
    }
}

void
InitialLoweringPass::run(ir::Module &module, StatSet &stats)
{
    for (ir::Function &function : module.functions)
        runOnFunction(module, function, stats);
}

void
FinalLoweringPass::run(ir::Module &module, StatSet &stats)
{
    if (_options.mode != LoweringMode::Hq) {
        // Block-op messages are an HQ mechanism; baselines handle block
        // memory through their own runtime (CPI) or not at all.
        return;
    }
    for (ir::Function &function : module.functions) {
        for (ir::BasicBlock &block : function.blocks) {
            for (Instr &instr : block.instrs) {
                switch (instr.op) {
                  case IrOp::Memcpy:
                  case IrOp::Memmove: {
                    // Strict subtype checking (§4.1.4): skip block ops
                    // whose element type statically cannot contain
                    // control-flow pointers — unless the enclosing
                    // function is allowlisted (decayed inter-procedural
                    // pointers defeat the static check).
                    bool may_have_ptrs = true;
                    if (_options.strict_subtype_check) {
                        switch (instr.type.kind) {
                          case ir::TypeKind::Int:
                          case ir::TypeKind::DataPtr:
                            may_have_ptrs = false;
                            break;
                          case ir::TypeKind::Struct:
                            may_have_ptrs = module.structContainsFuncPtr(
                                instr.type.struct_id);
                            break;
                          default:
                            may_have_ptrs = true;
                            break;
                        }
                    }
                    if (_options.use_allowlist &&
                        function.attrs.block_op_allowlisted)
                        may_have_ptrs = true;
                    if (may_have_ptrs) {
                        instr.flags |= ir::kFlagEmitBlockMsg;
                        stats.increment("lower.block_ops");
                    } else {
                        stats.increment("lower.block_ops_elided");
                    }
                    break;
                  }
                  case IrOp::Free:
                  case IrOp::Realloc:
                    // The recompiled allocator always reports frees and
                    // reallocs; sizes are known at runtime.
                    instr.flags |= ir::kFlagEmitBlockMsg;
                    stats.increment("lower.block_ops");
                    break;
                  default:
                    break;
                }
            }
        }
    }
}

} // namespace hq
