#include "compiler/passes.h"

namespace hq {

using ir::Instr;
using ir::IrOp;

void
DevirtualizationPass::run(ir::Module &module, StatSet &stats)
{
    for (ir::Function &function : module.functions) {
        for (ir::BasicBlock &block : function.blocks) {
            for (Instr &instr : block.instrs) {
                if (instr.op != IrOp::VCall || instr.aux < 0)
                    continue;
                // Receiver class statically known (Virtual Pointer
                // Invariance / Whole Program Devirtualization): the
                // callee is the class's vtable slot entry. Direct calls
                // need no CFI protection (§4.1.1).
                const ir::ClassInfo &cls = module.classes[instr.aux];
                const std::uint64_t slot = instr.imm;
                if (slot >= cls.vtable.size())
                    continue;
                const int callee = cls.vtable[slot];
                if (callee < 0)
                    continue; // pure virtual slot
                instr.op = IrOp::CallDirect;
                instr.imm = static_cast<std::uint64_t>(callee);
                instr.a = -1;
                instr.aux = -1;
                stats.increment("devirt.calls");
            }
        }
    }
}

} // namespace hq
