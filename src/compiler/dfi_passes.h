/**
 * @file
 * Data-flow integrity instrumentation pass (§4.3). See dfi_lowering.cc
 * for the analysis; pairs with policy/data_flow.h on the verifier side.
 */

#ifndef HQ_COMPILER_DFI_PASSES_H
#define HQ_COMPILER_DFI_PASSES_H

#include "compiler/passes.h"

namespace hq {

/**
 * Assigns writer ids to resolved stores, computes slot-based
 * reaching-writer masks, and inserts DFI-WRITE/DFI-READ messages.
 */
class DfiLoweringPass : public Pass
{
  public:
    const char *name() const override { return "dfi-lowering"; }
    void run(ir::Module &module, StatSet &stats) override;
};

} // namespace hq

#endif // HQ_COMPILER_DFI_PASSES_H
