#include "compiler/passes.h"

#include "common/log.h"
#include "ir/verify.h"

namespace hq {

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    _passes.push_back(std::move(pass));
}

Status
PassManager::run(ir::Module &module)
{
    Status status = ir::verifyModule(module);
    if (!status.isOk()) {
        return Status::error(status.code(),
                             "pre-pass verification: " + status.message());
    }
    for (auto &pass : _passes) {
        pass->run(module, _stats);
        status = ir::verifyModule(module);
        if (!status.isOk()) {
            return Status::error(status.code(),
                                 std::string("after ") + pass->name() +
                                     ": " + status.message());
        }
        logDebug("pass ", pass->name(), " done on ", module.name);
    }
    return Status::ok();
}

} // namespace hq
