/**
 * @file
 * System-Call synchronization message placement (§2.2, §3.2).
 *
 * The monitored program must send a System-Call message before each
 * system call so the kernel-paused syscall can resume as soon as the
 * verifier has drained the message stream. The paper places the message
 * at the earliest program point that (under non-exceptional control
 * flow) dominates the system call, is post-dominated by it, and does
 * not dominate any other message or function call that also dominates
 * the syscall — pipelining the message's processing latency with the
 * program's own pre-syscall computation.
 *
 * This pass implements that rule: it hoists the message upward past
 * message-free, call-free instructions inside the block, then through
 * single-predecessor/single-successor dominator chain blocks for which
 * the syscall block is a post-dominator.
 */

#include "compiler/passes.h"
#include "ir/cfg.h"
#include "ir/dominators.h"
#include "kernel/kernel.h"

namespace hq {

using ir::Instr;
using ir::IrOp;

namespace {

/** Instructions a System-Call message must not be hoisted above. */
bool
blocksHoisting(const Instr &instr)
{
    switch (instr.op) {
      case IrOp::CallDirect:
      case IrOp::CallIndirect:
      case IrOp::VCall:
      case IrOp::Syscall:
      case IrOp::Setjmp:
      case IrOp::Longjmp:
      case IrOp::HqDefine:
      case IrOp::HqCheck:
      case IrOp::HqInvalidate:
      case IrOp::HqCheckInvalidate:
      case IrOp::HqBlockCopy:
      case IrOp::HqBlockMove:
      case IrOp::HqBlockInvalidate:
      case IrOp::HqSyscallMsg:
        return true;
      case IrOp::Memcpy:
      case IrOp::Memmove:
      case IrOp::Free:
      case IrOp::Realloc:
        // These may emit block messages at runtime (FinalLowering).
        return true;
      default:
        return false;
    }
}

} // namespace

void
SyscallSyncPass::run(ir::Module &module, StatSet &stats)
{
    for (ir::Function &function : module.functions) {
        // Find syscall sites first (positions shift as we insert).
        struct SyscallSite
        {
            int block;
            int index;
            std::uint64_t sysno;
        };
        std::vector<SyscallSite> sites;
        for (int b = 0; b < static_cast<int>(function.blocks.size()); ++b) {
            const auto &instrs = function.blocks[b].instrs;
            for (int i = 0; i < static_cast<int>(instrs.size()); ++i) {
                if (instrs[i].op != IrOp::Syscall)
                    continue;
                if (_elide_readonly &&
                    KernelModule::isReadOnlySyscall(instrs[i].imm)) {
                    stats.increment("sync.readonly_elided");
                    continue;
                }
                sites.push_back({b, i, instrs[i].imm});
            }
        }
        if (sites.empty())
            continue;

        const ir::Cfg cfg(function);
        const ir::DominatorTree dom(cfg);
        const ir::DominatorTree pdom(cfg, /*post=*/true);

        // Process sites in reverse so earlier insertions do not shift
        // later indices within the same block.
        for (auto it = sites.rbegin(); it != sites.rend(); ++it) {
            int place_block = it->block;
            int place_index = it->index;

            // Hoist within the block.
            while (place_index > 0 &&
                   !blocksHoisting(
                       function.blocks[place_block]
                           .instrs[place_index - 1])) {
                --place_index;
            }

            // Hoist into dominating predecessors: the predecessor must
            // dominate the current block, have it as unique successor
            // (so the current block post-dominates it under
            // non-exceptional flow), and the syscall block must
            // post-dominate the predecessor.
            while (place_index == 0) {
                const auto &preds = cfg.predecessors(place_block);
                if (preds.size() != 1)
                    break;
                const int pred = preds[0];
                if (pred == place_block ||
                    cfg.successors(pred).size() != 1)
                    break;
                if (!dom.dominates(pred, it->block))
                    break;
                if (!pdom.dominates(it->block, pred) &&
                    it->block != pred)
                    break;
                // Find the hoist limit inside the predecessor
                // (before its terminator).
                int limit =
                    static_cast<int>(function.blocks[pred].instrs.size()) -
                    1;
                while (limit > 0 &&
                       !blocksHoisting(
                           function.blocks[pred].instrs[limit - 1])) {
                    --limit;
                }
                place_block = pred;
                place_index = limit;
                if (limit != 0)
                    break; // blocked mid-way: stop here
            }

            Instr msg;
            msg.op = IrOp::HqSyscallMsg;
            msg.imm = it->sysno;
            msg.flags = ir::kFlagInstrumentation;
            auto &instrs = function.blocks[place_block].instrs;
            instrs.insert(instrs.begin() + place_index, msg);
            stats.increment("sync.messages");
            if (place_block != it->block || place_index != it->index)
                stats.increment("sync.hoisted");
        }
    }
}

} // namespace hq
