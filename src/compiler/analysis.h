/**
 * @file
 * Per-function dataflow analyses underlying the instrumentation passes:
 * register definition sites, address-provenance (slot) resolution,
 * function-pointer taint (the paper's decayed-pointer detection, §4.1.4),
 * and a conservative escape analysis.
 *
 * The paper treats any pointer as a function pointer if (1) it is ever
 * defined from a value of function pointer type, including via casts,
 * or (2) other uses of its original value are ever cast to function
 * pointer type. isTainted() implements exactly these two rules over the
 * mini-IR's single-assignment registers; protectedSlots() lifts them to
 * memory slots.
 */

#ifndef HQ_COMPILER_ANALYSIS_H
#define HQ_COMPILER_ANALYSIS_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/module.h"

namespace hq {

/** Location of the instruction defining a register. */
struct DefSite
{
    int block = -1;
    int index = -1;
    bool valid() const { return block >= 0; }
};

/** Best-effort static resolution of an address register to a slot. */
struct SlotRef
{
    enum class Base : std::uint8_t {
        None,    //!< not an address we can reason about
        Stack,   //!< an Alloca slot (id = alloca ordinal)
        Global,  //!< a module global (id = global id)
        Unknown, //!< address derived from unresolvable data
    };

    Base base = Base::None;
    int id = -1;
    std::uint64_t offset = 0;
    bool exact_offset = false;

    bool resolved() const
    {
        return base == Base::Stack || base == Base::Global;
    }

    bool
    operator==(const SlotRef &other) const
    {
        return base == other.base && id == other.id &&
               offset == other.offset &&
               exact_offset == other.exact_offset;
    }

    /** Hashable key ignoring offset exactness. */
    std::uint64_t
    key() const
    {
        return (static_cast<std::uint64_t>(base) << 56) |
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id))
                << 24) |
               (offset & 0xFFFFFF);
    }
};

/** Analyses for one function; built once, queried by every pass. */
class FunctionAnalysis
{
  public:
    FunctionAnalysis(const ir::Module &module,
                     const ir::Function &function);

    const ir::Function &function() const { return _function; }

    /** Definition site of a register (invalid for parameters). */
    DefSite def(int reg) const;

    /** The instruction defining reg, or nullptr. */
    const ir::Instr *defInstr(int reg) const;

    /** Resolve an address register to a slot (transitively). */
    SlotRef slotOf(int addr_reg) const;

    /**
     * Function-pointer taint: rule (1) defined from a funcptr value
     * (FuncAddr, protected-typed Load, Cast chain), or rule (2) some use
     * of the value is a cast to function-pointer type.
     */
    bool isTainted(int reg) const { return _tainted.count(reg) > 0; }

    /**
     * Slots that must be protected: a tainted or protected-typed value
     * is stored there, or a protected-typed load reads from there.
     */
    bool isProtectedSlot(const SlotRef &slot) const;

    /**
     * Conservative escape: the slot's address flows into a call, is
     * stored to memory, or is obscured by unresolvable arithmetic.
     */
    bool slotEscapes(const SlotRef &slot) const;

    /** True when any offset of the given stack slot is protected. */
    bool isProtectedStackSlot(int ordinal) const;

    /** True when the given stack slot's address escapes. */
    bool stackSlotEscapes(int ordinal) const;

    /** Ordinal of an Alloca instruction (its stack-slot id). */
    int allocaOrdinal(int block, int index) const;

    /** Total number of Alloca instructions in the function. */
    int numAllocas() const { return _num_allocas; }

    /** Declared byte size of a stack slot (0 when unknown). */
    std::uint64_t allocaSize(int ordinal) const;

    /**
     * True when a resolved store target provably stays inside its own
     * slot. A false result means the access may be out of bounds (an
     * attacker primitive or a variable index), so optimizations must
     * treat it as clobbering *everything*.
     */
    bool accessInBounds(const SlotRef &slot,
                        const ir::Module &module) const;

  private:
    void computeDefs();
    void computeAllocaOrdinals();
    void computeTaint();
    void computeSlots();

    const ir::Module &_module;
    const ir::Function &_function;

    std::vector<DefSite> _defs;
    std::unordered_map<std::uint64_t, int> _alloca_ordinals; //!< key: block<<32|index
    std::vector<std::uint64_t> _alloca_sizes;
    int _num_allocas = 0;
    std::unordered_set<int> _tainted;
    std::unordered_set<std::uint64_t> _protected_slots; //!< SlotRef keys
    std::unordered_set<std::uint64_t> _protected_bases; //!< base-only keys
    std::unordered_set<std::uint64_t> _escaped_bases;   //!< base-only keys
};

} // namespace hq

#endif // HQ_COMPILER_ANALYSIS_H
