/**
 * @file
 * Information-flow-control lowering.
 *
 * Three insertions, all driven by the ir::Global ifc_* annotations
 * (the mini-IR analog of source-level __attribute__((ifc_label(...)))
 * source/sink attributes):
 *
 *  1. Source labels. At the top of the entry function, every global
 *     with ifc_label != 0 gets LABEL-DEF messages covering its
 *     annotated byte range at 8-byte granularity.
 *
 *  2. Value provenance joins. Within each function, a forward walk
 *     tracks which address register each value register was loaded
 *     from (through Cast and Arith chains — arithmetic launders bits,
 *     not labels). Every store of a value with load provenance emits
 *     LABEL-JOIN(src addr, dst addr) after the store. Both operands
 *     are *runtime* addresses: an out-of-bounds read picks up the
 *     label of whatever memory it actually read, which is exactly why
 *     data-only attacks cannot dodge the join.
 *
 *  3. Sink checks. Every store whose target slot statically resolves
 *     to a global with ifc_sink_forbid != 0 emits LABEL-CHECK(dst
 *     addr, forbid) after the store (and after its join, so the
 *     incoming value's label has already propagated).
 *
 * The propagation is deliberately an over-approximation (no strong
 * updates: overwriting a labeled location with clean data does not
 * clear its label); docs/policies.md discusses the trade-off.
 */

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "compiler/analysis.h"
#include "compiler/ifc_passes.h"

namespace hq {

using ir::Instr;
using ir::IrOp;

namespace {

/** Label-definition granularity: one LABEL-DEF per 8 aligned bytes. */
constexpr std::uint64_t kGranule = 8;

/** Prepend the entry function's source-label definitions. */
void
emitSourceLabels(ir::Module &module, StatSet &stats)
{
    if (module.entry_function < 0)
        return;
    ir::Function &entry = module.functions[module.entry_function];
    if (entry.blocks.empty())
        return;
    std::vector<Instr> prologue;
    for (const ir::Global &global : module.globals) {
        if (global.ifc_label == 0)
            continue;
        const std::uint64_t begin = global.ifc_label_offset;
        const std::uint64_t size = global.ifc_label_size != 0
                                       ? global.ifc_label_size
                                       : global.size;
        const std::uint64_t end =
            std::max(begin + size, begin + kGranule);

        Instr addr;
        addr.op = IrOp::GlobalAddr;
        addr.dest = entry.num_regs++;
        addr.imm = static_cast<std::uint64_t>(global.id);
        addr.flags = ir::kFlagInstrumentation;
        prologue.push_back(addr);

        for (std::uint64_t off = begin; off < end; off += kGranule) {
            int reg = addr.dest;
            if (off != 0) {
                Instr k;
                k.op = IrOp::ConstInt;
                k.dest = entry.num_regs++;
                k.imm = off;
                k.flags = ir::kFlagInstrumentation;
                Instr add;
                add.op = IrOp::Arith;
                add.dest = entry.num_regs++;
                add.a = addr.dest;
                add.b = k.dest;
                add.aux = static_cast<int>(ir::ArithKind::Add);
                add.flags = ir::kFlagInstrumentation;
                prologue.push_back(k);
                prologue.push_back(add);
                reg = add.dest;
            }
            Instr def;
            def.op = IrOp::LabelDefMsg;
            def.a = reg;
            def.imm = global.ifc_label;
            def.flags = ir::kFlagInstrumentation;
            prologue.push_back(def);
            stats.increment("ifc.label_defs");
        }
    }
    if (prologue.empty())
        return;
    auto &instrs = entry.blocks.front().instrs;
    instrs.insert(instrs.begin(), prologue.begin(), prologue.end());
}

} // namespace

void
IfcLoweringPass::run(ir::Module &module, StatSet &stats)
{
    emitSourceLabels(module, stats);

    for (ir::Function &function : module.functions) {
        const FunctionAnalysis fa(module, function);

        // Load provenance: value register -> the address register its
        // bytes were loaded from, propagated through Cast and Arith
        // (single-assignment registers make one forward pass in block
        // layout order sufficient for builder-produced code: defs
        // precede uses). Conservative: when both Arith operands carry
        // provenance, the left one wins — joins are monotone, so a
        // dropped second source can only under-approximate, and such
        // two-load arithmetic does not occur in annotated flows.
        std::unordered_map<int, int> loaded_from;

        std::vector<std::vector<Instr>> rewritten(function.blocks.size());
        for (int b = 0; b < static_cast<int>(function.blocks.size());
             ++b) {
            const auto &instrs = function.blocks[b].instrs;
            auto &out = rewritten[b];
            out.reserve(instrs.size() + 4);
            for (const Instr &instr : instrs) {
                out.push_back(instr);
                switch (instr.op) {
                  case IrOp::Load:
                    if (!(instr.flags & ir::kFlagInstrumentation))
                        loaded_from[instr.dest] = instr.a;
                    break;
                  case IrOp::Cast: {
                    auto it = loaded_from.find(instr.a);
                    if (it != loaded_from.end())
                        loaded_from[instr.dest] = it->second;
                    break;
                  }
                  case IrOp::Arith: {
                    auto it = loaded_from.find(instr.a);
                    if (it == loaded_from.end())
                        it = loaded_from.find(instr.b);
                    if (it != loaded_from.end())
                        loaded_from[instr.dest] = it->second;
                    break;
                  }
                  case IrOp::Store: {
                    if (instr.flags & ir::kFlagInstrumentation)
                        break;
                    auto it = loaded_from.find(instr.b);
                    if (it != loaded_from.end()) {
                        Instr join;
                        join.op = IrOp::LabelJoinMsg;
                        join.a = it->second; // src: runtime load addr
                        join.b = instr.a;    // dst: runtime store addr
                        join.flags = ir::kFlagInstrumentation;
                        out.push_back(join);
                        stats.increment("ifc.joins");
                    }
                    const SlotRef slot = fa.slotOf(instr.a);
                    if (slot.resolved() &&
                        slot.base == SlotRef::Base::Global) {
                        const ir::Global &global =
                            module.globals[slot.id];
                        if (global.ifc_sink_forbid != 0) {
                            Instr check;
                            check.op = IrOp::LabelCheckMsg;
                            check.a = instr.a;
                            check.imm = global.ifc_sink_forbid;
                            check.flags = ir::kFlagInstrumentation;
                            out.push_back(check);
                            stats.increment("ifc.checks");
                        }
                    }
                    break;
                  }
                  default:
                    break;
                }
            }
        }
        for (std::size_t b = 0; b < function.blocks.size(); ++b)
            function.blocks[b].instrs = std::move(rewritten[b]);
    }
}

} // namespace hq
