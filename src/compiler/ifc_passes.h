/**
 * @file
 * Information-flow-control instrumentation pass. See ifc_lowering.cc
 * for the analysis; pairs with policy/ifc.h on the verifier side.
 */

#ifndef HQ_COMPILER_IFC_PASSES_H
#define HQ_COMPILER_IFC_PASSES_H

#include "compiler/passes.h"

namespace hq {

/**
 * Lowers the module's IFC source/sink annotations (ir::Global::ifc_*)
 * to label messages: LABEL-DEF for annotated sources at program start,
 * LABEL-JOIN after every store whose value was loaded from memory
 * (runtime-address provenance, so out-of-bounds reads carry the label
 * of whatever they actually read), and LABEL-CHECK after stores into
 * annotated sinks.
 */
class IfcLoweringPass : public Pass
{
  public:
    const char *name() const override { return "ifc-lowering"; }
    void run(ir::Module &module, StatSet &stats) override;
};

} // namespace hq

#endif // HQ_COMPILER_IFC_PASSES_H
