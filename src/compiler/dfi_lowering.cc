/**
 * @file
 * Data-flow integrity lowering (§4.3 / Castro et al. OSDI'06).
 *
 * Assigns every protected store instruction a dense writer id, computes
 * per-slot reaching-writer sets with a flow-insensitive slot-based
 * analysis (a store to a slot may reach any load of that slot), and
 * inserts DFI-WRITE after protected stores and DFI-READ before
 * protected loads. Loads of slots no store can reach carry only the
 * initial-writer bit.
 *
 * "Protected" here means slots the caller's selector accepts; by
 * default every resolved stack/global slot is protected, making this a
 * whole-program DFI over named memory (heap accesses through
 * unresolvable pointers are conservatively skipped, as in the original
 * design's declared-objects focus).
 */

#include <unordered_map>

#include "compiler/dfi_passes.h"

namespace hq {

using ir::Instr;
using ir::IrOp;

void
DfiLoweringPass::run(ir::Module &module, StatSet &stats)
{
    // Pass 1 (module-wide): assign writer ids to stores and accumulate
    // per-slot reaching-writer masks. Writer id 0 is the initial
    // writer; ids are capped at 63 by wrapping (a sound widening: two
    // stores sharing an id makes the check weaker, never wrong).
    int next_writer = 1;
    std::unordered_map<std::uint64_t, std::uint64_t> slot_masks;
    // (function id, block, index) -> writer id
    std::unordered_map<std::uint64_t, int> writer_ids;

    auto siteKey = [](int func, int block, int index) {
        return (static_cast<std::uint64_t>(func) << 40) |
               (static_cast<std::uint64_t>(block) << 20) |
               static_cast<std::uint64_t>(index);
    };

    for (const ir::Function &function : module.functions) {
        const FunctionAnalysis fa(module, function);
        for (int b = 0; b < static_cast<int>(function.blocks.size());
             ++b) {
            const auto &instrs = function.blocks[b].instrs;
            for (int i = 0; i < static_cast<int>(instrs.size()); ++i) {
                if (instrs[i].op != IrOp::Store)
                    continue;
                const SlotRef slot = fa.slotOf(instrs[i].a);
                if (!slot.resolved())
                    continue;
                const int writer = next_writer <= 63
                                       ? next_writer++
                                       : 1 + (next_writer++ % 63);
                writer_ids[siteKey(function.id, b, i)] = writer;
                slot_masks[slot.key()] |= 1ULL << writer;
                // Inexact offsets may alias any offset of the base:
                // fold into the base-wide mask via a synthetic key.
                SlotRef base = slot;
                base.offset = 0;
                base.exact_offset = false;
                slot_masks[base.key()] |= 1ULL << writer;
            }
        }
    }

    // Pass 2: rewrite each function, inserting the messages.
    for (ir::Function &function : module.functions) {
        const FunctionAnalysis fa(module, function);
        std::vector<std::vector<Instr>> rewritten(function.blocks.size());

        for (int b = 0; b < static_cast<int>(function.blocks.size());
             ++b) {
            const auto &instrs = function.blocks[b].instrs;
            auto &out = rewritten[b];
            out.reserve(instrs.size() + 4);
            for (int i = 0; i < static_cast<int>(instrs.size()); ++i) {
                const Instr &instr = instrs[i];
                if (instr.op == IrOp::Load &&
                    !(instr.flags & ir::kFlagInstrumentation)) {
                    const SlotRef slot = fa.slotOf(instr.a);
                    if (slot.resolved()) {
                        std::uint64_t mask = 1; // initial writer
                        auto it = slot_masks.find(slot.key());
                        if (it != slot_masks.end())
                            mask |= it->second;
                        SlotRef base = slot;
                        base.offset = 0;
                        base.exact_offset = false;
                        auto bit = slot_masks.find(base.key());
                        if (!slot.exact_offset &&
                            bit != slot_masks.end())
                            mask |= bit->second;
                        Instr read;
                        read.op = IrOp::DfiReadMsg;
                        read.a = instr.a;
                        read.imm = mask;
                        read.flags = ir::kFlagInstrumentation;
                        out.push_back(read);
                        stats.increment("dfi.reads");
                    }
                    out.push_back(instr);
                    continue;
                }
                out.push_back(instr);
                if (instr.op == IrOp::Store) {
                    auto it =
                        writer_ids.find(siteKey(function.id, b, i));
                    if (it != writer_ids.end()) {
                        Instr write;
                        write.op = IrOp::DfiWriteMsg;
                        write.a = instr.a;
                        write.imm =
                            static_cast<std::uint64_t>(it->second);
                        write.flags = ir::kFlagInstrumentation;
                        out.push_back(write);
                        stats.increment("dfi.writes");
                    }
                }
            }
        }
        for (std::size_t b = 0; b < function.blocks.size(); ++b)
            function.blocks[b].instrs = std::move(rewritten[b]);
    }
}

} // namespace hq
