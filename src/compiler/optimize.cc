/**
 * @file
 * Store-to-load forwarding and message elision (§4.1.4).
 */

#include <unordered_set>

#include "compiler/passes.h"
#include "ir/cfg.h"
#include "ir/dominators.h"

namespace hq {

using ir::Instr;
using ir::IrOp;

namespace {

/** Position of an instruction inside a function. */
struct Site
{
    int block = -1;
    int index = -1;
};

/**
 * Does instr clobber the (resolved, exact) slot? Clobbers force the
 * next check of the slot to stay.
 */
bool
clobbers(const FunctionAnalysis &fa, const ir::Module &module,
         const Instr &instr, const SlotRef &slot, bool slot_escapes)
{
    switch (instr.op) {
      case IrOp::Store:
      case IrOp::SafeStore: {
        const SlotRef target = fa.slotOf(instr.a);
        if (!target.resolved())
            return true; // unknown destination may alias anything
        // A store that may leave its own slot (variable index or a
        // provably out-of-bounds offset) can alias *any* memory —
        // including the slot being forwarded. Eliding the check here
        // would let an out-of-bounds overwrite go unobserved.
        if (!fa.accessInBounds(target, module))
            return true;
        if (target.base != slot.base || target.id != slot.id)
            return false;
        // Same base, both offsets exact and in bounds: field-sensitive.
        return target.offset == slot.offset;
      }
      case IrOp::Memcpy:
      case IrOp::Memmove:
      case IrOp::Free:
      case IrOp::Realloc: {
        const SlotRef target = fa.slotOf(instr.a);
        if (!target.resolved())
            return true;
        return target.base == slot.base && target.id == slot.id;
      }
      case IrOp::CallDirect:
      case IrOp::CallIndirect:
      case IrOp::VCall:
        // Callees can only touch the slot if its address escaped.
        return slot_escapes;
      default:
        return false;
    }
}

} // namespace

void
StoreToLoadForwardingPass::run(ir::Module &module, StatSet &stats)
{
    for (ir::Function &function : module.functions) {
        if (function.attrs.returns_twice)
            continue; // setjmp-like functions are excluded (§4.1.4)

        const FunctionAnalysis fa(module, function);
        const ir::Cfg cfg(function);
        const ir::DominatorTree dom(cfg);

        // Gather HqCheck sites and HqDefine/HqCheck "facts" per slot.
        struct Fact
        {
            Site site;
            SlotRef slot;
        };
        std::vector<Fact> facts;   // defines and surviving checks
        std::vector<Fact> checks;  // candidate checks for elision

        for (int b = 0; b < static_cast<int>(function.blocks.size()); ++b) {
            const auto &instrs = function.blocks[b].instrs;
            for (int i = 0; i < static_cast<int>(instrs.size()); ++i) {
                const Instr &instr = instrs[i];
                if (instr.op != IrOp::HqDefine &&
                    instr.op != IrOp::HqCheck)
                    continue;
                const SlotRef slot = fa.slotOf(instr.a);
                if (!slot.resolved() || !slot.exact_offset)
                    continue;
                Fact fact{Site{b, i}, slot};
                facts.push_back(fact);
                if (instr.op == IrOp::HqCheck)
                    checks.push_back(fact);
            }
        }

        std::unordered_set<std::uint64_t> to_elide; // block<<32|index
        bool crossed_call = false;

        for (const Fact &check : checks) {
            // The checked load itself precedes the HqCheck; volatile
            // loads are excluded from forwarding.
            const auto &check_block =
                function.blocks[check.site.block].instrs;
            if (check.site.index > 0) {
                const Instr &load = check_block[check.site.index - 1];
                if (load.op == IrOp::Load &&
                    (load.flags & ir::kFlagVolatile))
                    continue;
            }

            const bool escapes = fa.slotEscapes(check.slot);

            // Find a dominating fact for the same slot, then prove no
            // clobber on any path between it and the check.
            for (const Fact &fact : facts) {
                if (fact.site.block == check.site.block &&
                    fact.site.index == check.site.index)
                    continue;
                if (!(fact.slot == check.slot))
                    continue;

                const bool same_block =
                    fact.site.block == check.site.block;
                if (same_block) {
                    if (fact.site.index >= check.site.index)
                        continue;
                } else if (!dom.dominates(fact.site.block,
                                          check.site.block)) {
                    continue;
                }

                // Collect blocks on paths fact -> check: blocks
                // reachable from fact.block without passing through the
                // check's block (plus both endpoints' partial ranges).
                bool clobbered = false;
                bool crossed_call_here = false;
                auto scanRange = [&](int block, int begin, int end) {
                    const auto &instrs = function.blocks[block].instrs;
                    for (int i = begin; i < end && !clobbered; ++i) {
                        if (instrs[i].isCall())
                            crossed_call_here = true;
                        if (clobbers(fa, module, instrs[i], check.slot,
                                     escapes))
                            clobbered = true;
                    }
                };

                if (same_block) {
                    scanRange(check.site.block, fact.site.index + 1,
                              check.site.index);
                } else {
                    scanRange(fact.site.block, fact.site.index + 1,
                              static_cast<int>(
                                  function.blocks[fact.site.block]
                                      .instrs.size()));
                    scanRange(check.site.block, 0, check.site.index);
                    // Intermediate blocks: DFS from fact.block to
                    // check.block.
                    std::vector<int> worklist{fact.site.block};
                    std::unordered_set<int> visited{fact.site.block,
                                                    check.site.block};
                    while (!worklist.empty() && !clobbered) {
                        const int cur = worklist.back();
                        worklist.pop_back();
                        for (int succ : cfg.successors(cur)) {
                            if (visited.count(succ))
                                continue;
                            visited.insert(succ);
                            scanRange(succ, 0,
                                      static_cast<int>(
                                          function.blocks[succ]
                                              .instrs.size()));
                            worklist.push_back(succ);
                        }
                    }
                }

                if (!clobbered) {
                    const std::uint64_t key =
                        (static_cast<std::uint64_t>(check.site.block)
                         << 32) |
                        static_cast<std::uint32_t>(check.site.index);
                    if (to_elide.insert(key).second) {
                        stats.increment("optimize.checks_forwarded");
                        if (crossed_call_here)
                            crossed_call = true;
                    }
                    break;
                }
            }
        }

        if (to_elide.empty())
            continue;

        // Erase elided checks.
        for (int b = static_cast<int>(function.blocks.size()) - 1; b >= 0;
             --b) {
            auto &instrs = function.blocks[b].instrs;
            for (int i = static_cast<int>(instrs.size()) - 1; i >= 0;
                 --i) {
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(b) << 32) |
                    static_cast<std::uint32_t>(i);
                if (to_elide.count(key))
                    instrs.erase(instrs.begin() + i);
            }
        }

        // Runtime recursion guard (§4.1.4): when forwarding crossed a
        // call site, guard the optimized function — if the guard is
        // still set upon re-entry, the program must be terminated and
        // recompiled without this optimization.
        if (crossed_call) {
            Instr enter;
            enter.op = IrOp::HqGuardEnter;
            enter.aux = function.id;
            enter.flags = ir::kFlagInstrumentation;
            auto &entry = function.blocks[0].instrs;
            entry.insert(entry.begin(), enter);
            for (auto &block : function.blocks) {
                for (int i = static_cast<int>(block.instrs.size()) - 1;
                     i >= 0; --i) {
                    if (block.instrs[i].op == IrOp::Ret) {
                        Instr exit_guard;
                        exit_guard.op = IrOp::HqGuardExit;
                        exit_guard.aux = function.id;
                        exit_guard.flags = ir::kFlagInstrumentation;
                        block.instrs.insert(block.instrs.begin() + i,
                                            exit_guard);
                    }
                }
            }
            stats.increment("optimize.guarded_functions");
        }
    }
}

void
MessageElisionPass::run(ir::Module &module, StatSet &stats)
{
    // Module-wide sweep: which global slots are ever checked? (Local
    // stack slots cannot be checked outside their function unless they
    // escape, which the per-function logic accounts for.)
    std::unordered_set<std::uint64_t> checked_globals;
    for (const ir::Function &function : module.functions) {
        const FunctionAnalysis fa(module, function);
        for (const auto &block : function.blocks) {
            for (const Instr &instr : block.instrs) {
                if (instr.op != IrOp::HqCheck &&
                    instr.op != IrOp::HqCheckInvalidate)
                    continue;
                const SlotRef slot = fa.slotOf(instr.a);
                if (slot.base == SlotRef::Base::Global)
                    checked_globals.insert(slot.key());
            }
        }
    }

    for (ir::Function &function : module.functions) {
        const FunctionAnalysis fa(module, function);

        // Per-function: stack slots with at least one surviving check.
        std::unordered_set<int> checked_stack_slots;
        for (const auto &block : function.blocks) {
            for (const Instr &instr : block.instrs) {
                if (instr.op != IrOp::HqCheck &&
                    instr.op != IrOp::HqCheckInvalidate)
                    continue;
                const SlotRef slot = fa.slotOf(instr.a);
                if (slot.base == SlotRef::Base::Stack)
                    checked_stack_slots.insert(slot.id);
            }
        }

        for (auto &block : function.blocks) {
            auto &instrs = block.instrs;
            std::vector<Instr> out;
            out.reserve(instrs.size());
            SlotRef last_invalidated; // local dedup of invalidates

            for (const Instr &instr : instrs) {
                if (instr.op == IrOp::HqDefine ||
                    instr.op == IrOp::HqInvalidate) {
                    const SlotRef slot = fa.slotOf(instr.a);
                    // Never-checked, non-escaping stack slot: the
                    // define/invalidate pair is superfluous (§4.1.4).
                    if (slot.base == SlotRef::Base::Stack &&
                        !fa.stackSlotEscapes(slot.id) &&
                        !checked_stack_slots.count(slot.id)) {
                        stats.increment(
                            instr.op == IrOp::HqDefine
                                ? "optimize.defines_elided"
                                : "optimize.invalidates_elided");
                        continue;
                    }
                }

                if (instr.op == IrOp::HqInvalidate) {
                    const SlotRef slot = fa.slotOf(instr.a);
                    // Duplicate invalidate of the same slot with no
                    // intervening define (inlined C++ destructors).
                    if (slot.resolved() && slot == last_invalidated) {
                        stats.increment("optimize.invalidates_elided");
                        continue;
                    }
                    last_invalidated = slot;
                } else if (instr.op == IrOp::HqDefine ||
                           instr.op == IrOp::Store ||
                           instr.isCall()) {
                    last_invalidated = SlotRef{};
                }

                out.push_back(instr);
            }
            instrs = std::move(out);
        }
    }
}

} // namespace hq
