/**
 * @file
 * Compiler instrumentation passes (paper §3.2, §4.1.4).
 *
 * The pass pipeline mirrors the paper's three-stage structure:
 *
 *  1. Devirtualization (Clang/LLVM's C++ optimizations): convert
 *     virtual calls with statically-known receivers into direct calls
 *     that need no protection.
 *  2. Initial lowering: insert define/check/invalidate instrumentation
 *     at protected pointer operations. The *mechanism* differs per CFI
 *     design and reproduces each design's characteristic blind spots:
 *       - HQ       : value-based; messages use runtime addresses, so
 *                    pointer aliasing cannot cause misses (§4.1.2).
 *       - ClangCFI : signature-class checks at indirect calls only;
 *                    casts/decay change the static class => false
 *                    positives, coarse classes => code-reuse gaps.
 *       - CCFI     : MAC define/check keyed by static type at every
 *                    typed funcptr access; decayed accesses skip the
 *                    MAC => false positives on later checks.
 *       - CPI      : loads/stores redirected to the safe store only
 *                    when static analysis resolves the slot; unresolved
 *                    aliased accesses are missed => correctness bugs.
 *  3. Optimization + final lowering: store-to-load forwarding, message
 *     elision, block-memory-op instrumentation under strict subtype
 *     checking with an allowlist, and System-Call message placement
 *     using dominators/post-dominators.
 */

#ifndef HQ_COMPILER_PASSES_H
#define HQ_COMPILER_PASSES_H

#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "compiler/analysis.h"
#include "ir/module.h"

namespace hq {

/** Which CFI design's instrumentation to emit. */
enum class LoweringMode {
    None,     //!< baseline: no instrumentation
    Hq,       //!< HerQules pointer-integrity messages
    ClangCfi, //!< Clang/LLVM CFI type checks
    Ccfi,     //!< cryptographic MACs
    Cpi,      //!< safe-store relocation
};

/** Options shared by the instrumentation passes. */
struct LoweringOptions
{
    LoweringMode mode = LoweringMode::Hq;
    /** HQ-CFI-RetPtr: message-protect return pointers (§4.1.5). */
    bool retptr_messages = false;
    /** Strict subtype checking on block memory operations (§4.1.4). */
    bool strict_subtype_check = true;
    /** Honor per-function block-op allowlist attributes. */
    bool use_allowlist = true;
};

/** One IR-to-IR transformation. */
class Pass
{
  public:
    virtual ~Pass() = default;
    virtual const char *name() const = 0;
    virtual void run(ir::Module &module, StatSet &stats) = 0;
};

/** Runs passes in order, verifying the module after each. */
class PassManager
{
  public:
    void add(std::unique_ptr<Pass> pass);

    /** @return the first verification failure, or Ok. */
    Status run(ir::Module &module);

    const StatSet &stats() const { return _stats; }

  private:
    std::vector<std::unique_ptr<Pass>> _passes;
    StatSet _stats;
};

/**
 * C++ devirtualization (§4.1.4 "C++ Devirtualization"): VCall sites
 * whose receiver class is statically known become direct calls.
 * Models Virtual Pointer Invariance + Whole Program Devirtualization.
 */
class DevirtualizationPass : public Pass
{
  public:
    const char *name() const override { return "devirtualize"; }
    void run(ir::Module &module, StatSet &stats) override;
};

/**
 * Initial lowering (§4.1.4): expand remaining VCalls into explicit
 * vtable-pointer loads, then insert per-design instrumentation at
 * protected stores/loads, invalidation of protected stack slots at
 * returns, and (for HQ-CFI-RetPtr / CCFI) return-pointer protection
 * function attributes.
 */
class InitialLoweringPass : public Pass
{
  public:
    explicit InitialLoweringPass(const LoweringOptions &options)
        : _options(options)
    {}

    const char *name() const override { return "initial-lowering"; }
    void run(ir::Module &module, StatSet &stats) override;

  private:
    void runOnFunction(ir::Module &module, ir::Function &function,
                       StatSet &stats);
    LoweringOptions _options;
};

/**
 * Store-to-load forwarding (§4.1.4): a field-sensitive optimization
 * that elides HqChecks on loads dominated by a define/check of the same
 * slot with no intervening clobber. Excludes volatile accesses and
 * returns-twice functions; inserts the runtime recursion guard when an
 * elision crosses a call site.
 */
class StoreToLoadForwardingPass : public Pass
{
  public:
    const char *name() const override { return "store-to-load-forwarding"; }
    void run(ir::Module &module, StatSet &stats) override;
};

/**
 * Message elision (§4.1.4): removes defines (and their invalidates) of
 * non-escaping stack slots that are never checked, and deduplicates
 * consecutive invalidates (inlined C++ destructors).
 */
class MessageElisionPass : public Pass
{
  public:
    const char *name() const override { return "message-elision"; }
    void run(ir::Module &module, StatSet &stats) override;
};

/**
 * Final lowering (§4.1.4): instrument block memory operations
 * (memcpy/memmove/realloc/free) with block messages, eliding
 * operations whose element type statically cannot contain control-flow
 * pointers (strict subtype checking) unless the enclosing function is
 * allowlisted.
 */
class FinalLoweringPass : public Pass
{
  public:
    explicit FinalLoweringPass(const LoweringOptions &options)
        : _options(options)
    {}

    const char *name() const override { return "final-lowering"; }
    void run(ir::Module &module, StatSet &stats) override;

  private:
    LoweringOptions _options;
};

/**
 * System-Call message placement (§3.2): before every syscall
 * instruction, insert the HqSyscallMsg at the earliest program point
 * that dominates the syscall, is post-dominated by it, and is not
 * separated from it by any other message or function call — hoisting
 * through straight-line dominator chains so the message processing
 * pipelines with the pre-syscall computation.
 */
class SyscallSyncPass : public Pass
{
  public:
    /**
     * @param elide_readonly skip System-Call messages for read-only
     *        syscalls (paired with the kernel's matching elision).
     */
    explicit SyscallSyncPass(bool elide_readonly = false)
        : _elide_readonly(elide_readonly)
    {}

    const char *name() const override { return "syscall-sync"; }
    void run(ir::Module &module, StatSet &stats) override;

  private:
    bool _elide_readonly;
};

} // namespace hq

#endif // HQ_COMPILER_PASSES_H
