#include "compiler/analysis.h"

namespace hq {

using ir::Instr;
using ir::IrOp;

namespace {

std::uint64_t
baseKey(SlotRef::Base base, int id)
{
    return (static_cast<std::uint64_t>(base) << 56) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
}

} // namespace

FunctionAnalysis::FunctionAnalysis(const ir::Module &module,
                                   const ir::Function &function)
    : _module(module), _function(function)
{
    computeDefs();
    computeAllocaOrdinals();
    computeTaint();
    computeSlots();
}

void
FunctionAnalysis::computeDefs()
{
    _defs.assign(_function.num_regs, DefSite{});
    for (int block = 0; block < static_cast<int>(_function.blocks.size());
         ++block) {
        const auto &instrs = _function.blocks[block].instrs;
        for (int index = 0; index < static_cast<int>(instrs.size());
             ++index) {
            const int dest = instrs[index].dest;
            if (dest >= 0 && dest < _function.num_regs)
                _defs[dest] = DefSite{block, index};
        }
    }
}

void
FunctionAnalysis::computeAllocaOrdinals()
{
    for (int block = 0; block < static_cast<int>(_function.blocks.size());
         ++block) {
        const auto &instrs = _function.blocks[block].instrs;
        for (int index = 0; index < static_cast<int>(instrs.size());
             ++index) {
            if (instrs[index].op == IrOp::Alloca) {
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(block) << 32) |
                    static_cast<std::uint32_t>(index);
                _alloca_ordinals[key] = _num_allocas++;
                _alloca_sizes.push_back(instrs[index].imm);
            }
        }
    }
}

DefSite
FunctionAnalysis::def(int reg) const
{
    if (reg < 0 || reg >= static_cast<int>(_defs.size()))
        return DefSite{};
    return _defs[reg];
}

const Instr *
FunctionAnalysis::defInstr(int reg) const
{
    const DefSite site = def(reg);
    if (!site.valid())
        return nullptr;
    return &_function.blocks[site.block].instrs[site.index];
}

int
FunctionAnalysis::allocaOrdinal(int block, int index) const
{
    const std::uint64_t key = (static_cast<std::uint64_t>(block) << 32) |
                              static_cast<std::uint32_t>(index);
    auto it = _alloca_ordinals.find(key);
    return it == _alloca_ordinals.end() ? -1 : it->second;
}

SlotRef
FunctionAnalysis::slotOf(int addr_reg) const
{
    SlotRef slot;
    int reg = addr_reg;
    std::uint64_t offset = 0;
    // Def chains are acyclic (single assignment), so this terminates.
    for (;;) {
        const Instr *instr = defInstr(reg);
        if (!instr) {
            // Parameter or unknown: address data we cannot resolve.
            slot.base = SlotRef::Base::Unknown;
            return slot;
        }
        switch (instr->op) {
          case IrOp::Alloca: {
            const DefSite site = def(reg);
            slot.base = SlotRef::Base::Stack;
            slot.id = allocaOrdinal(site.block, site.index);
            slot.offset = offset;
            slot.exact_offset = true;
            return slot;
          }
          case IrOp::GlobalAddr:
            slot.base = SlotRef::Base::Global;
            slot.id = static_cast<int>(instr->imm);
            slot.offset = offset;
            slot.exact_offset = true;
            return slot;
          case IrOp::Cast:
            reg = instr->a;
            continue;
          case IrOp::Arith: {
            // base + constant: field addressing stays resolvable.
            if (static_cast<ir::ArithKind>(instr->aux) ==
                ir::ArithKind::Add) {
                const Instr *lhs = defInstr(instr->a);
                const Instr *rhs = defInstr(instr->b);
                if (rhs && rhs->op == IrOp::ConstInt) {
                    offset += rhs->imm;
                    reg = instr->a;
                    continue;
                }
                if (lhs && lhs->op == IrOp::ConstInt) {
                    offset += lhs->imm;
                    reg = instr->b;
                    continue;
                }
                // Variable index: the base may still resolve, but the
                // offset is unknown.
                SlotRef inner = slotOf(instr->a);
                if (inner.resolved()) {
                    inner.exact_offset = false;
                    return inner;
                }
                inner = slotOf(instr->b);
                if (inner.resolved()) {
                    inner.exact_offset = false;
                    return inner;
                }
            }
            slot.base = SlotRef::Base::Unknown;
            return slot;
          }
          default:
            slot.base = SlotRef::Base::Unknown;
            return slot;
        }
    }
}

void
FunctionAnalysis::computeTaint()
{
    // Taint graph edges: Cast propagates in both directions (rule 1
    // forward: defined-from; rule 2 backward: original value used as
    // funcptr). Seeds: FuncAddr results, protected-typed loads, casts
    // *to* function-pointer type (both their dest and source).
    std::vector<int> worklist;
    auto addTaint = [&](int reg) {
        if (reg >= 0 && _tainted.insert(reg).second)
            worklist.push_back(reg);
    };

    // Forward edges a->dest and backward dest->a for every cast.
    std::unordered_map<int, std::vector<int>> adjacent;

    for (const auto &block : _function.blocks) {
        for (const Instr &instr : block.instrs) {
            switch (instr.op) {
              case IrOp::FuncAddr:
                addTaint(instr.dest);
                break;
              case IrOp::Load:
                if (instr.type.isProtectedPtr())
                    addTaint(instr.dest);
                break;
              case IrOp::Cast:
                adjacent[instr.a].push_back(instr.dest);
                adjacent[instr.dest].push_back(instr.a);
                if (instr.type.isFuncPtr()) {
                    addTaint(instr.dest);
                    addTaint(instr.a); // rule (2)
                }
                break;
              default:
                break;
            }
        }
    }

    while (!worklist.empty()) {
        const int reg = worklist.back();
        worklist.pop_back();
        auto it = adjacent.find(reg);
        if (it == adjacent.end())
            continue;
        for (int next : it->second)
            addTaint(next);
    }
}

void
FunctionAnalysis::computeSlots()
{
    auto protect = [&](const SlotRef &slot) {
        if (!slot.resolved())
            return;
        _protected_bases.insert(baseKey(slot.base, slot.id));
        if (slot.exact_offset)
            _protected_slots.insert(slot.key());
    };
    auto escape = [&](int addr_reg) {
        const SlotRef slot = slotOf(addr_reg);
        if (slot.resolved())
            _escaped_bases.insert(baseKey(slot.base, slot.id));
    };

    for (const auto &block : _function.blocks) {
        for (const Instr &instr : block.instrs) {
            switch (instr.op) {
              case IrOp::Store:
                if (instr.type.isProtectedPtr() || isTainted(instr.b))
                    protect(slotOf(instr.a));
                // Storing a slot's *address* somewhere: it escapes.
                escape(instr.b);
                break;
              case IrOp::Load:
                if (instr.type.isProtectedPtr())
                    protect(slotOf(instr.a));
                break;
              case IrOp::Memcpy:
              case IrOp::Memmove:
                escape(instr.a);
                escape(instr.b);
                break;
              case IrOp::CallDirect:
              case IrOp::CallIndirect:
              case IrOp::VCall:
                for (int arg : instr.args)
                    escape(arg);
                break;
              case IrOp::Free:
              case IrOp::Realloc:
                escape(instr.a);
                break;
              default:
                break;
            }
        }
    }
}

bool
FunctionAnalysis::isProtectedSlot(const SlotRef &slot) const
{
    if (!slot.resolved())
        return false;
    // Globals with function-pointer initializers are protected
    // regardless of local dataflow (startup registration, §4.1.4).
    if (slot.base == SlotRef::Base::Global && slot.id >= 0 &&
        slot.id < static_cast<int>(_module.globals.size()) &&
        !_module.globals[slot.id].funcptr_init.empty()) {
        return true;
    }
    if (slot.exact_offset)
        return _protected_slots.count(slot.key()) > 0;
    // Inexact offset: conservatively protected when any offset of the
    // base is (field-sensitivity degrades gracefully).
    return _protected_bases.count(baseKey(slot.base, slot.id)) > 0;
}

std::uint64_t
FunctionAnalysis::allocaSize(int ordinal) const
{
    if (ordinal < 0 || ordinal >= static_cast<int>(_alloca_sizes.size()))
        return 0;
    return _alloca_sizes[ordinal];
}

bool
FunctionAnalysis::accessInBounds(const SlotRef &slot,
                                 const ir::Module &module) const
{
    if (!slot.resolved() || !slot.exact_offset)
        return false;
    std::uint64_t size = 0;
    if (slot.base == SlotRef::Base::Stack) {
        size = allocaSize(slot.id);
    } else if (slot.id >= 0 &&
               slot.id < static_cast<int>(module.globals.size())) {
        size = module.globals[slot.id].size;
    }
    return size > 0 && slot.offset + 8 <= size;
}

bool
FunctionAnalysis::isProtectedStackSlot(int ordinal) const
{
    return _protected_bases.count(
               baseKey(SlotRef::Base::Stack, ordinal)) > 0;
}

bool
FunctionAnalysis::stackSlotEscapes(int ordinal) const
{
    return _escaped_bases.count(baseKey(SlotRef::Base::Stack, ordinal)) >
           0;
}

bool
FunctionAnalysis::slotEscapes(const SlotRef &slot) const
{
    if (!slot.resolved())
        return true;
    // Globals are always reachable from other functions.
    if (slot.base == SlotRef::Base::Global)
        return true;
    return _escaped_bases.count(baseKey(slot.base, slot.id)) > 0;
}

} // namespace hq
