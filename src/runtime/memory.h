/**
 * @file
 * Simulated process address space for the VM.
 *
 * Four regions mirror a Linux process image: globals (data/BSS/rodata),
 * heap, stack, and — when a design uses one — a safe stack. The safe
 * stack is mapped either adjacent to the regular stack (CPI and
 * HQ-CFI-SfeStk: a linear overwrite can sweep into it) or behind an
 * unmapped guard gap (Clang/LLVM's safe stack, which adds guard pages;
 * §5.2). Read-only globals (vtables, const tables) reject writes.
 *
 * All accesses are 8-byte words; the RIPE attack programs perform real
 * out-of-bounds writes within this space.
 */

#ifndef HQ_RUNTIME_MEMORY_H
#define HQ_RUNTIME_MEMORY_H

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace hq {

/** Fixed virtual layout of the simulated process. */
struct MemoryLayout
{
    static constexpr Addr kGlobalBase = 0x10000000;
    static constexpr Addr kHeapBase = 0x20000000;
    static constexpr Addr kStackBase = 0x70000000;
    /** Unmapped guard gap between stack top and the safe stack. */
    static constexpr Addr kGuardGap = 0x10000;

    std::size_t global_size = 1 << 20;
    std::size_t heap_size = 16 << 20;
    std::size_t stack_size = 4 << 20;
    std::size_t safe_stack_size = 1 << 20;
    bool guard_pages = false; //!< gap before the safe stack
};

class SimMemory
{
  public:
    explicit SimMemory(const MemoryLayout &layout);

    /** Base address of the safe-stack region. */
    Addr safeStackBase() const { return _safe_base; }
    Addr stackBase() const { return MemoryLayout::kStackBase; }
    Addr heapBase() const { return MemoryLayout::kHeapBase; }
    Addr globalBase() const { return MemoryLayout::kGlobalBase; }

    /** Read one 8-byte word; fails on unmapped addresses. */
    Status read64(Addr addr, std::uint64_t &out) const;

    /** Write one 8-byte word; fails on unmapped/read-only addresses. */
    Status write64(Addr addr, std::uint64_t value);

    /** Block copy (memcpy/memmove semantics, byte granularity). */
    Status copy(Addr dst, Addr src, std::uint64_t size, bool allow_overlap);

    /** Mark [base, base+size) as read-only (RoData globals). */
    void protectReadOnly(Addr base, std::uint64_t size);

    /** True when the address is inside a mapped region. */
    bool mapped(Addr addr) const;

  private:
    /** Resolve to (region storage, offset); nullptr when unmapped. */
    std::uint8_t *resolve(Addr addr, std::uint64_t size);
    const std::uint8_t *resolveRead(Addr addr, std::uint64_t size) const;
    bool isReadOnly(Addr addr) const;

    MemoryLayout _layout;
    std::vector<std::uint8_t> _globals;
    std::vector<std::uint8_t> _heap;
    std::vector<std::uint8_t> _stack;
    std::vector<std::uint8_t> _safe_stack;
    Addr _safe_base;
    /** Sorted read-only ranges inside the globals region. */
    std::map<Addr, std::uint64_t> _readonly;
};

} // namespace hq

#endif // HQ_RUNTIME_MEMORY_H
