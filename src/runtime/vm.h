/**
 * @file
 * The monitored-program virtual machine.
 *
 * Executes mini-IR modules inside a simulated process address space.
 * This is the reproduction's stand-in for native execution of an
 * LLVM-instrumented binary: instrumentation instructions inserted by
 * the compiler passes perform *real* work — HQ ops send real messages
 * through a real AppendWrite channel to a concurrent verifier; baseline
 * ops (Clang CFI type checks, CCFI MACs, CPI safe-store accesses) run
 * their design's checking semantics in-process, with that design's
 * characteristic blind spots.
 *
 * Control-flow realism: return pointers are stored in simulated memory
 * (regular stack or safe stack) and *used* for control transfer — an
 * attacker's out-of-bounds write that corrupts one genuinely diverts
 * execution, which is what the RIPE suite exploits.
 */

#ifndef HQ_RUNTIME_VM_H
#define HQ_RUNTIME_VM_H

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/module.h"
#include "runtime/memory.h"
#include "runtime/runtime.h"

namespace hq {

/**
 * Observer of the dynamic instruction stream, implemented by the
 * microarchitectural simulator (src/sim). When attached, the VM calls
 * onInstr() for every executed instruction.
 */
class CycleSink
{
  public:
    virtual ~CycleSink() = default;
    virtual void onInstr(const ir::Instr &instr) = 0;
};

/** Design-level runtime behavior of the VM. */
struct VmConfig
{
    /** Return pointers live in the safe-stack region. */
    bool safe_stack = false;
    /** Unmapped guard gap before the safe stack (Clang safe stack). */
    bool guard_pages = false;
    /** Hq* instructions send messages via the runtime. */
    bool hq_messages = false;
    /** HQ-CFI-RetPtr: message-protect return pointers per §4.1.6. */
    bool retptr_messages = false;
    /** CCFI runtime: MAC table semantics, incl. return-pointer MACs. */
    bool ccfi_runtime = false;
    /** CPI runtime: safe pointer store + free/realloc maintenance. */
    bool cpi_runtime = false;
    /** Clang/LLVM CFI runtime: signature-class checks. */
    bool clangcfi_runtime = false;
    /** Memory-safety policy (§4.2): allocation messages. */
    bool memsafety_messages = false;
    /** Abort on failed inline check (baselines kill the process). */
    bool stop_on_inline_violation = true;
    /**
     * Ablation: naive synchronous validation — before each system call,
     * wait until the verifier has drained every outstanding message
     * (instead of pipelining the System-Call message; §2.2).
     */
    bool naive_sync = false;
    /** Instruction budget; exceeding it reports Hang. */
    std::uint64_t max_instructions = 1ULL << 30;
    /** Function id whose entry marks attack success (RIPE). */
    int attack_payload_function = -1;
    /** Memory layout (guard_pages is mirrored into it). */
    MemoryLayout layout;
    /** Optional dynamic-instruction observer (cycle simulator). */
    CycleSink *cycle_sink = nullptr;
};

/** How a VM run ended. */
enum class ExitKind {
    Ok,              //!< entry function returned
    Crash,           //!< segfault / wild jump / invalid free
    Hang,            //!< instruction budget exhausted
    Killed,          //!< kernel terminated the process (policy)
    InlineViolation, //!< baseline design check failed and aborted
    GuardFailure,    //!< store-to-load forwarding guard tripped
};

const char *exitKindName(ExitKind kind);

struct RunResult
{
    ExitKind exit = ExitKind::Ok;
    std::uint64_t return_value = 0;
    std::uint64_t instructions = 0;
    std::uint64_t hq_ops = 0; //!< executed instrumentation (Hq*/Dfi*) ops
    std::uint64_t inline_checks = 0;
    std::uint64_t inline_violations = 0;
    bool attack_payload_reached = false;
    std::string detail;
};

class Vm
{
  public:
    /**
     * @param module  instrumented module to execute
     * @param config  design-level runtime behavior
     * @param runtime HerQules runtime (may be nullptr for baselines)
     */
    Vm(const ir::Module &module, const VmConfig &config,
       HqRuntime *runtime);

    /** Execute the module's entry function to completion. */
    RunResult run(const std::vector<std::uint64_t> &args = {});

    SimMemory &memory() { return _memory; }

    /** Simulated address of a global (valid after construction). */
    Addr globalAddr(int global_id) const
    {
        return _global_addrs[global_id];
    }

    /** Encode a function id as a runtime function-pointer value. */
    static std::uint64_t
    encodeFuncPtr(int func_id)
    {
        return kFuncPtrTag | static_cast<std::uint32_t>(func_id);
    }

    static bool
    isFuncPtrValue(std::uint64_t value)
    {
        return (value & kTagMask) == kFuncPtrTag;
    }

    static int
    decodeFuncPtr(std::uint64_t value)
    {
        return static_cast<int>(value & 0xFFFFFFFF);
    }

  private:
    static constexpr std::uint64_t kTagMask = 0xFF00000000000000ULL;
    static constexpr std::uint64_t kFuncPtrTag = 0xF100000000000000ULL;
    static constexpr std::uint64_t kRetTokenTag = 0xE200000000000000ULL;
    static constexpr std::uint64_t kJmpTokenTag = 0xD300000000000000ULL;

    /** Saved continuation for setjmp/longjmp. */
    struct JmpState
    {
        std::size_t frame_depth = 0;   //!< frames.size() at setjmp
        std::uint64_t frame_token = 0; //!< expected_ret of that frame
        int block = -1;                //!< setjmp position
        int index = -1;
        int dest_reg = -1;             //!< setjmp result register
        Addr stack_cursor = 0;
        Addr safe_cursor = 0;
        Addr alloca_cursor = 0;
    };

    struct Frame
    {
        int func = -1;
        std::vector<std::uint64_t> regs;
        Addr frame_base = 0;    //!< alloca area base
        Addr alloca_cursor = 0;
        Addr retptr_addr = 0;
        std::uint64_t expected_ret = 0;
        int ret_block = -1;   //!< caller resume block
        int ret_index = -1;   //!< caller resume instruction index
        int dest_reg = -1;    //!< caller register for the return value
        Addr stack_save = 0;
        Addr safe_save = 0;
    };

    void layoutGlobals();
    void registerGlobalPointers();

    /** Push a frame and transfer control to func's entry. */
    Status pushFrame(int func_id, const std::vector<int> &arg_regs,
                     int dest_reg);

    /** Heap allocator. */
    Addr heapAlloc(std::uint64_t size);
    bool heapFree(Addr addr, std::uint64_t &size_out);

    std::uint64_t macCompute(Addr addr, std::uint64_t value,
                             int type_class) const;

    RunResult finish(ExitKind kind, std::string detail);

    const ir::Module &_module;
    VmConfig _config;
    HqRuntime *_runtime;
    SimMemory _memory;

    std::vector<Addr> _global_addrs;
    std::vector<std::uint64_t> _alloca_totals; //!< per function

    // Interpreter state.
    std::vector<Frame> _frames;
    int _cur_block = 0;
    int _cur_index = 0;
    Addr _stack_cursor;
    Addr _safe_cursor;
    std::uint64_t _ret_nonce = 0;

    // Heap allocator state.
    Addr _heap_cursor;
    std::unordered_map<std::uint64_t, std::vector<Addr>> _free_lists;
    std::unordered_map<Addr, std::uint64_t> _alloc_sizes;

    // Baseline design state.
    std::unordered_map<Addr, std::uint64_t> _mac_table;   // CCFI
    std::map<Addr, std::uint64_t> _safe_store;            // CPI
    std::unordered_set<int> _vtable_functions; // Clang CFI vcall check
    std::vector<char> _guard_flags; // store-to-load forwarding guards
    std::unordered_map<std::uint64_t, JmpState> _jmp_states;
    std::uint64_t _jmp_nonce = 0;

    RunResult _result;
};

} // namespace hq

#endif // HQ_RUNTIME_VM_H
