#include "runtime/vm.h"

#include <thread>

#include "common/log.h"
#include "telemetry/telemetry.h"

namespace hq {

using ir::ArithKind;
using ir::Instr;
using ir::IrOp;

const char *
exitKindName(ExitKind kind)
{
    switch (kind) {
      case ExitKind::Ok: return "ok";
      case ExitKind::Crash: return "crash";
      case ExitKind::Hang: return "hang";
      case ExitKind::Killed: return "killed";
      case ExitKind::InlineViolation: return "inline-violation";
      case ExitKind::GuardFailure: return "guard-failure";
    }
    return "?";
}

namespace {

std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

} // namespace

Vm::Vm(const ir::Module &module, const VmConfig &config, HqRuntime *runtime)
    : _module(module),
      _config(config),
      _runtime(runtime),
      _memory([&] {
          MemoryLayout layout = config.layout;
          layout.guard_pages = config.guard_pages;
          return layout;
      }()),
      _stack_cursor(MemoryLayout::kStackBase),
      _heap_cursor(MemoryLayout::kHeapBase)
{
    _safe_cursor = _memory.safeStackBase();
    _guard_flags.assign(module.functions.size(), 0);

    // Per-function total alloca footprint (frame sizing).
    _alloca_totals.resize(module.functions.size(), 0);
    for (std::size_t f = 0; f < module.functions.size(); ++f) {
        std::uint64_t total = 0;
        for (const auto &block : module.functions[f].blocks)
            for (const Instr &instr : block.instrs)
                if (instr.op == IrOp::Alloca)
                    total += roundUp(instr.imm ? instr.imm : 8, 8);
        _alloca_totals[f] = total;
    }

    // Clang/LLVM CFI vcall metadata: which functions appear in vtables.
    for (const auto &cls : _module.classes)
        for (int fn : cls.vtable)
            if (fn >= 0)
                _vtable_functions.insert(fn);

    layoutGlobals();
}

void
Vm::layoutGlobals()
{
    _global_addrs.resize(_module.globals.size(), 0);
    Addr cursor = MemoryLayout::kGlobalBase + 64;
    for (const auto &global : _module.globals) {
        cursor = roundUp(cursor, 16);
        _global_addrs[global.id] = cursor;
        for (const auto &[offset, value] : global.word_init)
            _memory.write64(cursor + offset, value);
        for (const auto &[offset, func_id] : global.funcptr_init)
            _memory.write64(cursor + offset, encodeFuncPtr(func_id));
        cursor += roundUp(global.size ? global.size : 8, 8);
    }
    // Read-only protection is applied after initialization writes.
    for (const auto &global : _module.globals) {
        if (global.section == ir::Section::RoData)
            _memory.protectReadOnly(_global_addrs[global.id],
                                    global.size);
    }
}

void
Vm::registerGlobalPointers()
{
    // The instrumentation's startup initializer informs the verifier of
    // global control-flow pointers (§4.1.4). Read-only globals
    // (vtables) cannot change and need no registration.
    for (const auto &global : _module.globals) {
        if (global.section == ir::Section::RoData)
            continue;
        for (const auto &[offset, func_id] : global.funcptr_init) {
            const Addr addr = _global_addrs[global.id] + offset;
            const std::uint64_t value = encodeFuncPtr(func_id);
            if (_config.hq_messages && _runtime)
                _runtime->sendDefine(addr, value);
            // CCFI/CPI register global control-flow pointers from
            // startup constructors as well.
            if (_config.ccfi_runtime)
                _mac_table[addr] =
                    macCompute(addr, value, global.funcptr_class);
            if (_config.cpi_runtime)
                _safe_store[addr] = value;
        }
    }
}

Addr
Vm::heapAlloc(std::uint64_t size)
{
    const std::uint64_t rounded = roundUp(size ? size : 8, 16);
    auto it = _free_lists.find(rounded);
    if (it != _free_lists.end() && !it->second.empty()) {
        // LIFO reuse: freed blocks are recycled, which is what makes
        // heap use-after-free exploitable.
        const Addr addr = it->second.back();
        it->second.pop_back();
        _alloc_sizes[addr] = rounded;
        return addr;
    }
    const Addr addr = _heap_cursor;
    if (addr + rounded >
        MemoryLayout::kHeapBase + _config.layout.heap_size)
        return kNullAddr;
    _heap_cursor += rounded;
    _alloc_sizes[addr] = rounded;
    return addr;
}

bool
Vm::heapFree(Addr addr, std::uint64_t &size_out)
{
    auto it = _alloc_sizes.find(addr);
    if (it == _alloc_sizes.end())
        return false;
    size_out = it->second;
    _free_lists[it->second].push_back(addr);
    _alloc_sizes.erase(it);
    return true;
}

std::uint64_t
Vm::macCompute(Addr addr, std::uint64_t value, int type_class) const
{
    // Models CCFI's one-round AES MAC keyed on (address, value, static
    // type): a few mixing rounds of real computation. Including the
    // static type class is what makes CCFI flag benign type-decayed
    // pointers (§5.1).
    std::uint64_t state = addr ^ (value * 0x9e3779b97f4a7c15ULL) ^
                          (static_cast<std::uint64_t>(
                               static_cast<std::int64_t>(type_class))
                           << 32);
    // CCFI's MAC is a single AES round, but its real cost includes
    // spilling/reloading the pointer through the reserved XMM registers
    // and the register pressure it induces; the extra mixing rounds
    // model that per-access cost.
    for (int round = 0; round < 48; ++round) {
        state ^= state >> 30;
        state *= 0xbf58476d1ce4e5b9ULL;
        state ^= state >> 27;
    }
    return state;
}

Status
Vm::pushFrame(int func_id, const std::vector<int> &arg_regs, int dest_reg)
{
    if (func_id < 0 ||
        func_id >= static_cast<int>(_module.functions.size())) {
        return Status::error(StatusCode::PermissionDenied,
                             "wild jump: invalid function id");
    }
    const ir::Function &callee = _module.functions[func_id];

    if (func_id == _config.attack_payload_function)
        _result.attack_payload_reached = true;

    Frame frame;
    frame.func = func_id;
    frame.regs.assign(callee.num_regs, 0);
    if (!_frames.empty()) {
        const Frame &caller = _frames.back();
        for (std::size_t i = 0;
             i < arg_regs.size() &&
             i < static_cast<std::size_t>(callee.num_params);
             ++i) {
            frame.regs[i] = caller.regs[arg_regs[i]];
        }
        frame.ret_block = _cur_block;
        frame.ret_index = _cur_index + 1;
    }
    frame.dest_reg = dest_reg;
    frame.stack_save = _stack_cursor;
    frame.safe_save = _safe_cursor;

    // Frame layout: [alloca area][return-pointer slot]. A linear
    // overflow from the last local therefore reaches the return
    // pointer — unless the design moved it to the safe stack.
    const std::uint64_t alloca_total = _alloca_totals[func_id];
    frame.frame_base = _stack_cursor;
    frame.alloca_cursor = _stack_cursor;
    _stack_cursor += alloca_total;

    if (_config.safe_stack) {
        frame.retptr_addr = _safe_cursor;
        _safe_cursor += 8;
    } else {
        frame.retptr_addr = _stack_cursor;
        _stack_cursor += 8;
    }
    if (_stack_cursor >=
        MemoryLayout::kStackBase + _config.layout.stack_size) {
        return Status::error(StatusCode::ResourceExhausted,
                             "stack overflow");
    }

    frame.expected_ret = kRetTokenTag | ++_ret_nonce;
    Status status = _memory.write64(frame.retptr_addr, frame.expected_ret);
    if (!status.isOk())
        return status;

    const bool protect_ret = callee.attrs.instrument_return;
    if (protect_ret && _config.hq_messages && _config.retptr_messages &&
        _runtime) {
        // POINTER-DEFINE of the return pointer in the prologue (§4.1.6).
        _runtime->sendDefine(frame.retptr_addr, frame.expected_ret);
    }
    if (protect_ret && _config.ccfi_runtime) {
        _mac_table[frame.retptr_addr] =
            macCompute(frame.retptr_addr, frame.expected_ret, -2);
    }

    if (_config.memsafety_messages && _runtime && alloca_total > 0)
        _runtime->sendAllocCreate(frame.frame_base, alloca_total);

    _frames.push_back(std::move(frame));
    _cur_block = 0;
    _cur_index = 0;
    return Status::ok();
}

RunResult
Vm::finish(ExitKind kind, std::string detail)
{
    _result.exit = kind;
    _result.detail = std::move(detail);
    // Counts accumulate locally in _result during interpretation (zero
    // hot-loop cost) and flush into the registry once per run.
    if (telemetry::enabled()) {
        static telemetry::Counter &instrs =
            telemetry::Registry::instance().counter("vm.instructions");
        static telemetry::Counter &hq_ops =
            telemetry::Registry::instance().counter(
                "vm.instrumentation_ops");
        instrs.add(_result.instructions);
        hq_ops.add(_result.hq_ops);
    }
    return _result;
}

RunResult
Vm::run(const std::vector<std::uint64_t> &args)
{
    _result = RunResult{};

    registerGlobalPointers();


    Status status = pushFrame(_module.entry_function, {}, -1);
    if (!status.isOk())
        return finish(ExitKind::Crash, status.message());
    for (std::size_t i = 0; i < args.size() &&
                            i < _frames.back().regs.size();
         ++i) {
        _frames.back().regs[i] = args[i];
    }

    while (true) {
        if (++_result.instructions > _config.max_instructions)
            return finish(ExitKind::Hang, "instruction budget exhausted");

        Frame &frame = _frames.back();
        const ir::Function &function = _module.functions[frame.func];
        const Instr &instr =
            function.blocks[_cur_block].instrs[_cur_index];
        if (_config.cycle_sink)
            _config.cycle_sink->onInstr(instr);
        // Instrumentation density stat (HqDefine..LabelJoinMsg are
        // contiguous): exported as vm.instrumentation_ops at finish().
        if (instr.op >= IrOp::HqDefine && instr.op <= IrOp::LabelJoinMsg)
            ++_result.hq_ops;
        auto R = [&frame](int reg) -> std::uint64_t & {
            return frame.regs[reg];
        };

        switch (instr.op) {
          case IrOp::Nop:
            break;

          case IrOp::ConstInt:
            R(instr.dest) = instr.imm;
            break;

          case IrOp::FuncAddr:
            R(instr.dest) = encodeFuncPtr(static_cast<int>(instr.imm));
            break;

          case IrOp::GlobalAddr:
            R(instr.dest) = _global_addrs[instr.imm];
            break;

          case IrOp::Alloca: {
            const std::uint64_t size = roundUp(instr.imm ? instr.imm : 8, 8);
            if (frame.alloca_cursor + size >
                frame.frame_base + _alloca_totals[frame.func]) {
                // An alloca re-executed in a loop would silently run
                // into the return-pointer slot; fail loudly instead.
                return finish(ExitKind::Crash,
                              "alloca exceeds static frame footprint");
            }
            R(instr.dest) = frame.alloca_cursor;
            frame.alloca_cursor += size;
            break;
          }

          case IrOp::Arith: {
            const std::uint64_t a = R(instr.a);
            const std::uint64_t b = R(instr.b);
            std::uint64_t out = 0;
            switch (static_cast<ArithKind>(instr.aux)) {
              case ArithKind::Add: out = a + b; break;
              case ArithKind::Sub: out = a - b; break;
              case ArithKind::Mul: out = a * b; break;
              case ArithKind::Xor: out = a ^ b; break;
              case ArithKind::And: out = a & b; break;
              case ArithKind::Or: out = a | b; break;
              case ArithKind::Shr: out = a >> (b & 63); break;
              case ArithKind::Lt: out = a < b; break;
              case ArithKind::Eq: out = a == b; break;
            }
            R(instr.dest) = out;
            break;
          }

          case IrOp::Cast:
            R(instr.dest) = R(instr.a);
            break;

          case IrOp::Load: {
            std::uint64_t value = 0;
            status = _memory.read64(R(instr.a), value);
            if (!status.isOk())
                return finish(ExitKind::Crash, status.message());
            R(instr.dest) = value;
            if (_config.memsafety_messages && _runtime &&
                R(instr.a) >= MemoryLayout::kHeapBase &&
                R(instr.a) < MemoryLayout::kStackBase) {
                _runtime->sendAllocCheck(R(instr.a));
            }
            break;
          }

          case IrOp::Store: {
            if (_config.memsafety_messages && _runtime &&
                R(instr.a) >= MemoryLayout::kHeapBase &&
                R(instr.a) < MemoryLayout::kStackBase) {
                _runtime->sendAllocCheck(R(instr.a));
            }
            status = _memory.write64(R(instr.a), R(instr.b));
            if (!status.isOk())
                return finish(ExitKind::Crash, status.message());
            break;
          }

          case IrOp::Memcpy:
          case IrOp::Memmove: {
            const Addr dst = R(instr.a);
            const Addr src = R(instr.b);
            const std::uint64_t size = R(instr.c);
            if (_config.hq_messages && _runtime &&
                (instr.flags & ir::kFlagEmitBlockMsg)) {
                // Message precedes the event (§2.2).
                _runtime->sendBlockCopy(src, dst, size);
            }
            status = _memory.copy(dst, src, size,
                                  /*allow_overlap=*/instr.op ==
                                      IrOp::Memmove);
            if (!status.isOk())
                return finish(ExitKind::Crash, status.message());
            if (_config.cpi_runtime && size > 0) {
                // CPI interposes on the libc block routines and moves
                // relocated pointers together with the raw bytes.
                std::vector<std::pair<Addr, std::uint64_t>> moved;
                auto it = _safe_store.lower_bound(src);
                while (it != _safe_store.end() && it->first < src + size) {
                    moved.emplace_back(dst + (it->first - src),
                                       it->second);
                    ++it;
                }
                for (const auto &[a, v] : moved)
                    _safe_store[a] = v;
            }
            break;
          }

          case IrOp::Malloc: {
            const std::uint64_t size =
                instr.a >= 0 ? R(instr.a) : instr.imm;
            const Addr addr = heapAlloc(size);
            if (addr == kNullAddr)
                return finish(ExitKind::Crash, "out of heap memory");
            R(instr.dest) = addr;
            if (_config.memsafety_messages && _runtime)
                _runtime->sendAllocCreate(addr, roundUp(size ? size : 8,
                                                        16));
            break;
          }

          case IrOp::Free: {
            const Addr addr = R(instr.a);
            std::uint64_t size = 0;
            if (!heapFree(addr, size))
                return finish(ExitKind::Crash, "invalid free");
            if (_config.hq_messages && _runtime &&
                (instr.flags & ir::kFlagEmitBlockMsg)) {
                _runtime->sendBlockInvalidate(addr, size);
            }
            // CPI leaves safe-store entries in freed memory in place
            // (it has no use-after-free detection; Table 3): a stale
            // typed load still observes the old value.
            if (_config.memsafety_messages && _runtime)
                _runtime->sendAllocDestroy(addr);
            break;
          }

          case IrOp::Realloc: {
            const Addr old_addr = R(instr.a);
            const std::uint64_t new_size = R(instr.b);
            std::uint64_t old_size = 0;
            if (!heapFree(old_addr, old_size))
                return finish(ExitKind::Crash, "invalid realloc");
            const Addr new_addr = heapAlloc(new_size);
            if (new_addr == kNullAddr)
                return finish(ExitKind::Crash, "out of heap memory");
            if (_config.hq_messages && _runtime &&
                (instr.flags & ir::kFlagEmitBlockMsg)) {
                _runtime->sendBlockMove(old_addr, new_addr, old_size);
            }
            if (new_addr != old_addr) {
                _memory.copy(new_addr, old_addr,
                             std::min(old_size, roundUp(new_size, 16)),
                             false);
            }
            if (_config.cpi_runtime) {
                // Move relocated pointers with the block.
                std::vector<std::pair<Addr, std::uint64_t>> moved;
                auto it = _safe_store.lower_bound(old_addr);
                while (it != _safe_store.end() &&
                       it->first < old_addr + old_size) {
                    moved.emplace_back(new_addr +
                                           (it->first - old_addr),
                                       it->second);
                    it = _safe_store.erase(it);
                }
                for (const auto &[a, v] : moved)
                    _safe_store[a] = v;
            }
            if (_config.memsafety_messages && _runtime) {
                _runtime->sendAllocExtend(old_addr, new_addr,
                                          roundUp(new_size ? new_size : 8,
                                                  16));
            }
            R(instr.dest) = new_addr;
            break;
          }

          case IrOp::CallDirect: {
            status = pushFrame(static_cast<int>(instr.imm), instr.args,
                               instr.dest);
            if (!status.isOk())
                return finish(ExitKind::Crash, status.message());
            continue; // control moved; do not advance _cur_index
          }

          case IrOp::CallIndirect: {
            const std::uint64_t target = R(instr.a);
            if (!isFuncPtrValue(target)) {
                return finish(ExitKind::Crash,
                              target == 0
                                  ? "execution of NULL pointer"
                                  : "indirect call of corrupt pointer");
            }
            status = pushFrame(decodeFuncPtr(target), instr.args,
                               instr.dest);
            if (!status.isOk())
                return finish(ExitKind::Crash, status.message());
            continue;
          }

          case IrOp::VCall: {
            // Unlowered virtual call (baseline pipeline): load the
            // vtable pointer and the slot entry, then call.
            std::uint64_t vtable = 0;
            status = _memory.read64(R(instr.a), vtable);
            if (!status.isOk())
                return finish(ExitKind::Crash, status.message());
            std::uint64_t target = 0;
            status = _memory.read64(vtable + instr.imm * 8, target);
            if (!status.isOk())
                return finish(ExitKind::Crash, status.message());
            if (!isFuncPtrValue(target))
                return finish(ExitKind::Crash,
                              "virtual call through corrupt vtable");
            status = pushFrame(decodeFuncPtr(target), instr.args,
                               instr.dest);
            if (!status.isOk())
                return finish(ExitKind::Crash, status.message());
            continue;
          }

          case IrOp::Syscall: {
            if (_runtime && _config.naive_sync) {
                // Naive synchronous validation (ablation): block until
                // the verifier has consumed every in-flight message.
                while (_runtime->pendingMessages() > 0)
                    std::this_thread::yield();
                _runtime->sendSyscallMsg(instr.imm);
            }
            if (_runtime) {
                status = _runtime->syscallEnter(
                    instr.imm, /*spin_fast_path=*/!_config.naive_sync);
                if (!status.isOk())
                    return finish(ExitKind::Killed, status.message());
            }
            break;
          }

          case IrOp::Setjmp: {
            // Save the continuation and store an opaque token into the
            // jmp_buf: the "internal pointer" that HQ-CFI protects as a
            // control-flow pointer (§4.1.3).
            JmpState state;
            state.frame_depth = _frames.size();
            state.frame_token = frame.expected_ret;
            state.block = _cur_block;
            state.index = _cur_index;
            state.dest_reg = instr.dest;
            state.stack_cursor = _stack_cursor;
            state.safe_cursor = _safe_cursor;
            state.alloca_cursor = frame.alloca_cursor;
            const std::uint64_t token = kJmpTokenTag | ++_jmp_nonce;
            _jmp_states[token] = state;
            status = _memory.write64(R(instr.a), token);
            if (!status.isOk())
                return finish(ExitKind::Crash, status.message());
            R(instr.dest) = 0; // direct return
            break;
          }

          case IrOp::Longjmp: {
            std::uint64_t token = 0;
            status = _memory.read64(R(instr.a), token);
            if (!status.isOk())
                return finish(ExitKind::Crash, status.message());
            const std::uint64_t value =
                instr.b >= 0 && R(instr.b) != 0 ? R(instr.b) : 1;

            if (isFuncPtrValue(token)) {
                // Corrupted jmp_buf diverts control (attack mechanics).
                status = pushFrame(decodeFuncPtr(token), {}, -1);
                if (!status.isOk())
                    return finish(ExitKind::Crash, status.message());
                continue;
            }
            auto it = _jmp_states.find(token);
            if ((token & kTagMask) != kJmpTokenTag ||
                it == _jmp_states.end()) {
                return finish(ExitKind::Crash, "longjmp: corrupt jmp_buf");
            }
            const JmpState &state = it->second;
            if (state.frame_depth > _frames.size() ||
                _frames[state.frame_depth - 1].expected_ret !=
                    state.frame_token) {
                // The setjmp frame already returned: undefined behavior
                // in C; a crash here.
                return finish(ExitKind::Crash,
                              "longjmp after frame exit");
            }
            _frames.resize(state.frame_depth);
            _stack_cursor = state.stack_cursor;
            _safe_cursor = state.safe_cursor;
            _frames.back().alloca_cursor = state.alloca_cursor;
            _frames.back().regs[state.dest_reg] = value;
            _cur_block = state.block;
            _cur_index = state.index + 1;
            continue;
          }

          case IrOp::RetAddrAddr:
            // __builtin_return_address-style disclosure: yields the
            // location of the return pointer wherever it lives —
            // including on the safe stack (§5.2).
            R(instr.dest) = frame.retptr_addr;
            break;

          case IrOp::Ret: {
            const ir::Function &func = function;
            const bool protect_ret = func.attrs.instrument_return;

            std::uint64_t stored_ret = 0;
            status = _memory.read64(frame.retptr_addr, stored_ret);
            if (!status.isOk())
                return finish(ExitKind::Crash, status.message());

            if (protect_ret && _config.hq_messages &&
                _config.retptr_messages && _runtime) {
                // POINTER-CHECK-INVALIDATE in the epilogue (§4.1.6).
                _runtime->sendCheckInvalidate(frame.retptr_addr,
                                              stored_ret);
            }
            if (protect_ret && _config.ccfi_runtime) {
                ++_result.inline_checks;
                auto it = _mac_table.find(frame.retptr_addr);
                const bool ok =
                    it != _mac_table.end() &&
                    it->second == macCompute(frame.retptr_addr,
                                             stored_ret, -2);
                if (it != _mac_table.end())
                    _mac_table.erase(it);
                if (!ok) {
                    ++_result.inline_violations;
                    if (_config.stop_on_inline_violation)
                        return finish(ExitKind::InlineViolation,
                                      "CCFI: return pointer MAC "
                                      "mismatch");
                }
            }

            const std::uint64_t ret_value =
                instr.a >= 0 ? R(instr.a) : 0;
            const Frame popped = _frames.back();
            _frames.pop_back();
            _stack_cursor = popped.stack_save;
            _safe_cursor = popped.safe_save;

            if (_config.memsafety_messages && _runtime &&
                _alloca_totals[popped.func] > 0) {
                _runtime->sendAllocDestroyAll(
                    popped.frame_base, _alloca_totals[popped.func]);
            }

            if (stored_ret != popped.expected_ret) {
                // The in-memory return pointer was corrupted. Using it
                // transfers control: to a function (hijack) or into
                // garbage (crash).
                if (isFuncPtrValue(stored_ret)) {
                    if (!_frames.empty()) {
                        // Arrange for the hijacked function's own clean
                        // return to resume at the caller's resume point.
                        _cur_block = popped.ret_block;
                        _cur_index = popped.ret_index - 1;
                    }
                    status = pushFrame(decodeFuncPtr(stored_ret), {}, -1);
                    if (!status.isOk())
                        return finish(ExitKind::Crash, status.message());
                    continue;
                }
                return finish(ExitKind::Crash,
                              "return pointer corrupted");
            }

            if (_frames.empty()) {
                _result.return_value = ret_value;
                if (_runtime)
                    _runtime->exit();
                return finish(ExitKind::Ok, "");
            }
            if (popped.dest_reg >= 0)
                _frames.back().regs[popped.dest_reg] = ret_value;
            _cur_block = popped.ret_block;
            _cur_index = popped.ret_index;
            continue;
          }

          case IrOp::Br:
            _cur_block = instr.target0;
            _cur_index = 0;
            continue;

          case IrOp::CondBr:
            _cur_block = R(instr.a) ? instr.target0 : instr.target1;
            _cur_index = 0;
            continue;

          // --- HerQules instrumentation --------------------------------
          case IrOp::HqDefine:
            if (_config.hq_messages && _runtime)
                _runtime->sendDefine(R(instr.a), R(instr.b));
            break;
          case IrOp::HqCheck:
            if (_config.hq_messages && _runtime)
                _runtime->sendCheck(R(instr.a), R(instr.b));
            break;
          case IrOp::HqInvalidate:
            if (_config.hq_messages && _runtime)
                _runtime->sendInvalidate(R(instr.a));
            break;
          case IrOp::HqCheckInvalidate:
            if (_config.hq_messages && _runtime)
                _runtime->sendCheckInvalidate(R(instr.a), R(instr.b));
            break;
          case IrOp::HqBlockCopy:
            if (_config.hq_messages && _runtime)
                _runtime->sendBlockCopy(R(instr.a), R(instr.b),
                                        R(instr.c));
            break;
          case IrOp::HqBlockMove:
            if (_config.hq_messages && _runtime)
                _runtime->sendBlockMove(R(instr.a), R(instr.b),
                                        R(instr.c));
            break;
          case IrOp::HqBlockInvalidate:
            if (_config.hq_messages && _runtime)
                _runtime->sendBlockInvalidate(R(instr.a), R(instr.b));
            break;
          case IrOp::HqSyscallMsg:
            // Suppressed under the naive-sync ablation: that design has
            // no pipelined advance message.
            if (_config.hq_messages && _runtime && !_config.naive_sync)
                _runtime->sendSyscallMsg(instr.imm);
            break;
          case IrOp::DfiWriteMsg:
            if (_config.hq_messages && _runtime)
                _runtime->send(Message(Opcode::DfiWrite, R(instr.a),
                                       instr.imm));
            break;
          case IrOp::DfiReadMsg:
            if (_config.hq_messages && _runtime)
                _runtime->send(Message(Opcode::DfiRead, R(instr.a),
                                       instr.imm));
            break;
          case IrOp::LabelDefMsg:
            if (_config.hq_messages && _runtime)
                _runtime->send(Message(Opcode::LabelDef, R(instr.a),
                                       instr.imm));
            break;
          case IrOp::LabelCheckMsg:
            if (_config.hq_messages && _runtime)
                _runtime->send(Message(Opcode::LabelCheck, R(instr.a),
                                       instr.imm));
            break;
          case IrOp::LabelJoinMsg:
            if (_config.hq_messages && _runtime)
                _runtime->send(Message(Opcode::LabelJoin, R(instr.a),
                                       R(instr.b)));
            break;

          case IrOp::HqGuardEnter: {
            // Store-to-load forwarding recursion guard (§4.1.4): if the
            // guard is still set upon a subsequent call, terminate.
            if (_guard_flags[instr.aux])
                return finish(ExitKind::GuardFailure,
                              "forwarding guard tripped: recompile "
                              "without store-to-load forwarding");
            _guard_flags[instr.aux] = 1;
            break;
          }
          case IrOp::HqGuardExit:
            _guard_flags[instr.aux] = 0;
            break;

          // --- Baseline designs ----------------------------------------
          case IrOp::CfiTypeCheck: {
            ++_result.inline_checks;
            const std::uint64_t target = R(instr.a);
            bool ok = isFuncPtrValue(target);
            if (ok) {
                const int fn = decodeFuncPtr(target);
                if (fn < 0 ||
                    fn >= static_cast<int>(_module.functions.size())) {
                    ok = false;
                } else if (instr.imm == ir::kAnyVtableClass) {
                    ok = _vtable_functions.count(fn) > 0;
                } else {
                    const int expected = static_cast<int>(
                        static_cast<std::int64_t>(instr.imm));
                    ok = _module.functions[fn].signature_class ==
                         expected;
                }
            }
            if (!ok) {
                ++_result.inline_violations;
                if (_config.stop_on_inline_violation)
                    return finish(ExitKind::InlineViolation,
                                  "Clang CFI: signature class mismatch");
            }
            break;
          }

          case IrOp::MacDefine:
            _mac_table[R(instr.a)] =
                macCompute(R(instr.a), R(instr.b),
                           instr.type.signature_class);
            break;

          case IrOp::MacCheck: {
            ++_result.inline_checks;
            auto it = _mac_table.find(R(instr.a));
            const bool ok = it != _mac_table.end() &&
                            it->second ==
                                macCompute(R(instr.a), R(instr.b),
                                           instr.type.signature_class);
            if (!ok) {
                ++_result.inline_violations;
                if (_config.stop_on_inline_violation)
                    return finish(ExitKind::InlineViolation,
                                  "CCFI: pointer MAC mismatch");
            }
            break;
          }

          case IrOp::SafeStore:
            _safe_store[R(instr.a)] = R(instr.b);
            break;

          case IrOp::SafeLoad: {
            auto it = _safe_store.find(R(instr.a));
            // A miss models CPI's unredirected aliased access: the
            // pointer was stored outside the safe store, so the load
            // observes garbage (NULL) — §5.1.
            R(instr.dest) = it == _safe_store.end() ? 0 : it->second;
            break;
          }

          default:
            return finish(ExitKind::Crash,
                          std::string("unimplemented opcode ") +
                              ir::irOpName(instr.op));
        }

        ++_cur_index;
    }
}

} // namespace hq
