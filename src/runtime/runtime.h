/**
 * @file
 * The HerQules runtime messaging library (paper §3.2, Table 6
 * "Runtime"). Statically linked into the (recompiled) C library of the
 * monitored program, it owns the process's AppendWrite channel and
 * translates instrumentation callbacks into messages. It also fronts
 * the kernel module for process lifecycle and system-call gating.
 */

#ifndef HQ_RUNTIME_RUNTIME_H
#define HQ_RUNTIME_RUNTIME_H

#include <cstdint>

#include "common/status.h"
#include "common/types.h"
#include "ipc/channel.h"
#include "kernel/kernel.h"

namespace hq {

class HqRuntime
{
  public:
    /**
     * @param pid     simulated process id
     * @param channel the process's AppendWrite channel
     * @param kernel  the kernel module (syscall gate + lifecycle)
     */
    HqRuntime(Pid pid, Channel &channel, KernelModule &kernel)
        : _pid(pid), _channel(channel), _kernel(kernel)
    {}

    /** Enable HerQules for this process (Figure 1 step 1a/1b). */
    Status
    enable()
    {
        Status status = _kernel.enableProcess(_pid);
        if (!status.isOk())
            return status;
        send(Message(Opcode::Init, /*abi=*/1));
        return Status::ok();
    }

    /** Tear down the process (exit interception). */
    void exit() { _kernel.exitProcess(_pid); }

    /** Pause at a system call until the verifier acknowledges. */
    Status
    syscallEnter(std::uint64_t sysno, bool spin_fast_path = true)
    {
        return _kernel.syscallEnter(_pid, sysno, spin_fast_path);
    }

    // --- Message emission (instrumentation callbacks) -----------------

    void
    send(Message message)
    {
        message.pid = _pid;
        _channel.send(message);
        ++_messages_sent;
    }

    void
    sendDefine(Addr p, std::uint64_t v)
    {
        send(Message(Opcode::PointerDefine, p, v));
    }

    void
    sendCheck(Addr p, std::uint64_t v)
    {
        send(Message(Opcode::PointerCheck, p, v));
    }

    void
    sendInvalidate(Addr p)
    {
        send(Message(Opcode::PointerInvalidate, p));
    }

    void
    sendCheckInvalidate(Addr p, std::uint64_t v)
    {
        send(Message(Opcode::PointerCheckInvalidate, p, v));
    }

    void
    sendBlockCopy(Addr src, Addr dst, std::uint64_t size)
    {
        send(Message(Opcode::BlockSize, size));
        send(Message(Opcode::PointerBlockCopy, src, dst));
    }

    void
    sendBlockMove(Addr src, Addr dst, std::uint64_t size)
    {
        send(Message(Opcode::BlockSize, size));
        send(Message(Opcode::PointerBlockMove, src, dst));
    }

    void
    sendBlockInvalidate(Addr p, std::uint64_t size)
    {
        send(Message(Opcode::PointerBlockInvalidate, p, size));
    }

    void
    sendSyscallMsg(std::uint64_t sysno)
    {
        send(Message(Opcode::Syscall, sysno));
    }

    // Memory-safety policy messages (§4.2).

    void
    sendAllocCreate(Addr a, std::uint64_t size)
    {
        send(Message(Opcode::AllocCreate, a, size));
    }

    void
    sendAllocCheck(Addr a)
    {
        send(Message(Opcode::AllocCheck, a));
    }

    void
    sendAllocExtend(Addr src, Addr dst, std::uint64_t size)
    {
        send(Message(Opcode::BlockSize, size));
        send(Message(Opcode::AllocExtend, src, dst));
    }

    void
    sendAllocDestroy(Addr a)
    {
        send(Message(Opcode::AllocDestroy, a));
    }

    void
    sendAllocDestroyAll(Addr a, std::uint64_t size)
    {
        send(Message(Opcode::AllocDestroyAll, a, size));
    }

    // Information-flow-control label messages (src/policy/ifc.h).

    void
    sendLabelDef(Addr a, std::uint64_t label)
    {
        send(Message(Opcode::LabelDef, a, label));
    }

    void
    sendLabelCheck(Addr a, std::uint64_t forbidden)
    {
        send(Message(Opcode::LabelCheck, a, forbidden));
    }

    void
    sendLabelJoin(Addr src, Addr dst)
    {
        send(Message(Opcode::LabelJoin, src, dst));
    }

    Pid pid() const { return _pid; }
    std::uint64_t messagesSent() const { return _messages_sent; }

    /** Messages sent but not yet received by the verifier. */
    std::size_t pendingMessages() const { return _channel.pending(); }
    KernelModule &kernel() { return _kernel; }

  private:
    Pid _pid;
    Channel &_channel;
    KernelModule &_kernel;
    std::uint64_t _messages_sent = 0;
};

} // namespace hq

#endif // HQ_RUNTIME_RUNTIME_H
