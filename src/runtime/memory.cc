#include "runtime/memory.h"

#include <cstring>

namespace hq {

SimMemory::SimMemory(const MemoryLayout &layout)
    : _layout(layout),
      _globals(layout.global_size),
      _heap(layout.heap_size),
      _stack(layout.stack_size),
      _safe_stack(layout.safe_stack_size)
{
    // Without guard pages the safe stack is mapped flush against the
    // top of the regular stack: a linear overwrite can sweep into it.
    _safe_base = MemoryLayout::kStackBase + layout.stack_size +
                 (layout.guard_pages ? MemoryLayout::kGuardGap : 0);
}

std::uint8_t *
SimMemory::resolve(Addr addr, std::uint64_t size)
{
    return const_cast<std::uint8_t *>(
        static_cast<const SimMemory *>(this)->resolveRead(addr, size));
}

const std::uint8_t *
SimMemory::resolveRead(Addr addr, std::uint64_t size) const
{
    auto inRegion = [&](Addr base, const std::vector<std::uint8_t> &mem)
        -> const std::uint8_t * {
        if (addr >= base && addr + size <= base + mem.size())
            return mem.data() + (addr - base);
        return nullptr;
    };
    if (const auto *p = inRegion(MemoryLayout::kGlobalBase, _globals))
        return p;
    if (const auto *p = inRegion(MemoryLayout::kHeapBase, _heap))
        return p;
    if (const auto *p = inRegion(MemoryLayout::kStackBase, _stack))
        return p;
    if (const auto *p = inRegion(_safe_base, _safe_stack))
        return p;
    return nullptr;
}

bool
SimMemory::mapped(Addr addr) const
{
    return resolveRead(addr, 1) != nullptr;
}

bool
SimMemory::isReadOnly(Addr addr) const
{
    auto it = _readonly.upper_bound(addr);
    if (it == _readonly.begin())
        return false;
    --it;
    return addr >= it->first && addr < it->first + it->second;
}

Status
SimMemory::read64(Addr addr, std::uint64_t &out) const
{
    const std::uint8_t *p = resolveRead(addr, 8);
    if (!p) {
        return Status::error(StatusCode::PermissionDenied,
                             "segfault: read of unmapped address");
    }
    std::memcpy(&out, p, 8);
    return Status::ok();
}

Status
SimMemory::write64(Addr addr, std::uint64_t value)
{
    if (isReadOnly(addr)) {
        return Status::error(StatusCode::PermissionDenied,
                             "segfault: write to read-only memory");
    }
    std::uint8_t *p = resolve(addr, 8);
    if (!p) {
        return Status::error(StatusCode::PermissionDenied,
                             "segfault: write to unmapped address");
    }
    std::memcpy(p, &value, 8);
    return Status::ok();
}

Status
SimMemory::copy(Addr dst, Addr src, std::uint64_t size, bool allow_overlap)
{
    if (size == 0)
        return Status::ok();
    if (isReadOnly(dst)) {
        return Status::error(StatusCode::PermissionDenied,
                             "segfault: block write to read-only memory");
    }
    const std::uint8_t *s = resolveRead(src, size);
    std::uint8_t *d = resolve(dst, size);
    if (!s || !d) {
        return Status::error(StatusCode::PermissionDenied,
                             "segfault: block copy out of range");
    }
    if (allow_overlap)
        std::memmove(d, s, size);
    else
        std::memcpy(d, s, size);
    return Status::ok();
}

void
SimMemory::protectReadOnly(Addr base, std::uint64_t size)
{
    if (size)
        _readonly[base] = size;
}

} // namespace hq
