/**
 * @file
 * Wire format v2: batched frames.
 *
 * The v1 wire format is one self-contained 32-byte Message per ring
 * slot, each carrying its own seq and CRC. v2 amortizes that per-record
 * integrity cost across a batch: a frame is one header slot followed by
 * a contiguous run of 24-byte packed records (4 records per 3 slots),
 * all travelling through the existing 32-byte-slot rings:
 *
 *     slot 0   FrameHeader {magic, pid, base_seq, count, flags,
 *                           body_crc, header_crc, reserved}
 *     slot 1.. PackedRecord{op, reserved, arg0, arg1} × count (packed)
 *
 * pid and seq are stated once (records inherit pid and base_seq + i, so
 * the lag sidecar's per-sequence matching keeps working), and two CRCs
 * cover the whole frame: `header_crc` over the first 20 header bytes,
 * `body_crc` over the packed-record bytes. The decoder is fail closed:
 * a header that does not validate — bad magic, bad CRC, count of zero,
 * count above kMaxFrameRecords / the verifier poll batch, or a slot
 * footprint that cannot fit the ring — is rejected outright (never
 * clamped), and a frame whose body CRC mismatches is skipped whole
 * (never partially applied).
 *
 * Frames are published atomically (one release-store per frame, see
 * SpscRing::tryPushAll), so a consumer that sees the header slot sees
 * the complete frame. Decoding works in place over a RecvSpan — at most
 * two contiguous slot runs around the ring's wrap point — so the
 * verifier checks records inside the shared mapping and only then
 * advances the consumer cursor (zero-copy drain).
 */

#ifndef HQ_IPC_FRAME_H
#define HQ_IPC_FRAME_H

#include <cstddef>
#include <cstdint>

#include "ipc/message.h"

namespace hq {

/** Negotiable per-channel wire format. */
enum class WireFormat : std::uint8_t {
    V1 = 1, //!< one self-checking 32-byte Message per slot
    V2 = 2, //!< batched frames: header slot + packed records
};

const char *wireFormatName(WireFormat format);

/**
 * A borrowed, in-place view of queued ring slots: at most two
 * contiguous runs (around the wrap point). Produced by the peek-span
 * API of ring-backed channels; valid until the consumer cursor is
 * advanced past the viewed slots.
 */
struct RecvSpan
{
    struct Segment
    {
        const Message *data = nullptr;
        std::size_t count = 0; //!< slots in this run
    };

    Segment seg[2];

    std::size_t total() const { return seg[0].count + seg[1].count; }

    /** The i-th viewed slot (i < total()). */
    const Message &
    slot(std::size_t i) const
    {
        return i < seg[0].count ? seg[0].data[i]
                                : seg[1].data[i - seg[0].count];
    }
};

namespace frame {

/** First header word; doubles as the v1/v2 discriminator in debugging. */
constexpr std::uint32_t kMagic = 0x32465148u; // "HQF2" little-endian

/** Upper bound on records per frame (fits well under kMaxPollBatch). */
constexpr std::size_t kMaxRecords = 64;

/**
 * Frame flag: the body holds variable-length records. Most message ops
 * carry a single meaningful argument (checks, invalidates, label
 * definitions), so a record whose arg1 is zero shrinks to a 16-byte
 * short form — marked by kShortOpBit in its op word — and everything
 * else stays the 24-byte long form. The header's reserved word carries
 * the exact body byte length (and joins the header CRC), since record
 * count no longer determines it.
 *
 * Any flag bit other than this one is rejected (strict: unknown =
 * reject), and senders only set it after Channel::enableVarRecords(),
 * so fixed-record frames remain byte-identical to their golden
 * fixtures.
 */
constexpr std::uint16_t kFlagVarRecords = 0x1;

/**
 * v2 frame header; occupies exactly one ring slot. header_crc covers
 * the first 20 bytes (magic..body_crc); with kFlagVarRecords it
 * additionally chains over the reserved word (which then carries
 * body_bytes — otherwise reserved must be zero).
 */
struct FrameHeader
{
    std::uint32_t magic = 0;
    std::uint32_t pid = 0;
    std::uint32_t base_seq = 0;
    std::uint16_t count = 0;
    std::uint16_t flags = 0; //!< kFlagVarRecords or zero (unknown = reject)
    std::uint32_t body_crc = 0;
    std::uint32_t header_crc = 0;
    std::uint64_t reserved = 0; //!< body byte length under kFlagVarRecords
};

static_assert(sizeof(FrameHeader) == sizeof(Message),
              "frame header must occupy exactly one ring slot");

/** Bytes of FrameHeader covered by header_crc (magic..body_crc). */
constexpr std::size_t kHeaderCrcBytes = 20;

/** One packed record: op + args; pid/seq live in the frame header. */
struct PackedRecord
{
    std::uint32_t op = 0;
    std::uint32_t reserved = 0;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
};

static_assert(sizeof(PackedRecord) == 24, "packed record is 24 bytes");

/**
 * Op-word bit marking a 16-byte short record in a kFlagVarRecords body
 * (real opcodes are tiny, so the top bit is free for framing).
 */
constexpr std::uint32_t kShortOpBit = 0x80000000u;

/** Short form of a variable-length record: arg1 implicitly zero. */
struct ShortRecord
{
    std::uint32_t op = 0; //!< opcode | kShortOpBit
    std::uint32_t reserved = 0;
    std::uint64_t arg0 = 0;
};

static_assert(sizeof(ShortRecord) == 16, "short record is 16 bytes");

/** Slots occupied by count packed records (ceil(count*24/32)). */
constexpr std::size_t
recordSlots(std::size_t count)
{
    return (count * sizeof(PackedRecord) + sizeof(Message) - 1) /
           sizeof(Message);
}

/** Total ring slots occupied by a frame of count records. */
constexpr std::size_t
frameSlots(std::size_t count)
{
    return 1 + recordSlots(count);
}

/** Worst-case slots for a full frame (header + 64 records). */
constexpr std::size_t kMaxFrameSlots = frameSlots(kMaxRecords);

/** Slots occupied by a variable-record body of body_bytes bytes. */
constexpr std::size_t
bodySlots(std::size_t body_bytes)
{
    return (body_bytes + sizeof(Message) - 1) / sizeof(Message);
}

/** Validated header fields, ready for body check / unpack. */
struct FrameView
{
    std::uint32_t pid = 0;
    std::uint32_t base_seq = 0;
    std::uint16_t count = 0;
    bool var = false;       //!< kFlagVarRecords body
    std::uint32_t body_bytes = 0;
    std::size_t slots = 0; //!< 1 + body slots
    /** Byte offset of each record within the body (var frames only). */
    std::uint32_t rec_off[kMaxRecords] = {};
};

enum class DecodeStatus {
    Ok,        //!< header valid; body present and CRC-clean
    NeedMore,  //!< header valid but the span holds fewer than view.slots
    BadHeader, //!< header rejected — consume 1 slot and resync
    BadBody,   //!< body CRC mismatch — skip the whole frame, fail closed
};

const char *decodeStatusName(DecodeStatus status);

/** Decode-time limits a frame header is validated against. */
struct DecodeLimits
{
    std::size_t ring_capacity;  //!< slots in the transporting ring
    std::size_t max_batch;      //!< verifier poll-batch ceiling (records)
};

/**
 * Encode count messages (count <= kMaxRecords) as one frame into
 * slots_out[frameSlots(count)]. pid and base_seq are stated once in the
 * header; messages[i].op/arg0/arg1 become record i. Tail padding of the
 * last record slot is zeroed so frames are byte-deterministic.
 */
void encode(const Message *messages, std::size_t count, std::uint32_t pid,
            std::uint32_t base_seq, Message *slots_out);

/**
 * Encode count messages as one kFlagVarRecords frame: records whose
 * arg1 is zero take the 16-byte short form, the rest the 24-byte long
 * form. Worst case the frame is as large as encode()'s; slots_out must
 * hold kMaxFrameSlots.
 * @return total slots written (1 header + bodySlots(body)).
 */
std::size_t encodeVar(const Message *messages, std::size_t count,
                      std::uint32_t pid, std::uint32_t base_seq,
                      Message *slots_out);

/**
 * Validate the header in span.slot(0) against limits. On success fills
 * view and returns Ok when the full frame is present and its body CRC
 * matches, NeedMore when the span is too short to check the body.
 * Rejection is absolute: out-of-range counts are BadHeader (reject,
 * never clamp), a present-but-corrupt body is BadBody.
 */
DecodeStatus decode(const RecvSpan &span, const DecodeLimits &limits,
                    FrameView &view);

/**
 * Reconstruct record i (i < view.count) of a decoded frame as a full
 * Message: pid from the header, seq = base_seq + i, pad left zero (the
 * frame CRCs already vouched for integrity; per-record CRC is a v1
 * concept). Call only after decode() returned Ok.
 */
void unpackRecord(const RecvSpan &span, const FrameView &view,
                  std::size_t i, Message &out);

/**
 * Unpack all view.count records into out[0..count). Equivalent to
 * calling unpackRecord per index, amortizing the span arithmetic.
 */
void unpackAll(const RecvSpan &span, const FrameView &view, Message *out);

} // namespace frame
} // namespace hq

#endif // HQ_IPC_FRAME_H
