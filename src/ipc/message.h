/**
 * @file
 * The AppendWrite message format (paper §3.1).
 *
 * Each message is a fixed-size structure with a 4-byte operation code and
 * two 8-byte operation arguments. The FPGA implementation additionally
 * carries a 4-byte process identifier stamped by the device from a
 * kernel-managed PID register, plus a per-message sequence counter used to
 * detect dropped messages (the AFU has no back-pressure mechanism).
 *
 * Operations that logically take three parameters (the block-memory
 * messages POINTER-BLOCK-COPY/MOVE and ALLOCATION-EXTEND take src, dst,
 * and size) are encoded as a BlockSize message carrying the size followed
 * by the two-argument operation, mirroring the paper's note that
 * "operation-specific registers enable messages to be created using at
 * most two MMIO writes".
 */

#ifndef HQ_IPC_MESSAGE_H
#define HQ_IPC_MESSAGE_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace hq {

/**
 * Policy-dependent operation codes.
 *
 * Pointer* codes implement the control-flow integrity policy (§4.1.3,
 * §4.1.5), Alloc* codes the memory-safety policy (§4.2), EventCount the
 * toy counting policy from §2, and Syscall the System-Call
 * synchronization message of bounded asynchronous validation (§2.2).
 */
enum class Opcode : std::uint32_t {
    Invalid = 0,

    /// Monitored program enabled HerQules; arg0 = runtime ABI version.
    Init,

    /// System-Call synchronization message; arg0 = syscall number.
    Syscall,

    /// Sets the pending block size for the next Block/Extend operation.
    BlockSize,

    // --- Control-flow integrity (pointer integrity) -----------------
    /// POINTER-DEFINE(p, v): define pointer at address p with value v.
    PointerDefine,
    /// POINTER-CHECK(p, v): validate pointer at p holds value v.
    PointerCheck,
    /// POINTER-INVALIDATE(p): remove the pointer at address p.
    PointerInvalidate,
    /// POINTER-CHECK-INVALIDATE(p, v): check then invalidate (returns).
    PointerCheckInvalidate,
    /// POINTER-BLOCK-COPY(src, dst): copy pointers (size from BlockSize).
    PointerBlockCopy,
    /// POINTER-BLOCK-MOVE(src, dst): move pointers (size from BlockSize).
    PointerBlockMove,
    /// POINTER-BLOCK-INVALIDATE(p, sz): invalidate pointers in [p, p+sz).
    PointerBlockInvalidate,

    // --- Memory safety (§4.2) ---------------------------------------
    /// ALLOCATION-CREATE(a, sz).
    AllocCreate,
    /// ALLOCATION-CHECK(a).
    AllocCheck,
    /// ALLOCATION-CHECK-BASE(a1, a2).
    AllocCheckBase,
    /// ALLOCATION-EXTEND(src, dst): size comes from BlockSize.
    AllocExtend,
    /// ALLOCATION-DESTROY(a).
    AllocDestroy,
    /// ALLOCATION-DESTROY-ALL(a, sz).
    AllocDestroyAll,

    // --- Other policies (§4.3) --------------------------------------
    /// Event counter increment; arg0 = counter id, arg1 = delta.
    EventCount,
    /// Watchdog heartbeat; arg0 = monotonic tick.
    Heartbeat,
    /// Data-flow integrity write: arg0 = address, arg1 = writer id.
    DfiWrite,
    /// Data-flow integrity read: arg0 = address, arg1 = bitmask of
    /// writer ids allowed to have produced the value (ids 0..63;
    /// bit 0 is the initial/uninitialized writer).
    DfiRead,
    /// Memory tagging (MTE-style): tag region arg0 of size
    /// (arg1 >> 8) with tag (arg1 & 0xFF).
    TagSet,
    /// Memory tagging: access at arg0 carries pointer tag arg1; it must
    /// match the containing region's memory tag.
    TagCheck,

    // --- Information-flow control (taint/IFC labels) ----------------
    /// LABEL-DEF(a, label): bind lattice label arg1 to address arg0.
    /// label 0 (PUBLIC, the lattice bottom) clears the binding.
    LabelDef,
    /// LABEL-CHECK(a, forbid): the value at arg0 flows into a sink that
    /// forbids the label bits in arg1; any overlap is a violation.
    LabelCheck,
    /// LABEL-JOIN(src, dst): the value at src was copied/combined into
    /// dst; dst's label becomes the lattice join (bitwise OR) of both.
    LabelJoin,

    NumOpcodes,
};

/** Human-readable opcode name for logs and tests. */
const char *opcodeName(Opcode op);

/**
 * One AppendWrite message.
 *
 * The wire format is 32 bytes. pid and seq are populated by the transport
 * (the FPGA device model stamps pid from its kernel-managed register and
 * seq from its per-message counter; software channels stamp pid at the
 * trusted sender-registration layer).
 */
struct Message
{
    Opcode op = Opcode::Invalid;
    std::uint32_t pid = 0;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::uint32_t seq = 0;
    std::uint32_t pad = 0;

    Message() = default;

    Message(Opcode op, std::uint64_t arg0, std::uint64_t arg1 = 0)
        : op(op), arg0(arg0), arg1(arg1)
    {}

    bool
    operator==(const Message &other) const
    {
        return op == other.op && pid == other.pid && arg0 == other.arg0 &&
               arg1 == other.arg1;
    }

    /** Render "OPCODE(arg0, arg1) pid=N seq=N" for logs. */
    std::string toString() const;
};

static_assert(sizeof(Message) == 32, "Message must be a 32-byte structure");

/**
 * CRC32 (reflected, poly 0xEDB88320) over the first 28 bytes of the
 * wire format — everything except `pad`, which carries the checksum
 * itself. Software channels stamp it in Channel::send; the FPGA AFU
 * restamps after assigning pid/seq. A verifier running with
 * Config::check_crc treats a mismatch as a CorruptMsg violation and
 * refuses to interpret the payload (fail closed).
 */
std::uint32_t messageCrc(const Message &message);

} // namespace hq

#endif // HQ_IPC_MESSAGE_H
