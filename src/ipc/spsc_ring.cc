#include "ipc/spsc_ring.h"

#include <cstring>
#include <type_traits>

#include "common/bits.h"
#include "faultinject/fault.h"
#include "telemetry/telemetry.h"

namespace hq {

namespace {

static_assert(std::is_trivially_copyable_v<Message>,
              "batch transfer memcpys Message runs");

HQ_TELEMETRY_HANDLE(occupancyGauge, Gauge, "ipc.ring_occupancy")
HQ_TELEMETRY_HANDLE(pushFailCounter, Counter, "ipc.ring_push_fail")

} // namespace

SpscRing::SpscRing(std::size_t min_capacity)
    : _slots(roundUpPow2(min_capacity ? min_capacity : 1)),
      _mask(_slots.size() - 1)
{
}

bool
SpscRing::tryPush(const Message &message)
{
    if (faultinject::armed())
        return pushWithFaults(message);
    return pushSlot(message);
}

bool
SpscRing::pushSlot(const Message &message)
{
    const std::uint64_t tail = _tail.load(std::memory_order_relaxed);
    if (tail - _cached_head > _mask) {
        // Apparently full: refresh the cached consumer cursor. This is
        // the only cross-core load on the push path, and it happens at
        // most once per drain instead of once per message.
        _cached_head = _head.load(std::memory_order_acquire);
        if (tail - _cached_head > _mask) {
            if (telemetry::enabled())
                pushFailCounter().inc();
            return false; // genuinely full
        }
    }
    _slots[tail & _mask] = message;
    _tail.store(tail + 1, std::memory_order_release);
    if (telemetry::enabled())
        occupancyGauge().set(tail + 1 - _cached_head);
    return true;
}

bool
SpscRing::pushWithFaults(const Message &message)
{
    namespace fi = faultinject;
    if (fi::fire(fi::Site::RingStall)) {
        // Ring pretends to be full: the producer sees back-pressure and
        // must retry or surface the failure (never silent loss).
        if (telemetry::enabled())
            pushFailCounter().inc();
        return false;
    }
    if (fi::fire(fi::Site::RingDrop))
        return true; // "accepted", but the slot is never written
    Message payload = message;
    if (fi::fire(fi::Site::RingCorrupt))
        fi::corrupt(payload);
    const bool duplicate = fi::fire(fi::Site::RingDup);
    if (!pushSlot(payload))
        return false;
    if (duplicate)
        pushSlot(payload); // best effort: dup is lost if the ring fills
    return true;
}

std::size_t
SpscRing::tryPushBatch(const Message *messages, std::size_t count)
{
    if (count == 0)
        return 0;
    if (faultinject::armed()) {
        // Degrade to per-message pushes so every message passes through
        // the injection points individually.
        std::size_t pushed = 0;
        while (pushed < count && pushWithFaults(messages[pushed]))
            ++pushed;
        return pushed;
    }
    const std::uint64_t tail = _tail.load(std::memory_order_relaxed);
    std::uint64_t free_slots = capacity() - (tail - _cached_head);
    if (free_slots < count) {
        _cached_head = _head.load(std::memory_order_acquire);
        free_slots = capacity() - (tail - _cached_head);
        if (free_slots == 0) {
            if (telemetry::enabled())
                pushFailCounter().inc();
            return 0;
        }
    }
    const std::size_t n =
        count < free_slots ? count : static_cast<std::size_t>(free_slots);

    // At most two contiguous runs (around the wrap point).
    const std::size_t start = static_cast<std::size_t>(tail & _mask);
    const std::size_t first = std::min(n, capacity() - start);
    std::memcpy(_slots.data() + start, messages, first * sizeof(Message));
    if (n > first)
        std::memcpy(_slots.data(), messages + first,
                    (n - first) * sizeof(Message));

    _tail.store(tail + n, std::memory_order_release);
    if (telemetry::enabled())
        occupancyGauge().set(tail + n - _cached_head);
    return n;
}

bool
SpscRing::tryPushAll(const Message *slots, std::size_t count)
{
    if (count == 0)
        return true;
    if (count > capacity())
        return false;
    // An injected stall makes this attempt see a full ring: the
    // producer experiences back-pressure (and retries), never a torn
    // frame — per-slot fault degradation would violate the
    // all-or-nothing contract.
    if (faultinject::armed() &&
        faultinject::fire(faultinject::Site::RingStall)) {
        if (telemetry::enabled())
            pushFailCounter().inc();
        return false;
    }
    const std::uint64_t tail = _tail.load(std::memory_order_relaxed);
    std::uint64_t free_slots = capacity() - (tail - _cached_head);
    if (free_slots < count) {
        _cached_head = _head.load(std::memory_order_acquire);
        free_slots = capacity() - (tail - _cached_head);
        if (free_slots < count) {
            if (telemetry::enabled())
                pushFailCounter().inc();
            return false;
        }
    }

    const std::size_t start = static_cast<std::size_t>(tail & _mask);
    const std::size_t first = std::min(count, capacity() - start);
    std::memcpy(_slots.data() + start, slots, first * sizeof(Message));
    if (count > first)
        std::memcpy(_slots.data(), slots + first,
                    (count - first) * sizeof(Message));

    _tail.store(tail + count, std::memory_order_release);
    if (telemetry::enabled())
        occupancyGauge().set(tail + count - _cached_head);
    return true;
}

bool
SpscRing::tryPop(Message &out)
{
    const std::uint64_t head = _head.load(std::memory_order_relaxed);
    if (head == _cached_tail) {
        // Apparently empty: refresh the cached producer cursor (the only
        // cross-core load on the pop path).
        _cached_tail = _tail.load(std::memory_order_acquire);
        if (head == _cached_tail)
            return false; // genuinely empty
    }
    out = _slots[head & _mask];
    _head.store(head + 1, std::memory_order_release);
    return true;
}

std::size_t
SpscRing::tryPopBatch(Message *out, std::size_t max_count)
{
    if (max_count == 0)
        return 0;
    const std::uint64_t head = _head.load(std::memory_order_relaxed);
    std::uint64_t available = _cached_tail - head;
    if (available < max_count) {
        _cached_tail = _tail.load(std::memory_order_acquire);
        available = _cached_tail - head;
        if (available == 0)
            return 0;
    }
    const std::size_t n = max_count < available
                              ? max_count
                              : static_cast<std::size_t>(available);

    const std::size_t start = static_cast<std::size_t>(head & _mask);
    const std::size_t first = std::min(n, capacity() - start);
    std::memcpy(out, _slots.data() + start, first * sizeof(Message));
    if (n > first)
        std::memcpy(out + first, _slots.data(),
                    (n - first) * sizeof(Message));

    _head.store(head + n, std::memory_order_release);
    return n;
}

std::size_t
SpscRing::peekSpan(RecvSpan &out)
{
    out.seg[0] = {};
    out.seg[1] = {};
    const std::uint64_t head = _head.load(std::memory_order_relaxed);
    // One acquire load per drain poll — the same cross-core cost the
    // copying pop paid, but the slot bytes themselves are not moved.
    _cached_tail = _tail.load(std::memory_order_acquire);
    const std::uint64_t available = _cached_tail - head;
    if (available == 0)
        return 0;

    const std::size_t n = static_cast<std::size_t>(available);
    const std::size_t start = static_cast<std::size_t>(head & _mask);
    const std::size_t first = std::min(n, capacity() - start);
    out.seg[0] = {_slots.data() + start, first};
    if (n > first)
        out.seg[1] = {_slots.data(), n - first};
    return n;
}

void
SpscRing::consume(std::size_t count)
{
    const std::uint64_t head = _head.load(std::memory_order_relaxed);
    _head.store(head + count, std::memory_order_release);
}

bool
SpscRing::overwritePending(std::size_t index, const Message &forged)
{
    const std::uint64_t head = _head.load(std::memory_order_acquire);
    const std::uint64_t tail = _tail.load(std::memory_order_acquire);
    if (head + index >= tail)
        return false;
    _slots[(head + index) & _mask] = forged;
    return true;
}

std::size_t
SpscRing::size() const
{
    const std::uint64_t tail = _tail.load(std::memory_order_acquire);
    const std::uint64_t head = _head.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
}

} // namespace hq
