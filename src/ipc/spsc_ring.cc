#include "ipc/spsc_ring.h"

#include "telemetry/telemetry.h"

namespace hq {

namespace {

std::size_t
roundUpPow2(std::size_t value)
{
    std::size_t pow2 = 1;
    while (pow2 < value)
        pow2 <<= 1;
    return pow2;
}

telemetry::Gauge &
occupancyGauge()
{
    static telemetry::Gauge &g =
        telemetry::Registry::instance().gauge("ipc.ring_occupancy");
    return g;
}

telemetry::Counter &
pushFailCounter()
{
    static telemetry::Counter &c =
        telemetry::Registry::instance().counter("ipc.ring_push_fail");
    return c;
}

} // namespace

SpscRing::SpscRing(std::size_t min_capacity)
    : _slots(roundUpPow2(min_capacity ? min_capacity : 1)),
      _mask(_slots.size() - 1)
{
}

bool
SpscRing::tryPush(const Message &message)
{
    const std::uint64_t tail = _tail.load(std::memory_order_relaxed);
    const std::uint64_t head = _head.load(std::memory_order_acquire);
    if (tail - head > _mask) {
        if (telemetry::enabled())
            pushFailCounter().inc();
        return false; // full
    }
    _slots[tail & _mask] = message;
    _tail.store(tail + 1, std::memory_order_release);
    if (telemetry::enabled())
        occupancyGauge().set(tail + 1 - head);
    return true;
}

bool
SpscRing::tryPop(Message &out)
{
    const std::uint64_t head = _head.load(std::memory_order_relaxed);
    const std::uint64_t tail = _tail.load(std::memory_order_acquire);
    if (head == tail)
        return false; // empty
    out = _slots[head & _mask];
    _head.store(head + 1, std::memory_order_release);
    return true;
}

bool
SpscRing::overwritePending(std::size_t index, const Message &forged)
{
    const std::uint64_t head = _head.load(std::memory_order_acquire);
    const std::uint64_t tail = _tail.load(std::memory_order_acquire);
    if (head + index >= tail)
        return false;
    _slots[(head + index) & _mask] = forged;
    return true;
}

std::size_t
SpscRing::size() const
{
    const std::uint64_t tail = _tail.load(std::memory_order_acquire);
    const std::uint64_t head = _head.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
}

} // namespace hq
