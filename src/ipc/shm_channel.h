/**
 * @file
 * Raw shared-memory channel — Table 2's "Shared Memory" row.
 *
 * Fast (a memory write) and asynchronous, but NOT append-only: any writer
 * with the mapping can corrupt or erase previously-written messages before
 * the verifier reads them. The corruptSlot() test hook demonstrates
 * exactly that weakness; the AppendWrite channels reject the equivalent
 * operation.
 */

#ifndef HQ_IPC_SHM_CHANNEL_H
#define HQ_IPC_SHM_CHANNEL_H

#include "ipc/channel.h"
#include "ipc/spsc_ring.h"

namespace hq {

class ShmChannel : public Channel
{
  public:
    explicit ShmChannel(std::size_t capacity);

    Status sendImpl(const Message &message) override;
    Status sendSlotsImpl(const Message *slots, std::size_t count) override;
    bool tryRecv(Message &out) override;
    std::size_t tryRecvBatch(Message *out, std::size_t max_count) override;
    bool tryPeekSpan(RecvSpan &out) override;
    void consumeSlots(std::size_t count) override;
    std::size_t recvCapacity() const override { return _ring.capacity(); }
    std::size_t pending() const override { return _ring.size(); }
    const ChannelTraits &traits() const override { return _traits; }

    /** Ring-backed: carries v1 and the batched v2 frame format. */
    bool
    supportsFormat(WireFormat want) const override
    {
        return want == WireFormat::V1 || want == WireFormat::V2;
    }

    /**
     * Model a compromised writer overwriting an already-sent message in
     * place (the integrity failure that motivates AppendWrite).
     * @return true when an unread message was corrupted.
     */
    bool corruptOldestPending(const Message &forged);

    /**
     * Bound the full-ring spin in sendImpl: after `limit` failed push
     * attempts the send returns Unavailable (fail closed) instead of
     * spinning forever on a dead consumer. 0 (default) = unbounded.
     */
    void setSendSpinLimit(std::uint64_t limit) { _max_send_spins = limit; }

  private:
    SpscRing _ring;
    ChannelTraits _traits;
    std::uint64_t _max_send_spins = 0;
};

} // namespace hq

#endif // HQ_IPC_SHM_CHANNEL_H
