/**
 * @file
 * Raw shared-memory channel — Table 2's "Shared Memory" row.
 *
 * Fast (a memory write) and asynchronous, but NOT append-only: any writer
 * with the mapping can corrupt or erase previously-written messages before
 * the verifier reads them. The corruptSlot() test hook demonstrates
 * exactly that weakness; the AppendWrite channels reject the equivalent
 * operation.
 */

#ifndef HQ_IPC_SHM_CHANNEL_H
#define HQ_IPC_SHM_CHANNEL_H

#include "ipc/channel.h"
#include "ipc/spsc_ring.h"

namespace hq {

class ShmChannel : public Channel
{
  public:
    explicit ShmChannel(std::size_t capacity);

    Status sendImpl(const Message &message) override;
    bool tryRecv(Message &out) override;
    std::size_t tryRecvBatch(Message *out, std::size_t max_count) override;
    std::size_t pending() const override { return _ring.size(); }
    const ChannelTraits &traits() const override { return _traits; }

    /**
     * Model a compromised writer overwriting an already-sent message in
     * place (the integrity failure that motivates AppendWrite).
     * @return true when an unread message was corrupted.
     */
    bool corruptOldestPending(const Message &forged);

  private:
    SpscRing _ring;
    ChannelTraits _traits;
};

} // namespace hq

#endif // HQ_IPC_SHM_CHANNEL_H
