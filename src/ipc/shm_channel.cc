#include "ipc/shm_channel.h"

#include <thread>

namespace hq {

ShmChannel::ShmChannel(std::size_t capacity)
    : _ring(capacity),
      _traits{"Shared Memory", /*appendOnly=*/false,
              /*asyncValidation=*/true, "Mem. Write"}
{
}

Status
ShmChannel::sendImpl(const Message &message)
{
    while (!_ring.tryPush(message))
        std::this_thread::yield();
    return Status::ok();
}

bool
ShmChannel::tryRecv(Message &out)
{
    return _ring.tryPop(out);
}

std::size_t
ShmChannel::tryRecvBatch(Message *out, std::size_t max_count)
{
    return _ring.tryPopBatch(out, max_count);
}

bool
ShmChannel::corruptOldestPending(const Message &forged)
{
    return _ring.overwritePending(0, forged);
}

} // namespace hq
