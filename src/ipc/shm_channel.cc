#include "ipc/shm_channel.h"

#include <thread>

namespace hq {

ShmChannel::ShmChannel(std::size_t capacity)
    : _ring(capacity),
      _traits{"Shared Memory", /*appendOnly=*/false,
              /*asyncValidation=*/true, "Mem. Write"}
{
}

Status
ShmChannel::send(const Message &message)
{
    while (!_ring.tryPush(message))
        std::this_thread::yield();
    return Status::ok();
}

bool
ShmChannel::tryRecv(Message &out)
{
    return _ring.tryPop(out);
}

bool
ShmChannel::corruptOldestPending(const Message &forged)
{
    return _ring.overwritePending(0, forged);
}

} // namespace hq
