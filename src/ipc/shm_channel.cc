#include "ipc/shm_channel.h"

#include <thread>

namespace hq {

ShmChannel::ShmChannel(std::size_t capacity)
    : _ring(capacity),
      _traits{"Shared Memory", /*appendOnly=*/false,
              /*asyncValidation=*/true, "Mem. Write"}
{
}

Status
ShmChannel::sendImpl(const Message &message)
{
    std::uint64_t spins = 0;
    while (!_ring.tryPush(message)) {
        if (_max_send_spins != 0 && ++spins >= _max_send_spins)
            return Status::error(
                StatusCode::Unavailable,
                "shm ring full: send spin budget exhausted (fail closed)");
        std::this_thread::yield();
    }
    return Status::ok();
}

Status
ShmChannel::sendSlotsImpl(const Message *slots, std::size_t count)
{
    if (count > _ring.capacity())
        return Status::error(StatusCode::InvalidArgument,
                             "frame larger than the shm ring");
    std::uint64_t spins = 0;
    while (!_ring.tryPushAll(slots, count)) {
        if (_max_send_spins != 0 && ++spins >= _max_send_spins)
            return Status::error(
                StatusCode::Unavailable,
                "shm ring full: send spin budget exhausted (fail closed)");
        std::this_thread::yield();
    }
    return Status::ok();
}

bool
ShmChannel::tryRecv(Message &out)
{
    return _ring.tryPop(out);
}

bool
ShmChannel::tryPeekSpan(RecvSpan &out)
{
    return _ring.peekSpan(out) != 0;
}

void
ShmChannel::consumeSlots(std::size_t count)
{
    _ring.consume(count);
}

std::size_t
ShmChannel::tryRecvBatch(Message *out, std::size_t max_count)
{
    return _ring.tryPopBatch(out, max_count);
}

bool
ShmChannel::corruptOldestPending(const Message &forged)
{
    return _ring.overwritePending(0, forged);
}

} // namespace hq
