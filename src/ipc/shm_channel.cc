#include "ipc/shm_channel.h"

#include <thread>

namespace hq {

ShmChannel::ShmChannel(std::size_t capacity)
    : _ring(capacity),
      _traits{"Shared Memory", /*appendOnly=*/false,
              /*asyncValidation=*/true, "Mem. Write"}
{
}

Status
ShmChannel::sendImpl(const Message &message)
{
    std::uint64_t spins = 0;
    while (!_ring.tryPush(message)) {
        if (_max_send_spins != 0 && ++spins >= _max_send_spins)
            return Status::error(
                StatusCode::Unavailable,
                "shm ring full: send spin budget exhausted (fail closed)");
        std::this_thread::yield();
    }
    return Status::ok();
}

bool
ShmChannel::tryRecv(Message &out)
{
    return _ring.tryPop(out);
}

std::size_t
ShmChannel::tryRecvBatch(Message *out, std::size_t max_count)
{
    return _ring.tryPopBatch(out, max_count);
}

bool
ShmChannel::corruptOldestPending(const Message &forged)
{
    return _ring.overwritePending(0, forged);
}

} // namespace hq
