/**
 * @file
 * Software IPC channels built on real kernel primitives — the top rows of
 * Table 2 (POSIX message queue, pipe, Unix socket). All of them pay a
 * system call per message, which is why the paper measures them at
 * hundreds of nanoseconds per send and why HQ-CFI-SfeStk-MQ only reaches
 * a 39% geometric-mean relative performance in Figure 3.
 */

#ifndef HQ_IPC_POSIX_CHANNELS_H
#define HQ_IPC_POSIX_CHANNELS_H

#include <mqueue.h>

#include "ipc/channel.h"

namespace hq {

/** POSIX message queue (mq_open/mq_send/mq_receive) — the "-MQ" variant. */
class MqChannel : public Channel
{
  public:
    explicit MqChannel(std::size_t capacity);
    ~MqChannel() override;

    /** True when the host supports POSIX message queues. */
    static bool supported();

    Status sendImpl(const Message &message) override;
    bool tryRecv(Message &out) override;
    std::size_t pending() const override;
    const ChannelTraits &traits() const override { return _traits; }

  private:
    mqd_t _send_queue = static_cast<mqd_t>(-1);
    mqd_t _recv_queue = static_cast<mqd_t>(-1);
    std::string _queue_name;
    ChannelTraits _traits;
};

/** Anonymous pipe (write/read); 32-byte messages are atomic (< PIPE_BUF). */
class PipeChannel : public Channel
{
  public:
    PipeChannel();
    ~PipeChannel() override;

    Status sendImpl(const Message &message) override;
    bool tryRecv(Message &out) override;
    std::size_t pending() const override;
    const ChannelTraits &traits() const override { return _traits; }

  private:
    int _read_fd = -1;
    int _write_fd = -1;
    ChannelTraits _traits;
};

/** Unix datagram socket pair (sendto/recvfrom). */
class SocketChannel : public Channel
{
  public:
    SocketChannel();
    ~SocketChannel() override;

    Status sendImpl(const Message &message) override;
    bool tryRecv(Message &out) override;
    std::size_t pending() const override;
    const ChannelTraits &traits() const override { return _traits; }

  private:
    int _send_fd = -1;
    int _recv_fd = -1;
    ChannelTraits _traits;
};

} // namespace hq

#endif // HQ_IPC_POSIX_CHANNELS_H
