#include "ipc/posix_channels.h"

#include <fcntl.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/log.h"
#include "faultinject/fault.h"
#include "telemetry/telemetry.h"

namespace hq {

namespace {

HQ_TELEMETRY_HANDLE(sendRetriesCounter, Counter, "ipc.send_retries")

/** Unique suffix so parallel tests do not collide on queue names. */
std::string
uniqueQueueName()
{
    static std::atomic<std::uint64_t> counter{0};
    return "/hq-mq-" + std::to_string(::getpid()) + "-" +
           std::to_string(counter.fetch_add(1));
}

/**
 * Bounded retry-with-backoff for transient transport failures (full
 * datagram buffers, injected EAGAINs). The first attempts just yield;
 * later ones sleep exponentially up to 512us. 256 attempts give the
 * verifier ~100ms to drain before the sender fails closed — a live
 * verifier drains a full buffer in well under that, so only a dead or
 * wedged enforcement channel ever exhausts the budget.
 */
constexpr int kMaxSendAttempts = 256;

void
sendBackoff(int attempt)
{
    if (telemetry::enabled())
        sendRetriesCounter().inc();
    if (attempt < 16) {
        std::this_thread::yield();
        return;
    }
    const int shift = std::min(attempt - 16, 9); // 1us .. 512us
    std::this_thread::sleep_for(std::chrono::microseconds(1u << shift));
}

Status
retryBudgetExhausted(const char *transport)
{
    return Status::error(StatusCode::Unavailable,
                         std::string(transport) +
                             " send: retry budget exhausted (fail closed)");
}

} // namespace

// ---------------------------------------------------------------------
// MqChannel
// ---------------------------------------------------------------------

MqChannel::MqChannel(std::size_t capacity)
    : _queue_name(uniqueQueueName()),
      _traits{"POSIX Message Queue", /*appendOnly=*/true,
              /*asyncValidation=*/false, "System Call"}
{
    mq_attr attr{};
    // Linux caps mq_maxmsg at /proc/sys/fs/mqueue/msg_max (default 10);
    // clamp rather than fail so the channel works without root tuning.
    attr.mq_maxmsg = static_cast<long>(std::min<std::size_t>(capacity, 10));
    attr.mq_msgsize = sizeof(Message);

    _send_queue = mq_open(_queue_name.c_str(), O_CREAT | O_WRONLY, 0600,
                          &attr);
    if (_send_queue == static_cast<mqd_t>(-1)) {
        logWarn("mq_open(send) failed: ", std::strerror(errno));
        return;
    }
    _recv_queue = mq_open(_queue_name.c_str(), O_RDONLY | O_NONBLOCK);
    if (_recv_queue == static_cast<mqd_t>(-1)) {
        logWarn("mq_open(recv) failed: ", std::strerror(errno));
        mq_close(_send_queue);
        _send_queue = static_cast<mqd_t>(-1);
    }
}

MqChannel::~MqChannel()
{
    if (_send_queue != static_cast<mqd_t>(-1))
        mq_close(_send_queue);
    if (_recv_queue != static_cast<mqd_t>(-1))
        mq_close(_recv_queue);
    if (!_queue_name.empty())
        mq_unlink(_queue_name.c_str());
}

bool
MqChannel::supported()
{
    MqChannel probe(8);
    return probe._send_queue != static_cast<mqd_t>(-1);
}

Status
MqChannel::sendImpl(const Message &message)
{
    if (_send_queue == static_cast<mqd_t>(-1))
        return Status::error(StatusCode::Unavailable, "mq not open");
    for (int attempt = 0; attempt < kMaxSendAttempts; ++attempt) {
        if (faultinject::fire(faultinject::Site::TransportError)) {
            sendBackoff(attempt);
            continue; // simulated transient mq_send failure
        }
        const int rc = mq_send(_send_queue,
                               reinterpret_cast<const char *>(&message),
                               sizeof(message), 0);
        if (rc == 0)
            return Status::ok();
        if (errno == EINTR || errno == EAGAIN) {
            sendBackoff(attempt);
            continue;
        }
        return Status::error(StatusCode::Internal,
                             std::string("mq_send: ") +
                                 std::strerror(errno));
    }
    return retryBudgetExhausted("mq");
}

bool
MqChannel::tryRecv(Message &out)
{
    if (_recv_queue == static_cast<mqd_t>(-1))
        return false;
    const ssize_t n = mq_receive(_recv_queue,
                                 reinterpret_cast<char *>(&out),
                                 sizeof(out), nullptr);
    return n == sizeof(out);
}

std::size_t
MqChannel::pending() const
{
    if (_recv_queue == static_cast<mqd_t>(-1))
        return 0;
    mq_attr attr{};
    if (mq_getattr(_recv_queue, &attr) != 0)
        return 0;
    return static_cast<std::size_t>(attr.mq_curmsgs);
}

// ---------------------------------------------------------------------
// PipeChannel
// ---------------------------------------------------------------------

PipeChannel::PipeChannel()
    : _traits{"Named Pipe", /*appendOnly=*/true, /*asyncValidation=*/false,
              "System Call"}
{
    int fds[2];
    if (::pipe(fds) != 0) {
        logWarn("pipe failed: ", std::strerror(errno));
        return;
    }
    _read_fd = fds[0];
    _write_fd = fds[1];
    // Receive side is polled by the verifier, so it must not block.
    const int flags = fcntl(_read_fd, F_GETFL, 0);
    fcntl(_read_fd, F_SETFL, flags | O_NONBLOCK);
}

PipeChannel::~PipeChannel()
{
    if (_read_fd >= 0)
        ::close(_read_fd);
    if (_write_fd >= 0)
        ::close(_write_fd);
}

Status
PipeChannel::sendImpl(const Message &message)
{
    if (_write_fd < 0)
        return Status::error(StatusCode::Unavailable, "pipe not open");
    for (int attempt = 0; attempt < kMaxSendAttempts; ++attempt) {
        if (faultinject::fire(faultinject::Site::TransportError)) {
            sendBackoff(attempt);
            continue; // simulated short write / transient error
        }
        // sizeof(Message) < PIPE_BUF, so the write is atomic.
        const ssize_t n = ::write(_write_fd, &message, sizeof(message));
        if (n == sizeof(message))
            return Status::ok();
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) {
            sendBackoff(attempt);
            continue;
        }
        return Status::error(StatusCode::Internal,
                             std::string("pipe write: ") +
                                 std::strerror(errno));
    }
    return retryBudgetExhausted("pipe");
}

bool
PipeChannel::tryRecv(Message &out)
{
    if (_read_fd < 0)
        return false;
    // Atomic 32-byte writes mean a successful read returns a whole
    // message; short reads only occur on an empty pipe (EAGAIN).
    const ssize_t n = ::read(_read_fd, &out, sizeof(out));
    return n == sizeof(out);
}

std::size_t
PipeChannel::pending() const
{
    if (_read_fd < 0)
        return 0;
    int bytes = 0;
    if (ioctl(_read_fd, FIONREAD, &bytes) != 0)
        return 0;
    return static_cast<std::size_t>(bytes) / sizeof(Message);
}

// ---------------------------------------------------------------------
// SocketChannel
// ---------------------------------------------------------------------

SocketChannel::SocketChannel()
    : _traits{"Socket", /*appendOnly=*/true, /*asyncValidation=*/false,
              "System Call"}
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_DGRAM, 0, fds) != 0) {
        logWarn("socketpair failed: ", std::strerror(errno));
        return;
    }
    _send_fd = fds[0];
    _recv_fd = fds[1];
    const int flags = fcntl(_recv_fd, F_GETFL, 0);
    fcntl(_recv_fd, F_SETFL, flags | O_NONBLOCK);
}

SocketChannel::~SocketChannel()
{
    if (_send_fd >= 0)
        ::close(_send_fd);
    if (_recv_fd >= 0)
        ::close(_recv_fd);
}

Status
SocketChannel::sendImpl(const Message &message)
{
    if (_send_fd < 0)
        return Status::error(StatusCode::Unavailable, "socket not open");
    for (int attempt = 0; attempt < kMaxSendAttempts; ++attempt) {
        if (faultinject::fire(faultinject::Site::TransportError)) {
            sendBackoff(attempt);
            continue; // simulated EAGAIN
        }
        const ssize_t n = ::send(_send_fd, &message, sizeof(message), 0);
        if (n == sizeof(message))
            return Status::ok();
        if (n < 0 && (errno == EINTR || errno == ENOBUFS ||
                      errno == EAGAIN)) {
            // Datagram buffer full: wait for the verifier to drain.
            sendBackoff(attempt);
            continue;
        }
        return Status::error(StatusCode::Internal,
                             std::string("socket send: ") +
                                 std::strerror(errno));
    }
    return retryBudgetExhausted("socket");
}

bool
SocketChannel::tryRecv(Message &out)
{
    if (_recv_fd < 0)
        return false;
    const ssize_t n = ::recv(_recv_fd, &out, sizeof(out), 0);
    return n == sizeof(out);
}

std::size_t
SocketChannel::pending() const
{
    if (_recv_fd < 0)
        return 0;
    int bytes = 0;
    if (ioctl(_recv_fd, FIONREAD, &bytes) != 0)
        return 0;
    return static_cast<std::size_t>(bytes) / sizeof(Message);
}

} // namespace hq
