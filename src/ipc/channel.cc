/**
 * @file
 * Template-method send() wrapper: sequence + CRC stamping, lag stamping
 * and flow-event emission shared by every channel transport.
 */

#include "ipc/channel.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "faultinject/fault.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace hq {

namespace {

/**
 * Default private sidecar capacity. Sized to cover several verifier
 * poll batches (kMaxPollBatch = 256) of in-flight messages; envelopes
 * beyond this are dropped (counted), never blocked on.
 */
constexpr std::size_t kDefaultLagCapacity = 4096;

HQ_TELEMETRY_HANDLE(stampDropped, Counter, "ipc.lag_stamp_dropped")
HQ_TELEMETRY_HANDLE(sendErrors, Counter, "ipc.send_errors")

std::uint32_t
nextChannelId()
{
    static std::atomic<std::uint32_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

Channel::Channel() : _channel_id(nextChannelId()) {}

Status
Channel::send(const Message &message)
{
    // On a v2-negotiated channel every transmit is framed — a single
    // message travels as a frame of one, so the receiver never has to
    // guess which slots are headers.
    if (_format == WireFormat::V2)
        return sendFramed(&message, 1);

    // Stamp the wire integrity fields once, for every transport: the
    // sender-side sequence makes drops/duplicates detectable on
    // software channels (the FPGA AFU restamps with its own counter),
    // and the CRC guard makes bit-flips detectable instead of
    // mis-verifiable. Both sides of the overhead A/B gate pay the same
    // stamping cost, so the <2% disabled-overhead claim is unaffected.
    Message stamped = message;
    stamped.seq = static_cast<std::uint32_t>(_send_count);
    stamped.pad = messageCrc(stamped);

    if (faultinject::fire(faultinject::Site::TransportDelay))
        std::this_thread::sleep_for(std::chrono::microseconds(100));

    if (!telemetry::enabled()) {
        Status status = sendImpl(stamped);
        // Keep the sidecar sequence aligned with delivered-message
        // count even while disabled, so a mid-run enable produces
        // matchable envelopes instead of permanently stale ones.
        if (status.isOk())
            ++_send_count;
        return status;
    }

    const std::uint64_t enqueue_ns = telemetry::monotonicRawNs();
    telemetry::TraceScope scope("ipc.send");
    Status status = sendImpl(stamped);
    if (status.isOk()) {
        const std::uint64_t seq = _send_count++;
        if (!_lag) {
            _lag = std::make_unique<telemetry::LagSidecar>(
                kDefaultLagCapacity);
            _lag_ptr.store(_lag.get(), std::memory_order_release);
        }
        if (!_lag->stamp(seq, enqueue_ns))
            stampDropped().inc();
        telemetry::traceFlowBegin("lag", lagFlowId(_channel_id, seq));
    } else {
        sendErrors().inc();
    }
    return status;
}

Status
Channel::sendBatch(const Message *messages, std::size_t count)
{
    if (_format == WireFormat::V1) {
        for (std::size_t i = 0; i < count; ++i) {
            const Status status = send(messages[i]);
            if (!status.isOk())
                return status;
        }
        return Status::ok();
    }
    // v2: cut the batch into frames of at most kMaxRecords, breaking
    // early when the sender pid changes (a frame states pid once for
    // all of its records).
    std::size_t offset = 0;
    while (offset < count) {
        std::size_t n = count - offset;
        if (n > frame::kMaxRecords)
            n = frame::kMaxRecords;
        for (std::size_t i = 1; i < n; ++i) {
            if (messages[offset + i].pid != messages[offset].pid) {
                n = i;
                break;
            }
        }
        const Status status = sendFramed(messages + offset, n);
        if (!status.isOk())
            return status;
        offset += n;
    }
    return Status::ok();
}

Status
Channel::sendFramed(const Message *messages, std::size_t count)
{
    namespace fi = faultinject;
    if (count == 0)
        return Status::ok();

    const auto base_seq = static_cast<std::uint32_t>(_send_count);
    Message slots[frame::kMaxFrameSlots];
    std::size_t slot_count;
    if (_var_records) {
        slot_count = frame::encodeVar(messages, count, messages[0].pid,
                                      base_seq, slots);
    } else {
        frame::encode(messages, count, messages[0].pid, base_seq, slots);
        slot_count = frame::frameSlots(count);
    }

    if (fi::armed()) {
        if (fi::fire(fi::Site::RingDrop)) {
            // The frame is "accepted" but never written: the whole run
            // of sequence numbers goes missing, which the verifier
            // reports as a SeqGap on the next frame.
            _send_count += count;
            return Status::ok();
        }
        if (fi::fire(fi::Site::FrameCorrupt))
            fi::corruptBytes(slots, slot_count * sizeof(Message));
        if (fi::fire(fi::Site::TransportDelay))
            std::this_thread::sleep_for(std::chrono::microseconds(100));
    }

    if (!telemetry::enabled()) {
        const Status status = sendSlotsImpl(slots, slot_count);
        if (status.isOk())
            _send_count += count;
        return status;
    }

    const std::uint64_t enqueue_ns = telemetry::monotonicRawNs();
    telemetry::TraceScope scope("ipc.send_frame");
    const Status status = sendSlotsImpl(slots, slot_count);
    if (status.isOk()) {
        if (!_lag) {
            _lag = std::make_unique<telemetry::LagSidecar>(
                kDefaultLagCapacity);
            _lag_ptr.store(_lag.get(), std::memory_order_release);
        }
        // One envelope per record (not per frame): the verifier matches
        // lag samples by per-record receive index, exactly as in v1.
        for (std::size_t i = 0; i < count; ++i) {
            const std::uint64_t seq = _send_count++;
            if (!_lag->stamp(seq, enqueue_ns))
                stampDropped().inc();
        }
        telemetry::traceFlowBegin("lag",
                                  lagFlowId(_channel_id, base_seq));
    } else {
        sendErrors().inc();
    }
    return status;
}

} // namespace hq
