/**
 * @file
 * Template-method send() wrapper: lag stamping and flow-event emission
 * shared by every channel transport.
 */

#include "ipc/channel.h"

#include <atomic>

#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace hq {

namespace {

/**
 * Default private sidecar capacity. Sized to cover several verifier
 * poll batches (kMaxPollBatch = 256) of in-flight messages; envelopes
 * beyond this are dropped (counted), never blocked on.
 */
constexpr std::size_t kDefaultLagCapacity = 4096;

HQ_TELEMETRY_HANDLE(stampDropped, Counter, "ipc.lag_stamp_dropped")

std::uint32_t
nextChannelId()
{
    static std::atomic<std::uint32_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

Channel::Channel() : _channel_id(nextChannelId()) {}

Status
Channel::send(const Message &message)
{
    if (!telemetry::enabled()) {
        Status status = sendImpl(message);
        // Keep the sidecar sequence aligned with delivered-message
        // count even while disabled, so a mid-run enable produces
        // matchable envelopes instead of permanently stale ones.
        if (status.isOk())
            ++_send_count;
        return status;
    }

    const std::uint64_t enqueue_ns = telemetry::monotonicRawNs();
    telemetry::TraceScope scope("ipc.send");
    Status status = sendImpl(message);
    if (status.isOk()) {
        const std::uint64_t seq = _send_count++;
        if (!_lag)
            _lag = std::make_unique<telemetry::LagSidecar>(
                kDefaultLagCapacity);
        if (!_lag->stamp(seq, enqueue_ns))
            stampDropped().inc();
        telemetry::traceFlowBegin("lag", lagFlowId(_channel_id, seq));
    }
    return status;
}

} // namespace hq
