/**
 * @file
 * Template-method send() wrapper: sequence + CRC stamping, lag stamping
 * and flow-event emission shared by every channel transport.
 */

#include "ipc/channel.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "faultinject/fault.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace hq {

namespace {

/**
 * Default private sidecar capacity. Sized to cover several verifier
 * poll batches (kMaxPollBatch = 256) of in-flight messages; envelopes
 * beyond this are dropped (counted), never blocked on.
 */
constexpr std::size_t kDefaultLagCapacity = 4096;

HQ_TELEMETRY_HANDLE(stampDropped, Counter, "ipc.lag_stamp_dropped")
HQ_TELEMETRY_HANDLE(sendErrors, Counter, "ipc.send_errors")

std::uint32_t
nextChannelId()
{
    static std::atomic<std::uint32_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

Channel::Channel() : _channel_id(nextChannelId()) {}

Status
Channel::send(const Message &message)
{
    // Stamp the wire integrity fields once, for every transport: the
    // sender-side sequence makes drops/duplicates detectable on
    // software channels (the FPGA AFU restamps with its own counter),
    // and the CRC guard makes bit-flips detectable instead of
    // mis-verifiable. Both sides of the overhead A/B gate pay the same
    // stamping cost, so the <2% disabled-overhead claim is unaffected.
    Message stamped = message;
    stamped.seq = static_cast<std::uint32_t>(_send_count);
    stamped.pad = messageCrc(stamped);

    if (faultinject::fire(faultinject::Site::TransportDelay))
        std::this_thread::sleep_for(std::chrono::microseconds(100));

    if (!telemetry::enabled()) {
        Status status = sendImpl(stamped);
        // Keep the sidecar sequence aligned with delivered-message
        // count even while disabled, so a mid-run enable produces
        // matchable envelopes instead of permanently stale ones.
        if (status.isOk())
            ++_send_count;
        return status;
    }

    const std::uint64_t enqueue_ns = telemetry::monotonicRawNs();
    telemetry::TraceScope scope("ipc.send");
    Status status = sendImpl(stamped);
    if (status.isOk()) {
        const std::uint64_t seq = _send_count++;
        if (!_lag) {
            _lag = std::make_unique<telemetry::LagSidecar>(
                kDefaultLagCapacity);
            _lag_ptr.store(_lag.get(), std::memory_order_release);
        }
        if (!_lag->stamp(seq, enqueue_ns))
            stampDropped().inc();
        telemetry::traceFlowBegin("lag", lagFlowId(_channel_id, seq));
    } else {
        sendErrors().inc();
    }
    return status;
}

} // namespace hq
