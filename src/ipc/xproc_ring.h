/**
 * @file
 * Cross-process AppendWrite transport over real shared memory.
 *
 * Everything else in this repository runs monitored program and
 * verifier as threads for determinism; this channel demonstrates the
 * deployment the paper actually describes: two *processes* whose only
 * connection is a shared mapping, so the monitored program genuinely
 * cannot touch verifier state.
 *
 * The ring lives in a fixed-layout region created with
 * mmap(MAP_SHARED | MAP_ANONYMOUS) *before* fork(): producer cursor,
 * consumer cursor, and message slots, manipulated with C++ atomics
 * (lock-free, SPSC). The writer side exposes only an append operation;
 * in real HerQules the MMU would additionally reject ordinary stores
 * to the region (AppendWrite-µarch) or the region would live on the
 * device (FPGA).
 */

#ifndef HQ_IPC_XPROC_RING_H
#define HQ_IPC_XPROC_RING_H

#include <atomic>
#include <chrono>
#include <cstddef>

#include "ipc/channel.h"

namespace hq {

/** Fixed-layout shared-memory ring header + slots. */
struct XprocRingRegion
{
    alignas(64) std::atomic<std::uint64_t> tail; //!< producer cursor
    alignas(64) std::atomic<std::uint64_t> head; //!< consumer cursor
    std::uint64_t capacity;                      //!< slot count (pow2)
    Message slots[]; // NOLINT: flexible array, sized at map time
};

/**
 * Channel over a shared mapping usable across fork(). Create in the
 * parent, fork, then use send() in the child and tryRecv() in the
 * parent (or vice versa — one producer, one consumer).
 */
class XprocChannel : public Channel
{
  public:
    /** Maps the shared region; capacity is rounded up to a power of 2. */
    explicit XprocChannel(std::size_t min_capacity);
    ~XprocChannel() override;

    XprocChannel(const XprocChannel &) = delete;
    XprocChannel &operator=(const XprocChannel &) = delete;

    /** True when the mapping was created successfully. */
    bool valid() const { return _region != nullptr; }

    /**
     * Bound the full-ring wait in sendImpl. By default the sender waits
     * forever for the verifier to drain (the paper's back-pressure
     * semantics); with a timeout, a send that cannot complete returns
     * Unavailable instead — fail closed rather than hang when the
     * consumer is dead or stalled by fault injection.
     */
    void setSendTimeout(std::chrono::nanoseconds timeout)
    {
        _send_timeout = timeout;
    }

    Status sendImpl(const Message &message) override;
    Status sendSlotsImpl(const Message *slots, std::size_t count) override;
    bool tryRecv(Message &out) override;
    std::size_t tryRecvBatch(Message *out, std::size_t max_count) override;
    bool tryPeekSpan(RecvSpan &out) override;
    void consumeSlots(std::size_t count) override;
    std::size_t recvCapacity() const override
    {
        return _region != nullptr
                   ? static_cast<std::size_t>(_region->capacity)
                   : 0;
    }
    std::size_t pending() const override;
    const ChannelTraits &traits() const override { return _traits; }

    /** Ring-backed: carries v1 and the batched v2 frame format. */
    bool
    supportsFormat(WireFormat want) const override
    {
        return want == WireFormat::V1 || want == WireFormat::V2;
    }

  private:
    XprocRingRegion *_region = nullptr;
    std::size_t _map_bytes = 0;
    ChannelTraits _traits;
    std::chrono::nanoseconds _send_timeout{0}; //!< 0 = wait forever
    /// Cursor caches live in the channel object, NOT the shared region:
    /// after fork() each process owns a private copy, so the producer's
    /// cached head and the consumer's cached tail never cross the
    /// process boundary (they are refreshed from the shared cursors on
    /// apparent-full/empty only).
    alignas(64) std::uint64_t _cached_head = 0; //!< producer-side cache
    alignas(64) std::uint64_t _cached_tail = 0; //!< consumer-side cache
};

} // namespace hq

#endif // HQ_IPC_XPROC_RING_H
