/**
 * @file
 * Single-producer single-consumer lock-free ring of AppendWrite messages.
 *
 * This is the shared circular buffer that backs the fast channels: the
 * verifier host buffer behind the FPGA device model, and the appendable
 * memory region (AMR) of the microarchitectural model. The paper assigns
 * one AMR per writer core with a single reader core iterating over all
 * mapped AMRs, which is exactly the SPSC discipline.
 */

#ifndef HQ_IPC_SPSC_RING_H
#define HQ_IPC_SPSC_RING_H

#include <atomic>
#include <cstddef>
#include <vector>

#include "ipc/message.h"

namespace hq {

/** Lock-free SPSC ring; capacity is rounded up to a power of two. */
class SpscRing
{
  public:
    explicit SpscRing(std::size_t min_capacity);

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /**
     * Append one message; fails (returns false) when the ring is full.
     * Producer-side only.
     */
    bool tryPush(const Message &message);

    /**
     * Remove the oldest message into out; fails when the ring is empty.
     * Consumer-side only.
     */
    bool tryPop(Message &out);

    /** Number of messages currently queued (approximate across threads). */
    std::size_t size() const;

    /**
     * Overwrite the index-th unread message in place. This models what a
     * compromised writer can do to a raw shared-memory transport (anyone
     * with the mapping can scribble over sent-but-unread messages); the
     * AppendWrite channels never expose this operation. Test/demo hook.
     * @return false when fewer than index+1 messages are pending.
     */
    bool overwritePending(std::size_t index, const Message &forged);

    /** True when no messages are queued. */
    bool empty() const { return size() == 0; }

    std::size_t capacity() const { return _mask + 1; }

  private:
    std::vector<Message> _slots;
    std::size_t _mask;
    alignas(64) std::atomic<std::uint64_t> _head{0}; //!< consumer cursor
    alignas(64) std::atomic<std::uint64_t> _tail{0}; //!< producer cursor
};

} // namespace hq

#endif // HQ_IPC_SPSC_RING_H
