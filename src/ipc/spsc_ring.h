/**
 * @file
 * Single-producer single-consumer lock-free ring of AppendWrite messages.
 *
 * This is the shared circular buffer that backs the fast channels: the
 * verifier host buffer behind the FPGA device model, and the appendable
 * memory region (AMR) of the microarchitectural model. The paper assigns
 * one AMR per writer core with a single reader core iterating over all
 * mapped AMRs, which is exactly the SPSC discipline.
 *
 * Fast-path structure (see DESIGN.md "Fast path"):
 *  - Each side keeps a *cached* copy of the other side's cursor and
 *    refreshes it only on apparent-full/apparent-empty, so steady-state
 *    pushes and pops touch no remote cache line beyond the slot itself.
 *  - tryPushBatch/tryPopBatch move contiguous runs of the 32-byte POD
 *    messages with one cursor load and one release-store per batch,
 *    amortizing the cross-core synchronization over up to a whole
 *    batch of messages.
 */

#ifndef HQ_IPC_SPSC_RING_H
#define HQ_IPC_SPSC_RING_H

#include <atomic>
#include <cstddef>
#include <vector>

#include "ipc/frame.h"
#include "ipc/message.h"

namespace hq {

/** Lock-free SPSC ring; capacity is rounded up to a power of two. */
class SpscRing
{
  public:
    explicit SpscRing(std::size_t min_capacity);

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /**
     * Append one message; fails (returns false) when the ring is full.
     * Producer-side only.
     */
    bool tryPush(const Message &message);

    /**
     * Append up to count messages from messages[0..count), preserving
     * order, with a single release-store of the producer cursor.
     * Producer-side only.
     * @return number of messages appended (0 when full; may be partial).
     */
    std::size_t tryPushBatch(const Message *messages, std::size_t count);

    /**
     * Append exactly count slots or none at all, with a single
     * release-store of the producer cursor. The v2 frame path depends
     * on this atomicity: a consumer that observes a frame header must
     * observe the complete frame (partial publication would tear the
     * receiver's decode alignment). Producer-side only.
     * @return true when all count slots were appended.
     */
    bool tryPushAll(const Message *slots, std::size_t count);

    /**
     * Remove the oldest message into out; fails when the ring is empty.
     * Consumer-side only.
     */
    bool tryPop(Message &out);

    /**
     * Remove up to max_count oldest messages into out[0..), preserving
     * order, with a single release-store of the consumer cursor.
     * Consumer-side only.
     * @return number of messages dequeued (0 when empty).
     */
    std::size_t tryPopBatch(Message *out, std::size_t max_count);

    /**
     * Zero-copy drain: view every queued slot in place (at most two
     * contiguous runs around the wrap point) without advancing the
     * consumer cursor. The view stays valid until consume() releases
     * the slots. Consumer-side only.
     * @return number of slots viewable (== out.total()).
     */
    std::size_t peekSpan(RecvSpan &out);

    /** Release the first count slots of the last peekSpan() view.
     *  Consumer-side only. */
    void consume(std::size_t count);

    /** Number of messages currently queued (approximate across threads). */
    std::size_t size() const;

    /**
     * Overwrite the index-th unread message in place. This models what a
     * compromised writer can do to a raw shared-memory transport (anyone
     * with the mapping can scribble over sent-but-unread messages); the
     * AppendWrite channels never expose this operation. Test/demo hook.
     * @return false when fewer than index+1 messages are pending.
     */
    bool overwritePending(std::size_t index, const Message &forged);

    /** True when no messages are queued. */
    bool empty() const { return size() == 0; }

    std::size_t capacity() const { return _mask + 1; }

  private:
    /** The real push (fault-free fast path body). */
    bool pushSlot(const Message &message);

    /** Cold path taken while fault injection is armed: may drop,
     *  duplicate, bit-flip or stall the push (ring_* fault sites). */
    bool pushWithFaults(const Message &message);

    std::vector<Message> _slots;
    std::size_t _mask;
    /// Consumer-owned line: consumer cursor + its cache of the producer
    /// cursor (refreshed only when the ring looks empty).
    alignas(64) std::atomic<std::uint64_t> _head{0};
    std::uint64_t _cached_tail = 0;
    /// Producer-owned line: producer cursor + its cache of the consumer
    /// cursor (refreshed only when the ring looks full).
    alignas(64) std::atomic<std::uint64_t> _tail{0};
    std::uint64_t _cached_head = 0;
};

} // namespace hq

#endif // HQ_IPC_SPSC_RING_H
