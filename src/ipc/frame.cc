#include "ipc/frame.h"

#include <cstring>

#include "common/crc32.h"

namespace hq {

const char *
wireFormatName(WireFormat format)
{
    switch (format) {
      case WireFormat::V1: return "v1";
      case WireFormat::V2: return "v2";
    }
    return "unknown";
}

namespace frame {

const char *
decodeStatusName(DecodeStatus status)
{
    switch (status) {
      case DecodeStatus::Ok: return "ok";
      case DecodeStatus::NeedMore: return "need-more";
      case DecodeStatus::BadHeader: return "bad-header";
      case DecodeStatus::BadBody: return "bad-body";
    }
    return "unknown";
}

namespace {

/**
 * The longest contiguous byte run starting at byte offset `off` of the
 * span's slot space (segments are slot-aligned, but packed records are
 * not, so a record can straddle the wrap point).
 */
struct ByteRun
{
    const unsigned char *p;
    std::size_t len;
};

inline ByteRun
runAt(const RecvSpan &span, std::size_t off)
{
    const std::size_t seg0_bytes = span.seg[0].count * sizeof(Message);
    if (off < seg0_bytes) {
        return {reinterpret_cast<const unsigned char *>(span.seg[0].data) +
                    off,
                seg0_bytes - off};
    }
    off -= seg0_bytes;
    return {reinterpret_cast<const unsigned char *>(span.seg[1].data) + off,
            span.seg[1].count * sizeof(Message) - off};
}

inline void
copySpanBytes(const RecvSpan &span, std::size_t off, void *dst,
              std::size_t len)
{
    auto *out = static_cast<unsigned char *>(dst);
    while (len != 0) {
        const ByteRun run = runAt(span, off);
        const std::size_t n = len < run.len ? len : run.len;
        std::memcpy(out, run.p, n);
        out += n;
        off += n;
        len -= n;
    }
}

inline std::uint32_t
crcSpanBytes(const RecvSpan &span, std::size_t off, std::size_t len)
{
    // Streaming update (initial crc 0) chains across the wrap point, so
    // the whole body is checksummed without copying it out of the ring.
    std::uint32_t crc = 0;
    while (len != 0) {
        const ByteRun run = runAt(span, off);
        const std::size_t n = len < run.len ? len : run.len;
        crc = crc32::update(crc, run.p, n);
        off += n;
        len -= n;
    }
    return crc;
}

inline std::uint32_t
headerCrcFor(const FrameHeader &header)
{
    // Legacy fixed-record frames checksum the first 20 bytes only (the
    // reserved word is required-zero there); var-record frames chain
    // the reserved word in too, since it carries the body length that
    // decoding depends on.
    std::uint32_t crc = crc32::compute(&header, kHeaderCrcBytes);
    if (header.flags & kFlagVarRecords)
        crc = crc32::update(crc, &header.reserved,
                            sizeof(header.reserved));
    return crc;
}

} // namespace

void
encode(const Message *messages, std::size_t count, std::uint32_t pid,
       std::uint32_t base_seq, Message *slots_out)
{
    auto *body = reinterpret_cast<unsigned char *>(slots_out + 1);
    for (std::size_t i = 0; i < count; ++i) {
        PackedRecord record;
        record.op = static_cast<std::uint32_t>(messages[i].op);
        record.reserved = 0;
        record.arg0 = messages[i].arg0;
        record.arg1 = messages[i].arg1;
        std::memcpy(body + i * sizeof(PackedRecord), &record,
                    sizeof(PackedRecord));
    }
    // Zero the final slot's tail padding so identical batches produce
    // identical frame bytes (and the body CRC is deterministic).
    const std::size_t body_bytes = count * sizeof(PackedRecord);
    const std::size_t slot_bytes = recordSlots(count) * sizeof(Message);
    if (slot_bytes > body_bytes)
        std::memset(body + body_bytes, 0, slot_bytes - body_bytes);

    FrameHeader header;
    header.magic = kMagic;
    header.pid = pid;
    header.base_seq = base_seq;
    header.count = static_cast<std::uint16_t>(count);
    header.flags = 0;
    header.body_crc = crc32::compute(body, body_bytes);
    header.reserved = 0;
    header.header_crc = headerCrcFor(header);
    std::memcpy(slots_out, &header, sizeof(header));
}

std::size_t
encodeVar(const Message *messages, std::size_t count, std::uint32_t pid,
          std::uint32_t base_seq, Message *slots_out)
{
    auto *body = reinterpret_cast<unsigned char *>(slots_out + 1);
    std::size_t off = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (messages[i].arg1 == 0) {
            ShortRecord record;
            record.op = static_cast<std::uint32_t>(messages[i].op) |
                        kShortOpBit;
            record.reserved = 0;
            record.arg0 = messages[i].arg0;
            std::memcpy(body + off, &record, sizeof(record));
            off += sizeof(record);
        } else {
            PackedRecord record;
            record.op = static_cast<std::uint32_t>(messages[i].op);
            record.reserved = 0;
            record.arg0 = messages[i].arg0;
            record.arg1 = messages[i].arg1;
            std::memcpy(body + off, &record, sizeof(record));
            off += sizeof(record);
        }
    }
    const std::size_t body_bytes = off;
    const std::size_t slot_bytes = bodySlots(body_bytes) * sizeof(Message);
    if (slot_bytes > body_bytes)
        std::memset(body + body_bytes, 0, slot_bytes - body_bytes);

    FrameHeader header;
    header.magic = kMagic;
    header.pid = pid;
    header.base_seq = base_seq;
    header.count = static_cast<std::uint16_t>(count);
    header.flags = kFlagVarRecords;
    header.body_crc = crc32::compute(body, body_bytes);
    header.reserved = body_bytes;
    header.header_crc = headerCrcFor(header);
    std::memcpy(slots_out, &header, sizeof(header));
    return 1 + bodySlots(body_bytes);
}

DecodeStatus
decode(const RecvSpan &span, const DecodeLimits &limits, FrameView &view)
{
    if (span.total() == 0)
        return DecodeStatus::NeedMore;

    FrameHeader header;
    std::memcpy(&header, &span.slot(0), sizeof(header));
    if (header.magic != kMagic ||
        (header.flags & ~kFlagVarRecords) != 0) {
        return DecodeStatus::BadHeader;
    }
    const bool var = (header.flags & kFlagVarRecords) != 0;
    if (!var && header.reserved != 0)
        return DecodeStatus::BadHeader;
    if (headerCrcFor(header) != header.header_crc)
        return DecodeStatus::BadHeader;
    // Count bounds are rejected outright, never clamped: a header whose
    // footprint cannot fit the transporting ring (or exceeds what the
    // verifier would ever poll) can never correspond to a completable
    // frame, so treating it as "wait for more" would hang the drain.
    const std::size_t count = header.count;
    if (count == 0 || count > kMaxRecords || count > limits.max_batch)
        return DecodeStatus::BadHeader;

    // Body byte length: stated (and CRC-covered) for var frames — but
    // still bounds-checked against what count records can occupy —
    // derived from count for fixed frames.
    std::size_t body_bytes;
    if (var) {
        body_bytes = header.reserved;
        if (body_bytes < count * sizeof(ShortRecord) ||
            body_bytes > count * sizeof(PackedRecord) ||
            body_bytes % 8 != 0) {
            return DecodeStatus::BadHeader;
        }
    } else {
        body_bytes = count * sizeof(PackedRecord);
    }
    const std::size_t slots = 1 + bodySlots(body_bytes);
    if (slots > limits.ring_capacity)
        return DecodeStatus::BadHeader;

    view.pid = header.pid;
    view.base_seq = header.base_seq;
    view.count = header.count;
    view.var = var;
    view.body_bytes = static_cast<std::uint32_t>(body_bytes);
    view.slots = slots;
    if (span.total() < slots)
        return DecodeStatus::NeedMore;

    if (crcSpanBytes(span, sizeof(Message), body_bytes) != header.body_crc)
        return DecodeStatus::BadBody;

    if (var) {
        // Structural walk: the record sizes must tile the stated body
        // length exactly. The body CRC already matched, so a mismatch
        // here means the *sender* emitted a malformed frame; fail
        // closed on the whole frame rather than apply a prefix.
        std::size_t off = 0;
        for (std::size_t i = 0; i < count; ++i) {
            if (off + sizeof(std::uint32_t) > body_bytes)
                return DecodeStatus::BadBody;
            std::uint32_t op_word = 0;
            copySpanBytes(span, sizeof(Message) + off, &op_word,
                          sizeof(op_word));
            const std::size_t size = (op_word & kShortOpBit) != 0
                                         ? sizeof(ShortRecord)
                                         : sizeof(PackedRecord);
            if (off + size > body_bytes)
                return DecodeStatus::BadBody;
            view.rec_off[i] = static_cast<std::uint32_t>(off);
            off += size;
        }
        if (off != body_bytes)
            return DecodeStatus::BadBody;
    }
    return DecodeStatus::Ok;
}

void
unpackRecord(const RecvSpan &span, const FrameView &view, std::size_t i,
             Message &out)
{
    if (view.var) {
        const std::size_t off = sizeof(Message) + view.rec_off[i];
        std::uint32_t op_word = 0;
        copySpanBytes(span, off, &op_word, sizeof(op_word));
        if ((op_word & kShortOpBit) != 0) {
            ShortRecord record;
            copySpanBytes(span, off, &record, sizeof(record));
            out.op = static_cast<Opcode>(record.op & ~kShortOpBit);
            out.arg0 = record.arg0;
            out.arg1 = 0;
        } else {
            PackedRecord record;
            copySpanBytes(span, off, &record, sizeof(record));
            out.op = static_cast<Opcode>(record.op);
            out.arg0 = record.arg0;
            out.arg1 = record.arg1;
        }
    } else {
        PackedRecord record;
        copySpanBytes(span, sizeof(Message) + i * sizeof(PackedRecord),
                      &record, sizeof(record));
        out.op = static_cast<Opcode>(record.op);
        out.arg0 = record.arg0;
        out.arg1 = record.arg1;
    }
    out.pid = view.pid;
    out.seq = view.base_seq + static_cast<std::uint32_t>(i);
    out.pad = 0; // integrity already vouched for by the frame CRCs
}

void
unpackAll(const RecvSpan &span, const FrameView &view, Message *out)
{
    for (std::size_t i = 0; i < view.count; ++i)
        unpackRecord(span, view, i, out[i]);
}

} // namespace frame
} // namespace hq
