#include "ipc/message.h"

#include <sstream>

#include "common/crc32.h"

namespace hq {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Invalid: return "INVALID";
      case Opcode::Init: return "INIT";
      case Opcode::Syscall: return "SYSCALL";
      case Opcode::BlockSize: return "BLOCK-SIZE";
      case Opcode::PointerDefine: return "POINTER-DEFINE";
      case Opcode::PointerCheck: return "POINTER-CHECK";
      case Opcode::PointerInvalidate: return "POINTER-INVALIDATE";
      case Opcode::PointerCheckInvalidate: return "POINTER-CHECK-INVALIDATE";
      case Opcode::PointerBlockCopy: return "POINTER-BLOCK-COPY";
      case Opcode::PointerBlockMove: return "POINTER-BLOCK-MOVE";
      case Opcode::PointerBlockInvalidate: return "POINTER-BLOCK-INVALIDATE";
      case Opcode::AllocCreate: return "ALLOCATION-CREATE";
      case Opcode::AllocCheck: return "ALLOCATION-CHECK";
      case Opcode::AllocCheckBase: return "ALLOCATION-CHECK-BASE";
      case Opcode::AllocExtend: return "ALLOCATION-EXTEND";
      case Opcode::AllocDestroy: return "ALLOCATION-DESTROY";
      case Opcode::AllocDestroyAll: return "ALLOCATION-DESTROY-ALL";
      case Opcode::EventCount: return "EVENT-COUNT";
      case Opcode::Heartbeat: return "HEARTBEAT";
      case Opcode::DfiWrite: return "DFI-WRITE";
      case Opcode::DfiRead: return "DFI-READ";
      case Opcode::TagSet: return "TAG-SET";
      case Opcode::TagCheck: return "TAG-CHECK";
      case Opcode::LabelDef: return "LABEL-DEF";
      case Opcode::LabelCheck: return "LABEL-CHECK";
      case Opcode::LabelJoin: return "LABEL-JOIN";
      case Opcode::NumOpcodes: break;
    }
    return "UNKNOWN";
}

std::string
Message::toString() const
{
    std::ostringstream os;
    os << opcodeName(op) << "(0x" << std::hex << arg0 << ", 0x" << arg1
       << ")" << std::dec << " pid=" << pid << " seq=" << seq;
    return os.str();
}

std::uint32_t
messageCrc(const Message &message)
{
    // The 28 covered bytes are exactly op..seq: `pad` is the last field
    // and the struct is packed tight (4+4+8+8+4 = 28). Dispatches
    // through the shared CRC32 kernel; the value is bit-identical to
    // the original byte-at-a-time table loop (golden fixtures and the
    // AFU model depend on it).
    constexpr std::size_t kCoveredBytes = sizeof(Message) - sizeof(std::uint32_t);
    return crc32::compute(&message, kCoveredBytes);
}

} // namespace hq
