/**
 * @file
 * Abstract IPC channel between a monitored program and the verifier.
 *
 * Concrete channels correspond to the rows of the paper's Table 2:
 * POSIX message queues, named pipes, sockets, raw shared memory,
 * AppendWrite-FPGA, and AppendWrite-µarch (software model). Each channel
 * declares its traits (append-only? asynchronous validation? primary
 * cost) so the Table 2 harness can print the comparison.
 */

#ifndef HQ_IPC_CHANNEL_H
#define HQ_IPC_CHANNEL_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "ipc/frame.h"
#include "ipc/message.h"
#include "telemetry/lag.h"

namespace hq {

/** Static properties of a channel kind (columns of Table 2). */
struct ChannelTraits
{
    std::string name;
    bool appendOnly = false;       //!< writers cannot alter sent messages
    bool asyncValidation = false;  //!< send does not block on the reader
    std::string primaryCost;       //!< e.g. "System Call", "Mem. Write"
};

/**
 * Bidirectional endpoint pair abstraction: the monitored program calls
 * send(); the verifier calls tryRecv(). Implementations are safe for one
 * concurrent sender thread and one concurrent receiver thread.
 *
 * send() is a template method: the public entry point stamps each
 * message's enqueue time into a per-channel lag sidecar (and emits a
 * Perfetto flow-begin event) when telemetry is enabled, then forwards
 * to the transport-specific sendImpl(). The wire Message format is
 * untouched (§3.1); the envelope travels beside the queue, and the
 * verifier turns it into per-message verification-lag histograms.
 * Disabled runs pay one relaxed atomic load + branch.
 */
class Channel
{
  public:
    Channel();
    virtual ~Channel() = default;

    /** Transmit one message; may block when the transport is full. */
    Status send(const Message &message);

    /**
     * Transmit count messages, preserving order. On a v1 channel this
     * is a convenience loop over send(); on a v2-negotiated channel the
     * batch travels as framed runs (header + packed records, at most
     * frame::kMaxRecords per frame) so sequence/CRC stamping amortizes
     * across the batch. May block when the transport is full.
     */
    Status sendBatch(const Message *messages, std::size_t count);

    /**
     * Wire format in effect. Channels start in v1 (one self-checking
     * Message per slot); negotiateFormat(V2) upgrades ring-backed
     * transports that support framing.
     */
    WireFormat format() const { return _format; }

    /**
     * Request a wire format. Returns true and switches when the
     * transport supports it; otherwise the current format is kept
     * (callers fall back to v1 silently — old peers stay valid). Call
     * before the first send(); renegotiating mid-stream would tear the
     * receiver's frame alignment.
     */
    bool
    negotiateFormat(WireFormat want)
    {
        if (!supportsFormat(want))
            return false;
        _format = want;
        return true;
    }

    /** Formats this transport can carry (base: v1 only). */
    virtual bool
    supportsFormat(WireFormat want) const
    {
        return want == WireFormat::V1;
    }

    /**
     * Opt into variable-length v2 records (frame::kFlagVarRecords):
     * single-argument messages travel as 16-byte short records. Only
     * meaningful after a successful negotiateFormat(V2); like format
     * negotiation, call before the first send() — the flag changes
     * frame bytes, so golden-fixture peers stay on fixed records by
     * never calling this.
     * @return true when enabled (the channel is on v2).
     */
    bool
    enableVarRecords()
    {
        if (_format != WireFormat::V2)
            return false;
        _var_records = true;
        return true;
    }

    /** True when sendBatch()/send() emit kFlagVarRecords frames. */
    bool varRecordsEnabled() const { return _var_records; }

    /**
     * Receive the next message if one is available.
     * @return true and fills out when a message was dequeued.
     */
    virtual bool tryRecv(Message &out) = 0;

    /**
     * Receive up to max_count messages into out[0..), preserving send
     * order, so one virtual call amortizes over a whole batch. The
     * base-class default pops a single message; the ring-backed
     * channels (shared memory, cross-process, FPGA host buffer, µarch
     * AMR) override it with a true bulk dequeue.
     * @return number of messages dequeued (0 when none available).
     */
    virtual std::size_t
    tryRecvBatch(Message *out, std::size_t max_count)
    {
        return max_count != 0 && tryRecv(out[0]) ? 1 : 0;
    }

    /**
     * Zero-copy drain, step 1: borrow a view of every queued slot
     * without dequeuing (at most two contiguous runs around the ring's
     * wrap point). The verifier validates records in place — v1 CRC
     * checks, v2 frame decode — and only then advances the consumer
     * cursor with consumeSlots(), so corrupt data is never copied into
     * trusted state first. Base channels (posix transports) do not
     * expose their kernel-side buffers: they return false and the
     * verifier falls back to the copying tryRecvBatch() path.
     */
    virtual bool
    tryPeekSpan(RecvSpan &out)
    {
        (void)out;
        return false;
    }

    /**
     * Zero-copy drain, step 2: release the first `count` slots of the
     * last tryPeekSpan() view. Slot references into the released range
     * are invalidated.
     */
    virtual void
    consumeSlots(std::size_t count)
    {
        (void)count;
    }

    /**
     * Receive-side ring capacity in slots, or 0 when the transport has
     * no fixed slot ring (posix transports). The verifier feeds this to
     * the v2 frame decoder: a header whose slot footprint exceeds the
     * ring can never complete, so it must be rejected rather than
     * waited for.
     */
    virtual std::size_t recvCapacity() const { return 0; }

    /** Approximate number of in-flight (sent but unreceived) messages. */
    virtual std::size_t pending() const = 0;

    /** Static channel properties. */
    virtual const ChannelTraits &traits() const = 0;

    /**
     * Process-unique channel id (monotonic, from 1). The upper half of
     * the 64-bit Perfetto flow-event id, so flows from distinct
     * channels never collide even when sequences do.
     */
    std::uint32_t channelId() const { return _channel_id; }

    /**
     * The lag sidecar paired with this channel, or nullptr when no
     * message has been stamped yet (telemetry disabled). The verifier
     * matches envelopes by sequence number, so a null or partially
     * populated sidecar degrades to "no lag sample", never a wrong one.
     * Read with acquire: the producer creates the sidecar lazily on
     * its first stamped send and publishes it with a release store, so
     * a consumer thread that sees the pointer sees a constructed ring.
     */
    telemetry::LagSidecar *
    lagSidecar() const
    {
        return _lag_ptr.load(std::memory_order_acquire);
    }

    /** Messages stamped through send() so far (the sidecar sequence). */
    std::uint64_t sendCount() const { return _send_count; }

  protected:
    /** Transport-specific transmit; called by the send() wrapper. */
    virtual Status sendImpl(const Message &message) = 0;

    /**
     * Transport-specific all-or-nothing append of pre-encoded frame
     * slots (v2 path). A frame must become visible to the consumer
     * atomically — one release-store — or not at all; partial frames
     * would tear the receiver's decode alignment. Only transports that
     * report supportsFormat(V2) need to override.
     */
    virtual Status
    sendSlotsImpl(const Message *slots, std::size_t count)
    {
        (void)slots;
        (void)count;
        return Status::error(StatusCode::FailedPrecondition,
                             "transport has no framed (v2) send path");
    }

    /**
     * Replace the default private sidecar with an externally backed
     * one (XprocChannel: a region inside its shared mapping, so the
     * parent's verifier can read envelopes the child stamped).
     * Call before the first send().
     */
    void installLagSidecar(std::unique_ptr<telemetry::LagSidecar> sidecar)
    {
        _lag = std::move(sidecar);
        _lag_ptr.store(_lag.get(), std::memory_order_release);
    }

  private:
    /** One framed (v2) transmit of count <= frame::kMaxRecords
     *  same-pid messages, including lag stamping per record. */
    Status sendFramed(const Message *messages, std::size_t count);

    std::uint32_t _channel_id;
    std::uint64_t _send_count = 0;
    WireFormat _format = WireFormat::V1;
    bool _var_records = false;
    /// _lag owns; _lag_ptr publishes (release on create, acquire in
    /// lagSidecar()) so the verifier thread can race the lazy creation.
    std::unique_ptr<telemetry::LagSidecar> _lag;
    std::atomic<telemetry::LagSidecar *> _lag_ptr{nullptr};
};

/** Perfetto flow-event id for (channel, sequence). */
inline std::uint64_t
lagFlowId(std::uint32_t channel_id, std::uint64_t seq)
{
    return (static_cast<std::uint64_t>(channel_id) << 32) |
           (seq & 0xffffffffu);
}

/** The channel kinds evaluated in Table 2 and Figures 3-4. */
enum class ChannelKind {
    PosixMq,      //!< POSIX message queue (-MQ)
    Pipe,         //!< named pipe
    Socket,       //!< Unix datagram socket pair
    SharedMemory, //!< raw shared memory (no append-only guarantee)
    Fpga,         //!< AppendWrite-FPGA device model (-FPGA)
    UarchModel,   //!< AppendWrite-µarch software model (-MODEL)
    CrossProcess, //!< shared-memory ring usable across fork()
};

/** Name used for a channel kind in harness output. */
const char *channelKindName(ChannelKind kind);

/**
 * Construct a channel of the given kind with the requested capacity
 * (messages). Falls back with an error Status-bearing nullptr-free
 * contract: construction failures abort via panic() since they indicate
 * a misconfigured host (e.g. mq_open refused).
 */
std::unique_ptr<Channel> makeChannel(ChannelKind kind,
                                     std::size_t capacity = 1 << 16);

} // namespace hq

#endif // HQ_IPC_CHANNEL_H
