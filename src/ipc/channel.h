/**
 * @file
 * Abstract IPC channel between a monitored program and the verifier.
 *
 * Concrete channels correspond to the rows of the paper's Table 2:
 * POSIX message queues, named pipes, sockets, raw shared memory,
 * AppendWrite-FPGA, and AppendWrite-µarch (software model). Each channel
 * declares its traits (append-only? asynchronous validation? primary
 * cost) so the Table 2 harness can print the comparison.
 */

#ifndef HQ_IPC_CHANNEL_H
#define HQ_IPC_CHANNEL_H

#include <memory>
#include <string>

#include "common/status.h"
#include "ipc/message.h"

namespace hq {

/** Static properties of a channel kind (columns of Table 2). */
struct ChannelTraits
{
    std::string name;
    bool appendOnly = false;       //!< writers cannot alter sent messages
    bool asyncValidation = false;  //!< send does not block on the reader
    std::string primaryCost;       //!< e.g. "System Call", "Mem. Write"
};

/**
 * Bidirectional endpoint pair abstraction: the monitored program calls
 * send(); the verifier calls tryRecv(). Implementations are safe for one
 * concurrent sender thread and one concurrent receiver thread.
 */
class Channel
{
  public:
    virtual ~Channel() = default;

    /** Transmit one message; may block when the transport is full. */
    virtual Status send(const Message &message) = 0;

    /**
     * Receive the next message if one is available.
     * @return true and fills out when a message was dequeued.
     */
    virtual bool tryRecv(Message &out) = 0;

    /**
     * Receive up to max_count messages into out[0..), preserving send
     * order, so one virtual call amortizes over a whole batch. The
     * base-class default pops a single message; the ring-backed
     * channels (shared memory, cross-process, FPGA host buffer, µarch
     * AMR) override it with a true bulk dequeue.
     * @return number of messages dequeued (0 when none available).
     */
    virtual std::size_t
    tryRecvBatch(Message *out, std::size_t max_count)
    {
        return max_count != 0 && tryRecv(out[0]) ? 1 : 0;
    }

    /** Approximate number of in-flight (sent but unreceived) messages. */
    virtual std::size_t pending() const = 0;

    /** Static channel properties. */
    virtual const ChannelTraits &traits() const = 0;
};

/** The channel kinds evaluated in Table 2 and Figures 3-4. */
enum class ChannelKind {
    PosixMq,      //!< POSIX message queue (-MQ)
    Pipe,         //!< named pipe
    Socket,       //!< Unix datagram socket pair
    SharedMemory, //!< raw shared memory (no append-only guarantee)
    Fpga,         //!< AppendWrite-FPGA device model (-FPGA)
    UarchModel,   //!< AppendWrite-µarch software model (-MODEL)
    CrossProcess, //!< shared-memory ring usable across fork()
};

/** Name used for a channel kind in harness output. */
const char *channelKindName(ChannelKind kind);

/**
 * Construct a channel of the given kind with the requested capacity
 * (messages). Falls back with an error Status-bearing nullptr-free
 * contract: construction failures abort via panic() since they indicate
 * a misconfigured host (e.g. mq_open refused).
 */
std::unique_ptr<Channel> makeChannel(ChannelKind kind,
                                     std::size_t capacity = 1 << 16);

} // namespace hq

#endif // HQ_IPC_CHANNEL_H
