#include "ipc/channel.h"

#include "common/log.h"
#include "fpga/fpga_channel.h"
#include "ipc/posix_channels.h"
#include "ipc/shm_channel.h"
#include "ipc/xproc_ring.h"
#include "uarch/uarch_model_channel.h"

namespace hq {

const char *
channelKindName(ChannelKind kind)
{
    switch (kind) {
      case ChannelKind::PosixMq: return "POSIX Message Queue";
      case ChannelKind::Pipe: return "Named Pipe";
      case ChannelKind::Socket: return "Socket";
      case ChannelKind::SharedMemory: return "Shared Memory";
      case ChannelKind::Fpga: return "AppendWrite-FPGA";
      case ChannelKind::UarchModel: return "AppendWrite-uarch (MODEL)";
      case ChannelKind::CrossProcess: return "Cross-process shared ring";
    }
    return "?";
}

std::unique_ptr<Channel>
makeChannel(ChannelKind kind, std::size_t capacity)
{
    switch (kind) {
      case ChannelKind::PosixMq:
        return std::make_unique<MqChannel>(capacity);
      case ChannelKind::Pipe:
        return std::make_unique<PipeChannel>();
      case ChannelKind::Socket:
        return std::make_unique<SocketChannel>();
      case ChannelKind::SharedMemory:
        return std::make_unique<ShmChannel>(capacity);
      case ChannelKind::Fpga: {
        FpgaConfig config;
        config.host_buffer_messages = capacity;
        return std::make_unique<FpgaChannel>(config);
      }
      case ChannelKind::UarchModel:
        return std::make_unique<UarchModelChannel>(capacity);
      case ChannelKind::CrossProcess:
        return std::make_unique<XprocChannel>(capacity);
    }
    panic("unknown channel kind");
}

} // namespace hq
