#include "ipc/xproc_ring.h"

#include <sys/mman.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "common/log.h"
#include "telemetry/telemetry.h"

namespace hq {

namespace {

std::size_t
roundUpPow2(std::size_t value)
{
    std::size_t pow2 = 1;
    while (pow2 < value)
        pow2 <<= 1;
    return pow2;
}

telemetry::Gauge &
xprocOccupancyGauge()
{
    static telemetry::Gauge &g =
        telemetry::Registry::instance().gauge("ipc.xproc_occupancy");
    return g;
}

telemetry::Counter &
xprocFullWaitsCounter()
{
    static telemetry::Counter &c =
        telemetry::Registry::instance().counter("ipc.xproc_full_waits");
    return c;
}

} // namespace

XprocChannel::XprocChannel(std::size_t min_capacity)
    : _traits{"Cross-process shared ring", /*appendOnly=*/true,
              /*asyncValidation=*/true, "Mem. Write"}
{
    const std::size_t capacity = roundUpPow2(min_capacity ? min_capacity
                                                          : 1);
    _map_bytes = sizeof(XprocRingRegion) + capacity * sizeof(Message);
    void *mapping = ::mmap(nullptr, _map_bytes, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mapping == MAP_FAILED) {
        logWarn("xproc mmap failed: ", std::strerror(errno));
        return;
    }
    _region = new (mapping) XprocRingRegion;
    _region->tail.store(0, std::memory_order_relaxed);
    _region->head.store(0, std::memory_order_relaxed);
    _region->capacity = capacity;
}

XprocChannel::~XprocChannel()
{
    if (_region)
        ::munmap(_region, _map_bytes);
}

Status
XprocChannel::send(const Message &message)
{
    if (!_region)
        return Status::error(StatusCode::Unavailable, "no mapping");
    const std::uint64_t mask = _region->capacity - 1;
    bool counted_full = false;
    for (;;) {
        const std::uint64_t tail =
            _region->tail.load(std::memory_order_relaxed);
        const std::uint64_t head =
            _region->head.load(std::memory_order_acquire);
        if (tail - head <= mask) {
            _region->slots[tail & mask] = message;
            _region->tail.store(tail + 1, std::memory_order_release);
            if (telemetry::enabled())
                xprocOccupancyGauge().set(tail + 1 - head);
            return Status::ok();
        }
        // Full: wait for the verifier process to drain. (Count each
        // send that stalled once, not every polling iteration.)
        if (!counted_full && telemetry::enabled()) {
            xprocFullWaitsCounter().inc();
            counted_full = true;
        }
        std::this_thread::yield();
    }
}

bool
XprocChannel::tryRecv(Message &out)
{
    if (!_region)
        return false;
    const std::uint64_t mask = _region->capacity - 1;
    const std::uint64_t head =
        _region->head.load(std::memory_order_relaxed);
    const std::uint64_t tail =
        _region->tail.load(std::memory_order_acquire);
    if (head == tail)
        return false;
    out = _region->slots[head & mask];
    _region->head.store(head + 1, std::memory_order_release);
    return true;
}

std::size_t
XprocChannel::pending() const
{
    if (!_region)
        return 0;
    return static_cast<std::size_t>(
        _region->tail.load(std::memory_order_acquire) -
        _region->head.load(std::memory_order_acquire));
}

} // namespace hq
