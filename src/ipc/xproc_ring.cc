#include "ipc/xproc_ring.h"

#include <sys/mman.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "common/bits.h"
#include "common/log.h"
#include "faultinject/fault.h"
#include "telemetry/telemetry.h"

namespace hq {

namespace {

HQ_TELEMETRY_HANDLE(xprocOccupancyGauge, Gauge, "ipc.xproc_occupancy")
HQ_TELEMETRY_HANDLE(xprocFullWaitsCounter, Counter, "ipc.xproc_full_waits")

} // namespace

XprocChannel::XprocChannel(std::size_t min_capacity)
    : _traits{"Cross-process shared ring", /*appendOnly=*/true,
              /*asyncValidation=*/true, "Mem. Write"}
{
    const std::size_t capacity = roundUpPow2(min_capacity ? min_capacity
                                                          : 1);
    // The lag sidecar shares the mapping: the child process stamps
    // enqueue times into it and the parent's verifier reads them, so it
    // must live behind the same fork-shared pages as the message ring.
    // Its region starts 64-byte aligned after the message slots.
    const std::size_t ring_bytes =
        sizeof(XprocRingRegion) + capacity * sizeof(Message);
    const std::size_t sidecar_offset = (ring_bytes + 63) & ~std::size_t{63};
    _map_bytes =
        sidecar_offset + telemetry::LagSidecar::regionBytes(capacity);
    void *mapping = ::mmap(nullptr, _map_bytes, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mapping == MAP_FAILED) {
        logWarn("xproc mmap failed: ", std::strerror(errno));
        return;
    }
    _region = new (mapping) XprocRingRegion;
    _region->tail.store(0, std::memory_order_relaxed);
    _region->head.store(0, std::memory_order_relaxed);
    _region->capacity = capacity;
    installLagSidecar(std::make_unique<telemetry::LagSidecar>(
        static_cast<unsigned char *>(mapping) + sidecar_offset, capacity,
        /*initialize=*/true));
}

XprocChannel::~XprocChannel()
{
    if (_region)
        ::munmap(_region, _map_bytes);
}

Status
XprocChannel::sendImpl(const Message &message)
{
    namespace fi = faultinject;
    if (!_region)
        return Status::error(StatusCode::Unavailable, "no mapping");

    Message payload = message;
    if (fi::armed()) {
        if (fi::fire(fi::Site::RingDrop))
            return Status::ok(); // "sent", but the slot is never written
        if (fi::fire(fi::Site::RingCorrupt))
            fi::corrupt(payload);
    }

    const std::uint64_t mask = _region->capacity - 1;
    bool counted_full = false;
    bool deadline_set = false;
    std::chrono::steady_clock::time_point deadline;
    for (;;) {
        // An injected stall makes this iteration see a full ring even
        // when there is room, exercising the back-pressure path.
        const bool stalled = fi::fire(fi::Site::RingStall);
        const std::uint64_t tail =
            _region->tail.load(std::memory_order_relaxed);
        if (!stalled) {
            if (tail - _cached_head > mask) {
                // Apparently full: refresh the cached consumer cursor
                // from the shared region (one cross-process load).
                _cached_head =
                    _region->head.load(std::memory_order_acquire);
            }
            if (tail - _cached_head <= mask) {
                _region->slots[tail & mask] = payload;
                std::uint64_t advance = 1;
                if (fi::armed() && tail + 1 - _cached_head <= mask &&
                    fi::fire(fi::Site::RingDup)) {
                    _region->slots[(tail + 1) & mask] = payload;
                    advance = 2;
                }
                _region->tail.store(tail + advance,
                                    std::memory_order_release);
                if (telemetry::enabled())
                    xprocOccupancyGauge().set(tail + advance -
                                              _cached_head);
                return Status::ok();
            }
        }
        // Full: wait for the verifier process to drain. (Count each
        // send that stalled once, not every polling iteration.)
        if (!counted_full && telemetry::enabled()) {
            xprocFullWaitsCounter().inc();
            counted_full = true;
        }
        if (_send_timeout.count() > 0) {
            const auto now = std::chrono::steady_clock::now();
            if (!deadline_set) {
                deadline = now + _send_timeout;
                deadline_set = true;
            } else if (now >= deadline) {
                return Status::error(
                    StatusCode::Unavailable,
                    "shared ring full: send timed out (fail closed)");
            }
        }
        std::this_thread::yield();
    }
}

Status
XprocChannel::sendSlotsImpl(const Message *slots, std::size_t count)
{
    namespace fi = faultinject;
    if (!_region)
        return Status::error(StatusCode::Unavailable, "no mapping");
    if (count == 0)
        return Status::ok();
    if (count > _region->capacity)
        return Status::error(StatusCode::InvalidArgument,
                             "frame larger than the shared ring");

    const std::uint64_t capacity = _region->capacity;
    const std::uint64_t mask = capacity - 1;
    bool counted_full = false;
    bool deadline_set = false;
    std::chrono::steady_clock::time_point deadline;
    for (;;) {
        // All-or-nothing: the frame is copied in full, then published
        // with one release-store of the producer cursor, so the
        // verifier process never observes a torn frame. An injected
        // stall turns into back-pressure, exactly as on the v1 path.
        const bool stalled = fi::fire(fi::Site::RingStall);
        const std::uint64_t tail =
            _region->tail.load(std::memory_order_relaxed);
        if (!stalled) {
            if (tail + count - _cached_head > capacity) {
                _cached_head =
                    _region->head.load(std::memory_order_acquire);
            }
            if (tail + count - _cached_head <= capacity) {
                const std::size_t start =
                    static_cast<std::size_t>(tail & mask);
                const std::size_t first = std::min(
                    count, static_cast<std::size_t>(capacity) - start);
                std::memcpy(_region->slots + start, slots,
                            first * sizeof(Message));
                if (count > first)
                    std::memcpy(_region->slots, slots + first,
                                (count - first) * sizeof(Message));
                _region->tail.store(tail + count,
                                    std::memory_order_release);
                if (telemetry::enabled())
                    xprocOccupancyGauge().set(tail + count - _cached_head);
                return Status::ok();
            }
        }
        if (!counted_full && telemetry::enabled()) {
            xprocFullWaitsCounter().inc();
            counted_full = true;
        }
        if (_send_timeout.count() > 0) {
            const auto now = std::chrono::steady_clock::now();
            if (!deadline_set) {
                deadline = now + _send_timeout;
                deadline_set = true;
            } else if (now >= deadline) {
                return Status::error(
                    StatusCode::Unavailable,
                    "shared ring full: send timed out (fail closed)");
            }
        }
        std::this_thread::yield();
    }
}

bool
XprocChannel::tryRecv(Message &out)
{
    return tryRecvBatch(&out, 1) == 1;
}

bool
XprocChannel::tryPeekSpan(RecvSpan &out)
{
    out.seg[0] = {};
    out.seg[1] = {};
    if (!_region)
        return false;
    const std::uint64_t capacity = _region->capacity;
    const std::uint64_t mask = capacity - 1;
    const std::uint64_t head =
        _region->head.load(std::memory_order_relaxed);
    _cached_tail = _region->tail.load(std::memory_order_acquire);
    const std::uint64_t available = _cached_tail - head;
    if (available == 0)
        return false;

    const std::size_t n = static_cast<std::size_t>(available);
    const std::size_t start = static_cast<std::size_t>(head & mask);
    const std::size_t first =
        std::min(n, static_cast<std::size_t>(capacity) - start);
    out.seg[0] = {_region->slots + start, first};
    if (n > first)
        out.seg[1] = {_region->slots, n - first};
    return true;
}

void
XprocChannel::consumeSlots(std::size_t count)
{
    if (!_region)
        return;
    const std::uint64_t head =
        _region->head.load(std::memory_order_relaxed);
    _region->head.store(head + count, std::memory_order_release);
}

std::size_t
XprocChannel::tryRecvBatch(Message *out, std::size_t max_count)
{
    if (!_region || max_count == 0)
        return 0;
    const std::uint64_t capacity = _region->capacity;
    const std::uint64_t mask = capacity - 1;
    const std::uint64_t head =
        _region->head.load(std::memory_order_relaxed);
    std::uint64_t available = _cached_tail - head;
    if (available < max_count) {
        _cached_tail = _region->tail.load(std::memory_order_acquire);
        available = _cached_tail - head;
        if (available == 0)
            return 0;
    }
    const std::size_t n = max_count < available
                              ? max_count
                              : static_cast<std::size_t>(available);

    const std::size_t start = static_cast<std::size_t>(head & mask);
    const std::size_t first =
        std::min(n, static_cast<std::size_t>(capacity) - start);
    std::memcpy(out, _region->slots + start, first * sizeof(Message));
    if (n > first)
        std::memcpy(out + first, _region->slots,
                    (n - first) * sizeof(Message));

    _region->head.store(head + n, std::memory_order_release);
    return n;
}

std::size_t
XprocChannel::pending() const
{
    if (!_region)
        return 0;
    return static_cast<std::size_t>(
        _region->tail.load(std::memory_order_acquire) -
        _region->head.load(std::memory_order_acquire));
}

} // namespace hq
