#include "verifier/shard.h"

namespace hq {

ShardRegistry::ShardRegistry(std::size_t num_shards)
    : _num_shards(num_shards == 0 ? 1 : num_shards),
      _per_shard(_num_shards, 0)
{
}

std::size_t
ShardRegistry::assign(Pid pid)
{
    const std::size_t shard = shardOf(pid);
    std::lock_guard<std::mutex> guard(_mutex);
    if (!_live.contains(pid)) {
        _live.insertOrAssign(pid, static_cast<std::uint32_t>(shard));
        ++_per_shard[shard];
    }
    return shard;
}

bool
ShardRegistry::release(Pid pid)
{
    std::lock_guard<std::mutex> guard(_mutex);
    if (!_live.erase(pid))
        return false;
    --_per_shard[shardOf(pid)];
    return true;
}

bool
ShardRegistry::isLive(Pid pid) const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _live.contains(pid);
}

std::size_t
ShardRegistry::liveOn(std::size_t shard) const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return shard < _num_shards ? _per_shard[shard] : 0;
}

std::size_t
ShardRegistry::liveCount() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _live.size();
}

std::vector<Pid>
ShardRegistry::livePids() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    std::vector<Pid> pids;
    pids.reserve(_live.size());
    _live.forEach([&pids](const Pid &pid, const std::uint32_t &) {
        pids.push_back(pid);
    });
    return pids;
}

} // namespace hq
