#include "verifier/verifier.h"

#include "common/log.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace hq {

namespace {

// Metric handles are resolved once and cached: registry lookups stay
// off the per-message path.
telemetry::Histogram &
msgLatencyHist()
{
    static telemetry::Histogram &h =
        telemetry::Registry::instance().histogram(
            "verifier.msg_latency_ns");
    return h;
}

telemetry::Counter &
messagesCounter()
{
    static telemetry::Counter &c =
        telemetry::Registry::instance().counter("verifier.messages");
    return c;
}

telemetry::Counter &
violationsCounter()
{
    static telemetry::Counter &c =
        telemetry::Registry::instance().counter("verifier.violations");
    return c;
}

telemetry::Counter &
syscallAcksCounter()
{
    static telemetry::Counter &c =
        telemetry::Registry::instance().counter("verifier.syscall_acks");
    return c;
}

telemetry::Gauge &
policyEntriesGauge()
{
    static telemetry::Gauge &g =
        telemetry::Registry::instance().gauge("verifier.policy_entries");
    return g;
}

} // namespace

Verifier::Verifier(KernelModule &kernel, std::shared_ptr<Policy> policy)
    : Verifier(kernel, std::move(policy), Config{})
{
}

Verifier::Verifier(KernelModule &kernel, std::shared_ptr<Policy> policy,
                   Config config)
    : _kernel(kernel), _policy(std::move(policy)), _config(config)
{
    _kernel.setListener(this);
}

Verifier::~Verifier()
{
    stop();
    _kernel.setListener(nullptr);
}

void
Verifier::attachChannel(Channel *channel, Pid owner, bool device_stamped)
{
    std::lock_guard<std::mutex> guard(_mutex);
    ChannelEntry entry;
    entry.channel = channel;
    entry.owner = owner;
    entry.device_stamped = device_stamped;
    _channels.push_back(entry);
}

void
Verifier::start()
{
    bool expected = false;
    if (!_running.compare_exchange_strong(expected, true))
        return;
    _thread = std::thread([this] { eventLoop(); });
}

void
Verifier::stop()
{
    if (!_running.exchange(false))
        return;
    if (_thread.joinable())
        _thread.join();
    // Drain anything that arrived during shutdown.
    poll();
    if (_config.kill_on_verifier_exit) {
        // Without a verifier no violations can be detected, so
        // monitored programs must not keep running (§3.4).
        std::lock_guard<std::mutex> guard(_mutex);
        for (auto &[pid, process] : _processes) {
            if (!process.exited)
                _kernel.killProcess(pid, "verifier terminated");
        }
    }
}

void
Verifier::eventLoop()
{
    while (_running.load(std::memory_order_relaxed)) {
        if (poll() == 0)
            std::this_thread::yield();
    }
}

std::size_t
Verifier::poll()
{
    std::lock_guard<std::mutex> guard(_mutex);
    std::size_t processed = 0;
    for (auto &entry : _channels) {
        Message message;
        while (entry.channel->tryRecv(message)) {
            handleMessage(entry, message);
            ++processed;
        }
    }
    _total_messages.fetch_add(processed, std::memory_order_relaxed);
    if (processed > 0 && telemetry::enabled())
        telemetry::traceCounter("verifier.batch_msgs", processed);
    return processed;
}

void
Verifier::recordViolation(Pid pid, ProcessEntry &process,
                          const std::string &reason)
{
    process.violated = true;
    ++process.stats.violations;
    if (telemetry::enabled()) {
        violationsCounter().inc();
        telemetry::traceInstant("verifier.violation");
    }
    logDebug("verifier: violation for pid ", pid, ": ", reason);
    if (_config.kill_on_violation)
        _kernel.killProcess(pid, reason);
}

void
Verifier::handleMessage(ChannelEntry &entry, const Message &message)
{
    // Per-policy-check latency (§5.4): one histogram sample per message.
    telemetry::ScopedTimer latency_timer(msgLatencyHist());

    // Authenticity: trust the hardware-stamped PID when present,
    // otherwise the kernel-arbitrated channel registration.
    const Pid pid = entry.device_stamped ? message.pid : entry.owner;

    auto it = _processes.find(pid);
    if (it == _processes.end()) {
        logDebug("verifier: message for unknown pid ", pid, ": ",
                 message.toString());
        return;
    }
    ProcessEntry &process = it->second;
    if (process.exited || !process.context)
        return; // stale message from an already-exited process
    ++process.stats.messages;

    // Message-integrity: the FPGA path has no back-pressure, so the
    // verifier requires consecutive sequence counters; a gap means
    // messages were dropped and the program must be terminated.
    if (_config.check_sequence && entry.device_stamped) {
        if (entry.seq_started &&
            message.seq != entry.expected_seq) {
            recordViolation(pid, process,
                            "message sequence gap: integrity violated");
        }
        entry.seq_started = true;
        entry.expected_seq = message.seq + 1;
    }

    const Status status = process.context->handleMessage(message);
    if (!status.isOk())
        recordViolation(pid, process, status.message());

    process.stats.max_entries =
        std::max(process.stats.max_entries, process.context->entryCount());
    if (telemetry::enabled()) {
        messagesCounter().inc();
        policyEntriesGauge().set(process.stats.max_entries);
    }

    if (message.op == Opcode::Syscall) {
        // All earlier messages on this (in-order) channel have been
        // processed; notify the kernel to resume the system call,
        // unless the process was violated and kill-on-violation is set.
        if (!(process.violated && _config.kill_on_violation)) {
            ++process.stats.syscall_acks;
            if (telemetry::enabled())
                syscallAcksCounter().inc();
            _kernel.syscallResume(pid);
        }
    }
}

void
Verifier::onProcessEnabled(Pid pid)
{
    std::lock_guard<std::mutex> guard(_mutex);
    ProcessEntry entry;
    entry.context = _policy->makeContext(pid);
    _processes[pid] = std::move(entry);
}

void
Verifier::onProcessForked(Pid parent, Pid child)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto it = _processes.find(parent);
    if (it == _processes.end()) {
        logWarn("verifier: fork from unknown parent ", parent);
        return;
    }
    ProcessEntry entry;
    entry.context = it->second.context->cloneForChild(child);
    _processes[child] = std::move(entry);
}

void
Verifier::onProcessExited(Pid pid)
{
    // Drain in-flight messages before tearing the process down: the
    // exit notification arrives over the privileged channel and must
    // not outrun the message stream.
    poll();
    std::lock_guard<std::mutex> guard(_mutex);
    auto it = _processes.find(pid);
    if (it == _processes.end())
        return;
    // The policy context is kept for post-mortem inspection by the
    // harnesses; the exited flag stops further message processing.
    it->second.exited = true;
}

bool
Verifier::hasViolation(Pid pid) const
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto it = _processes.find(pid);
    return it != _processes.end() && it->second.violated;
}

VerifierProcessStats
Verifier::statsFor(Pid pid) const
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto it = _processes.find(pid);
    return it == _processes.end() ? VerifierProcessStats{}
                                  : it->second.stats;
}

PolicyContext *
Verifier::contextFor(Pid pid)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto it = _processes.find(pid);
    return it == _processes.end() ? nullptr : it->second.context.get();
}

} // namespace hq
