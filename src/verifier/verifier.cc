#include "verifier/verifier.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/log.h"
#include "faultinject/fault.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace hq {

namespace {

// Metric handles are resolved once and cached: registry lookups stay
// off the per-message path. These are the global roll-up; each shard
// additionally records into its own `verifier.shard<i>.*` counters,
// resolved once at construction (Verifier::Verifier).
HQ_TELEMETRY_HANDLE(msgLatencyHist, Histogram, "verifier.msg_latency_ns")
HQ_TELEMETRY_HANDLE(messagesCounter, Counter, "verifier.messages")
HQ_TELEMETRY_HANDLE(violationsCounter, Counter, "verifier.violations")
HQ_TELEMETRY_HANDLE(syscallAcksCounter, Counter, "verifier.syscall_acks")
HQ_TELEMETRY_HANDLE(policyEntriesGauge, Gauge, "verifier.policy_entries")
HQ_TELEMETRY_HANDLE(idleSleepsCounter, Counter, "verifier.idle_sleeps")
HQ_TELEMETRY_HANDLE(lagHist, Histogram, "verifier.lag_ns")
HQ_TELEMETRY_HANDLE(lagSloBreaches, Counter, "verifier.lag_slo_breaches")
HQ_TELEMETRY_HANDLE(lagHighWater, Gauge, "verifier.lag_high_water_ns")
// Async-ack pipeline: total acks delivered through coalesced
// syscallResumeBatch flushes, queue-to-flush latency per ack message
// (breaches feed the same lag SLO counter as verification lag), and
// proactive pre-arm pushes sent.
HQ_TELEMETRY_HANDLE(acksBatchedCounter, Counter, "verifier.acks_batched")
HQ_TELEMETRY_HANDLE(ackLatencyHist, Histogram, "verifier.ack_latency_ns")
HQ_TELEMETRY_HANDLE(preArmsCounter, Counter, "verifier.proactive_prearms")

std::size_t
resolveNumShards(std::size_t requested)
{
    if (requested == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        requested = hw == 0 ? 1 : hw;
    }
    return std::clamp<std::size_t>(requested, 1, Verifier::kMaxShards);
}

} // namespace

Verifier::Verifier(KernelModule &kernel, std::shared_ptr<Policy> policy)
    : Verifier(kernel, std::move(policy), Config{})
{
}

Verifier::Verifier(KernelModule &kernel, std::shared_ptr<Policy> policy,
                   Config config)
    : _kernel(kernel), _policy(std::move(policy)), _config(config),
      _registry(resolveNumShards(config.num_shards))
{
    _config.num_shards = _registry.numShards();
    // Clamp at config time: poll's stack buffer is sized by
    // kMaxPollBatch, so an over-limit value must never reach the drain
    // loop; 0 would drain nothing forever.
    _config.poll_batch =
        std::clamp<std::size_t>(_config.poll_batch, 1, kMaxPollBatch);

    _shards.reserve(_config.num_shards);
    auto &registry = telemetry::Registry::instance();
    for (std::size_t i = 0; i < _config.num_shards; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->index = i;
        const std::string prefix =
            "verifier.shard" + std::to_string(i) + ".";
        shard->messages_metric = &registry.counter(prefix + "messages");
        shard->violations_metric =
            &registry.counter(prefix + "violations");
        shard->syscall_acks_metric =
            &registry.counter(prefix + "syscall_acks");
        shard->idle_sleeps_metric =
            &registry.counter(prefix + "idle_sleeps");
        _shards.push_back(std::move(shard));
    }

    if (_config.health_enabled) {
        _health = std::make_unique<telemetry::HealthMonitor>(
            _config.num_shards, _config.health,
            [this](std::size_t i) {
                telemetry::ShardHealthSample sample;
                Shard &shard = *_shards[i];
                sample.heartbeat =
                    shard.heartbeat.load(std::memory_order_relaxed);
                sample.queue_depth = shardQueueDepth(i);
                const std::uint64_t ack =
                    shard.last_ack_ns.load(std::memory_order_relaxed);
                if (ack != 0) {
                    const std::uint64_t now = telemetry::monotonicRawNs();
                    sample.ack_age_ns = now > ack ? now - ack : 0;
                }
                return sample;
            });
    }

    _kernel.setListener(this);
}

Verifier::~Verifier()
{
    stop();
    // Detach only if we are still the registered listener: a
    // replacement verifier may already have re-attached itself
    // (crash-recovery path), and its registration must survive.
    _kernel.clearListener(this);
}

void
Verifier::attachChannel(Channel *channel, Pid owner, bool device_stamped)
{
    auto entry = std::make_unique<ChannelEntry>();
    entry->channel = channel;
    entry->owner = owner;
    entry->device_stamped = device_stamped;
    if (device_stamped)
        _device_channels.fetch_add(1, std::memory_order_relaxed);
    Shard &shard = *_shards[_registry.shardOf(owner)];
    std::lock_guard<std::mutex> guard(shard.state_mutex);
    shard.channels.push_back(std::move(entry));
}

void
Verifier::detachChannel(Channel *channel)
{
    for (auto &shard_ptr : _shards) {
        Shard &shard = *shard_ptr;
        // drain_mutex first: an in-flight pollShard holds it for the
        // whole round and its drain_list snapshot carries raw pointers
        // into shard.channels, so the entry must not be freed (nor the
        // vector resized) under a running drain. Same order as
        // pollShard (drain, then state), so no lock-order inversion.
        std::lock_guard<std::mutex> drain_guard(shard.drain_mutex);
        std::lock_guard<std::mutex> state_guard(shard.state_mutex);
        Pid owner = 0;
        bool found = false;
        for (auto it = shard.channels.begin(); it != shard.channels.end();
             ++it) {
            if ((*it)->channel == channel) {
                owner = (*it)->owner;
                found = true;
                if ((*it)->device_stamped) {
                    _device_channels.fetch_sub(1,
                                               std::memory_order_relaxed);
                }
                shard.channels.erase(it);
                break;
            }
        }
        if (!found)
            continue;
        // The snapshot may still point at the freed entry; clear it so
        // the next round rebuilds from the live list.
        shard.drain_list.clear();
        // Churn-edge reclamation: onProcessExited keeps the exited
        // process's policy-table slice for post-mortem inspection, but
        // once its *last* channel detaches nothing can reference the
        // slice again — a stale entry per churned pid would grow the
        // shard's process map without bound under attach/detach churn.
        bool owner_has_channels = false;
        for (const auto &remaining : shard.channels) {
            if (remaining->owner == owner) {
                owner_has_channels = true;
                break;
            }
        }
        if (!owner_has_channels && !_registry.isLive(owner)) {
            auto it = shard.processes.find(owner);
            if (it != shard.processes.end() && it->second.exited)
                shard.processes.erase(it);
        }
        return;
    }
}

std::size_t
Verifier::policySliceCount() const
{
    std::size_t total = 0;
    for (const auto &shard : _shards) {
        std::lock_guard<std::mutex> guard(shard->state_mutex);
        total += shard->processes.size();
    }
    return total;
}

std::size_t
Verifier::channelCount() const
{
    std::size_t total = 0;
    for (const auto &shard : _shards) {
        std::lock_guard<std::mutex> guard(shard->state_mutex);
        total += shard->channels.size();
    }
    return total;
}

void
Verifier::start()
{
    bool expected = false;
    if (!_running.compare_exchange_strong(expected, true))
        return;
    for (std::size_t i = 0; i < _shards.size(); ++i)
        _shards[i]->thread = std::thread([this, i] { shardLoop(i); });
    if (_health)
        _health->start();
}

void
Verifier::stop()
{
    // The watchdog goes first: it samples the shards' channels through
    // the sampler callback, so it must be quiescent before the exit
    // drain (and any teardown the caller does afterwards).
    if (_health)
        _health->stop();
    const bool was_running = _running.exchange(false);
    const bool was_crashed = _crashed.load(std::memory_order_relaxed);
    // Always reap the worker threads: an injected crash clears _running
    // from inside a shard loop, so the early-return shortcut of a plain
    // "was it running" check would leak joinable threads (and
    // std::terminate in the destructor).
    for (auto &shard : _shards) {
        if (shard->thread.joinable())
            shard->thread.join();
    }
    if (!was_running && !was_crashed)
        return;
    // Drain anything that arrived during shutdown — unless the
    // verifier crashed, in which case it drains nothing: its death is
    // precisely what the kernel epoch timeout must catch.
    if (!was_crashed)
        poll();
    if (_config.kill_on_verifier_exit) {
        // Without a verifier no violations can be detected, so
        // monitored programs must not keep running (§3.4). Sweep every
        // shard; collect under the shard lock, kill outside it.
        std::vector<Pid> doomed;
        for (auto &shard : _shards) {
            std::lock_guard<std::mutex> guard(shard->state_mutex);
            for (auto &[pid, process] : shard->processes) {
                if (!process.exited)
                    doomed.push_back(pid);
            }
        }
        for (Pid pid : doomed)
            _kernel.killProcess(pid, "verifier terminated");
    }
}

void
Verifier::shardLoop(std::size_t shard_index)
{
    // Bounded spin-then-sleep backoff: a busy shard never sleeps, an
    // idle one yields for a few rounds (keeping fig3-style message
    // latency low when traffic resumes immediately) and then naps so an
    // idle verifier core stops burning cross-core cache traffic.
    constexpr int kSpinsBeforeSleep = 64;
    int idle_rounds = 0;
    bool wedged = false;
    Shard &shard = *_shards[shard_index];
    std::uint64_t kicks_seen =
        shard.gate_kicks.load(std::memory_order_relaxed);
    while (_running.load(std::memory_order_relaxed)) {
        // Injected stall: the worker stays joinable (stop() still
        // works) but never drains again and never bumps its heartbeat,
        // which is exactly the failure the health watchdog must catch.
        // Sticky by design — a wedged loop does not recover.
        if (!wedged &&
            faultinject::fire(faultinject::Site::VerifierShardStall)) {
            wedged = true;
            logWarn("verifier: injected stall wedges shard ",
                    shard_index);
        }
        if (wedged) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            continue;
        }
        if (pollShard(shard_index) > 0) {
            idle_rounds = 0;
            continue;
        }
        if (++idle_rounds < kSpinsBeforeSleep) {
            std::this_thread::yield();
        } else {
            if (telemetry::enabled()) {
                idleSleepsCounter().inc();
                _shards[shard_index]->idle_sleeps_metric->inc();
            }
            // Kick-aware nap: a gate kick (one of this shard's pids
            // trapped into a syscall) ends it immediately, so the
            // drain that produces the ack/pre-arm starts while the
            // syscall spins or yields instead of a nap period later.
            std::unique_lock<std::mutex> lk(shard.wake_mutex);
            shard.wake_cv.wait_for(
                lk, std::chrono::microseconds(10), [&] {
                    return shard.gate_kicks.load(
                               std::memory_order_acquire) != kicks_seen ||
                           !_running.load(std::memory_order_relaxed);
                });
        }
        kicks_seen = shard.gate_kicks.load(std::memory_order_acquire);
    }
}

std::size_t
Verifier::poll()
{
    std::size_t processed = 0;
    for (std::size_t i = 0; i < _shards.size(); ++i) {
        processed += pollShard(i);
        if (_crashed.load(std::memory_order_relaxed))
            break;
    }
    return processed;
}

std::size_t
Verifier::pollShard(std::size_t shard_index)
{
    if (shard_index >= _shards.size())
        return 0;
    Shard &shard = *_shards[shard_index];
    // One consumer per shard at a time: the ring transports are SPSC,
    // and test threads / the exit-drain path may poll concurrently with
    // the shard's own worker.
    std::lock_guard<std::mutex> drain_guard(shard.drain_mutex);
    // Liveness signal for the health watchdog: one relaxed increment
    // per drain pass, whoever drives it (worker thread or poll()).
    shard.heartbeat.fetch_add(1, std::memory_order_relaxed);
    if (_crashed.load(std::memory_order_relaxed))
        return 0; // a dead verifier verifies nothing
    if (faultinject::fire(faultinject::Site::VerifierSlowPoll))
        std::this_thread::sleep_for(std::chrono::microseconds(500));

    Message batch[kMaxPollBatch];
    const std::size_t batch_max = _config.poll_batch; // ctor-clamped
    std::size_t processed = 0;

    // Round-robin over the shard's channels, draining at most one batch
    // per channel per round. The cap keeps one flooding channel from
    // starving the rest; the channel list is snapshotted per round so
    // attachChannel can run concurrently with a long drain.
    bool progress = true;
    while (progress) {
        progress = false;
        {
            std::lock_guard<std::mutex> state_guard(shard.state_mutex);
            shard.drain_list.clear();
            for (auto &entry : shard.channels)
                shard.drain_list.push_back(entry.get());
        }
        for (ChannelEntry *entry_ptr : shard.drain_list) {
            ChannelEntry &entry = *entry_ptr;
            const std::size_t n =
                drainChannel(shard, entry, batch, batch_max);
            if (n == 0)
                continue;
            progress = true;
            processed += n;
            if (_crashed.load(std::memory_order_relaxed))
                break;
            // Proactive push: this round drained the channel to empty
            // (a short batch means the drain hit the producer cursor),
            // so its owner is fully verified as of the drain point —
            // pre-arm the kernel gate at flush so the owner's next
            // syscall skips the poll-then-ack round trip. Checking the
            // drain count rather than pending() matters: a saturating
            // producer keeps pending() nonzero at inspection time even
            // though every observed message was validated, and the
            // credit means exactly that. Device-stamped channels carry
            // interleaved pids and never pre-arm.
            if (_config.proactive_acks && !entry.device_stamped &&
                (n < batch_max || entry.channel->pending() == 0))
                shard.pending_prearms.push_back(entry.owner);
        }
        // Coalesced resume: one syscallResumeBatch per round covers
        // every pid drained above, bounding added ack latency to the
        // round that produced the ack. A crashed verifier drops the
        // queue unsent (flushAcks checks).
        flushAcks(shard);
        if (_crashed.load(std::memory_order_relaxed))
            break;
    }
    if (processed > 0) {
        _total_messages.fetch_add(processed, std::memory_order_relaxed);
        if (telemetry::enabled())
            telemetry::traceCounter("verifier.batch_msgs", processed);
    }
    return processed;
}

std::size_t
Verifier::drainChannel(Shard &shard, ChannelEntry &entry, Message *scratch,
                       std::size_t batch_max)
{
    if (entry.channel->format() == WireFormat::V2)
        return drainFrames(shard, entry, scratch, batch_max);

    RecvSpan span;
    if (entry.channel->tryPeekSpan(span)) {
        // v1 zero-copy: validate the self-checking messages where they
        // sit in the ring (per-segment, so each batch is contiguous)
        // and release the slots only after they have been checked.
        std::size_t remaining = batch_max;
        std::size_t drained = 0;
        for (int s = 0; s < 2 && remaining != 0; ++s) {
            const std::size_t run =
                std::min(span.seg[s].count, remaining);
            if (run == 0)
                continue;
            processBatch(shard, entry, span.seg[s].data, run, false);
            drained += run;
            remaining -= run;
            if (_crashed.load(std::memory_order_relaxed))
                break;
        }
        entry.channel->consumeSlots(drained);
        return drained;
    }

    // Copying fallback: posix transports keep their buffers kernel-side.
    const std::size_t n = entry.channel->tryRecvBatch(scratch, batch_max);
    if (n != 0)
        processBatch(shard, entry, scratch, n, false);
    return n;
}

std::size_t
Verifier::drainFrames(Shard &shard, ChannelEntry &entry, Message *scratch,
                      std::size_t batch_max)
{
    const std::size_t cap = entry.channel->recvCapacity();
    // Decode budgets: the ring bound rejects headers whose footprint can
    // never fit (waiting for them would hang the drain); the record
    // bound is the hard scratch-buffer ceiling, not the per-round
    // fairness cap — fairness is enforced below at frame granularity.
    const frame::DecodeLimits limits{
        cap != 0 ? cap : frame::kMaxFrameSlots, kMaxPollBatch};
    std::size_t records = 0;
    while (true) {
        RecvSpan span;
        if (!entry.channel->tryPeekSpan(span))
            break;
        frame::FrameView view;
        const frame::DecodeStatus status =
            frame::decode(span, limits, view);
        if (status == frame::DecodeStatus::NeedMore)
            break; // producer mid-publish; the tail arrives shortly
        if (status == frame::DecodeStatus::BadHeader) {
            // The slot is not a valid frame header. Fail closed: record
            // the corruption, drop exactly one slot, resync on the
            // next. A garbage run yields one CorruptMsg per slot —
            // noisy, but never a silent accept.
            recordFrameCorruption(entry,
                                  "frame header rejected (v2 decode)");
            entry.channel->consumeSlots(1);
            continue;
        }
        if (status == frame::DecodeStatus::BadBody) {
            // Authentic header, corrupt records: skip the frame whole —
            // never partially applied — and advance the record cursor
            // by the header's count so lag matching stays aligned with
            // the sender's per-record stamping.
            recordFrameCorruption(entry,
                                  "frame body CRC mismatch (v2 decode)");
            entry.channel->consumeSlots(view.slots);
            entry.recv_index += view.count;
            continue;
        }
        // Ok. Enforce the fairness budget at whole-frame granularity;
        // the first frame is always taken so a frame larger than the
        // remaining budget cannot wedge the drain (kMaxRecords <=
        // kMaxPollBatch keeps the scratch buffer in bounds).
        if (records != 0 && records + view.count > batch_max)
            break;
        frame::unpackAll(span, view, scratch);
        processBatch(shard, entry, scratch, view.count, true);
        entry.channel->consumeSlots(view.slots);
        records += view.count;
        if (_crashed.load(std::memory_order_relaxed))
            break;
        if (records >= batch_max)
            break;
    }
    return records;
}

void
Verifier::processBatch(Shard &shard, ChannelEntry &entry,
                       const Message *batch, std::size_t n,
                       bool crc_trusted)
{
    // One telemetry scope per batch: a single clock-read pair and one
    // histogram lock record the amortized per-message latency n times
    // (so counts still mean "messages").
    const bool telemetry_on = telemetry::enabled();
    const std::uint64_t batch_start =
        telemetry_on ? telemetry::nowNs() : 0;
    telemetry::TraceScope check_scope("verifier.check_batch");

    // Match lag envelopes before the checks so per-message lag is
    // available to the event log on a violation.
    std::uint64_t lag_ns[kMaxPollBatch];
    if (telemetry_on)
        recordBatchLag(shard, entry, n, lag_ns);

    telemetry::flight::record(
        telemetry::flight::Subsystem::Verifier,
        telemetry::flight::Code::DrainBatch, entry.owner,
        static_cast<std::int32_t>(shard.index), n,
        entry.channel->channelId());

    {
        // The memo holds the pid's home-shard state lock for the
        // duration of the batch (released when it leaves scope, or
        // swapped when a device-stamped batch switches to a pid hashing
        // elsewhere).
        PidMemo memo;
        // Warm the policy tables once per batch. Software channels
        // carry a single pid, so the context is known up front;
        // device-stamped channels interleave pids and skip the hint.
        if (!entry.device_stamped) {
            ProcessEntry *process = lookupProcess(entry.owner, memo);
            if (process != nullptr && !process->exited &&
                process->context) {
                process->context->prefetchBatch(batch, n);
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            handleMessage(shard, entry, batch[i], memo,
                          telemetry_on ? lag_ns[i] : kNoLag,
                          crc_trusted);
            if (_crashed.load(std::memory_order_relaxed))
                break; // messages behind the crash are lost
        }
        entry.recv_index += n;

        if (telemetry_on) {
            const std::uint64_t elapsed =
                telemetry::nowNs() - batch_start;
            msgLatencyHist().record(elapsed / n, n);
            messagesCounter().add(n);
            shard.messages_metric->add(n);
            if (memo.entry != nullptr)
                policyEntriesGauge().set(memo.entry->stats.max_entries);
        }
    }
    shard.messages.fetch_add(n, std::memory_order_relaxed);
}

void
Verifier::recordFrameCorruption(ChannelEntry &entry, const char *reason)
{
    PidMemo memo;
    ProcessEntry *owner = lookupProcess(entry.owner, memo);
    if (owner == nullptr || owner->exited)
        return;
    recordViolation(memo.home_shard, entry.owner, *owner, reason,
                    Message{}, telemetry::EventType::CorruptMsg, kNoLag);
}

void
Verifier::recordBatchLag(Shard &shard, ChannelEntry &entry, std::size_t n,
                         std::uint64_t *lag_ns)
{
    telemetry::LagSidecar *sidecar = entry.channel->lagSidecar();
    // One clock read per batch: every message checked in this drain
    // shares the same "checked at" instant, which is what bounded
    // asynchronous validation promises anyway (the batch is validated
    // as a unit before any syscall ack).
    const std::uint64_t check_ns = telemetry::monotonicRawNs();
    const std::uint32_t channel_id = entry.channel->channelId();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t index = entry.recv_index + i;
        std::uint64_t enqueue_ns = 0;
        if (sidecar == nullptr ||
            !sidecar->consumeUpTo(index, enqueue_ns)) {
            lag_ns[i] = kNoLag;
            continue;
        }
        const std::uint64_t lag =
            check_ns > enqueue_ns ? check_ns - enqueue_ns : 0;
        lag_ns[i] = lag;
        lagHist().record(lag);
        if (entry.pid_lag == nullptr)
            entry.pid_lag = &telemetry::Registry::instance().histogram(
                "verifier.lag_ns.pid_" + std::to_string(entry.owner));
        entry.pid_lag->record(lag);
        lagHighWater().set(lag); // Gauge keeps the high-water mark
        if (_config.lag_slo_ns != 0 && lag > _config.lag_slo_ns) {
            lagSloBreaches().inc();
            telemetry::flight::record(
                telemetry::flight::Subsystem::Verifier,
                telemetry::flight::Code::SloBreach, entry.owner,
                static_cast<std::int32_t>(shard.index), lag,
                _config.lag_slo_ns);
            telemetry::flight::requestDump("slo breach");
        }
        // Close the Perfetto flow opened by Channel::send; "bp":"e"
        // binds the arrow head into the enclosing check_batch slice.
        telemetry::traceFlowEnd("lag", lagFlowId(channel_id, index));
    }
}

void
Verifier::recordViolation(std::size_t home_shard, Pid pid,
                          ProcessEntry &process,
                          const std::string &reason,
                          const Message &message,
                          telemetry::EventType event_type,
                          std::uint64_t lag_ns)
{
    process.violated = true;
    ++process.stats.violations;
    if (telemetry::enabled()) {
        violationsCounter().inc();
        _shards[home_shard]->violations_metric->inc();
        telemetry::traceInstant("verifier.violation");
    }
    if (telemetry::EventLog::instance().active()) {
        telemetry::EventRecord record;
        record.type = event_type;
        record.pid = pid;
        record.shard = static_cast<std::int32_t>(home_shard);
        // Policy-family attribution: a policy verdict carries the
        // family of the context (module) that raised it; transport
        // integrity failures (CRC, seq gaps) are not any policy's
        // verdict and tag as "transport".
        if (event_type == telemetry::EventType::Violation) {
            record.policy =
                process.context ? process.context->violationFamily() : "";
        } else if (event_type == telemetry::EventType::CorruptMsg ||
                   event_type == telemetry::EventType::SeqGap) {
            record.policy = "transport";
        }
        record.op = opcodeName(message.op);
        record.arg0 = message.arg0;
        record.arg1 = message.arg1;
        record.seq = message.seq;
        record.lag_ns = lag_ns == kNoLag ? 0 : lag_ns;
        record.reason = reason;
        telemetry::EventLog::instance().append(record);
    }
    telemetry::flight::record(
        telemetry::flight::Subsystem::Verifier,
        telemetry::flight::Code::Violation, pid,
        static_cast<std::int32_t>(home_shard),
        static_cast<std::uint64_t>(message.op), message.seq);
    telemetry::flight::requestDump("violation");
    logDebug("verifier: violation for pid ", pid, ": ", reason);
    if (_config.kill_on_violation)
        _kernel.killProcess(pid, reason);
}

Verifier::ProcessEntry *
Verifier::lookupProcess(Pid pid, PidMemo &memo)
{
    // Channels are per-process, so consecutive messages in a batch
    // almost always share a pid: memoize the shard hash and map lookup
    // (negative results included, so an unknown-pid flood stays cheap).
    if (memo.valid && memo.pid == pid)
        return memo.entry;
    const std::size_t home = _registry.shardOf(pid);
    Shard &shard = *_shards[home];
    // Device-stamped channels can interleave pids whose home shards
    // differ from the polling shard: move the lock to the new home
    // (unique_lock move-assign releases the old mutex first, so at most
    // one state mutex is ever held — no lock-order cycles possible).
    if (memo.lock.mutex() != &shard.state_mutex)
        memo.lock = std::unique_lock<std::mutex>(shard.state_mutex);
    auto it = shard.processes.find(pid);
    memo.pid = pid;
    memo.home_shard = home;
    memo.entry =
        it == shard.processes.end() ? nullptr : &it->second;
    memo.valid = true;
    return memo.entry;
}

void
Verifier::handleMessage(Shard &shard, ChannelEntry &entry,
                        const Message &message, PidMemo &memo,
                        std::uint64_t lag_ns, bool crc_trusted)
{
    if (_crashed.load(std::memory_order_relaxed))
        return;
    if (faultinject::fire(faultinject::Site::VerifierCrash)) {
        // The verifier dies mid-message: no further message is ever
        // processed, no syscall ack is ever sent. The monitored
        // program's next syscall must hit the kernel epoch timeout.
        _crashed.store(true, std::memory_order_relaxed);
        _running.store(false, std::memory_order_relaxed);
        logWarn("verifier: injected crash while handling message ",
                message.toString());
        return;
    }

    // Integrity guard before anything trusts the payload: a CRC
    // mismatch means bits flipped in flight, and a corrupted message
    // must never be interpreted — not even its pid field. Attribute it
    // to the channel's registered owner and fail closed (no processing,
    // no syscall ack). v2 records skip this: their integrity was
    // established by the frame CRCs and their pad is zero by unpacking.
    if (_config.check_crc && !crc_trusted &&
        message.pad != messageCrc(message)) {
        ProcessEntry *owner = lookupProcess(entry.owner, memo);
        if (owner != nullptr && !owner->exited) {
            recordViolation(memo.home_shard, entry.owner, *owner,
                            "message corruption detected (CRC mismatch)",
                            message, telemetry::EventType::CorruptMsg,
                            lag_ns);
        }
        return;
    }

    // Authenticity: trust the hardware-stamped PID when present,
    // otherwise the kernel-arbitrated channel registration.
    const Pid pid = entry.device_stamped ? message.pid : entry.owner;

    ProcessEntry *found = lookupProcess(pid, memo);
    if (found == nullptr) {
        logDebug("verifier: message for unknown pid ", pid, ": ",
                 message.toString());
        return;
    }
    ProcessEntry &process = *found;
    if (process.exited || !process.context)
        return; // stale message from an already-exited process
    ++process.stats.messages;

    // Message-integrity: the FPGA path has no back-pressure, so the
    // verifier requires consecutive sequence counters; software
    // channels carry the send-wrapper's counter with the same contract.
    // A gap means messages were dropped (or repeated) in flight and the
    // program must be terminated. The first message observed on a
    // channel establishes the baseline, so a restarted verifier resyncs
    // to the live stream instead of reporting a spurious gap.
    if (_config.check_sequence) {
        if (entry.seq_started &&
            message.seq != entry.expected_seq) {
            recordViolation(memo.home_shard, pid, process,
                            "message sequence gap: integrity violated",
                            message, telemetry::EventType::SeqGap,
                            lag_ns);
        }
        entry.seq_started = true;
        entry.expected_seq = message.seq + 1;
    }

    const Status status = process.context->handleMessage(message);
    if (!status.isOk())
        recordViolation(memo.home_shard, pid, process, status.message(),
                        message, telemetry::EventType::Violation,
                        lag_ns);

    process.stats.max_entries =
        std::max(process.stats.max_entries, process.context->entryCount());

    if (message.op == Opcode::Syscall) {
        // All earlier messages on this (in-order) channel have been
        // processed; queue an epoch acknowledgement for the kernel,
        // unless the process was violated and kill-on-violation is set.
        // Acks coalesce on the polling shard and reach the kernel in
        // one syscallResumeBatch per drain round (flushAcks).
        if (!(process.violated && _config.kill_on_violation)) {
            ++process.stats.syscall_acks;
            if (telemetry::enabled()) {
                syscallAcksCounter().inc();
                _shards[memo.home_shard]->syscall_acks_metric->inc();
            }
            telemetry::flight::record(
                telemetry::flight::Subsystem::Verifier,
                telemetry::flight::Code::SyscallAck, pid,
                static_cast<std::int32_t>(memo.home_shard),
                process.stats.syscall_acks);
            queueAck(shard, pid);
        }
    }
}

void
Verifier::queueAck(Shard &shard, Pid pid)
{
    // Channels are per-process, so a drained batch's acks are almost
    // always one pid: merge adjacent entries into a single count.
    if (!shard.pending_acks.empty() &&
        shard.pending_acks.back().pid == pid) {
        ++shard.pending_acks.back().count;
    } else {
        shard.pending_acks.push_back(KernelModule::SyscallAck{pid, 1});
    }
    if (telemetry::enabled())
        shard.pending_ack_ns.push_back(telemetry::monotonicRawNs());
}

void
Verifier::flushAcks(Shard &shard)
{
    if (shard.pending_acks.empty() && shard.pending_prearms.empty())
        return;
    if (_crashed.load(std::memory_order_relaxed)) {
        // Death before the flush: the acks must never arrive, so the
        // monitored processes hit the epoch timeout (fail closed).
        shard.pending_acks.clear();
        shard.pending_ack_ns.clear();
        shard.pending_prearms.clear();
        return;
    }
    if (!shard.pending_acks.empty()) {
        _kernel.syscallResumeBatch(shard.pending_acks.data(),
                                   shard.pending_acks.size());
        if (_health) {
            shard.last_ack_ns.store(telemetry::monotonicRawNs(),
                                    std::memory_order_relaxed);
        }
        if (telemetry::enabled()) {
            std::uint64_t total = 0;
            for (const KernelModule::SyscallAck &ack : shard.pending_acks)
                total += ack.count;
            acksBatchedCounter().add(total);
            // Queue-to-flush latency per ack message; a breach feeds
            // the same SLO counter as end-to-end verification lag
            // (both delay the monitored process's resume).
            const std::uint64_t now = telemetry::monotonicRawNs();
            for (const std::uint64_t queued : shard.pending_ack_ns) {
                const std::uint64_t lat = now > queued ? now - queued : 0;
                ackLatencyHist().record(lat);
                if (_config.lag_slo_ns != 0 && lat > _config.lag_slo_ns) {
                    lagSloBreaches().inc();
                    telemetry::flight::record(
                        telemetry::flight::Subsystem::Verifier,
                        telemetry::flight::Code::SloBreach, 0,
                        static_cast<std::int32_t>(shard.index), lat,
                        _config.lag_slo_ns);
                }
            }
        }
        shard.pending_acks.clear();
        shard.pending_ack_ns.clear();
    }
    for (std::size_t i = 0; i < shard.pending_prearms.size(); ++i) {
        const Pid pid = shard.pending_prearms[i];
        // A pid can appear once per channel per round; push once.
        bool duplicate = false;
        for (std::size_t j = 0; j < i && !duplicate; ++j)
            duplicate = shard.pending_prearms[j] == pid;
        if (duplicate)
            continue;
        // Re-check under the home shard's state lock: a violation or
        // exit recorded after the drain must veto the push.
        bool eligible = false;
        {
            Shard &home = *_shards[_registry.shardOf(pid)];
            std::lock_guard<std::mutex> guard(home.state_mutex);
            auto it = home.processes.find(pid);
            eligible = it != home.processes.end() &&
                       !it->second.violated && !it->second.exited;
        }
        if (!eligible)
            continue;
        _kernel.preArmProcess(pid);
        if (telemetry::enabled())
            preArmsCounter().inc();
    }
    shard.pending_prearms.clear();
}

void
Verifier::onProcessEnabled(Pid pid)
{
    const std::size_t home = _registry.assign(pid);
    ProcessEntry entry;
    entry.context = _policy->makeContext(pid);
    Shard &shard = *_shards[home];
    std::lock_guard<std::mutex> guard(shard.state_mutex);
    shard.processes[pid] = std::move(entry);
}

void
Verifier::onSyscallGate(Pid pid)
{
    // Called on the monitored thread's syscall hot path with no kernel
    // locks held: bump the home shard's kick counter and wake its
    // worker. Nothing else — the drain itself stays on the worker.
    Shard &shard = *_shards[_registry.shardOf(pid)];
    shard.gate_kicks.fetch_add(1, std::memory_order_release);
    {
        // Empty critical section pairs with the worker's predicate
        // check under wake_mutex, closing the missed-wakeup window.
        std::lock_guard<std::mutex> guard(shard.wake_mutex);
    }
    shard.wake_cv.notify_one();
}

void
Verifier::onProcessForked(Pid parent, Pid child)
{
    // Clone under the parent's home-shard lock, insert under the
    // child's — never both at once (the pids may share a shard).
    std::unique_ptr<PolicyContext> child_context;
    {
        Shard &parent_shard = *_shards[_registry.shardOf(parent)];
        std::lock_guard<std::mutex> guard(parent_shard.state_mutex);
        auto it = parent_shard.processes.find(parent);
        if (it == parent_shard.processes.end()) {
            logWarn("verifier: fork from unknown parent ", parent);
            return;
        }
        child_context = it->second.context->cloneForChild(child);
    }
    const std::size_t home = _registry.assign(child);
    ProcessEntry entry;
    entry.context = std::move(child_context);
    Shard &shard = *_shards[home];
    std::lock_guard<std::mutex> guard(shard.state_mutex);
    shard.processes[child] = std::move(entry);
}

void
Verifier::onProcessExited(Pid pid)
{
    // Drain in-flight messages before tearing the process down: the
    // exit notification arrives over the privileged channel and must
    // not outrun the message stream. Device-stamped channels can carry
    // this pid's messages on any shard, so drain them all.
    poll();
    Shard &shard = *_shards[_registry.shardOf(pid)];
    {
        std::lock_guard<std::mutex> guard(shard.state_mutex);
        auto it = shard.processes.find(pid);
        if (it == shard.processes.end())
            return;
        // The policy context is kept for post-mortem inspection by the
        // harnesses; the exited flag stops further message processing.
        // Unless the pid's channels are already gone (detachChannel ran
        // first): with nothing left to name the slice, keeping it would
        // leak one entry per churned pid. A device-stamped channel
        // anywhere can carry any pid's messages, so its presence keeps
        // every slice post-mortem.
        bool has_channels =
            _device_channels.load(std::memory_order_relaxed) != 0;
        for (const auto &entry : shard.channels) {
            if (has_channels)
                break;
            if (entry->owner == pid)
                has_channels = true;
        }
        if (has_channels)
            it->second.exited = true;
        else
            shard.processes.erase(it);
    }
    _registry.release(pid);
}

bool
Verifier::hasViolation(Pid pid) const
{
    const Shard &shard = *_shards[_registry.shardOf(pid)];
    std::lock_guard<std::mutex> guard(shard.state_mutex);
    auto it = shard.processes.find(pid);
    return it != shard.processes.end() && it->second.violated;
}

VerifierProcessStats
Verifier::statsFor(Pid pid) const
{
    const Shard &shard = *_shards[_registry.shardOf(pid)];
    std::lock_guard<std::mutex> guard(shard.state_mutex);
    auto it = shard.processes.find(pid);
    return it == shard.processes.end() ? VerifierProcessStats{}
                                       : it->second.stats;
}

PolicyContext *
Verifier::contextFor(Pid pid)
{
    Shard &shard = *_shards[_registry.shardOf(pid)];
    std::lock_guard<std::mutex> guard(shard.state_mutex);
    auto it = shard.processes.find(pid);
    return it == shard.processes.end() ? nullptr
                                       : it->second.context.get();
}

std::uint64_t
Verifier::shardMessages(std::size_t shard_index) const
{
    return shard_index < _shards.size()
               ? _shards[shard_index]->messages.load(
                     std::memory_order_relaxed)
               : 0;
}

std::uint64_t
Verifier::shardQueueDepth(std::size_t shard_index) const
{
    if (shard_index >= _shards.size())
        return 0;
    Shard &shard = *_shards[shard_index];
    // Under the state lock so attachChannel cannot resize the list
    // mid-walk; pending() is a relaxed cursor subtraction per channel.
    std::lock_guard<std::mutex> guard(shard.state_mutex);
    std::uint64_t depth = 0;
    for (const auto &entry : shard.channels)
        depth += entry->channel->pending();
    return depth;
}

} // namespace hq
